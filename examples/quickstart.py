#!/usr/bin/env python3
"""Quickstart: one I/O-bound MPI program, three ways.

Builds a Darwin-like simulated cluster (9 PVFS2-style data servers behind
CFQ elevators and mechanical disks, GigE, 64 KB striping), runs the
``mpi-io-test`` access pattern with 64 ranks under vanilla MPI-IO,
collective I/O, and DualPar, and prints what each scheme achieved and why
(queue depths, mean request sizes at the disks).

Run:  python examples/quickstart.py
"""

from repro import JobSpec, MpiIoTest, format_table, run_experiment
from repro.cluster import paper_spec


def main() -> None:
    rows = []
    for scheme in ("vanilla", "collective", "dualpar-forced"):
        workload = MpiIoTest(file_size=64 * 1024 * 1024, request_bytes=16 * 1024)
        result = run_experiment(
            [JobSpec("mpi-io-test", 64, workload, strategy=scheme)],
            cluster_spec=paper_spec(),
        )
        job = result.jobs[0]
        # Why: what did the data servers' block layers see?
        blk = result.cluster.data_servers[0].block_layer.stats
        rows.append(
            [
                scheme,
                job.elapsed_s,
                job.throughput_mb_s,
                result.cluster.mean_queue_depth(),
                blk.mean_unit_sectors * 512 / 1024,
            ]
        )

    print(
        format_table(
            [
                "scheme",
                "time (s)",
                "MB/s",
                "mean elevator queue depth",
                "mean disk request (KB)",
            ],
            rows,
            title="mpi-io-test, 64 ranks, 64 MB sequential read",
            float_fmt="{:.2f}",
        )
    )
    print(
        "\nDualPar wins by making the disks efficient: it suspends the\n"
        "program, pre-executes it to learn future requests, and issues them\n"
        "as one sorted batch -- so the elevators see deep queues and large\n"
        "merged requests instead of a synchronous trickle."
    )


if __name__ == "__main__":
    main()
