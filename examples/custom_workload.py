#!/usr/bin/env python3
"""Example: defining your own workload (see docs/extending.md).

A halo-exchange stencil code: each rank owns a slab of a 2-D field and
per timestep re-reads its slab plus one halo row from each neighbour.
Halo rows overlap between neighbouring ranks -- DualPar's CRM
deduplicates the overlap globally before prefetching, something neither
independent nor collective I/O does across *calls*.

Run:  python examples/custom_workload.py
"""

from repro import JobSpec, format_table, run_experiment
from repro.cluster import paper_spec
from repro.mpi.ops import ComputeOp, IoOp, Segment
from repro.workloads.base import FileSpec, Workload


class StencilHalo(Workload):
    name = "stencil-halo"

    def __init__(
        self,
        file_name: str = "field.dat",
        rows: int = 1024,
        row_bytes: int = 64 * 1024,
        steps: int = 4,
        compute_per_step: float = 0.005,
    ):
        self.file_name = file_name
        self.rows = rows
        self.row_bytes = row_bytes
        self.steps = steps
        self.compute_per_step = compute_per_step

    def files(self):
        return [FileSpec(self.file_name, self.rows * self.row_bytes)]

    def ops(self, rank, size):
        per = self.rows // size
        lo, hi = rank * per, (rank + 1) * per
        for _ in range(self.steps):
            yield ComputeOp(self.compute_per_step)
            first = max(lo - 1, 0)
            last = min(hi + 1, self.rows)
            yield IoOp(
                file_name=self.file_name,
                op="R",
                segments=(
                    Segment(first * self.row_bytes, (last - first) * self.row_bytes),
                ),
            )


def main() -> None:
    rows = []
    dedupe = None
    for scheme in ("vanilla", "collective", "dualpar-forced"):
        res = run_experiment(
            [JobSpec("stencil", 32, StencilHalo(), strategy=scheme)],
            cluster_spec=paper_spec(),
        )
        j = res.jobs[0]
        rows.append([scheme, j.elapsed_s, j.throughput_mb_s])
        if scheme == "dualpar-forced":
            eng = res.mpi_jobs[0].engine
            requested = j.bytes_read
            dedupe = (requested, eng.crm.prefetched_bytes)

    print(
        format_table(
            ["scheme", "time (s)", "MB/s"],
            rows,
            title="Halo-exchange stencil, 32 ranks, 4 timesteps",
            float_fmt="{:.2f}",
        )
    )
    if dedupe:
        requested, fetched = dedupe
        print(
            f"\nDualPar read {requested / 1e6:.0f} MB logically but fetched only "
            f"{fetched / 1e6:.0f} MB from the servers: overlapping halo rows and "
            f"re-read slabs were deduplicated in the global cache."
        )


if __name__ == "__main__":
    main()
