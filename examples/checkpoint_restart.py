#!/usr/bin/env python3
"""Domain example: periodic checkpointing of a CFD-style solver (BT-IO).

The workload the paper's introduction motivates: a compute-heavy
simulation (here, the NAS BT block-tridiagonal solver's I/O pattern)
periodically dumps its distributed solution array.  The multi-partition
decomposition scatters each rank's cells through the file, so the
per-rank write granularity *shrinks* as the job scales out -- the exact
regime where storage becomes the bottleneck.

This example scales the job from 16 to 256 ranks and shows how each I/O
scheme holds up, plus what DualPar's machinery did (cycles, writeback
batches, buffered bytes).

Run:  python examples/checkpoint_restart.py
"""

from repro import Btio, JobSpec, format_table, run_experiment
from repro.cluster import paper_spec


def checkpoint_workload() -> Btio:
    return Btio(
        total_bytes=6 * 1024 * 1024,  # scaled solution array (paper: 6.8 GB)
        n_steps=3,  # three checkpoint dumps
        cell_scale=16384,  # per-rank cell = 16384 / nprocs bytes
        op="W",
        compute_per_step=0.005,  # solver time between dumps
        segments_per_call=64,
    )


def main() -> None:
    rows = []
    dualpar_details = []
    for nprocs in (16, 64, 256):
        row = [nprocs, checkpoint_workload().cell_bytes(nprocs)]
        for scheme in ("vanilla", "collective", "dualpar-forced"):
            result = run_experiment(
                [JobSpec("bt-checkpoint", nprocs, checkpoint_workload(),
                         strategy=scheme)],
                cluster_spec=paper_spec(),
            )
            row.append(result.jobs[0].throughput_mb_s)
            if scheme == "dualpar-forced":
                eng = result.mpi_jobs[0].engine
                dualpar_details.append(
                    [
                        nprocs,
                        eng.pec.n_cycles,
                        eng.crm.n_writeback_batches,
                        eng.crm.writeback_bytes / 1e6,
                    ]
                )
        rows.append(row)

    print(
        format_table(
            ["ranks", "cell (bytes)", "vanilla MB/s", "collective MB/s", "DualPar MB/s"],
            rows,
            title="BT-IO checkpointing: write throughput as the job scales out",
        )
    )
    print()
    print(
        format_table(
            ["ranks", "prefetch cycles", "writeback batches", "MB written back"],
            dualpar_details,
            title="DualPar internals: writes buffered in the global cache, "
            "then written back sorted",
        )
    )


if __name__ == "__main__":
    main()
