#!/usr/bin/env python3
"""Example: watching the disk head with the blktrace-style recorder.

Reproduces the paper's favourite diagnostic (Figs 1(c,d) and 6): attach a
trace to a data server's disk, run two programs that interleave there,
and render the LBN-vs-time scatter as ASCII art -- vanilla MPI-IO
ping-pongs between the two files' regions, DualPar sweeps them in sorted
batches.

Run:  python examples/trace_disk_order.py
"""

from repro import JobSpec, MpiIoTest, run_experiment
from repro.cluster import paper_spec


def run(strategy: str):
    spec = paper_spec(trace_disks=True)
    specs = [
        JobSpec(
            f"stream-{i}",
            16,
            MpiIoTest(
                file_name=f"stream{i}.dat",
                file_size=48 * 1024 * 1024,
                request_bytes=16 * 1024,
                barrier_every=4,
            ),
            strategy=strategy,
        )
        for i in range(2)
    ]
    return run_experiment(specs, cluster_spec=spec)


def main() -> None:
    for strategy in ("vanilla", "dualpar-forced"):
        result = run(strategy)
        trace = result.cluster.traces[0]
        t_end = min(j.end_s for j in result.jobs)
        window = (t_end * 0.25, min(t_end * 0.25 + 1.0, t_end))
        print(f"\n=== {strategy} ===")
        print(f"aggregate throughput: {result.system_throughput_mb_s:.1f} MB/s")
        print(
            f"mean head seek distance: "
            f"{trace.mean_seek_distance(0, t_end):.0f} sectors; "
            f"forward-motion fraction: {trace.monotonicity(0, t_end):.2f}"
        )
        print(trace.ascii_plot(*window, width=72, height=16))


if __name__ == "__main__":
    main()
