#!/usr/bin/env python3
"""Domain example: parallel sequence-similarity search (S3asim-style).

A BLAST-like service scans a fragmented sequence database: per query,
each worker rank reads a run of database sequences from its assigned
fragment, scores the alignment, and appends a result record to a shared
output file.  Reads are large-ish (tens to hundreds of KB), writes are
small appends -- a mixed pattern where DualPar's margin is real but
modest (paper Fig 5: ~17% average).

The example sweeps the query load and reports per-scheme times, plus
DualPar's internals: how much of the read traffic was served from the
global cache, and how the result writes were batched for writeback.

Run:  python examples/bioinformatics_search.py
"""

from repro import JobSpec, S3asim, format_table, run_experiment
from repro.cluster import paper_spec


def search_job(n_queries: int) -> S3asim:
    return S3asim(
        n_fragments=16,
        n_queries=n_queries,
        db_bytes=48 * 1024 * 1024,
        min_seq_bytes=64 * 1024,
        max_seq_bytes=384 * 1024,
        result_bytes=32 * 1024,
        compute_per_query=0.003,
        out_region_bytes=2 * 1024 * 1024,
    )


def main() -> None:
    rows = []
    internals = []
    for n_queries in (8, 16, 32):
        row = [n_queries]
        for scheme in ("vanilla", "collective", "dualpar-forced"):
            result = run_experiment(
                [JobSpec("s3asim", 32, search_job(n_queries), strategy=scheme)],
                cluster_spec=paper_spec(),
            )
            row.append(result.jobs[0].elapsed_s)
            if scheme == "dualpar-forced":
                eng = result.mpi_jobs[0].engine
                hits = eng.n_cache_hits
                total = hits + eng.n_cache_misses
                internals.append(
                    [
                        n_queries,
                        f"{hits / total:.0%}" if total else "n/a",
                        eng.crm.prefetched_bytes / 1e6,
                        eng.crm.writeback_bytes / 1e6,
                    ]
                )
        rows.append(row)

    print(
        format_table(
            ["queries", "vanilla (s)", "collective (s)", "DualPar (s)"],
            rows,
            title="Sequence search wall time by I/O scheme (32 workers)",
            float_fmt="{:.2f}",
        )
    )
    print()
    print(
        format_table(
            ["queries", "cache hit rate", "MB prefetched", "MB written back"],
            internals,
            title="DualPar internals",
            float_fmt="{:.1f}",
        )
    )


if __name__ == "__main__":
    main()
