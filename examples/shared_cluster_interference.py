#!/usr/bin/env python3
"""Domain example: I/O interference on a shared cluster, and how DualPar
reacts (the Fig-7 scenario as an application story).

A long-running sequential analysis job ("survey-scan") has the storage
system to itself; a second job ("genome-search") arrives later and the
two interleave at the shared data servers, collapsing disk efficiency.
With DualPar, the EMC daemon watches every registered program's I/O
ratio and the cluster-wide seek distances; when the interference pushes
aveSeekDist/aveReqDist over T_improvement, it flips both programs into
data-driven execution.

The script prints the throughput timeline for the vanilla and DualPar
runs side by side, the mode transitions EMC made, and the per-server
seek-distance samples that triggered them.

Run:  python examples/shared_cluster_interference.py
"""

from repro import DualParConfig, Hpio, JobSpec, MpiIoTest, format_table, run_experiment
from repro.cluster import paper_spec

JOIN_AT_S = 1.5
WINDOW_S = 0.5


def scenario(strategy: str):
    spec = paper_spec(n_compute_nodes=16, locality_interval_s=0.25)
    cfg = DualParConfig(emc_interval_s=0.25, metric_window_s=1.0)
    return run_experiment(
        [
            JobSpec(
                "survey-scan",
                32,
                MpiIoTest(file_name="survey.dat", file_size=384 * 1024 * 1024,
                          barrier_every=0),
                strategy=strategy,
            ),
            JobSpec(
                "genome-search",
                32,
                Hpio(file_name="genome.dat", region_count=8192,
                     region_bytes=16 * 1024),
                strategy=strategy,
                delay_s=JOIN_AT_S,
            ),
        ],
        cluster_spec=spec,
        dualpar_config=cfg,
        timeline_window_s=WINDOW_S,
    )


def main() -> None:
    runs = {s: scenario(s) for s in ("vanilla", "dualpar")}

    van = runs["vanilla"].timeline.series(WINDOW_S)
    dp = runs["dualpar"].timeline.series(WINDOW_S)
    rows = []
    for i in range(max(len(van), len(dp))):
        rows.append(
            [
                f"{i * WINDOW_S:.1f}",
                van[i][1] if i < len(van) else 0.0,
                dp[i][1] if i < len(dp) else 0.0,
            ]
        )
    print(
        format_table(
            ["t (s)", "vanilla MB/s", "DualPar MB/s"],
            rows,
            title=f"System throughput ({WINDOW_S}s windows); "
            f"genome-search arrives at t={JOIN_AT_S}s",
        )
    )

    print("\nEMC mode transitions (DualPar run):")
    for t, name, mode in runs["dualpar"].dualpar.transitions:
        print(f"  t={t:5.2f}s  {name} -> {mode}")

    print("\nEMC samples around the arrival (DualPar run):")
    for s in runs["dualpar"].dualpar.emc.samples:
        if JOIN_AT_S - 1.0 <= s.time <= JOIN_AT_S + 1.5 and s.improvement is not None:
            print(
                f"  t={s.time:5.2f}s  aveSeekDist={s.ave_seek_dist:10.0f}  "
                f"aveReqDist={s.ave_req_dist:7.1f}  improvement={s.improvement:8.1f}"
            )

    v_end = runs["vanilla"].makespan_s
    d_end = runs["dualpar"].makespan_s
    print(f"\nMakespan: vanilla {v_end:.2f}s vs DualPar {d_end:.2f}s "
          f"({(v_end / d_end - 1) * 100:.0f}% faster)")


if __name__ == "__main__":
    main()
