"""Unit & property tests for striping math and extent allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.filesystem import ExtentAllocator, FileSystem
from repro.pfs.layout import StripeLayout


UNIT = 64 * 1024


def test_server_of_round_robin():
    lay = StripeLayout(n_servers=4, stripe_unit=UNIT)
    assert lay.server_of(0) == 0
    assert lay.server_of(UNIT) == 1
    assert lay.server_of(4 * UNIT) == 0
    assert lay.server_of(5 * UNIT + 1) == 1


def test_object_offset_advances_per_round():
    lay = StripeLayout(n_servers=4, stripe_unit=UNIT)
    assert lay.object_offset_of(0) == 0
    assert lay.object_offset_of(4 * UNIT) == UNIT
    assert lay.object_offset_of(4 * UNIT + 7) == UNIT + 7


def test_split_single_unit():
    lay = StripeLayout(n_servers=4, stripe_unit=UNIT)
    pieces = lay.split(0, 1000)
    assert len(pieces) == 1
    assert pieces[0].server == 0 and pieces[0].length == 1000


def test_split_spans_units():
    lay = StripeLayout(n_servers=2, stripe_unit=UNIT)
    pieces = lay.split(UNIT - 100, 200)
    assert [(p.server, p.length) for p in pieces] == [(0, 100), (1, 100)]


def test_split_coalesced_merges_same_server_runs():
    lay = StripeLayout(n_servers=2, stripe_unit=UNIT)
    # 4 units: servers 0,1,0,1; object-contiguous per server.
    pieces = lay.split_coalesced(0, 4 * UNIT)
    assert len(pieces) == 2
    assert sorted((p.server, p.length) for p in pieces) == [(0, 2 * UNIT), (1, 2 * UNIT)]


def test_object_size_distribution():
    lay = StripeLayout(n_servers=3, stripe_unit=UNIT)
    size = 7 * UNIT + 123
    total = sum(lay.object_size(size, s) for s in range(3))
    assert total == size
    # Stripes 0..6 + tail: server 0 gets stripes 0,3,6 -> 3 units; server 1
    # gets 1,4 and the 123-byte tail of stripe 7.
    assert lay.object_size(size, 0) == 3 * UNIT
    assert lay.object_size(size, 1) == 2 * UNIT + 123
    assert lay.object_size(size, 2) == 2 * UNIT


@given(
    offset=st.integers(min_value=0, max_value=10 * UNIT),
    length=st.integers(min_value=0, max_value=10 * UNIT),
    n_servers=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=100, deadline=None)
def test_split_partitions_range_property(offset, length, n_servers):
    lay = StripeLayout(n_servers=n_servers, stripe_unit=UNIT)
    pieces = lay.split(offset, length)
    assert sum(p.length for p in pieces) == length
    # Pieces tile the byte range in file order.
    pos = offset
    for p in pieces:
        assert p.file_offset == pos
        assert p.server == lay.server_of(pos)
        assert p.object_offset == lay.object_offset_of(pos)
        pos += p.length
    assert pos == offset + length


@given(
    size=st.integers(min_value=1, max_value=20 * UNIT),
    n_servers=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=100, deadline=None)
def test_object_sizes_sum_to_file_size_property(size, n_servers):
    lay = StripeLayout(n_servers=n_servers, stripe_unit=UNIT)
    assert sum(lay.object_size(size, s) for s in range(n_servers)) == size


def test_layout_rejects_bad_params():
    with pytest.raises(ValueError):
        StripeLayout(n_servers=0)
    with pytest.raises(ValueError):
        StripeLayout(n_servers=1, stripe_unit=0)
    lay = StripeLayout(n_servers=2)
    with pytest.raises(ValueError):
        lay.split(-1, 10)


# ----------------------------------------------------------- allocator/fs


def test_packed_allocator_sequential_with_gap():
    alloc = ExtentAllocator(1_000_000, placement="packed", gap_sectors=100)
    a = alloc.allocate(500)
    b = alloc.allocate(500)
    assert a.start_lbn == 0
    assert b.start_lbn == 600


def test_spread_allocator_uses_distant_groups():
    alloc = ExtentAllocator(1_600_000, placement="spread", n_groups=16)
    a = alloc.allocate(1000)
    b = alloc.allocate(1000)
    assert abs(b.start_lbn - a.start_lbn) >= 1_600_000 // 16 - 1


def test_allocator_full_raises():
    alloc = ExtentAllocator(1000, placement="packed", gap_sectors=0)
    alloc.allocate(900)
    with pytest.raises(RuntimeError):
        alloc.allocate(200)


def test_allocator_rejects_bad_placement():
    with pytest.raises(ValueError):
        ExtentAllocator(1000, placement="mystery")


def test_filesystem_create_lookup():
    lay = StripeLayout(n_servers=2, stripe_unit=UNIT)
    fs = FileSystem(lay, [ExtentAllocator(10_000_000), ExtentAllocator(10_000_000)])
    f = fs.create("data.bin", 5 * UNIT)
    assert fs.lookup("data.bin") is f
    assert fs.exists("data.bin")
    assert set(f.extents) == {0, 1}


def test_filesystem_duplicate_create():
    lay = StripeLayout(n_servers=1, stripe_unit=UNIT)
    fs = FileSystem(lay, [ExtentAllocator(10_000_000)])
    fs.create("x", UNIT)
    with pytest.raises(FileExistsError):
        fs.create("x", UNIT)


def test_filesystem_missing_lookup():
    lay = StripeLayout(n_servers=1, stripe_unit=UNIT)
    fs = FileSystem(lay, [ExtentAllocator(10_000_000)])
    with pytest.raises(FileNotFoundError):
        fs.lookup("nope")


def test_filesystem_lbn_mapping_is_contiguous():
    lay = StripeLayout(n_servers=2, stripe_unit=UNIT)
    fs = FileSystem(lay, [ExtentAllocator(10_000_000), ExtentAllocator(10_000_000)])
    f = fs.create("y", 4 * UNIT)
    # Object offsets map linearly to LBNs within the extent.
    assert f.lbn_of(0, UNIT) - f.lbn_of(0, 0) == UNIT // 512


def test_filesystem_lbn_beyond_extent_raises():
    lay = StripeLayout(n_servers=1, stripe_unit=UNIT)
    fs = FileSystem(lay, [ExtentAllocator(10_000_000)])
    f = fs.create("z", UNIT)
    with pytest.raises(ValueError):
        f.lbn_of(0, 2 * UNIT)


def test_filesystem_allocator_count_mismatch():
    lay = StripeLayout(n_servers=2, stripe_unit=UNIT)
    with pytest.raises(ValueError):
        FileSystem(lay, [ExtentAllocator(1000)])
