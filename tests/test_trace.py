"""Unit tests for blktrace and throughput timeline recorders."""

import pytest

from repro.trace import BlkTrace, ThroughputTimeline


def make_trace(records):
    tr = BlkTrace()
    for t, lbn, n, op in records:
        tr.hook(t, lbn, n, op)
    return tr


def test_window_filters_by_time():
    tr = make_trace([(0.1, 0, 8, "R"), (0.5, 8, 8, "R"), (0.9, 16, 8, "R")])
    assert len(tr.window(0.4, 0.8)) == 1
    assert len(tr.window(0.0, 1.0)) == 3


def test_to_arrays():
    tr = make_trace([(0.1, 100, 8, "R"), (0.2, 200, 8, "R")])
    times, lbns = tr.to_arrays()
    assert list(times) == [0.1, 0.2]
    assert list(lbns) == [100, 200]


def test_mean_seek_distance_sequential_is_zero():
    tr = make_trace([(0.1, 0, 8, "R"), (0.2, 8, 8, "R"), (0.3, 16, 8, "R")])
    assert tr.mean_seek_distance() == 0.0


def test_mean_seek_distance_gaps():
    tr = make_trace([(0.1, 0, 8, "R"), (0.2, 108, 8, "R")])
    assert tr.mean_seek_distance() == 100.0


def test_mean_seek_distance_empty():
    assert make_trace([]).mean_seek_distance() == 0.0


def test_monotonicity_forward_sweep():
    tr = make_trace([(t, lbn, 8, "R") for t, lbn in [(0.1, 0), (0.2, 100), (0.3, 200)]])
    assert tr.monotonicity() == 1.0


def test_monotonicity_pingpong():
    tr = make_trace(
        [(t, lbn, 8, "R") for t, lbn in [(0.1, 0), (0.2, 1000), (0.3, 0), (0.4, 1000)]]
    )
    assert tr.monotonicity() == pytest.approx(2 / 3)


def test_ascii_plot_renders():
    tr = make_trace([(0.1 * i, i * 100, 8, "R") for i in range(10)])
    art = tr.ascii_plot(0.0, 1.0, width=20, height=5)
    assert "accesses" in art
    assert "*" in art


def test_ascii_plot_empty_window():
    tr = make_trace([(0.1, 0, 8, "R")])
    assert "no accesses" in tr.ascii_plot(5.0, 6.0)


# ------------------------------------------------------------ timeline


def test_timeline_series_windows():
    tl = ThroughputTimeline()
    tl.record(0.5, 10_000_000)
    tl.record(1.5, 20_000_000)
    series = tl.series(window_s=1.0)
    assert series[0] == (0.0, pytest.approx(10.0))
    assert series[1] == (1.0, pytest.approx(20.0))


def test_timeline_extends_to_t_end():
    tl = ThroughputTimeline()
    tl.record(0.5, 1_000_000)
    series = tl.series(window_s=1.0, t_end=3.5)
    assert len(series) == 4
    assert series[-1][1] == 0.0


def test_timeline_mean():
    tl = ThroughputTimeline()
    tl.record(1.0, 5_000_000)
    tl.record(2.0, 5_000_000)
    # Window [0, 2.5): both samples included, span capped at last sample.
    assert tl.mean_mb_s(0.0, 2.5) == pytest.approx(5.0)
    # Half-open window excludes the t=2.0 sample.
    assert tl.mean_mb_s(0.0, 2.0) == pytest.approx(2.5)


def test_timeline_empty():
    tl = ThroughputTimeline()
    assert tl.series() == []
    assert tl.mean_mb_s() == 0.0
    assert tl.total_bytes == 0


def test_timeline_rejects_negative():
    tl = ThroughputTimeline()
    with pytest.raises(ValueError):
        tl.record(0.0, -5)
    with pytest.raises(ValueError):
        tl.series(window_s=0)
