"""Tests for block-layer congestion control (nr_requests)."""

import pytest

from repro.disk import DiskDrive, DiskParams
from repro.iosched import BlockLayer, NoopScheduler
from repro.sim import Simulator


def make_layer(sim, nr=8):
    drive = DiskDrive(sim, DiskParams(capacity_bytes=2 * 10**9))
    return BlockLayer(sim, drive, NoopScheduler(), nr_requests=nr)


def test_congested_flag():
    sim = Simulator()
    layer = make_layer(sim, nr=2)
    layer.submit(0, 8)
    assert not layer.congested
    layer.submit(10_000, 8)
    layer.submit(20_000, 8)
    assert layer.congested


def test_throttle_waits_until_drain():
    sim = Simulator()
    layer = make_layer(sim, nr=4)
    log = []

    def flooder():
        for i in range(4):
            layer.submit(i * 10_000, 8)
        # Queue is now full; throttle should block until it drains.
        yield from layer.throttle()
        log.append(("resumed", sim.now, layer.queue_depth))
        layer.submit(90_000, 8)

    sim.run_until_event(sim.process(flooder()))
    sim.run(until=sim.now + 1.0)
    assert log and log[0][2] < 4


def test_throttle_noop_when_uncongested():
    sim = Simulator()
    layer = make_layer(sim, nr=100)

    def proc():
        yield from layer.throttle()
        return "ok"

    # An uncongested throttle yields nothing and returns immediately.
    gen = layer.throttle()
    assert list(gen) == []


def test_nr_requests_validation():
    sim = Simulator()
    drive = DiskDrive(sim, DiskParams(capacity_bytes=10**9))
    with pytest.raises(ValueError):
        BlockLayer(sim, drive, NoopScheduler(), nr_requests=0)


def test_server_batch_respects_cap():
    """A DualPar-sized list batch never drives the elevator queue far
    beyond nr_requests."""
    from repro.cluster import ClusterSpec, build_cluster
    from repro.pfs.dataserver import ServerRequest

    cluster = build_cluster(
        ClusterSpec(
            n_compute_nodes=2,
            n_data_servers=1,
            disk=DiskParams(capacity_bytes=2 * 10**9),
            placement="packed",
        )
    )
    ds = cluster.data_servers[0]
    cluster.fs.create("big.dat", 256 * 1024 * 1024)
    # 512 pieces of 256 KB -> 128 MB, far beyond nr_requests=128 units.
    reqs = [
        ServerRequest(file_name="big.dat", object_offset=i * 256 * 1024,
                      length=256 * 1024, op="R", stream_id=i)
        for i in range(512)
    ]
    max_depth = 0
    done = ds.handle_list(reqs)
    sim = cluster.sim
    while not done.processed:
        sim.step()
        max_depth = max(max_depth, ds.block_layer.queue_depth)
    # Small transient overshoot allowed (one piece per in-flight handler).
    assert max_depth <= ds.block_layer.nr_requests + 64
