"""simown: static ownership analysis fixtures, the golden partition-map
gate, and the dynamic (runtime) ownership checker."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools.ownership import (
    analyze_paths,
    classify,
    domain_of,
    main as ownership_main,
    partition_map,
    render_text,
)

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "docs" / "partition_map.json"


def _fixture_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``files`` (relative to a fake src/repro) and return its root."""
    root = tmp_path / "src" / "repro"
    for rel, text in files.items():
        f = root / rel
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(text)
    return root


def _classes(root: Path):
    return classify(analyze_paths([root]))


# ---------------------------------------------------------------------------
# static pass -- classification fixtures
# ---------------------------------------------------------------------------


class TestStaticClassification:
    def test_domain_prefixes(self):
        assert domain_of("pfs.dataserver") == "server"
        assert domain_of("mpi.runtime") == "client"
        assert domain_of("core.emc") == "meta"
        assert domain_of("net.ethernet") == "fabric"
        assert domain_of("sim.core") == "kernel"

    def test_private_attr_is_lp_private(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.queue = []\n"
                    "    def push(self, x):\n"
                    "        self.queue.append(x)\n"
                )
            },
        )
        report = _classes(root)
        assert report.attr_class["Drive"]["queue"] == "lp-private"
        assert report.hazards == []

    def test_cross_lp_write_is_shared_hazard(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.mode = 0\n"
                ),
                "mpi/bar.py": (
                    "from repro.disk.foo import Drive\n"
                    "class Rank:\n"
                    "    def __init__(self, drive: Drive):\n"
                    "        self.drive = drive\n"
                    "    def poke(self):\n"
                    "        self.drive.mode = 1\n"
                ),
            },
        )
        report = _classes(root)
        assert report.attr_class["Drive"]["mode"] == "shared-hazard"
        assert len(report.unannotated) == 1
        assert report.unannotated[0].owner == "Drive"

    def test_transfer_mediated_access_is_message_mediated(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.mode = 0\n"
                ),
                "mpi/bar.py": (
                    "from repro.disk.foo import Drive\n"
                    "class Rank:\n"
                    "    def __init__(self, drive: Drive, net):\n"
                    "        self.drive = drive\n"
                    "        self.net = net\n"
                    "    def poke(self):\n"
                    "        yield from self.net.transfer(0, 1, 64)\n"
                    "        self.drive.mode = 1\n"
                ),
            },
        )
        report = _classes(root)
        assert report.attr_class["Drive"]["mode"] == "message-mediated"
        assert report.unannotated == []

    def test_simown_annotation_downgrades_hazard(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.mode = 0\n"
                ),
                "mpi/bar.py": (
                    "from repro.disk.foo import Drive\n"
                    "class Rank:\n"
                    "    def __init__(self, drive: Drive):\n"
                    "        self.drive = drive\n"
                    "    def poke(self):\n"
                    "        self.drive.mode = 1  # simown: shared[ctrl msg]\n"
                ),
            },
        )
        report = _classes(root)
        assert report.unannotated == []
        assert len(report.hazards) == 1
        assert report.hazards[0].annotated == "ctrl msg"

    def test_standalone_annotation_covers_next_line(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.mode = 0\n"
                ),
                "mpi/bar.py": (
                    "from repro.disk.foo import Drive\n"
                    "class Rank:\n"
                    "    def __init__(self, drive: Drive):\n"
                    "        self.drive = drive\n"
                    "    def poke(self):\n"
                    "        # simown: shared[long reason on its own line]\n"
                    "        self.drive.mode = 1\n"
                ),
            },
        )
        report = _classes(root)
        assert report.unannotated == []
        assert report.hazards[0].annotated == "long reason on its own line"

    def test_cross_lp_call_edge_is_hazard(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.n = 0\n"
                    "    def spin(self):\n"
                    "        self.n += 1\n"
                ),
                "mpi/bar.py": (
                    "from repro.disk.foo import Drive\n"
                    "class Rank:\n"
                    "    def __init__(self, drive: Drive):\n"
                    "        self.drive = drive\n"
                    "    def poke(self):\n"
                    "        self.drive.spin()\n"
                ),
            },
        )
        report = _classes(root)
        assert any(f.owner == "Drive" for f in report.unannotated)

    def test_payload_classes_exempt_from_hazards(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "mpi/ops.py": (
                    "class Segment:\n"
                    "    def __init__(self):\n"
                    "        self.parts = []\n"
                ),
                "disk/foo.py": (
                    "from repro.mpi.ops import Segment\n"
                    "class Drive:\n"
                    "    def chop(self, seg: Segment):\n"
                    "        seg.parts.append(1)\n"
                ),
            },
        )
        report = _classes(root)
        assert report.unannotated == []

    def test_partition_map_is_line_number_free(self, tmp_path):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.queue = []\n"
                    "    def push(self, x):\n"
                    "        self.queue.append(x)\n"
                )
            },
        )
        doc = partition_map(_classes(root))
        assert doc["version"] == 1
        assert doc["components"]["Drive"]["mutable_attrs"] == {
            "queue": "lp-private"
        }
        assert "line" not in json.dumps(doc)


# ---------------------------------------------------------------------------
# full-tree gates
# ---------------------------------------------------------------------------


def test_full_tree_has_no_unannotated_hazards():
    """Acceptance gate: every shared-hazard finding carries a
    ``# simown: shared[reason]`` annotation."""

    report = classify(analyze_paths([REPO / "src" / "repro"]))
    assert report.unannotated == [], render_text(report)


def test_golden_partition_map_matches_tree():
    """The committed docs/partition_map.json must match the tree.

    On intentional changes regenerate it with
    ``PYTHONPATH=src python -m repro ownership --out docs/partition_map.json``
    and review the diff -- a component moving domains or an attribute
    changing classification is exactly what this gate exists to surface.
    """

    committed = json.loads(GOLDEN.read_text())
    current = partition_map(classify(analyze_paths([REPO / "src" / "repro"])))
    assert current == committed, (
        "partition map drifted from docs/partition_map.json; regenerate "
        "with `make own-map` / `repro ownership --out docs/partition_map.json` "
        "and review the diff"
    )


def test_every_mutable_component_attr_is_classified():
    report = classify(analyze_paths([REPO / "src" / "repro"]))
    for name, info in report.graph.classes.items():
        if info.payload or info.domain not in ("server", "client", "meta"):
            continue
        classified = report.attr_class.get(name, {})
        for attr, ai in info.attrs.items():
            if ai.mutable:
                assert attr in classified, f"{name}.{attr} unclassified"


class TestCli:
    def test_ownership_check_passes_on_tree(self, capsys):
        assert cli_main(["ownership", str(REPO / "src" / "repro"), "--check"]) == 0
        assert "partition-clean" in capsys.readouterr().out

    def test_ownership_check_fails_on_unannotated_hazard(self, tmp_path, capsys):
        root = _fixture_tree(
            tmp_path,
            {
                "disk/foo.py": (
                    "class Drive:\n"
                    "    def __init__(self):\n"
                    "        self.mode = 0\n"
                ),
                "mpi/bar.py": (
                    "from repro.disk.foo import Drive\n"
                    "class Rank:\n"
                    "    def __init__(self, drive: Drive):\n"
                    "        self.drive = drive\n"
                    "    def poke(self):\n"
                    "        self.drive.mode = 1\n"
                ),
            },
        )
        assert ownership_main([str(root), "--check"]) == 1
        assert "unannotated" in capsys.readouterr().out

    def test_out_writes_stable_json(self, tmp_path, capsys):
        out = tmp_path / "map.json"
        tree = str(REPO / "src" / "repro")
        assert cli_main(["ownership", tree, "--out", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["version"] == 1
        assert "components" in doc

    def test_json_format(self, capsys):
        tree = str(REPO / "src" / "repro")
        assert cli_main(["ownership", tree, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "hazard_sites" in doc


# ---------------------------------------------------------------------------
# dynamic pass -- the runtime ownership checker
# ---------------------------------------------------------------------------


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_OWNERSHIP", "1")


class TestOwnershipChecker:
    def test_env_arms_checker_and_implies_sanitize(self, armed):
        from repro.sim.core import Simulator

        sim = Simulator()
        assert sim.sanitizer is not None
        assert sim.sanitizer.ownership is not None

    def test_off_by_default(self, monkeypatch):
        from repro.sim.core import Simulator

        monkeypatch.delenv("REPRO_SANITIZE_OWNERSHIP", raising=False)
        sim = Simulator(sanitize=True)
        assert sim.sanitizer is not None
        assert sim.sanitizer.ownership is None

    def test_same_lp_and_untagged_pass(self, armed):
        from repro.sim.core import Simulator

        sim = Simulator()
        own = sim.sanitizer.ownership
        box = object()
        own.tag(box, "server:ds0")

        def proc():
            own.check(box)  # untagged process: unrestricted
            yield sim.timeout(1)

        def server_proc():
            own.check(box)
            yield sim.timeout(1)

        sim.process(proc(), name="harness")
        p = sim.process(server_proc(), name="svc")
        own.adopt(p, "server:ds0")
        sim.run()
        assert own.n_checks == 2

    def test_cross_lp_without_message_raises(self, armed):
        from repro.devtools.sanitizer import OwnershipError
        from repro.sim.core import Simulator

        sim = Simulator()
        own = sim.sanitizer.ownership
        box = object()
        own.tag(box, "server:ds0")

        def rogue():
            yield sim.timeout(1)
            own.check(box)

        p = sim.process(rogue(), name="rogue")
        own.adopt(p, "client:node9")
        with pytest.raises(OwnershipError, match="cross-LP"):
            sim.run()

    def test_message_grant_allows_cross_lp(self, armed):
        from repro.sim.core import Simulator

        sim = Simulator()
        own = sim.sanitizer.ownership
        box = object()
        own.tag(box, "server:ds0")
        own.map_node(3, "server:ds0")

        def client():
            yield sim.timeout(1)
            own.on_transfer(9, 3)  # a message landed on the server's node
            own.check(box)

        p = sim.process(client(), name="client")
        own.adopt(p, "client:node9")
        sim.run()
        assert own.n_cross_lp == 1

    def test_child_inherits_creator_lp(self, armed):
        from repro.sim.core import Simulator

        sim = Simulator()
        own = sim.sanitizer.ownership
        seen = []

        def child():
            yield sim.timeout(1)

        def parent():
            c = sim.process(child(), name="child")
            seen.append(own.lp_of_process(c))
            yield sim.timeout(1)

        p = sim.process(parent(), name="parent")
        own.adopt(p, "server:ds2")
        sim.run()
        assert seen == ["server:ds2"]


class TestDynamicIntegration:
    def test_rogue_direct_handle_raises(self, armed):
        from repro.cluster import ClusterSpec, build_cluster
        from repro.devtools.sanitizer import OwnershipError
        from repro.pfs.dataserver import ServerRequest

        cluster = build_cluster(ClusterSpec(n_compute_nodes=2, n_data_servers=2))
        sim = cluster.sim
        own = sim.sanitizer.ownership
        ds = cluster.data_servers[0]

        def rogue():
            yield sim.timeout(0.001)
            # Direct poke: no Network.transfer preceded this access.
            ds.handle(
                ServerRequest(
                    file_name="x", object_offset=0, length=512, op="R", stream_id=0
                )
            )

        p = sim.process(rogue(), name="rogue")
        own.adopt(p, "client:node5")
        with pytest.raises(OwnershipError, match="cross-LP handle"):
            sim.run()

    def test_armed_smoke_cell_is_clean(self, armed):
        from repro import JobSpec, MpiIoTest, run_experiment
        from repro.cluster import paper_spec

        res = run_experiment(
            [
                JobSpec(
                    "m",
                    4,
                    MpiIoTest(file_size=2 * 1024 * 1024, op="R"),
                    strategy="dualpar",
                )
            ],
            cluster_spec=paper_spec(n_compute_nodes=4),
        )
        summary = res.cluster.sim.sanitizer.summary()["ownership"]
        # The run exercised real cross-LP traffic, all message-granted.
        assert summary["n_checks"] > 0
        assert summary["n_cross_lp"] > 0
        assert res.makespan_s > 0

    def test_armed_run_bit_identical_to_off(self):
        """Fig3-style smoke cell: armed dynamic checker perturbs nothing."""

        code = (
            "from repro import JobSpec, MpiIoTest, run_experiment\n"
            "from repro.cluster import paper_spec\n"
            "res = run_experiment(\n"
            "    [JobSpec('m', 4, MpiIoTest(file_size=2 * 1024 * 1024, op='R'),\n"
            "             strategy='dualpar')],\n"
            "    cluster_spec=paper_spec(n_compute_nodes=4),\n"
            ")\n"
            "print(repr(res.makespan_s))\n"
            "print(repr([(j.name, j.elapsed_s, j.bytes_read) for j in res.jobs]))\n"
        )
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        env.pop("REPRO_SANITIZE_OWNERSHIP", None)
        off = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        on = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**env, "REPRO_SANITIZE_OWNERSHIP": "1"},
        )
        assert off.returncode == 0, off.stderr
        assert on.returncode == 0, on.stderr
        assert off.stdout == on.stdout
