"""Unit tests for two-phase collective I/O internals."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.disk.drive import DiskParams
from repro.mpi.ops import Segment
from repro.mpi.runtime import MpiRuntime
from repro.mpiio.collective import CollectiveEngine, _clip
from repro.runner import JobSpec, run_experiment
from repro.workloads import MpiIoTest, Noncontig, SyntheticPattern


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


# ----------------------------------------------------------------- clip


def test_clip_inside():
    assert _clip(Segment(10, 20), 0, 100) == Segment(10, 20)


def test_clip_partial_overlap():
    assert _clip(Segment(10, 20), 15, 100) == Segment(15, 15)
    assert _clip(Segment(10, 20), 0, 15) == Segment(10, 5)


def test_clip_outside_returns_none():
    assert _clip(Segment(10, 20), 50, 100) is None
    assert _clip(Segment(50, 20), 0, 40) is None


def test_clip_zero_width_domain():
    assert _clip(Segment(10, 20), 15, 15) is None


# ----------------------------------------------------------- aggregators


def make_engine(nprocs=4, **kw):
    cluster = build_cluster(small_spec())
    rt = MpiRuntime(cluster)
    from repro.mpi.runtime import MpiJob

    job = MpiJob(rt, "c", nprocs, SyntheticPattern(), lambda r, j: CollectiveEngine(r, j, **kw))
    return job.engine


def test_default_aggregator_count_is_node_count():
    eng = make_engine(nprocs=4)
    assert eng.n_aggregators == 2  # min(2 nodes, 4 procs)


def test_aggregator_count_capped_by_procs():
    eng = make_engine(nprocs=1)
    assert eng.n_aggregators == 1


def test_aggregator_override():
    eng = make_engine(nprocs=4, n_aggregators=3)
    assert eng.n_aggregators == 3


def test_meta_cost_grows_with_procs():
    small = make_engine(nprocs=2)._meta_cost_s()
    big = make_engine(nprocs=64)._meta_cost_s()
    assert big > small


# ------------------------------------------------------------ behaviour


def test_collective_reads_exact_bytes_when_no_holes():
    """mpi-io-test tiles the file: aggregators read no extra data."""
    res = run_experiment(
        [JobSpec("c", 4, MpiIoTest(file_size=2 * 1024 * 1024), strategy="collective")],
        cluster_spec=small_spec(),
    )
    assert res.cluster.total_bytes_served() == 2 * 1024 * 1024


def test_collective_write_rmw_on_holey_pattern():
    """A pattern leaving holes inside the file domain forces read-modify-
    write: servers serve more bytes than the program wrote."""
    from repro.workloads import Hpio

    # 1 KB regions spaced 1 KB apart: 50% of every aggregator domain is
    # holes, bridged by the 64 KB hole threshold -> RMW.
    w = Hpio(region_count=256, region_bytes=1024, region_spacing=1024,
             op="W", collective=True)
    res = run_experiment(
        [JobSpec("c", 4, w, strategy="collective")],
        cluster_spec=small_spec(),
    )
    written = res.jobs[0].bytes_written
    assert written == 256 * 1024
    assert res.cluster.total_bytes_served() > written


def test_collective_rounds_respect_cb_buffer():
    """A domain bigger than cb_buffer is processed in multiple rounds;
    the data still arrives exactly once."""
    res = run_experiment(
        [JobSpec("c", 4, MpiIoTest(file_size=4 * 1024 * 1024), strategy="collective",
                 engine_kwargs=dict(cb_buffer_bytes=256 * 1024))],
        cluster_spec=small_spec(),
    )
    assert res.jobs[0].bytes_read == 4 * 1024 * 1024


def test_non_collective_ops_fall_through():
    res = run_experiment(
        [JobSpec("c", 4, SyntheticPattern(file_size=1024 * 1024),
                 strategy="collective",
                 engine_kwargs=dict(treat_all_collective=False))],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    assert eng.n_collective_calls == 0
    assert res.jobs[0].bytes_read == 1024 * 1024


def test_collective_exchange_bytes_counted():
    res = run_experiment(
        [JobSpec("c", 4, MpiIoTest(file_size=1024 * 1024), strategy="collective")],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    # Every byte read was redistributed from an aggregator to its rank.
    assert eng.exchange_bytes == 1024 * 1024
