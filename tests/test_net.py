"""Unit tests for the network model."""

import pytest

from repro.net import Network, NetworkParams
from repro.sim import Simulator


def test_transfer_time_is_overhead_latency_wire():
    sim = Simulator()
    params = NetworkParams(bandwidth_bytes_s=1e8, latency_s=1e-4, per_message_overhead_s=1e-5)
    net = Network(sim, 2, params)

    def proc():
        yield from net.transfer(0, 1, 1_000_000)

    sim.run_until_event(sim.process(proc()))
    assert sim.now == pytest.approx(1e-5 + 1e-4 + 0.01)


def test_loopback_costs_only_overhead():
    sim = Simulator()
    params = NetworkParams(per_message_overhead_s=5e-6)
    net = Network(sim, 2, params)

    def proc():
        yield from net.transfer(0, 0, 10**9)

    sim.run_until_event(sim.process(proc()))
    assert sim.now == pytest.approx(5e-6)


def test_fan_in_serialises_at_receiver():
    """N senders to one receiver take ~N x wire time, not 1 x."""
    sim = Simulator()
    params = NetworkParams(bandwidth_bytes_s=1e8, latency_s=0.0, per_message_overhead_s=0.0)
    net = Network(sim, 5, params)
    size = 10_000_000  # 0.1 s of wire each

    def sender(i):
        yield from net.transfer(i, 4, size)

    procs = [sim.process(sender(i)) for i in range(4)]
    for p in procs:
        sim.run_until_event(p)
    assert sim.now == pytest.approx(0.4, rel=0.01)


def test_distinct_receivers_proceed_in_parallel():
    sim = Simulator()
    params = NetworkParams(bandwidth_bytes_s=1e8, latency_s=0.0, per_message_overhead_s=0.0)
    net = Network(sim, 4, params)
    size = 10_000_000

    def sender(src, dst):
        yield from net.transfer(src, dst, size)

    procs = [sim.process(sender(0, 2)), sim.process(sender(1, 3))]
    for p in procs:
        sim.run_until_event(p)
    assert sim.now == pytest.approx(0.1, rel=0.01)


def test_sender_tx_serialises_own_messages():
    sim = Simulator()
    params = NetworkParams(bandwidth_bytes_s=1e8, latency_s=0.0, per_message_overhead_s=0.0)
    net = Network(sim, 3, params)
    size = 10_000_000

    def sender():
        a = sim.process(net_iter(0, 1))
        b = sim.process(net_iter(0, 2))
        yield a
        yield b

    def net_iter(src, dst):
        yield from net.transfer(src, dst, size)

    sim.run_until_event(sim.process(sender()))
    assert sim.now == pytest.approx(0.2, rel=0.01)


def test_byte_counters():
    sim = Simulator()
    net = Network(sim, 2)

    def proc():
        yield from net.transfer(0, 1, 12345)

    sim.run_until_event(sim.process(proc()))
    assert net.nics[0].bytes_sent == 12345
    assert net.nics[1].bytes_received == 12345
    assert net.messages_delivered == 1


def test_negative_bytes_rejected():
    sim = Simulator()
    net = Network(sim, 2)
    with pytest.raises(ValueError):
        list(net.transfer(0, 1, -1))


def test_bad_params_rejected():
    with pytest.raises(ValueError):
        NetworkParams(bandwidth_bytes_s=0)
    with pytest.raises(ValueError):
        NetworkParams(latency_s=-1)
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, 0)
