"""SimSanitizer: every check fires with attribution, and a sanitized run
of a correct simulation is observably identical to an unsanitized one."""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro import JobSpec, MpiIoTest, run_experiment
from repro.cluster import paper_spec
from repro.devtools.sanitizer import SanitizerError
from repro.sim import Resource, Simulator
from repro.sim.core import NORMAL


def drain(sim):
    return sim.run()


# ---------------------------------------------------------------------------
# enablement
# ---------------------------------------------------------------------------


def test_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert Simulator().sanitizer is None


def test_env_var_enables(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator().sanitizer is not None


def test_explicit_flag_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator(sanitize=False).sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert Simulator(sanitize=True).sanitizer is not None


# ---------------------------------------------------------------------------
# clean runs: the sanitizer observes without perturbing
# ---------------------------------------------------------------------------


def test_clean_run_passes_and_counts_events():
    sim = Simulator(sanitize=True)

    def body():
        yield sim.timeout(1.0)
        yield sim.timeout(0.5)

    sim.process(body())
    drain(sim)
    summary = sim.sanitizer.summary()
    assert summary["n_events"] >= 3
    assert summary["live_processes"] == 0
    assert summary["open_requests"] == 0


def test_timeout_pool_still_recycles_when_sanitizing():
    sim = Simulator(sanitize=True)

    def loop(n):
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(loop(50))
    drain(sim)
    assert sim._pool, "sanitizer must not defeat the Timeout free list"


def test_sanitized_experiment_is_bit_identical(monkeypatch):
    def measurements():
        res = run_experiment(
            [JobSpec("m", 8, MpiIoTest(file_size=4 * 1024 * 1024, op="R"))],
            cluster_spec=paper_spec(n_compute_nodes=8, trace_disks=True),
        )
        jobs = [asdict(j) for j in res.jobs]
        traces = [
            [(r.time, r.lbn, r.nsectors) for r in t.records] if t is not None else None
            for t in res.cluster.traces
        ]
        return jobs, traces

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = measurements()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert measurements() == plain


# ---------------------------------------------------------------------------
# process lifecycle
# ---------------------------------------------------------------------------


def test_leaked_process_raises_with_name():
    sim = Simulator(sanitize=True)

    def stuck():
        yield sim.event()  # never fires

    sim.process(stuck(), name="stuck-proc")
    with pytest.raises(SanitizerError, match="'stuck-proc'"):
        drain(sim)


def test_daemon_process_is_not_a_leak():
    sim = Simulator(sanitize=True)

    def service():
        while True:
            yield sim.store_get  # pragma: no cover - never reached

    def sampler():
        yield sim.event()

    sim.process(sampler(), name="svc", daemon=True)
    drain(sim)  # daemon still alive at drain: fine


def test_completed_processes_are_forgotten():
    sim = Simulator(sanitize=True)

    def quick():
        yield sim.timeout(0.1)

    for _ in range(10):
        sim.process(quick())
    drain(sim)
    assert sim.sanitizer.summary()["live_processes"] == 0


# ---------------------------------------------------------------------------
# resource ownership
# ---------------------------------------------------------------------------


def test_leaked_resource_attributed_to_owner():
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1)

    def holder():
        yield res.request()
        yield sim.timeout(1.0)  # exits without releasing

    sim.process(holder(), name="holder")
    with pytest.raises(SanitizerError) as exc:
        drain(sim)
    msg = str(exc.value)
    assert "never released" in msg
    assert "'holder'" in msg
    assert "Resource(capacity=1)" in msg


def test_double_release_attributed():
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1)

    def dbl():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    sim.process(dbl(), name="dbl-proc")
    with pytest.raises(SanitizerError) as exc:
        drain(sim)
    msg = str(exc.value)
    assert "double release" in msg
    assert msg.count("'dbl-proc'") >= 2  # acquirer and releaser named


def test_handoff_release_is_clean():
    # Granting a queued request from another process's release is normal.
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag, hold_s):
        req = res.request()
        yield req
        yield sim.timeout(hold_s)
        res.release(req)
        order.append(tag)

    sim.process(worker("a", 1.0), name="a")
    sim.process(worker("b", 0.5), name="b")
    drain(sim)
    assert order == ["a", "b"]
    assert sim.sanitizer.summary()["open_requests"] == 0


# ---------------------------------------------------------------------------
# dispatch-time invariants (injected violations)
# ---------------------------------------------------------------------------


def test_negative_timestamp_raises():
    sim = Simulator(sanitize=True)
    sim._enqueue(sim.event(), delay=-5.0, priority=NORMAL)
    with pytest.raises(SanitizerError, match="negative event timestamp"):
        drain(sim)


def test_backwards_time_raises():
    sim = Simulator(sanitize=True)

    def late():
        yield sim.timeout(5.0)

    sim.process(late())
    drain(sim)
    # Inject a stale entry dated before the clock: schedule discipline broken.
    sim._queue.push(2.0, NORMAL, sim.event())
    with pytest.raises(SanitizerError, match="time went backwards"):
        drain(sim)


def test_stale_tie_sequence_raises():
    # The dispatch drivers feed on_dispatch a monotone counter, so this
    # invariant can only be violated by a buggy driver; validate the
    # check itself by calling the hook directly.
    sim = Simulator(sanitize=True)
    san = sim.sanitizer
    san.on_dispatch(1.0, NORMAL, 500, sim.event())
    # An entry in the same (time, priority) band carrying a sequence number
    # that is not fresher than the last dispatched one -- the signature of a
    # recycled event re-enqueued with its old key.
    with pytest.raises(SanitizerError, match="tie order violated"):
        san.on_dispatch(1.0, NORMAL, 499, sim.event())


def test_double_dispatch_raises():
    sim = Simulator(sanitize=True)
    ev = sim.event()
    ev.succeed()
    sim.step()  # processed normally
    sim._queue.push(sim.now, NORMAL, ev)  # alias
    with pytest.raises(SanitizerError, match="double dispatch"):
        drain(sim)


def test_tie_counting():
    sim = Simulator(sanitize=True)

    def a():
        yield sim.timeout(1.0)

    def b():
        yield sim.timeout(1.0)

    sim.process(a())
    sim.process(b())
    drain(sim)
    assert sim.sanitizer.summary()["n_ties"] >= 1


# ---------------------------------------------------------------------------
# fault-injection lifecycle checks
# ---------------------------------------------------------------------------


def test_component_double_register_raises():
    sim = Simulator(sanitize=True)
    san = sim.sanitizer
    san.on_component_registered("ds0")
    with pytest.raises(SanitizerError, match="registered twice"):
        san.on_component_registered("ds0")


def test_component_unregister_unknown_raises():
    sim = Simulator(sanitize=True)
    with pytest.raises(SanitizerError, match="not registered"):
        sim.sanitizer.on_component_unregistered("ds9")


def test_component_lifecycle_round_trip():
    sim = Simulator(sanitize=True)
    san = sim.sanitizer
    san.on_component_registered("ds0")
    san.on_component_unregistered("ds0")
    san.on_component_registered("ds0")  # legitimate recovery
    assert san.summary()["registered_components"] == 1


def test_crashed_server_dispatch_raises():
    class FakeServer:
        crashed = True
        server_index = 3

    sim = Simulator(sanitize=True)
    with pytest.raises(SanitizerError, match="crashed data server ds3"):
        sim.sanitizer.on_server_dispatch(FakeServer())


def test_live_server_dispatch_is_clean():
    class FakeServer:
        crashed = False
        server_index = 0

    sim = Simulator(sanitize=True)
    sim.sanitizer.on_server_dispatch(FakeServer())  # no raise


def test_sanitized_dataserver_recover_without_crash_raises(monkeypatch):
    from repro.cluster import ClusterSpec, build_cluster
    from repro.disk.drive import DiskParams

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    cluster = build_cluster(
        ClusterSpec(
            n_compute_nodes=2,
            n_data_servers=2,
            disk=DiskParams(capacity_bytes=10**9),
        )
    )
    ds = cluster.data_servers[0]
    ds.enable_fault_tracking()
    with pytest.raises(SanitizerError, match="registered twice"):
        ds.recover()


def test_sanitized_faulted_run_is_clean(monkeypatch):
    """A crash/recover schedule under the sanitizer raises nothing: the
    interrupted server processes are absorbed and the crashed server never
    dispatches block work."""
    from repro.faults import FaultEvent, FaultPlan

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    res = run_experiment(
        [
            JobSpec(
                "job",
                4,
                MpiIoTest(file_size=8 * 1024 * 1024, op="R"),
                strategy="dualpar-forced",
            )
        ],
        cluster_spec=paper_spec(n_compute_nodes=2, n_data_servers=3),
        limit_s=1e4,
        fault_plan=FaultPlan(
            seed=2,
            events=(
                FaultEvent(kind="server_crash", at_s=0.02, until_s=0.3, target=1),
            ),
        ),
    )
    assert res.makespan_s < 1e4
