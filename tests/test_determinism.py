"""Determinism regression: identical results across repeats and with the
Timeout pool disabled.

The PR-1 kernel fast path recycles Timeout events through a free list;
recycling must be invisible to simulation code, so the same seeded
experiment must produce bit-identical measurements (JobResult fields and
the raw blktrace ``(time, lbn, size)`` sequences) with the pool on, with
the pool off (``REPRO_NO_EVENT_POOL=1``), and across repeated runs.
"""

from __future__ import annotations

from dataclasses import asdict

from repro import JobSpec, MpiIoTest, Noncontig, run_experiment
from repro.cluster import paper_spec
from repro.sim.core import Simulator


def _measurements(strategy: str):
    res = run_experiment(
        [
            JobSpec(
                "m",
                8,
                MpiIoTest(file_size=8 * 1024 * 1024, op="R"),
                strategy=strategy,
            )
        ],
        cluster_spec=paper_spec(n_compute_nodes=8, trace_disks=True),
    )
    jobs = [asdict(j) for j in res.jobs]
    traces = [
        [(r.time, r.lbn, r.nsectors) for r in t.records] if t is not None else None
        for t in res.cluster.traces
    ]
    assert any(t for t in traces), "expected at least one non-empty blktrace"
    return jobs, traces


def test_repeat_runs_identical():
    for strategy in ("vanilla", "dualpar-forced"):
        assert _measurements(strategy) == _measurements(strategy)


def test_pool_escape_hatch_disables_pool(monkeypatch):
    assert Simulator()._pool is not None
    monkeypatch.setenv("REPRO_NO_EVENT_POOL", "1")
    assert Simulator()._pool is None


def test_pooled_vs_unpooled_identical(monkeypatch):
    pooled = _measurements("dualpar-forced")
    monkeypatch.setenv("REPRO_NO_EVENT_POOL", "1")
    unpooled = _measurements("dualpar-forced")
    assert pooled == unpooled


def test_pooled_vs_unpooled_identical_multi_job(monkeypatch):
    def run():
        res = run_experiment(
            [
                JobSpec("a", 8, MpiIoTest(file_name="a.dat", file_size=4 * 1024 * 1024)),
                JobSpec(
                    "b",
                    8,
                    Noncontig(file_name="b.dat", elmtcount=64, n_rows=512),
                    strategy="dualpar-forced",
                    delay_s=0.1,
                ),
            ],
            cluster_spec=paper_spec(n_compute_nodes=8, trace_disks=True),
        )
        return [asdict(j) for j in res.jobs], [
            [(r.time, r.lbn, r.nsectors) for r in t.records] if t is not None else None
            for t in res.cluster.traces
        ]

    pooled = run()
    monkeypatch.setenv("REPRO_NO_EVENT_POOL", "1")
    assert run() == pooled


def test_timeout_pool_actually_recycles():
    sim = Simulator()

    def loop(n):
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(loop(50))
    sim.run()
    assert sim._pool, "pool should hold recycled Timeout objects after a run"
