"""Unit tests for sim resources and stores."""

import pytest

from repro.sim import FilterStore, PriorityResource, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------- Resource


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def user(tag, hold):
        req = res.request()
        yield req
        log.append(("acq", tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)
        log.append(("rel", tag, sim.now))

    for tag, hold in (("a", 5), ("b", 5), ("c", 5)):
        sim.process(user(tag, hold))
    sim.run()
    # a and b acquire at t=0; c must wait until t=5.
    assert ("acq", "a", 0) in log and ("acq", "b", 0) in log
    assert ("acq", "c", 5) in log


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(1)
        res.release(req)

    for tag in "abcd":
        sim.process(user(tag))
    sim.run()
    assert order == list("abcd")


def test_resource_count():
    sim = Simulator()
    res = Resource(sim, capacity=3)

    def user():
        req = res.request()
        yield req
        yield sim.timeout(10)
        res.release(req)

    sim.process(user())
    sim.process(user())
    sim.run(until=1)
    assert res.count == 2


def test_resource_release_queued_request_cancels():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()  # granted immediately
    waiting = res.request()  # queued
    res.release(waiting)  # cancel the queued one
    assert len(res.queue) == 0
    res.release(holder)
    assert res.count == 0


def test_resource_release_unknown_raises():
    sim = Simulator()
    r1 = Resource(sim, capacity=1)
    r2 = Resource(sim, capacity=1)
    req = r1.request()
    with pytest.raises(SimulationError):
        r2.release(req)


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_context_manager():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(1)

    sim.process(user("x"))
    sim.process(user("y"))
    sim.run()
    assert order == ["x", "y"]


# ------------------------------------------------------- PriorityResource


def test_priority_resource_orders_waiters():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield sim.timeout(10)
        res.release(req)

    def user(tag, prio, start):
        yield sim.timeout(start)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    sim.process(user("low", 5, 1))
    sim.process(user("high", 1, 2))
    sim.process(user("mid", 3, 3))
    sim.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5)
        res.release(req)

    def user(tag):
        req = res.request(priority=1)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    for tag in "abc":
        sim.process(user(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_resource_cancelled_request_never_granted():
    # Cancellation is a lazy tombstone: the entry stays in the wait heap
    # until it surfaces at dequeue.  It must be skipped there, the slot
    # must go to the next live waiter, and a second release of the
    # cancelled request must be rejected.
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield sim.timeout(10)
        res.release(req)

    def winner():
        yield sim.timeout(1)
        req = res.request(priority=5)
        yield req
        order.append("winner")
        res.release(req)

    def quitter():
        yield sim.timeout(2)
        req = res.request(priority=1)  # most urgent waiter...
        yield sim.timeout(3)
        res.release(req)  # ...retracts before ever being granted
        with pytest.raises(SimulationError, match="unknown request"):
            res.release(req)
        assert not req.processed
        yield sim.timeout(100)
        assert not req.processed  # tombstone was skipped, never granted

    sim.process(holder())
    sim.process(winner())
    sim.process(quitter())
    sim.run()
    assert order == ["winner"]


def test_priority_resource_mass_cancel_compacts_heap():
    # Heavy cancel churn triggers the tombstone purge; survivors are
    # still served in (priority, arrival) order.
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request(priority=-1)
        yield req
        yield sim.timeout(10)
        res.release(req)

    def survivor(tag, prio):
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())

    def churn():
        yield sim.timeout(1)
        doomed = [res.request(priority=0) for _ in range(300)]
        for req in doomed:
            res.release(req)  # cancel every one while still queued
        assert len(res._pq) < 300  # compaction actually ran

    sim.process(churn())
    sim.process(survivor("hi", 1))
    sim.process(survivor("lo", 2))
    sim.run()
    assert order == ["hi", "lo"]


# ---------------------------------------------------------------- Store


def test_store_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(4)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(4, "x")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(5)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0) in log
    assert ("got", "a", 5) in log
    assert ("put-b", 5) in log


def test_store_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ------------------------------------------------------------ FilterStore


def test_filter_store_matches_predicate():
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer():
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer():
        yield store.put(1)
        yield store.put(3)
        yield sim.timeout(1)
        yield store.put(4)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_filter_store_default_predicate():
    sim = Simulator()
    store = FilterStore(sim)
    store.put("only")
    got = []

    def consumer():
        got.append((yield store.get()))

    sim.process(consumer())
    sim.run()
    assert got == ["only"]


def test_filter_store_multiple_waiters_distinct_predicates():
    sim = Simulator()
    store = FilterStore(sim)
    got = {}

    def consumer(name, pred):
        got[name] = yield store.get(pred)

    sim.process(consumer("even", lambda x: x % 2 == 0))
    sim.process(consumer("odd", lambda x: x % 2 == 1))

    def producer():
        yield sim.timeout(1)
        yield store.put(7)
        yield store.put(8)

    sim.process(producer())
    sim.run()
    assert got == {"even": 8, "odd": 7}
