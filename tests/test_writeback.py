"""Tests for the server-side write-back buffer and flusher."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.disk.drive import DiskParams
from repro.pfs.dataserver import ServerRequest
from repro.pfs.writeback import WritebackBuffer


def wb_cluster(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=1,
        disk=DiskParams(capacity_bytes=2 * 10**9),
        placement="packed",
        server_writeback_interval_s=0.5,
    )
    defaults.update(kw)
    return build_cluster(ClusterSpec(**defaults))


def wr(file_name, offset, length, stream=1):
    return ServerRequest(
        file_name=file_name, object_offset=offset, length=length, op="W",
        stream_id=stream,
    )


def test_write_completes_before_disk():
    cluster = wb_cluster()
    cluster.fs.create("f.dat", 1024 * 1024)
    ds = cluster.data_servers[0]
    done = ds.handle(wr("f.dat", 0, 256 * 1024))
    cluster.sim.run_until_event(done)
    # Completion was near-instant (RAM copy), disk untouched so far.
    assert cluster.sim.now < 0.01
    assert ds.device.stats.total_bytes == 0
    assert ds.writeback.dirty_bytes == 256 * 1024


def test_flusher_writes_within_interval():
    cluster = wb_cluster(server_writeback_interval_s=0.25)
    cluster.fs.create("f.dat", 1024 * 1024)
    ds = cluster.data_servers[0]
    done = ds.handle(wr("f.dat", 0, 256 * 1024))
    cluster.sim.run_until_event(done)
    cluster.sim.run(until=1.0)
    assert ds.device.stats.total_bytes >= 256 * 1024
    assert ds.writeback.n_flushes >= 1
    assert ds.writeback.dirty_bytes == 0


def test_flusher_merges_scattered_writes():
    """Many tiny adjacent writes flush as few large disk requests."""
    cluster = wb_cluster(server_writeback_interval_s=0.25)
    cluster.fs.create("f.dat", 4 * 1024 * 1024)
    ds = cluster.data_servers[0]
    for i in range(64):
        done = ds.handle(wr("f.dat", i * 4096, 4096))
        cluster.sim.run_until_event(done)
    cluster.sim.run(until=1.0)
    # 64 x 4 KB merged into one dirty range -> one 256 KB block submission.
    assert ds.device.stats.n_requests <= 4
    assert ds.writeback.flushed_bytes == 64 * 4096


def test_read_after_write_served_from_ram():
    cluster = wb_cluster()
    cluster.fs.create("f.dat", 1024 * 1024)
    ds = cluster.data_servers[0]
    done = ds.handle(wr("f.dat", 0, 64 * 1024))
    cluster.sim.run_until_event(done)
    done = ds.handle(
        ServerRequest(file_name="f.dat", object_offset=0, length=64 * 1024,
                      op="R", stream_id=2)
    )
    cluster.sim.run_until_event(done)
    assert ds.device.stats.total_bytes == 0  # never touched the disk


def test_memory_pressure_forces_early_flush():
    cluster = wb_cluster(server_writeback_interval_s=60.0)
    cluster.fs.create("f.dat", 64 * 1024 * 1024)
    ds = cluster.data_servers[0]
    ds.writeback.max_dirty_bytes = 1024 * 1024
    for i in range(5):
        done = ds.handle(wr("f.dat", i * 256 * 1024, 256 * 1024))
        cluster.sim.run_until_event(done)
    cluster.sim.run(until=1.0)  # far below the 60 s interval
    assert ds.writeback.n_flushes >= 1


def test_writeback_dirty_range_merging():
    cluster = wb_cluster()
    ds = cluster.data_servers[0]
    wb = ds.writeback
    wb.add("f", 0, 100)
    wb.add("f", 100, 100)
    wb.add("f", 50, 100)
    assert wb._dirty["f"] == [(0, 200)]
    assert wb.dirty_bytes == 200


def test_writeback_covers():
    cluster = wb_cluster()
    wb = cluster.data_servers[0].writeback
    wb.add("f", 100, 100)
    assert wb.covers("f", 120, 50)
    assert not wb.covers("f", 90, 50)
    assert not wb.covers("g", 120, 50)
    assert wb.covers("f", 0, 0)


def test_writeback_validation():
    cluster = wb_cluster()
    with pytest.raises(ValueError):
        WritebackBuffer(cluster.sim, cluster.data_servers[0], flush_interval_s=0)
    with pytest.raises(ValueError):
        WritebackBuffer(cluster.sim, cluster.data_servers[0], max_dirty_bytes=0)


def test_vanilla_writes_faster_with_writeback():
    """End to end: the kernel flusher batches vanilla's scattered writes."""
    from repro.runner import JobSpec, run_experiment
    from repro.workloads import MpiIoTest

    def run(wb_interval):
        spec = ClusterSpec(
            n_compute_nodes=4,
            n_data_servers=3,
            disk=DiskParams(capacity_bytes=2 * 10**9),
            server_writeback_interval_s=wb_interval,
        )
        res = run_experiment(
            [JobSpec("w", 8, MpiIoTest(file_size=8 * 1024 * 1024, op="W"),
                     strategy="vanilla")],
            cluster_spec=spec,
        )
        return res.jobs[0].elapsed_s

    assert run(1.0) < run(None)
