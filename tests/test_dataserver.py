"""Tests for data-server internals: page cache integration, readahead,
list I/O, I/O-context folding."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.disk.drive import DiskParams
from repro.pfs.dataserver import ServerRequest


def small_cluster(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=1,
        disk=DiskParams(capacity_bytes=2 * 10**9),
        placement="packed",
    )
    defaults.update(kw)
    return build_cluster(ClusterSpec(**defaults))


def serve(cluster, server, req):
    done = server.handle(req)
    cluster.sim.run_until_event(done)


def rd(file_name, offset, length, stream=1):
    return ServerRequest(
        file_name=file_name, object_offset=offset, length=length, op="R",
        stream_id=stream,
    )


def test_repeated_read_hits_page_cache():
    cluster = small_cluster()
    cluster.fs.create("f.dat", 1024 * 1024)
    ds = cluster.data_servers[0]
    serve(cluster, ds, rd("f.dat", 0, 64 * 1024))
    misses = ds.page_cache.n_misses
    serve(cluster, ds, rd("f.dat", 0, 64 * 1024))
    assert ds.page_cache.n_misses == misses  # second read is a pure hit
    assert ds.page_cache.n_hits >= 1


def test_sequential_reads_trigger_readahead():
    cluster = small_cluster()
    cluster.fs.create("f.dat", 4 * 1024 * 1024)
    ds = cluster.data_servers[0]
    # Stream sequentially with one context.
    for i in range(24):
        serve(cluster, ds, rd("f.dat", i * 16 * 1024, 16 * 1024, stream=5))
    cluster.sim.run(until=cluster.sim.now + 0.1)  # let async readahead land
    # The disk read more than was requested (the readahead extensions)...
    read_sectors = ds.device.stats.total_bytes
    assert read_sectors > 24 * 16 * 1024
    # ...and most requests never touched the disk.
    assert ds.page_cache.n_hits > ds.page_cache.n_misses


def test_write_invalidates_page_cache():
    cluster = small_cluster()
    cluster.fs.create("f.dat", 1024 * 1024)
    ds = cluster.data_servers[0]
    serve(cluster, ds, rd("f.dat", 0, 64 * 1024))
    done = ds.handle(
        ServerRequest(file_name="f.dat", object_offset=0, length=64 * 1024,
                      op="W", stream_id=1)
    )
    cluster.sim.run_until_event(done)
    assert not ds.page_cache.contains("f.dat", 0, 64 * 1024)


def test_writes_reach_disk():
    cluster = small_cluster()
    cluster.fs.create("f.dat", 1024 * 1024)
    ds = cluster.data_servers[0]
    done = ds.handle(
        ServerRequest(file_name="f.dat", object_offset=0, length=256 * 1024,
                      op="W", stream_id=1)
    )
    cluster.sim.run_until_event(done)
    assert ds.device.stats.total_bytes >= 256 * 1024
    assert ds.bytes_served == 256 * 1024


def test_handle_list_submits_batch():
    cluster = small_cluster()
    cluster.fs.create("f.dat", 4 * 1024 * 1024)
    ds = cluster.data_servers[0]
    reqs = [rd("f.dat", i * 256 * 1024, 64 * 1024) for i in range(8)]
    done = ds.handle_list(reqs)
    cluster.sim.run_until_event(done)
    assert ds.n_requests == 8
    assert ds.bytes_served == 8 * 64 * 1024


def test_io_context_folding():
    cluster = small_cluster()
    ds = cluster.data_servers[0]
    assert ds._io_context(1) == 1
    assert ds._io_context(5) == 1  # 5 % 4
    assert ds._io_context(4) == 0


def test_large_request_split_at_max_io():
    cluster = small_cluster()
    cluster.fs.create("big.dat", 4 * 1024 * 1024)
    ds = cluster.data_servers[0]
    serve(cluster, ds, rd("big.dat", 0, 2 * 1024 * 1024))
    # 2 MB at a 512 KB cap -> at least 4 block submissions.
    assert ds.block_layer.stats.n_submitted >= 4


def test_concurrent_overlapping_reads_single_disk_fetch():
    """Two simultaneous reads of the same range: one disk fetch, the
    second waits on the in-flight read (page-lock semantics)."""
    cluster = small_cluster()
    cluster.fs.create("f.dat", 1024 * 1024)
    ds = cluster.data_servers[0]
    d1 = ds.handle(rd("f.dat", 0, 64 * 1024, stream=1))
    d2 = ds.handle(rd("f.dat", 0, 64 * 1024, stream=2))
    cluster.sim.run_until_event(d1)
    cluster.sim.run_until_event(d2)
    # Only one miss was taken for the shared range.
    assert ds.page_cache.n_misses == 1
    assert ds.page_cache.n_hits == 1


def test_locality_daemon_reports_none_when_idle():
    cluster = small_cluster()
    cluster.sim.run(until=3.0)
    assert cluster.locality_daemons[0].recent_seek_dist() is None
