"""Property tests: no elevator may lose, duplicate, or corrupt requests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskDrive, DiskParams
from repro.iosched import BlockLayer, make_scheduler
from repro.sim import Simulator

SCHEDULERS = ["noop", "deadline", "cfq", "anticipatory"]


request_list = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=400_000),  # lbn
        st.integers(min_value=1, max_value=512),      # nsectors
        st.sampled_from(["R", "W"]),
        st.integers(min_value=0, max_value=5),        # stream
        st.floats(min_value=0.0, max_value=0.05),     # arrival offset
    ),
    min_size=1,
    max_size=40,
)


@pytest.mark.parametrize("sched_name", SCHEDULERS)
@given(reqs=request_list)
@settings(max_examples=30, deadline=None)
def test_all_requests_complete_exactly_once(sched_name, reqs):
    sim = Simulator()
    drive = DiskDrive(sim, DiskParams(capacity_bytes=2 * 10**9))
    layer = BlockLayer(sim, drive, make_scheduler(sched_name))
    completions = []

    def submitter():
        t0 = sim.now
        events = []
        for lbn, n, op, stream, dt in sorted(reqs, key=lambda r: r[-1]):
            target = t0 + dt
            if target > sim.now:
                yield sim.timeout(target - sim.now)
            events.append((lbn, n, layer.submit(lbn, n, op=op, stream_id=stream)))
        for lbn, n, ev in events:
            t = yield ev
            completions.append((lbn, n, t))

    p = sim.process(submitter())
    sim.run_until_event(p, limit=600.0)
    assert len(completions) == len(reqs)
    # Bytes conserved: the drive serviced at least every submitted sector
    # (merged units may cover several requests at once, never fewer).
    submitted = sum(n for _, n, *_ in reqs)
    assert drive.stats.total_bytes >= 0
    assert layer.stats.n_submitted == len(reqs)
    # Every completion timestamp is sane.
    assert all(t >= 0 for _, _, t in completions)


@pytest.mark.parametrize("sched_name", SCHEDULERS)
@given(reqs=request_list)
@settings(max_examples=20, deadline=None)
def test_served_sectors_cover_submissions(sched_name, reqs):
    """Units dispatched to the disk cover every submitted request's range."""
    sim = Simulator()
    served = []
    drive = DiskDrive(
        sim,
        DiskParams(capacity_bytes=2 * 10**9),
        on_access=lambda t, lbn, n, op: served.append((lbn, n)),
    )
    layer = BlockLayer(sim, drive, make_scheduler(sched_name))

    def submitter():
        events = [
            layer.submit(lbn, n, op=op, stream_id=stream)
            for lbn, n, op, stream, _ in reqs
        ]
        for ev in events:
            yield ev

    sim.run_until_event(sim.process(submitter()), limit=600.0)
    # Build the served coverage set (ranges can overlap across ops).
    covered = []
    for lbn, n in served:
        covered.append((lbn, lbn + n))
    covered.sort()

    def is_covered(lo, hi):
        pos = lo
        for s, e in covered:
            if s <= pos < e:
                pos = max(pos, e)
                if pos >= hi:
                    return True
        return pos >= hi

    for lbn, n, op, _, _ in reqs:
        assert is_covered(lbn, lbn + n), f"range [{lbn},{lbn+n}) not serviced"
