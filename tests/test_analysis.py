"""Tests for the analysis/reporting module."""

import pytest

from repro.analysis import analyze_cache, analyze_disks, analyze_network, summarize
from repro.cluster import ClusterSpec
from repro.disk.drive import DiskParams
from repro.runner import JobSpec, run_experiment
from repro.workloads import SyntheticPattern


def run(strategy="vanilla"):
    return run_experiment(
        [JobSpec("a", 4, SyntheticPattern(file_size=2 * 1024 * 1024),
                 strategy=strategy)],
        cluster_spec=ClusterSpec(
            n_compute_nodes=2,
            n_data_servers=3,
            disk=DiskParams(capacity_bytes=2 * 10**9),
        ),
    )


def test_disk_reports_cover_all_servers():
    res = run()
    reports = analyze_disks(res)
    assert len(reports) == 3
    assert sum(r.bytes_served for r in reports) >= 2 * 1024 * 1024
    for r in reports:
        assert 0 <= r.utilization <= 1
        assert r.busy_s >= 0
        assert r.effective_mb_s >= 0


def test_disk_report_efficiency():
    res = run()
    r = analyze_disks(res)[0]
    assert 0 <= r.efficiency <= 2  # bounded near the media rate


def test_cache_report_none_without_cache_traffic():
    res = run("vanilla")
    assert analyze_cache(res) is None


def test_cache_report_for_dualpar():
    res = run("dualpar-forced")
    report = analyze_cache(res)
    assert report is not None
    assert report.n_gets > 0
    assert 0 <= report.hit_ratio <= 1


def test_network_report():
    res = run()
    net = analyze_network(res)
    assert net["messages"] > 0
    assert net["total_mb_moved"] > 0
    assert 0 <= net["busiest_node"]


def test_summarize_renders_everything():
    res = run("dualpar-forced")
    text = summarize(res)
    assert "jobs" in text
    assert "data servers" in text
    assert "global cache" in text
    assert "DualPar[a]" in text
    assert "network" in text


def test_summarize_vanilla_omits_cache():
    res = run("vanilla")
    text = summarize(res)
    assert "global cache" not in text
    assert "DualPar[" not in text
