"""Safety-governor suite: budgets, breaker, watchdog, governor, wiring.

The contract under test (docs/degradation.md):

- `MemoryBudget` enforces per-job/per-node caps: speculative charges are
  refused at the cap, dirty charges never are, releases balance;
- `CircuitBreaker` trips on consecutive slow batches, bypasses while
  open, and recovers through a single half-open probe;
- `StallWatchdog` reports a synthetic circular-resource-wait deadlock
  within one evaluation window, naming the blocked processes and the
  resources they hold -- and never fires on healthy time-driven runs;
- `JobGovernor` walks `normal -> probing -> datadriven -> degraded`
  with escalating cooldowns and overrules `force_mode`;
- a prefetch storm against tiny caps keeps peak accounted bytes at or
  under the cap and surfaces shed/backpressure counters in `guard.*`;
- guard-off runs are bit-identical (all hooks default to None), a
  disabled `GuardConfig` fingerprints like no guard at all, and the
  `guard` field keys the bench cache.
"""

from dataclasses import asdict, replace

import pytest

from repro.cluster import paper_spec
from repro.core.config import DualParConfig
from repro.guard import (
    CircuitBreaker,
    GuardConfig,
    MemoryBudget,
    SafetyGovernor,
    StallWatchdog,
)
from repro.obs import Observability
from repro.runner import ExperimentSpec, JobSpec, run_experiment
from repro.runner.parallel import experiment_fingerprint
from repro.sim import Resource, Simulator
from repro.workloads import DependentReads, MpiIoTest


# ----------------------------------------------------------- MemoryBudget


class TestMemoryBudget:
    def _budget(self, job_cap=1000, node_cap=800):
        cfg = GuardConfig(job_cap_bytes=job_cap, node_cap_bytes=node_cap)
        return MemoryBudget(cfg)

    def test_charge_release_balance(self):
        b = self._budget()
        b.charge(300, job_id=1, node=0)
        b.charge(200, job_id=1, node=1)
        assert b.job_used(1) == 500
        assert b.node_used(0) == 300
        assert b.total_bytes == 500
        b.release(300, job_id=1, node=0)
        assert b.job_used(1) == 200
        assert b.node_used(0) == 0
        assert b.peak_bytes == 500
        assert b.job_peak(1) == 500

    def test_try_charge_refuses_at_job_cap(self):
        b = self._budget(job_cap=1000)
        assert b.try_charge(900, job_id=1)
        assert not b.try_charge(200, job_id=1)
        assert b.job_used(1) == 900  # refused charge not applied
        assert b.n_shed_store == 1

    def test_try_charge_refuses_at_node_cap(self):
        b = self._budget(node_cap=800)
        assert b.try_charge(700, job_id=1, node=3)
        assert not b.try_charge(200, job_id=2, node=3)
        assert b.node_used(3) == 700
        assert b.n_shed_store == 1

    def test_dirty_charge_is_never_refused(self):
        b = self._budget(job_cap=100, node_cap=100)
        b.charge(500, job_id=1, node=0)  # committed writes must land
        assert b.job_used(1) == 500
        assert b.node_over(0)
        assert b.job_headroom(1) == 0

    def test_transfer_node_moves_accounting(self):
        b = self._budget()
        b.charge(400, job_id=1, node=0)
        b.transfer_node(400, 0, 2)
        assert b.node_used(0) == 0
        assert b.node_used(2) == 400
        assert b.total_bytes == 400  # job/total unchanged

    def test_summary_counters(self):
        b = self._budget()
        b.record_shed_plan(3)
        b.record_blocked()
        b.record_paced(2)
        s = b.summary()
        assert s["n_shed_plan"] == 3
        assert s["n_blocked"] == 1
        assert s["n_paced"] == 2


# --------------------------------------------------------- CircuitBreaker


class TestCircuitBreaker:
    def _breaker(self, sim, **kw):
        cfg = GuardConfig(
            breaker_failures=3, breaker_latency_s=0.5, breaker_reset_s=2.0, **kw
        )
        return CircuitBreaker(sim, cfg)

    def test_trips_after_consecutive_slow_batches(self):
        sim = Simulator()
        b = self._breaker(sim)
        b.record(1.0)
        b.record(1.0)
        assert b.state == "closed"  # two of three
        b.record(0.1)  # fast batch resets the streak
        b.record(1.0)
        b.record(1.0)
        b.record(1.0)
        assert b.state == "open"
        assert b.n_trips == 1
        assert not b.allow()

    def test_half_open_probe_closes_on_fast(self):
        sim = Simulator()
        b = self._breaker(sim)
        for _ in range(3):
            b.record(1.0)
        assert not b.allow()

        def later():
            yield sim.timeout(2.5)
            assert b.allow()  # first probe admitted
            assert not b.allow()  # only one in flight
            b.record(0.1)
            assert b.state == "closed"
            assert b.allow()

        sim.process(later(), name="probe")
        sim.run()

    def test_half_open_probe_reopens_on_slow(self):
        sim = Simulator()
        b = self._breaker(sim)
        for _ in range(3):
            b.record(1.0)

        def later():
            yield sim.timeout(2.5)
            assert b.allow()
            b.record(9.0)
            assert b.state == "open"
            assert b.n_trips == 2
            assert not b.allow()

        sim.process(later(), name="probe")
        sim.run()

    def test_external_failure_counts(self):
        sim = Simulator()
        b = self._breaker(sim)
        for _ in range(3):
            b.record_failure()
        assert b.state == "open"


# ---------------------------------------------------------- StallWatchdog


class TestStallWatchdog:
    def test_detects_circular_resource_deadlock(self):
        sim = Simulator()
        wd = StallWatchdog(sim, interval_s=1.0, stall_window_s=2.0)
        r1, r2 = Resource(sim), Resource(sim)

        def grab(first, second):
            yield first.request()
            yield sim.timeout(0.1)
            yield second.request()

        sim.process(grab(r1, r2), name="p-a")
        sim.process(grab(r2, r1), name="p-b")
        sim.run(until=10.0)

        assert wd.deadlocks, "circular wait must report as deadlock"
        report = wd.deadlocks[0]
        # Stall starts at ~0.1s; window 2s; ticks every 1s -- the report
        # must land within one evaluation window of the threshold.
        assert report.time <= 0.1 + wd.stall_window_s + wd.interval_s
        names = {b.name for b in report.blocked}
        assert names == {"p-a", "p-b"}
        table = report.render()
        assert "deadlock" in table
        assert "p-a" in table and "p-b" in table
        assert "Resource#" in table  # names both the wait and the holds
        held = {h for b in report.blocked for h in b.held}
        assert len(held) == 2  # each proc holds the resource the other wants

    def test_no_false_positive_on_time_driven_run(self):
        sim = Simulator()
        wd = StallWatchdog(sim, interval_s=1.0, stall_window_s=2.0)

        def ticker():
            for _ in range(8):
                yield sim.timeout(1.0)

        sim.process(ticker(), name="ticker")
        sim.run(until=10.0)
        assert wd.reports == []

    def test_partial_stall_reports_stall_not_deadlock(self):
        sim = Simulator()
        wd = StallWatchdog(sim, interval_s=1.0, stall_window_s=2.0)
        never = sim.event()

        def stuck():
            yield never

        def ticker():
            for _ in range(8):
                yield sim.timeout(1.0)

        sim.process(stuck(), name="stuck")
        sim.process(ticker(), name="ticker")
        sim.run(until=7.5)
        kinds = {r.kind for r in wd.reports}
        assert kinds == {"stall"}
        assert wd.deadlocks == []

    def test_report_dedup_across_ticks(self):
        sim = Simulator()
        wd = StallWatchdog(sim, interval_s=1.0, stall_window_s=2.0)
        never = sim.event()

        def stuck():
            yield never

        def ticker():
            for _ in range(20):
                yield sim.timeout(1.0)

        sim.process(stuck(), name="stuck")
        sim.process(ticker(), name="ticker")
        sim.run(until=20.5)
        assert len(wd.reports) == 1  # same signature never re-reports

    def test_second_watchdog_rejected(self):
        sim = Simulator()
        StallWatchdog(sim)
        with pytest.raises(ValueError):
            StallWatchdog(sim)


# ------------------------------------------------------------ JobGovernor


class _StubJob:
    def __init__(self):
        self.name = "stub"
        self.job_id = 1
        self.mode = "normal"
        self.procs = []


class _StubEngine:
    def __init__(self, config=None):
        self.job = _StubJob()
        self.config = config or DualParConfig()
        self.n_cache_hits = 0
        self.n_cache_misses = 0
        self.mode_calls = []

    def set_mode(self, mode):
        self.job.mode = mode
        self.mode_calls.append(mode)


def _at(sim, t, fn):
    def g():
        yield sim.timeout(t)
        fn()

    sim.process(g(), name=f"at-{t}")


class TestJobGovernor:
    def _governor(self, sim, dualpar_config=None, guard_config=None):
        guard = SafetyGovernor(sim, guard_config or GuardConfig(watchdog=False))
        engine = _StubEngine(dualpar_config)
        return guard, engine, guard.governor_for(engine)

    def test_enter_on_thresholds_then_promote(self):
        sim = Simulator()
        guard, engine, gov = self._governor(sim)
        assert gov.state == "normal"
        gov.evaluate(0.5, 1.0)  # below both enter thresholds
        assert gov.state == "normal"
        gov.evaluate(0.9, 5.0)
        assert gov.state == "probing"
        assert engine.job.mode == "datadriven"
        _at(sim, 1.5, lambda: gov.evaluate(0.9, 5.0))
        sim.run()
        assert gov.state == "datadriven"

    def test_forced_job_starts_probing_and_can_degrade(self):
        sim = Simulator()
        cfg = DualParConfig(force_mode="datadriven")
        guard, engine, _ = self._governor(sim, cfg)
        engine.job.mode = "datadriven"  # what dualpar-forced does at launch
        gov = guard.governor_for(_StubEngine(cfg))  # fresh governor sees it
        engine2 = gov.engine
        engine2.job.mode = "normal"
        # Construct against a forced engine already in datadriven mode:
        forced = _StubEngine(cfg)
        forced.job.job_id = 2
        forced.job.mode = "datadriven"
        gov2 = guard.governor_for(forced)
        assert gov2.state == "probing"
        gov2.report_misprefetch(0.9)  # way over misprefetch_threshold
        assert gov2.state == "degraded"
        assert forced.job.mode == "normal"  # guard outranks the pin

    def test_low_hit_rate_degrades(self):
        sim = Simulator()
        guard, engine, gov = self._governor(sim)
        gov.evaluate(0.9, 5.0)
        assert gov.state == "probing"
        engine.n_cache_misses += 20  # all misses -> hit rate EWMA 0.0
        gov.evaluate(0.9, 5.0)
        assert gov.state == "degraded"
        assert guard.n_degrades == 1

    def test_cooldown_escalates_and_expires(self):
        sim = Simulator()
        gcfg = GuardConfig(watchdog=False, cooldown_s=2.0, cooldown_factor=2.0)
        guard, engine, gov = self._governor(
            sim, DualParConfig(force_mode="datadriven"), gcfg
        )
        timeline = []

        def step(t):
            gov.evaluate(0.9, 5.0)
            timeline.append((t, gov.state))

        gov.degrade("test")
        assert gov.cooldown_until == pytest.approx(2.0)
        _at(sim, 1.0, lambda: step(1.0))  # still cooling
        _at(sim, 2.5, lambda: step(2.5))  # cooldown over -> normal
        _at(sim, 3.0, lambda: step(3.0))  # forced -> probing again
        _at(sim, 3.5, lambda: gov.degrade("test2"))
        sim.run()
        assert timeline[0] == (1.0, "degraded")
        assert timeline[1] == (2.5, "normal")
        assert timeline[2] == (3.0, "probing")
        # Second degrade doubles the cooldown: 2.0 * 2**1 from t=3.5.
        assert gov.cooldown_until == pytest.approx(3.5 + 4.0)
        states = [s for _, _, s, _ in guard.transitions]
        assert states.count("degraded") == 2

    def test_io_ratio_exit_for_unforced_jobs(self):
        sim = Simulator()
        guard, engine, gov = self._governor(sim)
        gov.evaluate(0.9, 5.0)
        _at(sim, 1.5, lambda: gov.evaluate(0.9, 5.0))  # promote
        _at(sim, 2.0, lambda: gov.evaluate(0.1, 5.0))  # below io_ratio_exit
        sim.run()
        assert gov.state == "normal"
        assert engine.job.mode == "normal"


# -------------------------------------------------- end-to-end enforcement


def _small_spec():
    return paper_spec(n_compute_nodes=4, n_data_servers=4)


def test_prefetch_storm_respects_caps_and_sheds():
    cap = 512 * 1024  # far below what a 32 MB read-ahead would want
    guard_cfg = GuardConfig(
        job_cap_bytes=cap, node_cap_bytes=cap, watchdog=False
    )
    observe = Observability()
    res = run_experiment(
        [
            JobSpec(
                "storm",
                8,
                MpiIoTest(file_size=32 << 20, op="R"),
                strategy="dualpar-forced",
            )
        ],
        cluster_spec=_small_spec(),
        dualpar_config=DualParConfig(quota_bytes=4 * 1024 * 1024),
        observe=observe,
        guard=guard_cfg,
    )
    budget = res.guard.budget
    job_id = res.mpi_jobs[0].job_id
    assert budget.job_peak(job_id) <= cap
    summary = budget.summary()
    sheds = (
        summary["n_shed_store"] + summary["n_shed_plan"] + summary["n_blocked"]
    )
    assert sheds > 0, "a storm against tiny caps must trigger backpressure"
    counters = res.metrics["counters"]
    assert "guard.budget.shed_plan" in counters or "guard.budget.shed_store" in counters
    assert res.metrics["gauges"]["guard.budget.peak_bytes"] <= cap


def test_guard_off_is_deterministic_and_unaffected():
    def cell(guard):
        res = run_experiment(
            [JobSpec("j", 4, MpiIoTest(file_size=8 << 20), strategy="dualpar")],
            cluster_spec=_small_spec(),
            guard=guard,
        )
        return [asdict(j) for j in res.jobs], res.makespan_s

    base = cell(None)
    assert cell(None) == base  # bit-identical repeats
    assert cell(GuardConfig(enabled=False)) == base  # disabled == absent


def test_guarded_run_attaches_everywhere():
    res = run_experiment(
        [JobSpec("j", 4, MpiIoTest(file_size=8 << 20), strategy="dualpar-forced")],
        cluster_spec=_small_spec(),
        guard=GuardConfig(),
    )
    guard = res.guard
    assert guard is not None
    assert res.dualpar.guard is guard
    assert res.runtime.global_cache.budget is guard.budget
    for server in res.cluster.data_servers:
        if server.writeback is not None:
            assert server.writeback.budget is guard.budget
    assert res.runtime.sim.watchdog is guard.watchdog
    assert guard.watchdog.n_ticks > 0 or res.makespan_s < guard.config.watchdog_interval_s
    assert guard.summary()["breaker"]["state"] == "closed"


def test_misprediction_forced_job_degrades():
    res = run_experiment(
        [
            JobSpec(
                "adversary",
                4,
                DependentReads(file_size=16 << 20),
                strategy="dualpar-forced",
            )
        ],
        cluster_spec=_small_spec(),
        dualpar_config=DualParConfig(quota_bytes=64 * 1024),
        guard=GuardConfig(watchdog=False),
    )
    assert res.guard.state_of("adversary") == "degraded"
    reasons = [r for _, _, s, r in res.guard.transitions if s == "degraded"]
    assert reasons, "expected a logged degrade transition"


# ------------------------------------------------------------ bench cache


def _spec(guard):
    return ExperimentSpec(
        specs=(JobSpec("j", 4, MpiIoTest(file_size=8 << 20), strategy="dualpar"),),
        cluster_spec=_small_spec(),
        guard=guard,
    )


def test_guard_keys_the_bench_cache():
    none_fp = experiment_fingerprint(_spec(None))
    on_fp = experiment_fingerprint(_spec(GuardConfig()))
    tweaked_fp = experiment_fingerprint(
        _spec(replace(GuardConfig(), job_cap_bytes=1024))
    )
    assert none_fp != on_fp
    assert on_fp != tweaked_fp


def test_disabled_guard_fingerprints_like_no_guard():
    assert experiment_fingerprint(
        _spec(GuardConfig(enabled=False))
    ) == experiment_fingerprint(_spec(None))
