"""Coverage for remaining small surfaces: async client I/O, metadata
errors, prefetch windowing, cluster helpers."""

import pytest

from repro.cluster import ClusterSpec, build_cluster, paper_spec
from repro.disk.drive import DiskParams
from repro.runner import JobSpec, run_experiment
from repro.workloads import SyntheticPattern


def small_cluster(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
    )
    defaults.update(kw)
    return build_cluster(ClusterSpec(**defaults))


def test_paper_spec_defaults():
    spec = paper_spec()
    assert spec.n_compute_nodes == 32
    assert spec.n_data_servers == 9
    assert spec.io_scheduler == "cfq"
    assert spec.stripe_unit == 64 * 1024


def test_paper_spec_overrides():
    spec = paper_spec(n_compute_nodes=8, io_scheduler="deadline")
    assert spec.n_compute_nodes == 8
    assert spec.io_scheduler == "deadline"


def test_client_io_async_overlaps_correctly():
    """Two in-flight async PFS reads both complete with correct totals.

    Note the timing outcome: the CONCURRENT pair is *slower* than issuing
    the same reads back to back, because the two distant regions
    interleave at the disks and the head ping-pongs -- the interference
    phenomenon the whole paper is about, in miniature."""
    cluster = small_cluster()
    sim = cluster.sim
    f = cluster.fs.create("p.dat", 8 * 1024 * 1024)
    client = cluster.clients[0]

    p1 = client.io_async(f, 0, 1024 * 1024, "R", stream_id=1)
    p2 = client.io_async(f, 4 * 1024 * 1024, 1024 * 1024, "R", stream_id=2)
    sim.run_until_event(p1)
    sim.run_until_event(p2)
    t_parallel = sim.now
    assert client.bytes_read == 2 * 1024 * 1024

    cluster2 = small_cluster()
    sim2 = cluster2.sim
    f2 = cluster2.fs.create("p.dat", 8 * 1024 * 1024)
    client2 = cluster2.clients[0]

    def serial():
        yield from client2.io(f2, 0, 1024 * 1024, "R", stream_id=1)
        yield from client2.io(f2, 4 * 1024 * 1024, 1024 * 1024, "R", stream_id=2)

    sim2.run_until_event(sim2.process(serial()))
    t_serial = sim2.now
    assert client2.bytes_read == 2 * 1024 * 1024
    # Concurrency across distant regions costs, not helps (interference).
    assert t_parallel >= t_serial


def test_client_rejects_bad_op():
    cluster = small_cluster()
    f = cluster.fs.create("x.dat", 64 * 1024)
    with pytest.raises(ValueError):
        list(cluster.clients[0].io(f, 0, 1024, "Z", stream_id=0))


def test_metadata_open_missing_file_raises():
    cluster = small_cluster()
    sim = cluster.sim

    def proc():
        yield from cluster.metadata_server.rpc_open(0, "ghost.dat")

    with pytest.raises(FileNotFoundError):
        sim.run_until_event(sim.process(proc()))


def test_cluster_client_for_node():
    cluster = small_cluster()
    assert cluster.client_for_node(1) is cluster.clients[1]


def test_prefetch_window_bounds_runahead():
    """A tiny speculation window forces the Strategy-2 engine to throttle
    instead of racing through the whole stream."""
    res = run_experiment(
        [JobSpec("p", 2, SyntheticPattern(file_size=4 * 1024 * 1024,
                                          request_bytes=64 * 1024),
                 strategy="prefetch",
                 engine_kwargs=dict(window_bytes=128 * 1024))],
        cluster_spec=ClusterSpec(
            n_compute_nodes=2,
            n_data_servers=3,
            disk=DiskParams(capacity_bytes=2 * 10**9),
        ),
    )
    eng = res.mpi_jobs[0].engine
    assert eng.n_prefetches > 0
    assert res.jobs[0].bytes_read == 4 * 1024 * 1024


def test_spec_rejects_bad_raid():
    with pytest.raises(ValueError):
        ClusterSpec(raid_members=0)


def test_spec_rejects_empty_cluster():
    with pytest.raises(ValueError):
        ClusterSpec(n_compute_nodes=0)
