"""Service-level coverage: coordinator, worker pool, end-to-end dedup.

The harness the tentpole ships with (ISSUE 9): an in-process coordinator
fixture (`start_in_thread` on a temp catalog), concurrent-submission
dedup tests, crash-a-worker-mid-job requeue tests, and the bit-identity
check that a catalogued result equals a direct ``run_experiment`` of the
same spec -- including faulted + guarded specs, whose fault log and
guard transitions must match a direct run bit for bit.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.faults import FaultEvent, FaultPlan
from repro.guard import GuardConfig
from repro.runner.parallel import _run_spec
from repro.service import (
    ClusterSubmission,
    ExperimentSubmission,
    JobSubmission,
    ResultCatalog,
    ServiceClient,
    ServiceError,
    WorkerPool,
    canonical_json,
    result_to_dict,
    start_in_thread,
    wait_until_ready,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _submission(label="svc", size_mb=2, tenant="default", **over):
    defaults = dict(
        jobs=(JobSubmission("j0", "mpi-io-test", nprocs=4, size_mb=size_mb),),
        cluster=ClusterSubmission(compute_nodes=4, data_servers=3),
        label=label,
        tenant=tenant,
    )
    defaults.update(over)
    return ExperimentSubmission(**defaults)


def _faulted_guarded_submission():
    """A spec that exercises faults + guard through the whole stack."""
    return _submission(
        label="chaos",
        jobs=(
            JobSubmission(
                "j0", "mpi-io-test", nprocs=4, size_mb=2, strategy="dualpar-forced"
            ),
        ),
        quota_kb=256,
        fault_plan=FaultPlan(
            seed=11,
            events=(
                FaultEvent(
                    kind="disk_failslow",
                    at_s=0.05,
                    until_s=0.6,
                    transfer_factor=3.0,
                ),
            ),
        ),
        guard=GuardConfig(),
    )


@pytest.fixture
def service(tmp_path):
    """An in-process coordinator on its own thread, temp catalog, chaos
    flags enabled -- the fixture every service-level test builds on."""
    handle = start_in_thread(
        catalog_dir=tmp_path / "catalog", workers=2, allow_chaos=True
    )
    client = ServiceClient(handle.host, handle.port)
    try:
        yield handle, client, tmp_path / "catalog"
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# basics: protocol, provenance, catalog commit
# ---------------------------------------------------------------------------


def test_ping_and_status_shape(service):
    _handle, client, _catalog_dir = service
    assert client.ping() == {"ok": True, "schema_version": 1}
    status = client.status()
    assert status["in_flight"] == 0
    assert status["catalog_entries"] == 0
    assert not status["draining"]
    assert {w["alive"] for w in status["pool"]["workers"]} == {True}
    assert len(status["pool"]["workers"]) == 2


def test_submit_runs_and_catalogs_with_full_provenance(service):
    handle, client, catalog_dir = service
    sub = _submission()
    response = client.submit(sub, wait=True)
    assert response["ok"] and response["status"] == "done"
    assert response["submit_status"] == "queued"
    record = response["record"]
    assert record["fingerprint"] == sub.fingerprint()
    assert record["submission"] == sub.to_dict()
    prov = record["provenance"]
    for field in (
        "repro_version",
        "tenant",
        "worker_id",
        "attempts",
        "wall_time_s",
        "submitted_unix",
        "committed_unix",
        "coordinator_host",
        "coordinator_pid",
    ):
        assert field in prov, field
    assert prov["attempts"] == 1
    assert prov["coordinator_pid"] == os.getpid()
    # The record is on disk, whole, and identical to the wire copy.
    on_disk = ResultCatalog(catalog_dir).get(sub.fingerprint())
    assert on_disk is not None
    assert on_disk.to_dict() == record


def test_catalog_result_bit_identical_to_direct_run(service):
    _handle, client, catalog_dir = service
    sub = _submission()
    client.submit(sub, wait=True)
    record = ResultCatalog(catalog_dir).get(sub.fingerprint())
    direct = result_to_dict(_run_spec(sub.to_experiment_spec()))
    assert canonical_json(record.result) == canonical_json(direct)


def test_faulted_guarded_submission_matches_direct_run_bit_for_bit(service):
    """Chaos satellite: a spec with a fault plan + guard submitted
    through the coordinator catalogs the same fault log and guard
    transitions a direct run produces -- bit for bit."""
    _handle, client, catalog_dir = service
    sub = _faulted_guarded_submission()
    response = client.submit(sub, wait=True)
    assert response["status"] == "done"
    record = ResultCatalog(catalog_dir).get(sub.fingerprint())
    direct = result_to_dict(_run_spec(sub.to_experiment_spec()))
    assert record.result["fault_log"] == direct["fault_log"]
    assert record.result["fault_log"]  # the plan actually fired
    assert record.result["guard_transitions"] == direct["guard_transitions"]
    assert record.result["guard_summary"] == direct["guard_summary"]
    assert canonical_json(record.result) == canonical_json(direct)
    # The provenance keeps the plan + guard verbatim for the audit trail.
    assert record.submission["fault_plan"] == sub.to_dict()["fault_plan"]
    assert record.submission["guard"] is not None


def test_observed_submission_catalogs_metrics_snapshot(service):
    _handle, client, catalog_dir = service
    sub = _submission(label="observed", observe=True)
    response = client.submit(sub, wait=True)
    assert response["status"] == "done"
    record = ResultCatalog(catalog_dir).get(sub.fingerprint())
    assert record.result["metrics"]  # the obs snapshot rode along
    direct = result_to_dict(_run_spec(sub.to_experiment_spec()))
    assert canonical_json(record.result) == canonical_json(direct)


def test_cached_hit_after_completion(service):
    handle, client, _catalog_dir = service
    sub = _submission()
    first = client.submit(sub, wait=True)
    again = client.submit(sub, wait=True)
    assert again["status"] == "cached"
    assert again["record"] == first["record"]
    counters = client.status()["counters"]
    assert counters["queued"] == 1
    assert counters["cached"] == 1
    assert counters["completed"] == 1


# ---------------------------------------------------------------------------
# concurrent dedup
# ---------------------------------------------------------------------------


def test_concurrent_duplicate_submissions_run_exactly_once(service):
    handle, client, catalog_dir = service
    sub = _submission(label="dup")
    n_clients = 8
    responses: list[dict] = [None] * n_clients
    barrier = threading.Barrier(n_clients)

    def submit(i: int) -> None:
        barrier.wait()
        responses[i] = ServiceClient(handle.host, handle.port).submit(
            sub, wait=True
        )

    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert all(r is not None and r["ok"] for r in responses)
    fingerprints = {r["fingerprint"] for r in responses}
    assert fingerprints == {sub.fingerprint()}
    # Every waiter got the same committed record.
    records = {canonical_json(r["record"]) for r in responses if "record" in r}
    assert len(records) == 1
    counters = client.status()["counters"]
    assert counters["queued"] == 1  # exactly one run
    assert counters["joined"] + counters["cached"] == n_clients - 1
    assert len(ResultCatalog(catalog_dir)) == 1


def test_eight_specs_two_duplicates_yield_six_records(service):
    handle, client, catalog_dir = service
    # Labels don't key the fingerprint, so size is what makes each
    # submission a distinct cell.
    unique = [_submission(label=f"u{i}", size_mb=2 + i) for i in range(6)]
    batch = unique + [unique[0], unique[3]]  # 8 submissions, 2 duplicates
    responses: list[dict] = [None] * len(batch)
    barrier = threading.Barrier(len(batch))

    def submit(i: int) -> None:
        barrier.wait()
        responses[i] = ServiceClient(handle.host, handle.port).submit(
            batch[i], wait=True
        )

    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(len(batch))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(300)
    assert all(r is not None and r["ok"] for r in responses)
    counters = client.status()["counters"]
    assert counters["queued"] == 6
    assert counters["joined"] + counters["cached"] == 2
    assert len(ResultCatalog(catalog_dir)) == 6
    assert len({s.fingerprint() for s in unique}) == 6


# ---------------------------------------------------------------------------
# worker crash, requeue, failure reporting
# ---------------------------------------------------------------------------


def test_worker_crash_mid_job_requeues_and_completes(service):
    _handle, client, catalog_dir = service
    sub = _submission(label="crashy", size_mb=3)
    response = client.submit(sub, wait=True, chaos_crash_worker=True)
    assert response["ok"] and response["status"] == "done"
    assert response["record"]["provenance"]["attempts"] == 2
    pool = client.status()["pool"]
    assert pool["requeues"] >= 1
    assert pool["respawns"] >= 1
    # The requeued run still matches a direct run bit for bit.
    record = ResultCatalog(catalog_dir).get(sub.fingerprint())
    direct = result_to_dict(_run_spec(sub.to_experiment_spec()))
    assert canonical_json(record.result) == canonical_json(direct)


def test_worker_crash_gives_up_after_max_attempts(tmp_path):
    handle = start_in_thread(
        catalog_dir=tmp_path,
        workers=1,
        allow_chaos=True,
        max_attempts=1,
    )
    try:
        client = ServiceClient(handle.host, handle.port)
        sub = _submission(label="doomed")
        response = client.submit(sub, wait=True, chaos_crash_worker=True)
        assert not response["ok"]
        assert response["status"] == "failed"
        assert "died" in response["error"]
        assert client.status()["counters"]["failed"] == 1
        # The failure is queryable afterwards; nothing was catalogued.
        result = client.result(sub.fingerprint())
        assert result["status"] == "failed"
        assert len(ResultCatalog(tmp_path)) == 0
    finally:
        handle.stop()


def test_chaos_flag_requires_allow_chaos(tmp_path):
    handle = start_in_thread(catalog_dir=tmp_path, workers=1)
    try:
        client = ServiceClient(handle.host, handle.port)
        response = client.submit(
            _submission(), wait=True, chaos_crash_worker=True
        )
        assert not response["ok"] and response["reason"] == "invalid"
    finally:
        handle.stop()


def test_pool_reports_child_traceback_on_failing_payload():
    """A payload that raises inside a worker comes back as a 'failed'
    event carrying the child's full traceback text, not a bare error."""
    events: list[tuple] = []
    done = threading.Event()

    def deliver(event: tuple) -> None:
        events.append(event)
        done.set()

    pool = WorkerPool(1, deliver=deliver)
    pool.start()
    try:
        # Bypasses the coordinator's schema gate on purpose: the pool
        # must survive (and attribute) garbage payloads on its own.
        pool.submit("job-x", {"schema_version": 1, "jobs": []})
        assert done.wait(60)
    finally:
        pool.stop()
    kind, job_id, tb_text, worker_id, attempts = events[0]
    assert kind == "failed"
    assert job_id == "job-x"
    assert "Traceback (most recent call last)" in tb_text
    assert "at least one job" in tb_text
    assert attempts == 1


# ---------------------------------------------------------------------------
# quotas and backpressure
# ---------------------------------------------------------------------------


def test_tenant_quota_rejection_is_per_tenant(tmp_path):
    handle = start_in_thread(
        catalog_dir=tmp_path,
        workers=1,
        tenant_cap_bytes=4 * 1024 * 1024,
    )
    try:
        client = ServiceClient(handle.host, handle.port)
        big = _submission(label="big", size_mb=8, tenant="acme")
        response = client.submit(big)
        assert not response["ok"]
        assert response["reason"] == "quota"
        assert response["tenant"] == "acme"
        # Another tenant's small submission is unaffected.
        ok = client.submit(
            _submission(label="small", size_mb=2, tenant="zephyr"), wait=True
        )
        assert ok["ok"] and ok["status"] == "done"
        counters = client.status()["counters"]
        assert counters["rejected_quota"] == 1
    finally:
        handle.stop()


def test_global_backpressure_rejection(tmp_path):
    handle = start_in_thread(
        catalog_dir=tmp_path,
        workers=1,
        tenant_cap_bytes=64 * 1024 * 1024,
        queue_cap_bytes=5 * 1024 * 1024,
    )
    try:
        client = ServiceClient(handle.host, handle.port)
        first = client.submit(_submission(label="a", size_mb=4, tenant="t1"))
        assert first["ok"]
        # Within t2's tenant cap but over the coordinator-wide cap while
        # the first submission still holds its charge.
        second = client.submit(_submission(label="b", size_mb=4, tenant="t2"))
        if not second["ok"]:
            assert second["reason"] == "backpressure"
            assert client.status()["counters"]["rejected_backpressure"] == 1
        else:
            # The first job can drain before the second arrives; then the
            # charge was already released and admission is correct too.
            assert client.status()["counters"]["rejected_backpressure"] == 0
    finally:
        handle.stop()


def test_max_jobs_ceiling(tmp_path):
    handle = start_in_thread(catalog_dir=tmp_path, workers=1, max_jobs=0)
    try:
        client = ServiceClient(handle.host, handle.port)
        response = client.submit(_submission())
        assert not response["ok"] and response["reason"] == "backpressure"
    finally:
        handle.stop()


def test_invalid_submissions_rejected_over_the_wire(service):
    _handle, client, _catalog_dir = service
    no_version = _submission().to_dict()
    del no_version["schema_version"]
    unknown_field = _submission().to_dict()
    unknown_field["surprise"] = 1
    for bad in (no_version, unknown_field, {"schema_version": 99, "jobs": []}):
        response = client.submit(bad)
        assert not response["ok"]
        assert response["reason"] == "invalid"
    assert client.status()["counters"]["rejected_invalid"] == 3
    # Non-JSON and non-object requests get an error reply, not a hangup.
    assert not client.request({"op": "submit"})["ok"]
    assert not client.request({"op": "frobnicate"})["ok"]


# ---------------------------------------------------------------------------
# drain and shutdown
# ---------------------------------------------------------------------------


def test_drain_finishes_in_flight_jobs_without_loss(tmp_path):
    handle = start_in_thread(catalog_dir=tmp_path, workers=2)
    client = ServiceClient(handle.host, handle.port)
    subs = [_submission(label=f"d{i}", size_mb=2 + i) for i in range(3)]
    for sub in subs:
        assert client.submit(sub)["ok"]  # fire and forget
    client.shutdown(drain=True)
    handle._thread.join(300)
    assert not handle._thread.is_alive()
    catalog = ResultCatalog(tmp_path)
    assert len(catalog) == 3
    for sub in subs:
        record = catalog.get(sub.fingerprint())
        assert record is not None
        direct = result_to_dict(_run_spec(sub.to_experiment_spec()))
        assert canonical_json(record.result) == canonical_json(direct)


def test_draining_coordinator_rejects_new_submissions(tmp_path):
    handle = start_in_thread(catalog_dir=tmp_path, workers=1)
    client = ServiceClient(handle.host, handle.port)
    # Park one job so the drain has something to wait on, then race a
    # new submission against the closing server.
    assert client.submit(_submission(label="parked", size_mb=4))["ok"]
    client.shutdown(drain=True)
    try:
        late = client.submit(_submission(label="late"))
        assert not late["ok"]
        assert late.get("reason") in ("draining", None)
    except ServiceError:
        pass  # listener already closed: equally correct rejection
    handle._thread.join(300)
    assert len(ResultCatalog(tmp_path)) == 1


# ---------------------------------------------------------------------------
# the real thing: `repro serve` subprocess, SIGTERM drain, CLI clients
# ---------------------------------------------------------------------------


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def test_serve_subprocess_sigterm_drains_cleanly(tmp_path):
    catalog_dir = tmp_path / "catalog"
    port_file = tmp_path / "port"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            "2",
            "--catalog",
            str(catalog_dir),
            "--port-file",
            str(port_file),
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, proc.stdout.read()
            time.sleep(0.05)
        port = int(port_file.read_text().strip())
        client = wait_until_ready("127.0.0.1", port)

        subs = [_submission(label=f"s{i}", size_mb=2 + i) for i in range(2)]
        for sub in subs:
            assert client.submit(sub)["ok"]  # queued, not waited on
        # SIGTERM lands while jobs are in flight: the coordinator must
        # drain them into the catalog, then exit 0.
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, out
        assert "drained:" in out
        catalog = ResultCatalog(catalog_dir)
        assert len(catalog) == 2
        for sub in subs:
            record = catalog.get(sub.fingerprint())
            assert record is not None
            direct = result_to_dict(_run_spec(sub.to_experiment_spec()))
            assert canonical_json(record.result) == canonical_json(direct)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)


def test_cli_submit_status_catalog_roundtrip(service, tmp_path):
    handle, client, catalog_dir = service
    spec_path = tmp_path / "spec.json"
    sub = _submission(label="cli")
    spec_path.write_text(sub.to_json(), encoding="utf-8")

    def run_cli(*argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )

    submitted = run_cli(
        "submit", str(spec_path), "--port", str(handle.port), "--wait"
    )
    assert submitted.returncode == 0, submitted.stderr
    response = json.loads(submitted.stdout)
    assert response["status"] == "done"
    assert response["fingerprint"] == sub.fingerprint()

    status = run_cli("status", "--port", str(handle.port))
    assert status.returncode == 0, status.stderr
    assert json.loads(status.stdout)["catalog_entries"] == 1

    listed = run_cli("catalog", "list", "--catalog", str(catalog_dir))
    assert listed.returncode == 0, listed.stderr
    assert sub.fingerprint()[:16] in listed.stdout
    assert "cli" in listed.stdout

    shown = run_cli(
        "catalog",
        "show",
        sub.fingerprint()[:12],  # unique-prefix lookup
        "--catalog",
        str(catalog_dir),
    )
    assert shown.returncode == 0, shown.stderr
    record = json.loads(shown.stdout)
    assert record["fingerprint"] == sub.fingerprint()
    assert record["submission"] == sub.to_dict()

    missing = run_cli("catalog", "show", "feed", "--catalog", str(catalog_dir))
    assert missing.returncode == 1
