"""Chaos conformance suite: end-to-end faulted runs and property tests.

The contract under test (docs/fault_injection.md):

- every fault kind can ride a full experiment without hanging the
  simulator or crashing the run;
- a fixed (seed, plan) pair is bit-identical across repeats;
- a run with no plan -- or an empty plan -- is bit-identical to a run of
  the pre-fault code path (the injector is a complete no-op);
- DualPar still beats the no-coordination baseline under a single-server
  fail-slow;
- committed writes are exactly-once under arbitrary crash schedules, and
  RAID-1 reads never touch an out-of-sync mirror, for any interleaving
  of failures and repairs (Hypothesis).
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, build_cluster, paper_spec
from repro.core.config import DualParConfig
from repro.disk.drive import DiskParams
from repro.faults import FaultEvent, FaultInjector, FaultPlan, RetryPolicy
from repro.guard import GuardConfig
from repro.runner import ExperimentSpec, JobSpec, run_experiment, run_experiments
from repro.runner.parallel import experiment_fingerprint
from repro.workloads import Demo, DependentReads, MpiIoTest


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
        placement="packed",
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


def _run(plan, strategy="dualpar-forced", mb=32, trace=False, raid=False):
    spec = paper_spec(n_compute_nodes=4, n_data_servers=4, trace_disks=trace)
    if raid:
        import dataclasses

        spec = dataclasses.replace(spec, raid_members=2, raid_level=1)
    return run_experiment(
        [
            JobSpec("job", 8, MpiIoTest(file_size=mb << 20, op="R"),
                    strategy=strategy)
        ],
        cluster_spec=spec,
        limit_s=1e4,
        fault_plan=plan,
    )


def _fingerprint(res):
    jobs = [asdict(j) for j in res.jobs]
    traces = [
        [(r.time, r.lbn, r.nsectors) for r in t.records] if t is not None else None
        for t in res.cluster.traces
    ]
    return jobs, res.makespan_s, traces


# ------------------------------------------------------------- smoke cells


SMOKE_PLANS = {
    "disk_failslow": FaultPlan(
        seed=1,
        events=(
            FaultEvent(kind="disk_failslow", at_s=0.05, until_s=2.0, target=1,
                       transfer_factor=6.0, extra_seek_s=0.002),
        ),
    ),
    "server_crash": FaultPlan(
        seed=2,
        events=(FaultEvent(kind="server_crash", at_s=0.05, until_s=0.5, target=2),),
    ),
    "net_degrade": FaultPlan(
        seed=3,
        events=(
            FaultEvent(kind="net_degrade", at_s=0.0, until_s=3.0,
                       extra_latency_s=0.0005, jitter_s=0.0005),
        ),
    ),
    "net_partition": FaultPlan(
        seed=4,
        events=(FaultEvent(kind="net_partition", at_s=0.05, until_s=0.3, nodes=(0,)),),
    ),
    "cache_evict": FaultPlan(
        seed=5,
        events=(FaultEvent(kind="cache_evict", at_s=0.1, until_s=1.0, target=1),),
    ),
}


@pytest.mark.parametrize("kind", sorted(SMOKE_PLANS))
def test_faulted_run_completes(kind):
    plan = SMOKE_PLANS[kind]
    res = _run(plan)
    assert res.makespan_s < 1e4  # did not hit the simulation limit
    assert all(j.end_s > j.start_s for j in res.jobs)
    assert res.faults is not None
    assert any(k == kind for _, k, _, _ in res.faults.log)


def test_mirror_fail_run_completes_and_rebuilds():
    plan = FaultPlan(
        seed=6,
        events=(
            FaultEvent(kind="mirror_fail", at_s=0.05, until_s=0.4, target=1,
                       member=1, rebuild_rate_bytes_s=400e6,
                       rebuild_bytes=4 << 20),
        ),
    )
    res = _run(plan, raid=True)
    dev = res.cluster.data_servers[1].device
    assert dev.n_member_failures == 1
    assert res.makespan_s < 1e4


def test_multi_fault_run_completes():
    plan = FaultPlan(
        seed=7,
        events=(
            FaultEvent(kind="server_crash", at_s=0.05, until_s=0.4, target=2),
            FaultEvent(kind="disk_failslow", at_s=0.1, until_s=0.8, target=0,
                       transfer_factor=4.0),
            FaultEvent(kind="net_degrade", at_s=0.0, until_s=5.0,
                       extra_latency_s=0.0002, jitter_s=0.0002),
            FaultEvent(kind="cache_evict", at_s=0.2, until_s=1.5, target=3),
        ),
    )
    res = _run(plan)
    assert res.makespan_s < 1e4
    kinds = {k for _, k, _, _ in res.faults.log}
    assert kinds == {"server_crash", "disk_failslow", "net_degrade", "cache_evict"}


# ------------------------------------------------------------- determinism


def test_fixed_seed_and_plan_is_bit_identical():
    plan = FaultPlan(
        seed=9,
        events=(
            FaultEvent(kind="server_crash", at_s=0.05, until_s=0.3, target=2),
            FaultEvent(kind="net_degrade", at_s=0.0, until_s=5.0,
                       extra_latency_s=0.0003, jitter_s=0.0002),
        ),
    )
    a = _run(plan, trace=True)
    b = _run(plan, trace=True)
    assert _fingerprint(a) == _fingerprint(b)
    assert a.faults.log == b.faults.log
    assert a.faults.n_timeouts == b.faults.n_timeouts


def test_no_plan_and_empty_plan_are_bit_identical():
    """The injector must be a complete no-op for nominal runs: a run
    without a FaultPlan and a run with an empty plan produce identical
    measurements and identical raw disk traces."""
    base = _fingerprint(_run(None, trace=True))
    empty = _run(FaultPlan(seed=123), trace=True)
    assert _fingerprint(empty) == base
    assert empty.faults.log == []
    # And nominal component hooks stay uninstalled.
    assert empty.cluster.network.fault is None
    assert all(c.faults is None for c in empty.cluster.clients)


def test_dualpar_beats_baseline_under_failslow():
    plan = FaultPlan(
        seed=3,
        events=(
            FaultEvent(kind="disk_failslow", at_s=0.0, until_s=1e6, target=1,
                       transfer_factor=6.0),
        ),
    )

    def run(strategy):
        return run_experiment(
            [JobSpec("job", 8, Demo(file_size=48 << 20, nprocs_hint=8),
                     strategy=strategy)],
            cluster_spec=paper_spec(n_compute_nodes=4, n_data_servers=4),
            limit_s=1e4,
            fault_plan=plan,
        )

    vanilla = run("vanilla")
    dualpar = run("dualpar-forced")
    assert dualpar.makespan_s < vanilla.makespan_s


# ------------------------------------------------------------ chaos x guard


_FAILSLOW = FaultPlan(
    seed=3,
    events=(
        FaultEvent(kind="disk_failslow", at_s=0.0, until_s=1e6, target=1,
                   transfer_factor=6.0),
    ),
)


def test_guarded_adversary_under_failslow_stays_near_vanilla():
    """The headline degradation bound: a misprediction-heavy workload
    pinned to data-driven mode, on a cluster with a fail-slow disk, with
    the guard on, must (a) be degraded by the benefit governor and
    (b) finish within 10% of plain vanilla MPI-IO on the same cluster."""

    def run(strategy, guard=None):
        return run_experiment(
            [JobSpec("adversary", 8, DependentReads(file_size=64 << 20),
                     strategy=strategy)],
            cluster_spec=paper_spec(n_compute_nodes=4, n_data_servers=4),
            dualpar_config=DualParConfig(quota_bytes=64 * 1024),
            limit_s=1e4,
            fault_plan=_FAILSLOW,
            guard=guard,
        )

    vanilla = run("vanilla")
    guarded = run("dualpar-forced", guard=GuardConfig())
    unguarded = run("dualpar-forced")
    assert guarded.guard.state_of("adversary") == "degraded"
    assert guarded.makespan_s <= 1.10 * vanilla.makespan_s
    # ... while the same pinned job without the guard pays the full
    # Table-III misprediction tax.
    assert guarded.makespan_s < unguarded.makespan_s


def test_guard_preserves_dualpar_win_under_failslow():
    """The guard must not tax the nominal case: a well-predicted workload
    under the same fail-slow plan keeps its DualPar speedup with the
    governor watching."""

    def run(strategy, guard=None):
        return run_experiment(
            [JobSpec("job", 8, Demo(file_size=48 << 20, nprocs_hint=8),
                     strategy=strategy)],
            cluster_spec=paper_spec(n_compute_nodes=4, n_data_servers=4),
            limit_s=1e4,
            fault_plan=_FAILSLOW,
            guard=guard,
        )

    vanilla = run("vanilla")
    guarded = run("dualpar-forced", guard=GuardConfig())
    assert guarded.makespan_s < vanilla.makespan_s
    # The governor saw no reason to pull the job out of data-driven mode.
    assert guarded.guard.state_of("job") in ("probing", "datadriven")


def test_guarded_chaos_run_is_bit_identical():
    plan = SMOKE_PLANS["disk_failslow"]

    def run():
        res = run_experiment(
            [JobSpec("job", 8, MpiIoTest(file_size=32 << 20, op="R"),
                     strategy="dualpar-forced")],
            cluster_spec=paper_spec(n_compute_nodes=4, n_data_servers=4,
                                    trace_disks=True),
            limit_s=1e4,
            fault_plan=plan,
            guard=GuardConfig(),
        )
        return _fingerprint(res), list(res.guard.transitions)

    assert run() == run()


# ------------------------------------------------- runner / cache plumbing


def test_fault_plan_keys_the_bench_cache(tmp_path):
    base = ExperimentSpec(
        specs=(JobSpec("j", 4, MpiIoTest(file_size=4 << 20, op="R")),),
        cluster_spec=small_spec(),
    )
    import dataclasses

    faulted = dataclasses.replace(base, fault_plan=SMOKE_PLANS["net_degrade"])
    assert experiment_fingerprint(base) != experiment_fingerprint(faulted)
    # Different plans key differently too.
    other = dataclasses.replace(base, fault_plan=SMOKE_PLANS["server_crash"])
    assert experiment_fingerprint(faulted) != experiment_fingerprint(other)

    results = run_experiments([base, faulted], jobs=1, cache_dir=tmp_path)
    assert results[0].fault_log == []
    assert any(k == "net_degrade" for _, k, _, _ in results[1].fault_log)
    # Cached replay serves the same slim results.
    again = run_experiments([base, faulted], jobs=1, cache_dir=tmp_path)
    assert [asdict(j) for r in again for j in r.jobs] == [
        asdict(j) for r in results for j in r.jobs
    ]
    assert again[1].fault_log == results[1].fault_log


def test_cli_runs_with_fault_plan(tmp_path, capsys):
    from repro.cli import main

    plan_path = tmp_path / "plan.json"
    SMOKE_PLANS["disk_failslow"].dump(plan_path)
    rc = main(
        [
            "run",
            "--workload", "mpi-io-test",
            "--strategy", "vanilla",
            "--nprocs", "4",
            "--size-mb", "8",
            "--compute-nodes", "2",
            "--data-servers", "3",
            "--faults", str(plan_path),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "faults injected" in out
    assert "disk_failslow" in out


# ----------------------------------------------------- Hypothesis properties


#: Bounded crash schedules: cumulative (gap, duration) pairs guarantee the
#: windows never overlap, so the injector's crash/recover pairs are valid.
_crash_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.001, max_value=0.2),
        st.floats(min_value=0.01, max_value=0.3),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=3,
)


@given(schedule=_crash_schedules)
@settings(max_examples=12, deadline=None)
def test_writes_are_exactly_once_under_crash_schedules(schedule):
    """Arbitrary server crash/recover schedules neither lose nor duplicate
    a committed write: every request id the client issued is committed by
    exactly one server exactly once."""
    events = []
    t = 0.0
    for gap, dur, target in schedule:
        t += gap
        events.append(
            FaultEvent(kind="server_crash", at_s=t, until_s=t + dur, target=target)
        )
        t += dur
    plan = FaultPlan(
        seed=11,
        events=tuple(events),
        retry=RetryPolicy(
            base_timeout_s=0.05,
            timeout_per_byte_s=2e-6,
            max_retries=100,
            backoff_base_s=0.005,
            backoff_max_s=0.05,
        ),
    )
    cluster = build_cluster(small_spec())
    injector = FaultInjector(cluster, plan)
    injector.install()
    sim = cluster.sim
    f = cluster.fs.create("w.dat", 4 << 20)
    client = cluster.clients[0]

    def writer():
        for i in range(16):
            yield from client.write(f, i * 64 * 1024, 64 * 1024, stream_id=1)

    proc = sim.process(writer())
    sim.run_until_event(proc, limit=1e4)
    assert client.bytes_written == 16 * 64 * 1024
    committed = [
        rid for ds in cluster.data_servers for rid in (ds.commit_log or [])
    ]
    assert len(committed) == len(set(committed)), "a write committed twice"
    issued = set(range(1, injector._req_counter + 1))
    assert set(committed) == issued, "a committed write went missing"


_mirror_ops = st.lists(
    st.tuples(
        st.sampled_from(["fail", "repair", "read", "write"]),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=24,
)


@given(ops=_mirror_ops)
@settings(max_examples=15, deadline=None)
def test_raid1_reads_never_touch_out_of_sync_mirror(ops):
    """For any interleaving of member failures, repairs (with real paced
    rebuilds), reads, and writes: every read is served by a member that is
    neither failed nor still rebuild-stale, and read-after-write holds in
    the sense that a repaired member takes no reads before its rebuild
    completes."""
    cluster = build_cluster(small_spec(raid_members=2, raid_level=1))
    dev = cluster.data_servers[0].device
    sim = cluster.sim
    dev.read_targets = []
    rebuilds = {}
    for op, member, block in ops:
        if op == "fail":
            try:
                dev.fail_member(member)
            except ValueError:
                pass  # already failed / last mirror: invalid transition
        elif op == "repair":
            if dev._member_failed[member]:
                rebuilds[member] = dev.repair_member(
                    member, rebuild_rate_bytes_s=800e6, rebuild_bytes=1 << 20
                )
        else:
            before_failed = list(dev._member_failed)
            before_stale = list(dev._member_stale)
            n_seen = len(dev.read_targets)
            lbn = block * dev.chunk_sectors

            def io(lbn=lbn, kind=op):
                yield from dev.service(lbn, 64, "R" if kind == "read" else "W")

            sim.run_until_event(sim.process(io()))
            if op == "read":
                for _lbn, m in dev.read_targets[n_seen:]:
                    assert not before_failed[m], "read hit a failed mirror"
                    assert not before_stale[m], "read hit a stale mirror"
    # Drain outstanding rebuilds; afterwards every repaired member is
    # in-sync again and serves reads.
    for member, proc in rebuilds.items():
        if proc.is_alive:
            sim.run_until_event(proc, limit=1e4)
        if not dev._member_failed[member]:
            assert not dev._member_stale[member]


@given(
    base=st.floats(min_value=1e-4, max_value=1.0),
    factor=st.floats(min_value=1.0, max_value=4.0),
    cap=st.floats(min_value=1e-3, max_value=10.0),
    attempts=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=200, deadline=None)
def test_backoff_is_monotone_and_capped(base, factor, cap, attempts):
    pol = RetryPolicy(backoff_base_s=base, backoff_factor=factor, backoff_max_s=cap)
    seq = [pol.backoff_s(a) for a in range(1, attempts + 1)]
    assert all(b >= a for a, b in zip(seq, seq[1:])), "backoff not monotone"
    assert all(s <= cap + 1e-12 for s in seq), "backoff exceeded its cap"
    assert seq[0] == pytest.approx(min(base, cap))
