"""Event-queue disciplines stay bit-identical.

The kernel's ordering contract is ``(t, priority, arrival)``: FIFO within
one ``(t, priority)`` band, URGENT (0) before NORMAL (1) at equal times.
The binary heap realises that contract trivially; the calendar queue (and
its C twin) must reproduce it *exactly* -- including under cancels
(``requeue_front`` with ``None`` holes), re-arms (pushes made while a
cohort drains), preemption (an URGENT push landing at the active band's
timestamp) and lazy resizes.

Two layers of evidence:

1. A Hypothesis interpreter drives every available discipline through the
   same randomized op script (pushes, partial dispatch, early stops,
   same-time urgent pushes) and compares the full dispatch streams.
2. End-to-end: the same seeded simulation -- including interrupt-driven
   cancel/re-arm traffic -- produces identical logs under
   ``queue="heap"`` and ``queue="calendar"``, sanitized or not, and a
   full experiment is bit-identical across ``REPRO_EVENT_QUEUE`` legs.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JobSpec, MpiIoTest, run_experiment
from repro.cluster import paper_spec
from repro.sim import CalendarQueue, HeapQueue, Interrupt, SimulationError, Simulator
from repro.sim import core as sim_core

NORMAL = sim_core.NORMAL
URGENT = sim_core.URGENT

# Collision-heavy time grid: duplicate timestamps, sub-width fractions,
# values far beyond the initial wheel horizon, and past-1e300 entries
# that must live in the overflow heap forever.
TIMES = [0.0, 0.25, 0.25, 0.5, 1.0, 1.0, 1.5, 3.0, 7.5, 16.0, 100.0, 1e4, 5e299, 2e300]
#: Relative delays used by mid-dispatch pushes (0.0 = same-time re-arm).
DELTAS = [0.0, 0.0, 0.25, 1.0, 64.0, 1e4]


def _factories():
    fac = [
        ("heap", HeapQueue),
        ("calendar", CalendarQueue),
        # Tiny wheel: forces jump/migrate/resize churn on the same script.
        ("calendar-4x0.25", lambda: CalendarQueue(4, 0.25)),
    ]
    if sim_core._CQ is not None:
        fac.append(("calq-c", sim_core._CQ.CalQ))
    return fac


def _run_script(make_queue, initial, reactions):
    """Interpret one op script against a fresh queue; return the dispatch log.

    ``initial``: list of ``(t, prio)`` pushes. ``reactions`` maps the
    ordinal of a dispatched event to a list of ops executed right after
    it: ``("push", dt, prio)`` re-arms at ``t + dt``; ``("stop",)``
    abandons the cohort via ``requeue_front`` (early driver exit).
    """
    q = make_queue()
    token = 0
    log = []
    for t, p in initial:
        q.push(t, p, token)
        token += 1
    log.append(("seeded", len(q), q.peek()))
    while True:
        cohort = q.pop_cohort()
        if cohort is None:
            break
        t, prio, events = cohort
        i = 0
        stopped = False
        while i < len(events):
            ev = events[i]
            events[i] = None  # the driver contract: null before dispatch
            i += 1
            if ev is None:
                continue
            log.append((t, prio, ev))
            for op in reactions.get(len(log), ()):
                if op[0] == "push":
                    q.push(t + op[1], op[2], token)
                    token += 1
                else:  # "stop"
                    stopped = True
            if stopped:
                q.requeue_front(t, prio, events)
                break
    log.append(("drained", len(q), q.peek()))
    return log


op_strategy = st.one_of(
    st.tuples(
        st.just("push"),
        st.sampled_from(DELTAS),
        st.sampled_from([URGENT, NORMAL, NORMAL]),
    ),
    st.just(("stop",)),
)
script_strategy = st.tuples(
    st.lists(
        st.tuples(st.sampled_from(TIMES), st.sampled_from([URGENT, NORMAL, NORMAL])),
        min_size=1,
        max_size=40,
    ),
    st.dictionaries(st.integers(min_value=1, max_value=60), st.lists(op_strategy, max_size=3), max_size=12),
)


@settings(max_examples=80, deadline=None)
@given(script=script_strategy)
def test_disciplines_identical_over_random_schedules(script):
    initial, reactions = script
    factories = _factories()
    name0, make0 = factories[0]
    reference = _run_script(make0, initial, reactions)
    # Every pushed token (assigned 0, 1, 2, ... in push order) must be
    # dispatched exactly once -- nothing lost, nothing duplicated.
    dispatched = [e[2] for e in reference if isinstance(e[2], int)]
    assert sorted(dispatched) == list(range(len(dispatched)))
    for name, make in factories[1:]:
        assert _run_script(make, initial, reactions) == reference, f"{name} diverged from {name0}"


@settings(max_examples=40, deadline=None)
@given(
    specs=st.lists(
        st.lists(st.sampled_from([0.0, 0.001, 0.5, 1.0, 1.0, 2.5, 64.0, 1000.0]), min_size=1, max_size=5),
        min_size=1,
        max_size=6,
    )
)
def test_simulation_identical_across_queues(specs):
    """Same coroutine workload -> same log, every queue, sanitized or not."""

    def run(**kw):
        sim = Simulator(**kw)
        log = []

        def worker(i, delays):
            for j, d in enumerate(delays):
                yield sim.timeout(d)
                log.append((sim.now, i, j))

        for i, delays in enumerate(specs):
            sim.process(worker(i, delays))
        sim.run()
        return log

    reference = run(queue="heap")
    assert run(queue="calendar") == reference
    assert run(queue=CalendarQueue(4, 0.25)) == reference
    assert run(queue="calendar", sanitize=True) == reference
    if sim_core._CQ is not None:
        assert run(queue=sim_core._CQ.CalQ()) == reference


def test_interrupt_cancel_rearm_identical_across_queues():
    """Interrupts cancel a pending timeout and the victim re-arms: the
    cancel/re-arm traffic must not perturb ordering on any discipline."""

    def run(queue):
        sim = Simulator(queue=queue)
        log = []

        def victim(i):
            d = 10.0 + i
            while True:
                try:
                    yield sim.timeout(d)
                    log.append((sim.now, i, "done"))
                    return
                except Interrupt as it:
                    log.append((sim.now, i, "int", it.cause))
                    d = d / 2  # re-arm with a fresh, shorter timeout

        def harasser(targets):
            for k in range(3):
                yield sim.timeout(1.0 + k)
                for p in targets:
                    if p.is_alive:
                        p.interrupt(cause=k)

        procs = [sim.process(victim(i)) for i in range(4)]
        sim.process(harasser(procs))
        sim.run()
        return log

    reference = run("heap")
    assert reference, "scenario produced no events"
    assert any(e[2] == "int" for e in reference)
    assert run("calendar") == reference
    if sim_core._CQ is not None:
        assert run(sim_core._CQ.CalQ()) == reference


def test_experiment_bit_identical_across_event_queue_env(monkeypatch):
    """The determinism-suite acceptance: a real figure-style experiment is
    bit-identical under ``REPRO_EVENT_QUEUE=heap`` and ``=calendar``."""

    def measurements():
        res = run_experiment(
            [JobSpec("m", 8, MpiIoTest(file_size=4 * 1024 * 1024, op="R"))],
            cluster_spec=paper_spec(n_compute_nodes=8, trace_disks=True),
        )
        jobs = [asdict(j) for j in res.jobs]
        traces = [
            [(r.time, r.lbn, r.nsectors) for r in t.records] if t is not None else None
            for t in res.cluster.traces
        ]
        return jobs, traces

    monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
    heap = measurements()
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
    assert measurements() == heap
    monkeypatch.setenv("REPRO_SIM_ACCEL", "0")
    assert measurements() == heap


# ---------------------------------------------------------------------------
# selection plumbing and introspection
# ---------------------------------------------------------------------------


def test_queue_selection(monkeypatch):
    monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
    default_q = Simulator()._queue
    if sim_core._CQ is not None:
        assert isinstance(default_q, sim_core._CQ.CalQ)
    else:
        assert isinstance(default_q, CalendarQueue)
    assert isinstance(Simulator(queue="heap")._queue, HeapQueue)
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
    assert isinstance(Simulator()._queue, HeapQueue)
    inst = CalendarQueue()
    assert Simulator(queue=inst)._queue is inst
    with pytest.raises(SimulationError, match="unknown event queue"):
        Simulator(queue="splay")


def test_info_and_len():
    for name, make in _factories():
        q = make()
        assert len(q) == 0
        assert q.peek() == float("inf")
        for i in range(200):
            q.push(float(i % 7), NORMAL, i)
        info = q.info()
        assert len(q) == 200, name
        total = info["count"] + info.get("overflow", 0) + info.get("past", 0)
        assert total == 200, name
        assert q.peek() == 0.0


def test_calendar_resize_triggers_and_preserves_order():
    q = CalendarQueue(4, 1.0)
    n = 4096
    for i in range(n):
        q.push(float(i) * 100.0, NORMAL, i)  # gap 100 vs width 1: forces rewidth
    out = []
    while True:
        c = q.pop_cohort()
        if c is None:
            break
        out.extend(c[2])
        c[2][:] = [None] * len(c[2])
    assert out == list(range(n))
    assert q.stats_resizes > 0
    assert q.info()["resizes"] == q.stats_resizes
