"""Unit & property tests for the server page cache and readahead."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.pagecache import ServerPageCache


def test_empty_cache_misses():
    pc = ServerPageCache()
    assert not pc.contains("f", 0, 100)


def test_insert_then_contains():
    pc = ServerPageCache()
    pc.insert("f", 1000, 500)
    assert pc.contains("f", 1000, 500)
    assert pc.contains("f", 1200, 100)
    assert not pc.contains("f", 900, 200)
    assert not pc.contains("f", 1400, 200)


def test_zero_length_contains_true():
    pc = ServerPageCache()
    assert pc.contains("f", 42, 0)


def test_adjacent_inserts_merge():
    pc = ServerPageCache()
    pc.insert("f", 0, 100)
    pc.insert("f", 100, 100)
    assert pc.contains("f", 0, 200)
    assert len(pc._extents["f"]) == 1


def test_overlapping_inserts_merge():
    pc = ServerPageCache()
    pc.insert("f", 0, 150)
    pc.insert("f", 100, 150)
    assert pc.contains("f", 0, 250)
    assert pc.resident_bytes == 250


def test_invalidate_splits_extent():
    pc = ServerPageCache()
    pc.insert("f", 0, 300)
    pc.invalidate("f", 100, 100)
    assert pc.contains("f", 0, 100)
    assert pc.contains("f", 200, 100)
    assert not pc.contains("f", 100, 100)
    assert pc.resident_bytes == 200


def test_invalidate_other_file_noop():
    pc = ServerPageCache()
    pc.insert("f", 0, 100)
    pc.invalidate("g", 0, 100)
    assert pc.contains("f", 0, 100)


def test_capacity_eviction():
    pc = ServerPageCache(capacity_bytes=1000)
    pc.insert("f", 0, 600)
    pc.insert("f", 10_000, 600)
    assert pc.resident_bytes <= 1000
    # The oldest extent went first.
    assert not pc.contains("f", 0, 600)
    assert pc.contains("f", 10_000, 600)


def test_bad_capacity():
    with pytest.raises(ValueError):
        ServerPageCache(capacity_bytes=0)


# ------------------------------------------------------------- readahead


def test_first_access_no_readahead():
    pc = ServerPageCache()
    assert pc.record_access("f", 0, 16 * 1024) == 0


def test_sequential_accesses_grow_window():
    pc = ServerPageCache(ra_start=32 * 1024, ra_max=128 * 1024, slack=48 * 1024)
    w0 = pc.record_access("f", 0, 16 * 1024)
    assert w0 == 0
    # Next access lands at the previous scheduled end.
    w1 = pc.record_access("f", 16 * 1024, 16 * 1024)
    assert w1 == 32 * 1024
    w2 = pc.record_access("f", 16 * 1024 + 16 * 1024 + w1, 16 * 1024)
    assert w2 == 64 * 1024


def test_window_caps_at_ra_max():
    pc = ServerPageCache(ra_start=32 * 1024, ra_max=64 * 1024, slack=1 << 30)
    pos = 0
    w = 0
    for _ in range(6):
        w = pc.record_access("f", pos, 16 * 1024)
        pos += 16 * 1024 + w
    assert w == 64 * 1024


def test_random_access_resets_window():
    pc = ServerPageCache(slack=48 * 1024)
    pc.record_access("f", 0, 16 * 1024)
    pc.record_access("f", 16 * 1024, 16 * 1024)  # grows
    w = pc.record_access("f", 100 * 1024 * 1024, 16 * 1024)  # far jump
    assert w == 0


def test_readahead_state_is_per_context():
    pc = ServerPageCache(slack=48 * 1024)
    pc.record_access("f", 0, 16 * 1024, context=0)
    # Context 1 sees the same offsets but has its own cold state.
    assert pc.record_access("f", 16 * 1024, 16 * 1024, context=1) == 0
    # Context 0 still grows.
    assert pc.record_access("f", 16 * 1024, 16 * 1024, context=0) > 0


def test_on_hit_triggers_next_window():
    pc = ServerPageCache(ra_start=32 * 1024, ra_max=64 * 1024, slack=48 * 1024)
    pc.record_access("f", 0, 16 * 1024)
    w = pc.record_access("f", 16 * 1024, 16 * 1024)  # window scheduled
    last_end = 32 * 1024 + w
    # A hit near the scheduled end triggers the next async window.
    trig = pc.on_hit("f", last_end - 16 * 1024, 16 * 1024)
    assert trig is not None
    start, length = trig
    assert start == last_end
    assert length > 0


def test_on_hit_far_from_edge_no_trigger():
    pc = ServerPageCache(ra_start=32 * 1024, ra_max=256 * 1024, slack=48 * 1024)
    pc.record_access("f", 0, 16 * 1024)
    pc.record_access("f", 16 * 1024, 16 * 1024)
    assert pc.on_hit("f", 0, 1024) is None


def test_on_hit_unknown_file_none():
    pc = ServerPageCache()
    assert pc.on_hit("nope", 0, 100) is None


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**6),
            st.integers(min_value=1, max_value=10**5),
            st.sampled_from(["ins", "inv"]),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_extents_invariants_property(ops):
    """Extents stay sorted, disjoint, and resident_bytes consistent."""
    pc = ServerPageCache(capacity_bytes=1 << 30)
    for off, ln, kind in ops:
        if kind == "ins":
            pc.insert("f", off, ln)
        else:
            pc.invalidate("f", off, ln)
        ivs = pc._extents.get("f", [])
        for (a, b), (c, d) in zip(ivs, ivs[1:]):
            assert a < b and c < d and b <= c
        assert pc.resident_bytes == sum(b - a for a, b in ivs)
