"""Unit & property tests for the sorted unit queue (merging core)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosched.request import BlockRequest
from repro.iosched.squeue import SortedUnitQueue
from repro.sim import Simulator


def mkreq(lbn, n, op="R", stream=0):
    sim = Simulator()
    return BlockRequest(
        lbn=lbn, nsectors=n, op=op, stream_id=stream, submit_time=0.0, completion=sim.event()
    )


def test_insert_keeps_sorted():
    q = SortedUnitQueue(max_sectors=1024)
    for lbn in (500, 100, 300):
        q.add(mkreq(lbn, 8))
    assert [u.lbn for u in q.units] == [100, 300, 500]


def test_back_merge():
    q = SortedUnitQueue(max_sectors=1024)
    q.add(mkreq(100, 8))
    q.add(mkreq(108, 8))
    assert len(q) == 1
    assert q.units[0].lbn == 100 and q.units[0].nsectors == 16
    assert q.n_merges == 1


def test_front_merge():
    q = SortedUnitQueue(max_sectors=1024)
    q.add(mkreq(108, 8))
    q.add(mkreq(100, 8))
    assert len(q) == 1
    assert q.units[0].lbn == 100 and q.units[0].nsectors == 16


def test_merge_bridges_gap_coalesces_three():
    q = SortedUnitQueue(max_sectors=1024)
    q.add(mkreq(100, 8))
    q.add(mkreq(116, 8))
    q.add(mkreq(108, 8))  # fills the hole: all three coalesce
    assert len(q) == 1
    assert q.units[0].nsectors == 24


def test_no_merge_across_ops():
    q = SortedUnitQueue(max_sectors=1024)
    q.add(mkreq(100, 8, op="R"))
    q.add(mkreq(108, 8, op="W"))
    assert len(q) == 2


def test_merge_respects_max_sectors():
    q = SortedUnitQueue(max_sectors=12)
    q.add(mkreq(100, 8))
    q.add(mkreq(108, 8))  # would make 16 > 12
    assert len(q) == 2


def test_pop_next_clook_behaviour():
    q = SortedUnitQueue(max_sectors=1024)
    for lbn in (100, 300, 500):
        q.add(mkreq(lbn, 8))
    assert q.pop_next(head_lbn=250).lbn == 300
    assert q.pop_next(head_lbn=600).lbn == 100  # wrap
    assert q.pop_next(head_lbn=0).lbn == 500
    assert q.pop_next(head_lbn=0) is None


def test_pop_clears_queued_flag():
    q = SortedUnitQueue(max_sectors=1024)
    q.add(mkreq(100, 8))
    unit = q.pop_front()
    assert unit.queued is False


def test_absorbed_unit_flagged_unqueued():
    q = SortedUnitQueue(max_sectors=1024)
    q.add(mkreq(100, 8))
    q.add(mkreq(116, 8))
    absorbed = q.units[1]
    q.add(mkreq(108, 8))
    assert absorbed.queued is False


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=5000), st.integers(min_value=1, max_value=64)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_queue_conserves_sectors_property(reqs):
    """Total sectors in = total sectors queued; keys stay sorted; no unit
    exceeds max_sectors."""
    q = SortedUnitQueue(max_sectors=256)
    total = 0
    for lbn, n in reqs:
        q.add(mkreq(lbn, n))
        total += n
    assert sum(u.nsectors for u in q.units) == total
    keys = [u.lbn for u in q.units]
    assert keys == sorted(keys)
    assert all(u.nsectors <= 256 or len(u.parts) == 1 for u in q.units)
    # Every submitted request is in exactly one unit.
    assert sum(len(u.parts) for u in q.units) == len(reqs)
