"""Coverage for the parallel experiment runner and its on-disk cache."""

from __future__ import annotations

import pickle

import pytest

from repro import DualParConfig, ExperimentSpec, JobSpec, MpiIoTest, run_experiments
from repro.cluster import paper_spec
from repro.runner import parallel
from repro.runner.parallel import (
    clear_cache,
    experiment_fingerprint,
)


def _spec(strategy="vanilla", quota_kb=None, stripe_unit=64 * 1024, nprocs=8):
    return ExperimentSpec(
        [
            JobSpec(
                "m",
                nprocs,
                MpiIoTest(file_size=4 * 1024 * 1024),
                strategy=strategy,
            )
        ],
        cluster_spec=paper_spec(n_compute_nodes=8, stripe_unit=stripe_unit),
        dualpar_config=(
            DualParConfig(quota_bytes=quota_kb * 1024) if quota_kb is not None else None
        ),
        label=f"{strategy}",
    )


def test_results_in_input_order_and_correct(tmp_path):
    specs = [_spec("vanilla"), _spec("collective"), _spec("dualpar-forced")]
    results = run_experiments(specs, jobs=1, cache_dir=tmp_path)
    assert len(results) == 3
    assert [r.jobs[0].strategy for r in results] == [
        "vanilla",
        "collective",
        "dualpar-forced",
    ]
    assert all(r.jobs[0].throughput_mb_s > 0 for r in results)


def test_pool_matches_inline(tmp_path):
    specs = [_spec("vanilla"), _spec("collective"), _spec("dualpar-forced")]
    inline = run_experiments(specs, jobs=1, cache=False)
    pooled = run_experiments(specs, jobs=2, cache=False)
    assert pickle.dumps(inline) == pickle.dumps(pooled)


def test_cache_hit_returns_byte_identical_result(tmp_path):
    specs = [_spec("dualpar-forced", quota_kb=256)]
    first = run_experiments(specs, jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    second = run_experiments(specs, jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.hits == 1
    assert parallel.LAST_RUN_STATS.misses == 0
    assert pickle.dumps(first) == pickle.dumps(second)


def test_fingerprint_sensitive_to_parameters():
    base = _spec("dualpar-forced", quota_kb=256)
    variants = [
        _spec("dualpar-forced", quota_kb=512),  # different quota
        _spec("dualpar-forced", quota_kb=256, stripe_unit=128 * 1024),  # stripe
        _spec("vanilla", quota_kb=256),  # different strategy
        _spec("dualpar-forced", quota_kb=256, nprocs=16),  # different ranks
    ]
    fps = {experiment_fingerprint(s) for s in [base] + variants}
    assert len(fps) == len(variants) + 1


def test_fingerprint_ignores_label():
    a = _spec("vanilla")
    b = ExperimentSpec(a.specs, cluster_spec=a.cluster_spec, label="other name")
    assert experiment_fingerprint(a) == experiment_fingerprint(b)


def test_changed_parameters_miss_the_cache(tmp_path):
    run_experiments([_spec("dualpar-forced", quota_kb=256)], jobs=1, cache_dir=tmp_path)
    run_experiments([_spec("dualpar-forced", quota_kb=512)], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    assert parallel.LAST_RUN_STATS.hits == 0


def test_corrupt_cache_file_is_ignored(tmp_path):
    spec = _spec("vanilla")
    good = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    path = tmp_path / f"{experiment_fingerprint(spec)}.pkl"
    assert path.exists()

    # Truncated garbage must be treated as a miss, not an error.
    path.write_bytes(b"\x80corrupt")
    again = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    assert pickle.dumps(good) == pickle.dumps(again)

    # A valid pickle of the wrong type is also a miss.
    path.write_bytes(pickle.dumps({"not": "a result"}))
    run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1


def test_truncated_cache_entry_is_a_miss(tmp_path):
    """A valid entry cut short mid-stream -- the torn-write shape fsync in
    ``_cache_store`` defends against -- must replay as a miss and be
    rewritten whole."""
    spec = _spec("vanilla")
    good = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    path = tmp_path / f"{experiment_fingerprint(spec)}.pkl"
    whole = path.read_bytes()

    path.write_bytes(whole[: len(whole) // 2])
    again = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    assert parallel.LAST_RUN_STATS.hits == 0
    assert pickle.dumps(good) == pickle.dumps(again)
    assert path.read_bytes() == whole  # entry healed by the re-run


def test_cache_can_be_disabled(tmp_path, monkeypatch):
    spec = _spec("vanilla")
    run_experiments([spec], jobs=1, cache=False, cache_dir=tmp_path)
    assert not list(tmp_path.glob("*.pkl"))
    monkeypatch.setenv("REPRO_NO_BENCH_CACHE", "1")
    run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert not list(tmp_path.glob("*.pkl"))


def test_clear_cache(tmp_path):
    run_experiments([_spec("vanilla"), _spec("collective")], jobs=1, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("*.pkl"))) == 2
    assert clear_cache(tmp_path) == 2
    assert not list(tmp_path.glob("*.pkl"))


def test_slim_result_measurement_surface(tmp_path):
    (res,) = run_experiments(
        [_spec("dualpar-forced", quota_kb=256)], jobs=1, cache_dir=tmp_path
    )
    assert res.system_throughput_mb_s > 0
    assert res.total_io_time_s > 0
    assert res.total_bytes_served > 0
    assert res.job("m").name == "m"
    with pytest.raises(KeyError):
        res.job("nope")


def test_spec_accepts_list_of_jobspecs():
    spec = _spec("vanilla")
    assert isinstance(spec.specs, tuple)
