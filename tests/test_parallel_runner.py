"""Coverage for the parallel experiment runner and its on-disk cache."""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Iterator

import pytest

from repro import DualParConfig, ExperimentSpec, JobSpec, MpiIoTest, run_experiments
from repro.cluster import paper_spec
from repro.runner import parallel
from repro.runner.parallel import (
    WorkerCellError,
    clear_cache,
    experiment_fingerprint,
)
from repro.workloads.base import FileSpec, Workload


def _spec(strategy="vanilla", quota_kb=None, stripe_unit=64 * 1024, nprocs=8):
    return ExperimentSpec(
        [
            JobSpec(
                "m",
                nprocs,
                MpiIoTest(file_size=4 * 1024 * 1024),
                strategy=strategy,
            )
        ],
        cluster_spec=paper_spec(n_compute_nodes=8, stripe_unit=stripe_unit),
        dualpar_config=(
            DualParConfig(quota_bytes=quota_kb * 1024) if quota_kb is not None else None
        ),
        label=f"{strategy}",
    )


def test_results_in_input_order_and_correct(tmp_path):
    specs = [_spec("vanilla"), _spec("collective"), _spec("dualpar-forced")]
    results = run_experiments(specs, jobs=1, cache_dir=tmp_path)
    assert len(results) == 3
    assert [r.jobs[0].strategy for r in results] == [
        "vanilla",
        "collective",
        "dualpar-forced",
    ]
    assert all(r.jobs[0].throughput_mb_s > 0 for r in results)


def test_pool_matches_inline(tmp_path):
    specs = [_spec("vanilla"), _spec("collective"), _spec("dualpar-forced")]
    inline = run_experiments(specs, jobs=1, cache=False)
    pooled = run_experiments(specs, jobs=2, cache=False)
    assert pickle.dumps(inline) == pickle.dumps(pooled)


def test_cache_hit_returns_byte_identical_result(tmp_path):
    specs = [_spec("dualpar-forced", quota_kb=256)]
    first = run_experiments(specs, jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    second = run_experiments(specs, jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.hits == 1
    assert parallel.LAST_RUN_STATS.misses == 0
    assert pickle.dumps(first) == pickle.dumps(second)


def test_fingerprint_sensitive_to_parameters():
    base = _spec("dualpar-forced", quota_kb=256)
    variants = [
        _spec("dualpar-forced", quota_kb=512),  # different quota
        _spec("dualpar-forced", quota_kb=256, stripe_unit=128 * 1024),  # stripe
        _spec("vanilla", quota_kb=256),  # different strategy
        _spec("dualpar-forced", quota_kb=256, nprocs=16),  # different ranks
    ]
    fps = {experiment_fingerprint(s) for s in [base] + variants}
    assert len(fps) == len(variants) + 1


def test_fingerprint_ignores_label():
    a = _spec("vanilla")
    b = ExperimentSpec(a.specs, cluster_spec=a.cluster_spec, label="other name")
    assert experiment_fingerprint(a) == experiment_fingerprint(b)


def test_changed_parameters_miss_the_cache(tmp_path):
    run_experiments([_spec("dualpar-forced", quota_kb=256)], jobs=1, cache_dir=tmp_path)
    run_experiments([_spec("dualpar-forced", quota_kb=512)], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    assert parallel.LAST_RUN_STATS.hits == 0


def test_corrupt_cache_file_is_ignored(tmp_path):
    spec = _spec("vanilla")
    good = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    path = tmp_path / f"{experiment_fingerprint(spec)}.pkl"
    assert path.exists()

    # Truncated garbage must be treated as a miss, not an error.
    path.write_bytes(b"\x80corrupt")
    again = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    assert pickle.dumps(good) == pickle.dumps(again)

    # A valid pickle of the wrong type is also a miss.
    path.write_bytes(pickle.dumps({"not": "a result"}))
    run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1


def test_truncated_cache_entry_is_a_miss(tmp_path):
    """A valid entry cut short mid-stream -- the torn-write shape fsync in
    ``_cache_store`` defends against -- must replay as a miss and be
    rewritten whole."""
    spec = _spec("vanilla")
    good = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    path = tmp_path / f"{experiment_fingerprint(spec)}.pkl"
    whole = path.read_bytes()

    path.write_bytes(whole[: len(whole) // 2])
    again = run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.misses == 1
    assert parallel.LAST_RUN_STATS.hits == 0
    assert pickle.dumps(good) == pickle.dumps(again)
    assert path.read_bytes() == whole  # entry healed by the re-run


def test_cache_can_be_disabled(tmp_path, monkeypatch):
    spec = _spec("vanilla")
    run_experiments([spec], jobs=1, cache=False, cache_dir=tmp_path)
    assert not list(tmp_path.glob("*.pkl"))
    monkeypatch.setenv("REPRO_NO_BENCH_CACHE", "1")
    run_experiments([spec], jobs=1, cache_dir=tmp_path)
    assert not list(tmp_path.glob("*.pkl"))


def test_clear_cache(tmp_path):
    run_experiments([_spec("vanilla"), _spec("collective")], jobs=1, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("*.pkl"))) == 2
    assert clear_cache(tmp_path) == 2
    assert not list(tmp_path.glob("*.pkl"))


def test_slim_result_measurement_surface(tmp_path):
    (res,) = run_experiments(
        [_spec("dualpar-forced", quota_kb=256)], jobs=1, cache_dir=tmp_path
    )
    assert res.system_throughput_mb_s > 0
    assert res.total_io_time_s > 0
    assert res.total_bytes_served > 0
    assert res.job("m").name == "m"
    with pytest.raises(KeyError):
        res.job("nope")


def test_spec_accepts_list_of_jobspecs():
    spec = _spec("vanilla")
    assert isinstance(spec.specs, tuple)


# ---------------------------------------------------------------------------
# worker failure attribution (ISSUE 9 satellite)
# ---------------------------------------------------------------------------


class _BoomWorkload(Workload):
    """Explodes mid-stream inside the worker process."""

    name = "boom"

    def files(self) -> list[FileSpec]:
        return [FileSpec("boom.dat", 1024 * 1024)]

    def ops(self, rank: int, size: int) -> Iterator:
        raise RuntimeError("kaboom in ops")
        yield  # pragma: no cover - unreachable


def _boom_spec():
    return ExperimentSpec(
        [JobSpec("b", 2, _BoomWorkload())],
        cluster_spec=paper_spec(n_compute_nodes=2),
        label="boom-cell",
    )


def test_worker_failure_carries_child_traceback():
    """A cell that dies inside a pool worker must surface as a
    WorkerCellError naming the cell and carrying the child's full
    traceback text across the process boundary -- not a bare exception
    with only parent-side frames."""
    with pytest.raises(WorkerCellError) as excinfo:
        run_experiments([_spec("vanilla"), _boom_spec()], jobs=2, cache=False)
    err = excinfo.value
    assert err.label == "boom-cell"
    # The child traceback survived the pool boundary verbatim.
    assert "Traceback (most recent call last)" in err.traceback_text
    assert "kaboom in ops" in err.traceback_text
    assert "_BoomWorkload" in err.traceback_text or "in ops" in err.traceback_text
    # And the rendered message shows it too.
    assert "boom-cell" in str(err)
    assert "kaboom in ops" in str(err)


def test_worker_cell_error_pickles_whole():
    err = WorkerCellError("cell-7", "Traceback ...\nValueError: nope\n")
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, WorkerCellError)
    assert clone.label == "cell-7"
    assert clone.traceback_text == err.traceback_text
    assert str(clone) == str(err)


def test_inline_run_raises_the_original_exception():
    # jobs=1 runs in-process: no wrapping, the real exception propagates.
    with pytest.raises(RuntimeError, match="kaboom in ops"):
        run_experiments([_boom_spec()], jobs=1, cache=False)


# ---------------------------------------------------------------------------
# cross-process cache race (ISSUE 9 satellite)
# ---------------------------------------------------------------------------


def _race_entry(cache_dir, barrier, results):
    """One racer: start in lockstep, run the same cell, then re-read it
    a few times; every read must be byte-identical to the first run."""
    spec = _spec("vanilla")
    barrier.wait()
    first = run_experiments([spec], jobs=1, cache_dir=cache_dir)
    blobs = [pickle.dumps(first)]
    for _ in range(3):
        again = run_experiments([spec], jobs=1, cache_dir=cache_dir)
        blobs.append(pickle.dumps(again))
    results.put((len(set(blobs)) == 1, blobs[0]))


def test_cross_process_cache_race_single_entry_no_corrupt_reads(tmp_path):
    """Two processes racing the same .bench_cache key must yield exactly
    one stored entry and zero corrupt reads (extends the truncated-entry
    -is-miss test above to real concurrency: atomic fsync-before-rename
    means a reader sees a whole entry or a miss, never a torn one)."""
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    results = ctx.Queue()
    procs = [
        ctx.Process(target=_race_entry, args=(tmp_path, barrier, results))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    outcomes = [results.get(timeout=300) for _ in procs]
    for p in procs:
        p.join(300)
        assert p.exitcode == 0
    # Zero corrupt reads in either process, and both saw the same bytes.
    assert all(consistent for consistent, _ in outcomes)
    assert len({blob for _, blob in outcomes}) == 1
    # Exactly one whole stored entry, no leftover temp files.
    entries = list(tmp_path.glob("*.pkl"))
    assert len(entries) == 1
    assert not list(tmp_path.glob("*.tmp*"))
    # The surviving entry replays as a hit, byte-identical to the race.
    final = run_experiments([_spec("vanilla")], jobs=1, cache_dir=tmp_path)
    assert parallel.LAST_RUN_STATS.hits == 1
    assert pickle.dumps(final) == outcomes[0][1]
