"""Tests for the MPI-IO layer: data sieving, list I/O, and the engines."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.disk.drive import DiskParams
from repro.mpi.ops import Segment
from repro.mpi.runtime import MpiRuntime
from repro.mpiio.datasieve import coalesce_segments, coverage_stats
from repro.mpiio.listio import batch_io
from repro.runner import JobSpec, run_experiment
from repro.workloads import MpiIoTest, Noncontig, SyntheticPattern


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


# ------------------------------------------------------------ data sieving


def test_coalesce_merges_adjacent():
    out = coalesce_segments([Segment(0, 10), Segment(10, 10)])
    assert out == [Segment(0, 20)]


def test_coalesce_sorts_input():
    out = coalesce_segments([Segment(50, 10), Segment(0, 10)])
    assert out == [Segment(0, 10), Segment(50, 10)]


def test_coalesce_bridges_small_holes():
    out = coalesce_segments([Segment(0, 10), Segment(15, 10)], hole_threshold=5)
    assert out == [Segment(0, 25)]


def test_coalesce_respects_threshold():
    out = coalesce_segments([Segment(0, 10), Segment(16, 10)], hole_threshold=5)
    assert len(out) == 2


def test_coalesce_overlapping_segments():
    out = coalesce_segments([Segment(0, 20), Segment(10, 20)])
    assert out == [Segment(0, 30)]


def test_coalesce_max_extent_splits():
    out = coalesce_segments([Segment(0, 100)], max_extent=30)
    assert [s.length for s in out] == [30, 30, 30, 10]


def test_coalesce_empty():
    assert coalesce_segments([]) == []


def test_coalesce_bad_params():
    with pytest.raises(ValueError):
        coalesce_segments([Segment(0, 1)], hole_threshold=-1)
    with pytest.raises(ValueError):
        coalesce_segments([Segment(0, 1)], max_extent=0)


def test_coverage_stats_waste():
    segs = [Segment(0, 10), Segment(20, 10)]
    cov = coalesce_segments(segs, hole_threshold=100)
    stats = coverage_stats(segs, cov)
    assert stats.requested_bytes == 20
    assert stats.covered_bytes == 30
    assert stats.waste_ratio == pytest.approx(1 / 3)


# ---------------------------------------------------------------- list io


def test_batch_io_reads_all_segments():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    f = cluster.fs.create("l.dat", 4 * 1024 * 1024)
    client = cluster.clients[0]
    segs = [Segment(i * 256 * 1024, 64 * 1024) for i in range(8)]

    def body():
        yield from batch_io(client, f, segs, "R", stream_id=1)

    sim.run_until_event(sim.process(body()))
    assert client.bytes_read == 8 * 64 * 1024
    assert cluster.total_bytes_served() == 8 * 64 * 1024


def test_batch_io_one_message_per_server():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    f = cluster.fs.create("l.dat", 4 * 1024 * 1024)
    client = cluster.clients[0]
    # Segments covering all 3 servers.
    segs = [Segment(i * 64 * 1024, 64 * 1024) for i in range(6)]
    before = [ds.n_requests for ds in cluster.data_servers]

    def body():
        yield from batch_io(client, f, segs, "R", stream_id=1)

    sim.run_until_event(sim.process(body()))
    # Each server received its pieces as one list call: n_requests counts
    # pieces, and each server got exactly 2 of the 6 stripes.
    after = [ds.n_requests - b for ds, b in zip(cluster.data_servers, before)]
    assert sorted(after) == [1, 1, 1]  # coalesced per server into one run


def test_batch_io_write():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    f = cluster.fs.create("w.dat", 1024 * 1024)
    client = cluster.clients[0]

    def body():
        yield from batch_io(client, f, [Segment(0, 512 * 1024)], "W", stream_id=1)

    sim.run_until_event(sim.process(body()))
    assert client.bytes_written == 512 * 1024


def test_batch_io_rejects_out_of_file():
    cluster = build_cluster(small_spec())
    f = cluster.fs.create("s.dat", 64 * 1024)
    client = cluster.clients[0]
    with pytest.raises(ValueError):
        list(batch_io(client, f, [Segment(0, 128 * 1024)], "R", 0))


def test_batch_io_empty_noop():
    cluster = build_cluster(small_spec())
    f = cluster.fs.create("e.dat", 64 * 1024)
    assert list(batch_io(cluster.clients[0], f, [], "R", 0)) == []


# ------------------------------------------------------------ engines


def test_vanilla_engine_runs_strided_workload():
    res = run_experiment(
        [JobSpec("v", 4, Noncontig(elmtcount=16, n_rows=64).with_ncols_hint(4),
                 strategy="vanilla")],
        cluster_spec=small_spec(),
    )
    j = res.jobs[0]
    assert j.bytes_read == 64 * 4 * 16 * 4
    assert j.elapsed_s > 0


def test_collective_engine_aggregates():
    res = run_experiment(
        [JobSpec("c", 4, Noncontig(elmtcount=16, n_rows=64, collective=True)
                 .with_ncols_hint(4), strategy="collective")],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    assert eng.n_collective_calls > 0
    assert eng.exchange_bytes > 0
    assert res.jobs[0].bytes_read == 64 * 4 * 16 * 4


def test_collective_faster_than_vanilla_on_noncontig():
    w = lambda: Noncontig(elmtcount=16, n_rows=256, bytes_per_call=64 * 1024).with_ncols_hint(4)
    r_v = run_experiment([JobSpec("v", 4, w(), strategy="vanilla")], cluster_spec=small_spec())
    r_c = run_experiment([JobSpec("c", 4, w(), strategy="collective")], cluster_spec=small_spec())
    assert r_c.jobs[0].elapsed_s < r_v.jobs[0].elapsed_s


def test_collective_write_round_trip():
    res = run_experiment(
        [JobSpec("cw", 4, MpiIoTest(file_size=2 * 1024 * 1024, op="W"),
                 strategy="collective")],
        cluster_spec=small_spec(),
    )
    assert res.jobs[0].bytes_written == 2 * 1024 * 1024


def test_prefetch_engine_hides_io_when_compute_bound():
    """Strategy 2's reason to exist: with plenty of compute, prefetching
    hides I/O almost entirely."""
    w = lambda cpc: SyntheticPattern(
        file_size=2 * 1024 * 1024, request_bytes=64 * 1024, compute_per_call=cpc
    )
    r_v = run_experiment([JobSpec("v", 2, w(0.01), strategy="vanilla")],
                         cluster_spec=small_spec())
    r_p = run_experiment([JobSpec("p", 2, w(0.01), strategy="prefetch")],
                         cluster_spec=small_spec())
    assert r_p.jobs[0].elapsed_s < r_v.jobs[0].elapsed_s
    eng = r_p.mpi_jobs[0].engine
    assert eng.n_prefetch_hits > 0


def test_prefetch_engine_handles_writes_directly():
    res = run_experiment(
        [JobSpec("pw", 2, SyntheticPattern(file_size=1024 * 1024, op="W"),
                 strategy="prefetch")],
        cluster_spec=small_spec(),
    )
    assert res.jobs[0].bytes_written == 1024 * 1024


def test_data_sieving_read_option():
    res = run_experiment(
        [JobSpec("ds", 2, Noncontig(elmtcount=16, n_rows=32).with_ncols_hint(2),
                 strategy="vanilla",
                 engine_kwargs=dict(data_sieving_reads=True))],
        cluster_spec=small_spec(),
    )
    # Sieving reads the covering extent; servers served more than requested.
    assert res.cluster.total_bytes_served() >= res.jobs[0].bytes_read
