"""Tests for zoned (ZBR) disk geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskDrive, DiskGeometry, DiskParams
from repro.sim import Simulator


def test_single_zone_unchanged():
    geo = DiskGeometry(total_sectors=9600, sectors_per_track=1200, heads=4)
    assert geo.n_zones == 1
    assert geo.sectors_per_track_at(0) == 1200
    assert geo.sectors_per_track_at(9599) == 1200


def test_zoned_outer_denser_than_inner():
    geo = DiskGeometry(
        total_sectors=1_000_000, sectors_per_track=1200, heads=4,
        n_zones=4, inner_track_ratio=0.5,
    )
    assert geo.sectors_per_track_at(0) == 1200
    assert geo.sectors_per_track_at(999_999) == 600
    # Monotone non-increasing across zones.
    spts = [geo.sectors_per_track_at(lbn) for lbn in range(0, 1_000_000, 100_000)]
    assert all(b <= a for a, b in zip(spts, spts[1:]))


def test_zoned_cylinder_mapping_monotone():
    geo = DiskGeometry(
        total_sectors=1_000_000, sectors_per_track=1000, heads=2,
        n_zones=3, inner_track_ratio=0.5,
    )
    cyls = [geo.cylinder_of(lbn) for lbn in range(0, 1_000_000, 50_000)]
    assert all(b >= a for a, b in zip(cyls, cyls[1:]))
    assert geo.cylinder_of(0) == 0
    assert geo.cylinder_of(999_999) <= geo.n_cylinders - 1


def test_inner_zone_has_more_cylinders_per_sector():
    """Same capacity on inner tracks spans more cylinders."""
    geo = DiskGeometry(
        total_sectors=900_000, sectors_per_track=1200, heads=2,
        n_zones=3, inner_track_ratio=0.5,
    )
    span = 100_000
    outer_cyls = geo.cylinder_of(span) - geo.cylinder_of(0)
    inner_cyls = geo.cylinder_of(899_999) - geo.cylinder_of(899_999 - span)
    assert inner_cyls > outer_cyls


def test_zoned_angle_in_range():
    geo = DiskGeometry(
        total_sectors=500_000, sectors_per_track=1000, heads=2,
        n_zones=4, inner_track_ratio=0.6,
    )
    for lbn in range(0, 500_000, 33_333):
        assert 0.0 <= geo.angle_of(lbn) < 1.0


def test_zoned_validation():
    with pytest.raises(ValueError):
        DiskGeometry(total_sectors=1000, n_zones=0)
    with pytest.raises(ValueError):
        DiskGeometry(total_sectors=1000, inner_track_ratio=0.0)
    with pytest.raises(ValueError):
        DiskGeometry(total_sectors=1000, inner_track_ratio=1.5)


def test_zoned_drive_outer_streams_faster():
    def stream_time(lbn):
        sim = Simulator()
        drive = DiskDrive(
            sim,
            DiskParams(capacity_bytes=2 * 10**9, n_zones=4, inner_track_ratio=0.5),
        )

        def proc():
            pos = lbn
            for _ in range(32):
                yield from drive.service(pos, 256)
                pos += 256

        sim.run_until_event(sim.process(proc()))
        return sim.now

    outer = stream_time(0)
    inner = stream_time(3_500_000)
    assert inner > outer * 1.5  # ~2x slower at half the track density


@given(lbn=st.integers(min_value=0, max_value=999_999))
@settings(max_examples=100, deadline=None)
def test_zone_lookup_consistency_property(lbn):
    """Every LBN maps into exactly the zone whose range contains it."""
    geo = DiskGeometry(
        total_sectors=1_000_000, sectors_per_track=1200, heads=4,
        n_zones=5, inner_track_ratio=0.5,
    )
    spt = geo.sectors_per_track_at(lbn)
    assert 600 <= spt <= 1200
    cyl = geo.cylinder_of(lbn)
    assert 0 <= cyl < geo.n_cylinders
