"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(3.5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [3.5]
    assert sim.now == 3.5


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="payload")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_truncates():
    sim = Simulator()
    hits = []

    def proc():
        while True:
            yield sim.timeout(1.0)
            hits.append(sim.now)

    sim.process(proc())
    sim.run(until=5.5)
    assert hits == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert sim.now == 5.5


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(3, "c"))
    sim.process(proc(1, "a"))
    sim.process(proc(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    """Ties in time resolve in creation order (determinism)."""
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(proc(tag))
    sim.run()
    assert order == list("abcde")


def test_process_return_value():
    sim = Simulator()

    def inner():
        yield sim.timeout(2)
        return 42

    def outer(results):
        val = yield sim.process(inner())
        results.append(val)

    results = []
    sim.process(outer(results))
    sim.run()
    assert results == [42]


def test_waiting_on_finished_process():
    """Joining an already-completed process returns immediately."""
    sim = Simulator()

    def quick():
        return 7
        yield  # pragma: no cover

    def waiter(results, proc):
        yield sim.timeout(5)
        val = yield proc
        results.append((sim.now, val))

    results = []
    p = sim.process(quick())
    sim.process(waiter(results, p))
    sim.run()
    assert results == [(5, 7)]


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def trigger():
        yield sim.timeout(4)
        ev.succeed("go")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == ["go"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1)
        ev.fail(ValueError("boom"))

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("kaput")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="kaput"):
        sim.run()


def test_yield_non_event_rejected():
    sim = Simulator()

    def bad():
        yield 17

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    def attacker(p):
        yield sim.timeout(3)
        p.interrupt("deadline")

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert log == [(3, "deadline")]


def test_interrupt_then_rewait():
    """After an interrupt the victim can wait on a fresh event."""
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt:
            yield sim.timeout(2)
            log.append(sim.now)

    def attacker(p):
        yield sim.timeout(3)
        p.interrupt()

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert log == [5]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    def attacker(p):
        yield sim.timeout(5)
        with pytest.raises(SimulationError):
            p.interrupt()

    p = sim.process(quick())
    sim.process(attacker(p))
    sim.run()


def test_self_interrupt_rejected():
    sim = Simulator()

    def selfish():
        me = sim.active_process
        with pytest.raises(SimulationError):
            me.interrupt()
        yield sim.timeout(1)

    sim.process(selfish())
    sim.run()


def test_all_of_waits_for_all():
    sim = Simulator()
    got = []

    def waiter():
        evs = [sim.timeout(t, value=t) for t in (5, 1, 3)]
        res = yield all_of(sim, evs)
        got.append((sim.now, sorted(res.values())))

    sim.process(waiter())
    sim.run()
    assert got == [(5, [1, 3, 5])]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def waiter():
        evs = [sim.timeout(t, value=t) for t in (5, 1, 3)]
        res = yield any_of(sim, evs)
        got.append((sim.now, list(res.values())))

    sim.process(waiter())
    sim.run()
    assert got == [(1, [1])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def waiter():
        res = yield all_of(sim, [])
        got.append(res)

    sim.process(waiter())
    sim.run()
    assert got == [{}]


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        any_of(sim, [])


def test_run_until_event():
    sim = Simulator()

    def proc():
        yield sim.timeout(7)
        return "done"

    p = sim.process(proc())
    assert sim.run_until_event(p) == "done"
    assert sim.now == 7


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    ev = sim.event()  # never triggered

    def waiter():
        yield ev

    p = sim.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_event(p)


def test_peek():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(9)
    assert sim.peek() == 9


def test_step_empty_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_process_trees():
    """A process spawning children and joining them all."""
    sim = Simulator()

    def leaf(d):
        yield sim.timeout(d)
        return d * 10

    def parent(results):
        kids = [sim.process(leaf(d)) for d in (1, 2, 3)]
        res = yield all_of(sim, kids)
        results.append(sorted(res.values()))

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == [[10, 20, 30]]
    assert sim.now == 3
