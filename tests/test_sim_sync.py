"""Unit tests for sync primitives (Gate, SimBarrier, Semaphore)."""

import pytest

from repro.sim import Gate, Semaphore, SimBarrier, SimulationError, Simulator


# ------------------------------------------------------------------- Gate


def test_gate_open_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, opened=True)
    log = []

    def proc():
        yield gate.wait()
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [0]


def test_gate_closed_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim, opened=False)
    log = []

    def waiter():
        yield gate.wait()
        log.append(sim.now)

    def opener():
        yield sim.timeout(6)
        gate.open()

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [6]


def test_gate_reusable_close_open_cycles():
    sim = Simulator()
    gate = Gate(sim, opened=False)
    log = []

    def worker():
        for _ in range(3):
            yield gate.wait()
            log.append(sim.now)
            # controller closes it again right after release

    def controller():
        for t in (1, 2, 3):
            yield sim.timeout(1)
            gate.open()
            gate.close()

    sim.process(worker())
    sim.process(controller())
    sim.run()
    assert log == [1, 2, 3]


def test_gate_open_releases_all_waiters():
    sim = Simulator()
    gate = Gate(sim, opened=False)
    released = []

    def waiter(tag):
        yield gate.wait()
        released.append(tag)

    for tag in "abc":
        sim.process(waiter(tag))

    def opener():
        yield sim.timeout(1)
        gate.open()

    sim.process(opener())
    sim.run()
    assert sorted(released) == ["a", "b", "c"]


def test_gate_is_open_flag():
    sim = Simulator()
    gate = Gate(sim, opened=False)
    assert not gate.is_open
    gate.open()
    assert gate.is_open
    gate.close()
    assert not gate.is_open


# ---------------------------------------------------------------- Barrier


def test_barrier_releases_all_when_full():
    sim = Simulator()
    bar = SimBarrier(sim, parties=3)
    log = []

    def party(tag, delay):
        yield sim.timeout(delay)
        yield bar.arrive()
        log.append((tag, sim.now))

    sim.process(party("a", 1))
    sim.process(party("b", 2))
    sim.process(party("c", 5))
    sim.run()
    assert all(t == 5 for _, t in log)
    assert sorted(tag for tag, _ in log) == ["a", "b", "c"]


def test_barrier_reusable_generations():
    sim = Simulator()
    bar = SimBarrier(sim, parties=2)
    log = []

    def party(tag):
        for i in range(3):
            yield sim.timeout(1)
            gen = yield bar.arrive()
            log.append((tag, gen))

    sim.process(party("x"))
    sim.process(party("y"))
    sim.run()
    assert bar.generation == 3
    assert log.count(("x", 1)) == 1 and log.count(("y", 3)) == 1


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    bar = SimBarrier(sim, parties=1)
    log = []

    def solo():
        yield bar.arrive()
        log.append(sim.now)

    sim.process(solo())
    sim.run()
    assert log == [0]


def test_barrier_bad_parties():
    sim = Simulator()
    with pytest.raises(SimulationError):
        SimBarrier(sim, parties=0)


def test_barrier_n_waiting():
    sim = Simulator()
    bar = SimBarrier(sim, parties=3)

    def party():
        yield bar.arrive()

    sim.process(party())
    sim.process(party())
    sim.run()
    assert bar.n_waiting == 2


# --------------------------------------------------------------- Semaphore


def test_semaphore_acquire_release():
    sim = Simulator()
    sem = Semaphore(sim, value=1)
    order = []

    def user(tag):
        yield sem.acquire()
        order.append(("in", tag, sim.now))
        yield sim.timeout(2)
        sem.release()

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert order == [("in", "a", 0), ("in", "b", 2)]


def test_semaphore_counting():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    times = []

    def user():
        yield sem.acquire()
        times.append(sim.now)
        yield sim.timeout(3)
        sem.release()

    for _ in range(4):
        sim.process(user())
    sim.run()
    assert times == [0, 0, 3, 3]


def test_semaphore_release_without_waiter_increments():
    sim = Simulator()
    sem = Semaphore(sim, value=0)
    sem.release()
    assert sem.value == 1


def test_semaphore_negative_value_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Semaphore(sim, value=-1)
