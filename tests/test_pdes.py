"""Conservative parallel DES stays bit-identical to the serial run.

The engine's contract (see ``repro.sim.pdes.engine``) is that one model
produces the same results in every execution mode -- serial shared-sim
(``workers=0``), inline windowed (``workers=1``), and forked multiprocess
(``workers>=2``) -- and for every worker count.  Evidence layers:

1. Unit tests over the construction/validation surface (LPs, channels,
   lookahead, handlers) and the ``Simulator.run_below`` kernel primitive
   the windowed backends are built on.
2. A scripted multi-LP interpreter (collision-heavy timestamps,
   same-time cross-sends) whose per-LP receive logs must match across
   modes -- the ``test_equeue`` lockstep pattern lifted to LPs.
3. A Hypothesis property: on arbitrary positive-lookahead graphs with
   seeded message workloads the protocol terminates (no deadlock,
   clocks advance) and windowed mode reproduces serial results.
4. The sharded PFS cell: result digests bit-identical across worker
   counts, under the ownership checker, and under observation.
5. The wiring: ``Simulator(workers=)``/``REPRO_SIM_WORKERS``,
   ``run_experiment`` fallback, bench-cache fingerprint keying, the
   ``repro pdes`` CLI, and the ``check_pdes`` regression gate.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator
from repro.sim.pdes import (
    CellParams,
    PdesEngine,
    PdesError,
    run_sharded_cell,
)

#: A small but non-trivial cell: requests stripe over both servers and
#: both client nodes barrier against each other through the meta LP.
SMALL_CELL = dict(
    n_servers=2,
    n_client_nodes=2,
    n_ranks=4,
    file_size=1024 * 1024,
    request_bytes=64 * 1024,
)


# -- construction & validation ------------------------------------------


def test_engine_rejects_bad_workers():
    with pytest.raises(PdesError):
        PdesEngine(workers=-1)
    with pytest.raises(PdesError):
        PdesEngine(workers=1.5)  # type: ignore[arg-type]


def test_duplicate_lp_name_rejected():
    eng = PdesEngine()
    eng.add_lp("a")
    with pytest.raises(PdesError, match="duplicate"):
        eng.add_lp("a")


def test_channel_validation():
    eng = PdesEngine()
    a, b = eng.add_lp("a"), eng.add_lp("b")
    with pytest.raises(PdesError, match="unknown"):
        eng.connect(0, 7, 1.0)
    with pytest.raises(PdesError, match="distinct"):
        eng.connect(a, a, 1.0)
    for bad in (0.0, -1.0, float("nan")):
        with pytest.raises(PdesError, match="lookahead"):
            eng.connect(a, b, bad)
    # Repeat declarations keep the minimum lookahead.
    eng.connect(a, b, 2.0)
    ch = eng.connect(a, b, 0.5)
    assert ch.lookahead == 0.5
    assert eng.connect(a, b, 1.0).lookahead == 0.5


def test_send_requires_channel_and_handler():
    eng = PdesEngine()
    a, b = eng.add_lp("a"), eng.add_lp("b")
    with pytest.raises(PdesError, match="no channel"):
        a.send(b, "ping")
    eng.connect(a, b, 1.0)
    with pytest.raises(PdesError, match="extra_delay"):
        a.send(b, "ping", extra_delay=-0.5)
    # Serial mode injects eagerly, so a missing handler fails at send.
    with pytest.raises(PdesError, match="no handler"):
        a.send(b, "ping")
    b.on("ping", lambda m: None)
    with pytest.raises(PdesError, match="already handles"):
        b.on("ping", lambda m: None)


def test_run_preconditions():
    eng = PdesEngine()
    with pytest.raises(PdesError, match="no logical processes"):
        eng.run()
    eng2 = PdesEngine()
    eng2.add_lp("a")
    eng2.run()
    with pytest.raises(PdesError, match="once"):
        eng2.run()


# -- Simulator.run_below / workers plumbing ------------------------------


def test_run_below_dispatches_strictly_below_limit():
    sim = Simulator()
    fired = []
    for t in (0.0, 1.0, 2.0, 2.0, 3.0):

        def body(delay=t):
            yield sim.timeout(delay)
            fired.append(delay)

        sim.process(body())
    n = sim.run_below(2.0)
    assert fired == [0.0, 1.0]
    assert n >= 2  # process starts count as dispatches too
    rest = sim.run_below(float("inf"))
    assert fired == [0.0, 1.0, 2.0, 2.0, 3.0]
    assert rest >= 3
    assert sim.now == 3.0
    # Idempotent on an empty queue.
    assert sim.run_below(float("inf")) == 0


def test_simulator_workers_validation(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_WORKERS", raising=False)
    assert Simulator().workers == 1
    assert Simulator(workers=4).workers == 4
    for bad in (0, -2, 2.5, "three"):
        with pytest.raises(SimulationError):
            Simulator(workers=bad)  # type: ignore[arg-type]
    monkeypatch.setenv("REPRO_SIM_WORKERS", "8")
    assert Simulator().workers == 8
    assert Simulator(workers=2).workers == 2  # explicit beats env
    monkeypatch.setenv("REPRO_SIM_WORKERS", "zeppelin")
    with pytest.raises(SimulationError):
        Simulator()


# -- scripted lockstep interpreter across modes --------------------------

#: Collision-heavy send script: (sender, receiver, send_time, extra_delay).
#: Lookahead is 0.25 everywhere, so several messages land at the same
#: destination timestamp from different senders -- the tie-break surface.
SCRIPT = [
    ("a", "b", 0.0, 0.0),
    ("a", "b", 0.0, 0.0),  # same (t, src): seq must order them
    ("c", "b", 0.0, 0.0),  # same t, larger src id: runs after a's pair
    ("b", "c", 0.0, 0.75),
    ("a", "c", 0.5, 0.5),  # lands with b->c at t=1.0
    ("c", "a", 1.0, 0.0),
    ("b", "a", 0.25, 1.0),  # also lands at t=1.5... after c (src order: b<c? b=1,c=2)
    ("a", "b", 2.0, 0.0),
]


def _build_scripted(workers: int):
    """Three LPs running SCRIPT; each LP logs (now, kind, payload)."""
    eng = PdesEngine(workers=workers)
    lps = {name: eng.add_lp(name) for name in ("a", "b", "c")}
    for s in lps.values():
        for d in lps.values():
            if s is not d:
                eng.connect(s, d, 0.25)

    logs: dict[str, list] = {name: [] for name in lps}
    for name, lp in lps.items():

        def receive(m, name=name, lp=lp):
            logs[name].append((lp.sim.now, m.kind, m.payload))

        lp.on("msg", receive)
        lp.result_fn = lambda name=name: logs[name]

    for i, (src, dst, t_send, extra) in enumerate(SCRIPT):

        def driver(src=src, dst=dst, t_send=t_send, extra=extra, i=i):
            lp = lps[src]
            yield lp.sim.timeout(t_send)
            lp.send(lps[dst], "msg", payload=(i,), extra_delay=extra)

        lps[src].sim.process(driver(), name=f"driver{i}")
    return eng


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_scripted_interpreter_lockstep(workers):
    serial = _build_scripted(0)
    serial.run()
    eng = _build_scripted(workers)
    eng.run()
    assert eng.lp_results == serial.lp_results
    assert list(eng.lp_results) == ["a", "b", "c"]  # stable LP order
    assert eng.stats.committed == serial.stats.committed
    assert serial.stats.rounds == 0
    assert eng.stats.rounds > 0


def test_same_time_messages_order_by_src_then_seq():
    eng = _build_scripted(0)
    eng.run()
    b_log = eng.lp_results["b"]
    # At t=0.25 LP b receives a's two sends (seq order) then c's.
    at_025 = [entry for entry in b_log if entry[0] == 0.25]
    assert [p for _, _, (p,) in at_025] == [0, 1, 2]


def test_protocol_stats_placement_invariant():
    one = _build_scripted(1)
    one.run()
    two = _build_scripted(2)
    two.run()
    for fieldname in ("rounds", "null_messages", "payload_messages", "horizon_stalls"):
        assert getattr(one.stats, fieldname) == getattr(two.stats, fieldname), fieldname


def test_until_caps_execution():
    eng = _build_scripted(0)
    eng.run(until=1.0)
    for log in eng.lp_results.values():
        assert all(t < 1.0 for t, _, _ in log)
    eng1 = _build_scripted(1)
    eng1.run(until=1.0)
    assert eng1.lp_results == eng.lp_results


# -- Hypothesis: no deadlock on arbitrary positive-lookahead graphs ------


@st.composite
def lp_graphs(draw):
    """A random LP graph + seeded relay workload, fully data-driven so
    the same drawn value builds the identical model in every mode."""
    n = draw(st.integers(min_value=2, max_value=5))
    all_edges = [(s, d) for s in range(n) for d in range(n) if s != d]
    edges = draw(
        st.lists(st.sampled_from(all_edges), min_size=1, max_size=8, unique=True)
    )
    lookaheads = {
        e: draw(st.floats(min_value=0.05, max_value=2.0, allow_nan=False))
        for e in edges
    }
    # Each LP relays an incoming token along a fixed out-edge (or drops
    # it); initial tokens start on drawn edges with bounded hop budgets.
    out_edge = {}
    for lp_id in range(n):
        outs = [d for s, d in edges if s == lp_id]
        out_edge[lp_id] = draw(st.sampled_from(outs)) if outs else None
    seeds = draw(
        st.lists(
            st.tuples(
                st.sampled_from(edges),
                st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return n, lookaheads, out_edge, seeds


def _build_relay(workers, spec):
    n, lookaheads, out_edge, seeds = spec
    eng = PdesEngine(workers=workers)
    lps = [eng.add_lp(f"lp{i}") for i in range(n)]
    for (s, d), la in lookaheads.items():
        eng.connect(lps[s], lps[d], la)

    logs: dict[str, list] = {lp.name: [] for lp in lps}
    for lp in lps:

        def receive(m, lp=lp):
            logs[lp.name].append((lp.sim.now, m.payload))
            ttl = m.payload[0]
            nxt = out_edge[lp.lp_id]
            if ttl > 0 and nxt is not None:
                lp.send(nxt, "token", payload=(ttl - 1,))

        lp.on("token", receive)
        lp.result_fn = lambda lp=lp: logs[lp.name]

    for i, ((src, dst), delay, ttl) in enumerate(seeds):

        def driver(src=src, dst=dst, delay=delay, ttl=ttl):
            lp = lps[src]
            yield lp.sim.timeout(delay)
            lp.send(dst, "token", payload=(ttl,))

        lps[src].sim.process(driver(), name=f"seed{i}")
    return eng


@settings(max_examples=40, deadline=None)
@given(spec=lp_graphs())
def test_relay_never_deadlocks_and_matches_serial(spec):
    serial = _build_relay(0, spec)
    serial.run()  # a deadlock would raise PdesDeadlock
    windowed = _build_relay(1, spec)
    windowed.run()
    assert windowed.lp_results == serial.lp_results
    assert windowed.stats.committed == serial.stats.committed
    # Conservative execution ran everything: every LP that received a
    # token advanced its clock at least to its last receipt (local
    # driver events may push it further).
    for name, log in windowed.lp_results.items():
        if log:
            assert windowed.stats.per_lp_clock[name] >= log[-1][0]


# -- the sharded PFS cell ------------------------------------------------


@pytest.mark.parametrize("op", ["R", "W"])
def test_cell_digest_matrix(op):
    params = CellParams(op=op, **SMALL_CELL)
    serial = run_sharded_cell(params, workers=0)
    assert serial.stats.mode == "serial"
    assert serial.events > 0 and serial.elapsed_s > 0
    for workers in (1, 2):
        res = run_sharded_cell(params, workers=workers)
        assert res.digest == serial.digest, f"workers={workers} diverged"
        assert res.results == serial.results
        assert res.events == serial.events


def test_cell_digest_covers_model_not_protocol():
    params = CellParams(**SMALL_CELL)
    one = run_sharded_cell(params, workers=1)
    assert one.stats.rounds > 0
    assert one.stats.null_messages > 0
    # Different op -> different model -> different digest.
    other = run_sharded_cell(CellParams(op="W", **SMALL_CELL), workers=0)
    assert other.digest != one.digest


def test_cell_under_ownership_checker(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_OWNERSHIP", "1")
    params = CellParams(**SMALL_CELL)
    serial = run_sharded_cell(params, workers=0)
    sharded = run_sharded_cell(params, workers=1)
    assert sharded.digest == serial.digest
    # The checker really ran: build the serial engine directly and count.
    from repro.sim.pdes.cell import _build

    eng = PdesEngine(workers=0)
    _build(eng, params)
    eng.run()
    assert eng.sim is not None
    san = eng.sim._sanitizer
    assert san is not None and san.ownership is not None
    assert san.ownership.n_checks > 0


def test_cell_observed_run_is_bit_identical():
    from repro.obs import Observability

    params = CellParams(**SMALL_CELL)
    plain = run_sharded_cell(params, workers=0)
    obs = Observability()
    observed = run_sharded_cell(params, workers=0, observe=obs)
    assert observed.digest == plain.digest
    snap = obs.snapshot(observed.stats.end_time)
    assert snap["counters"]["pdes.commits"] == observed.stats.committed
    assert snap["counters"]["pdes.payload_messages"] > 0
    # Per-LP delivery spans landed on the tracer.
    names = {rec.name for rec in obs.tracer.spans}
    assert "pdes.deliver" in names


# -- wiring: runner, fingerprint, CLI, gate ------------------------------


def _tiny_job():
    from repro import JobSpec, MpiIoTest

    return JobSpec("j", 4, MpiIoTest(file_size=1 << 20), strategy="vanilla")


def test_run_experiment_workers_falls_back_serially():
    from repro import run_experiment
    from repro.cluster import paper_spec
    from repro.obs import Observability

    spec = paper_spec(n_compute_nodes=2, n_data_servers=2)
    obs = Observability()
    sharded = run_experiment(
        [_tiny_job()], cluster_spec=spec, observe=obs, workers=4
    )
    plain = run_experiment([_tiny_job()], cluster_spec=spec)
    assert sharded.makespan_s == plain.makespan_s
    assert sharded.metrics is not None
    assert sharded.metrics["counters"]["pdes.fallback"] == 1
    # A one-worker run is the plain serial kernel: no fallback recorded.
    obs2 = Observability()
    one = run_experiment([_tiny_job()], cluster_spec=spec, observe=obs2, workers=1)
    assert one.metrics is not None
    assert "pdes.fallback" not in one.metrics["counters"]


def test_fingerprint_keys_on_workers():
    from repro.runner.parallel import ExperimentSpec, experiment_fingerprint

    default = experiment_fingerprint(ExperimentSpec([_tiny_job()]))
    one = experiment_fingerprint(ExperimentSpec([_tiny_job()], workers=1))
    four = experiment_fingerprint(ExperimentSpec([_tiny_job()], workers=4))
    assert default == one  # workers=1 is the plain serial kernel
    assert four != default


def test_cli_pdes_verify_json(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.delenv("REPRO_SIM_WORKERS", raising=False)
    digest_file = tmp_path / "digest.txt"
    rc = main(
        [
            "pdes",
            "--verify",
            "--json",
            "--workers",
            "2",
            "--servers",
            "2",
            "--client-nodes",
            "2",
            "--ranks",
            "4",
            "--size-mb",
            "1",
            "--digest-out",
            str(digest_file),
        ]
    )
    assert rc == 0
    legs = json.loads(capsys.readouterr().out)
    assert [leg["label"] for leg in legs] == ["serial", "workers=2"]
    assert legs[0]["digest"] == legs[1]["digest"]
    assert legs[1]["stats"]["mode"] == "sharded"
    assert digest_file.read_text().strip() == legs[0]["digest"]


def test_check_pdes_gate(tmp_path):
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
    try:
        import check_pdes
    finally:
        sys.path.pop(0)

    baseline = {
        "serial": {"events_per_sec": 100_000.0},
        "workers": {"2": {"speedup": 1.0}, "8": {"speedup": 2.0}},
        "tolerance": 0.25,
    }
    good = {
        "serial": {"events_per_sec": 90_000.0},
        "workers": {"2": {"speedup": 0.9}, "8": {"speedup": 1.8}},
    }
    ok, report = check_pdes.check(good, baseline, 0.25)
    assert ok and all(c["ok"] for c in report["checks"])

    # >25% speedup drop on one leg fails the whole gate.
    bad = {
        "serial": {"events_per_sec": 90_000.0},
        "workers": {"2": {"speedup": 0.9}, "8": {"speedup": 1.4}},
    }
    ok, report = check_pdes.check(bad, baseline, 0.25)
    assert not ok
    failed = [c["name"] for c in report["checks"] if not c["ok"]]
    assert failed == ["speedup_workers_8"]

    # A missing worker leg is a failure, not a silent skip.
    ok, _ = check_pdes.check({"serial": {"events_per_sec": 90_000.0}}, baseline, 0.25)
    assert not ok

    # End-to-end through main(): --from a measured file + custom baseline.
    bpath = tmp_path / "baseline.json"
    bpath.write_text(json.dumps(baseline))
    for payload, want in ((good, 0), (bad, 1)):
        mpath = tmp_path / "measured.json"
        mpath.write_text(json.dumps(payload))
        rc = check_pdes.main(["--baseline", str(bpath), "--from", str(mpath)])
        assert rc == want
