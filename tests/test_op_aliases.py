"""Workload constructors accept case-insensitive 'read'/'write' aliases."""

from __future__ import annotations

import pytest

from repro import (
    Btio,
    Hpio,
    IorMpiIo,
    JobSpec,
    MpiIoTest,
    Noncontig,
    SyntheticPattern,
    run_experiment,
)
from repro.cluster import paper_spec
from repro.workloads import normalize_op


@pytest.mark.parametrize(
    "alias,expected",
    [
        ("R", "R"),
        ("r", "R"),
        ("read", "R"),
        ("READ", "R"),
        (" Read ", "R"),
        ("W", "W"),
        ("w", "W"),
        ("write", "W"),
        ("WRITE", "W"),
    ],
)
def test_normalize_op(alias, expected):
    assert normalize_op(alias) == expected


@pytest.mark.parametrize("bad", ["", "X", "rw", "readwrite", 3, None])
def test_normalize_op_rejects_junk(bad):
    with pytest.raises(ValueError):
        normalize_op(bad)


@pytest.mark.parametrize(
    "factory",
    [
        lambda op: MpiIoTest(file_size=1024 * 1024, op=op),
        lambda op: IorMpiIo(file_size=1024 * 1024, op=op),
        lambda op: Noncontig(elmtcount=16, n_rows=64, op=op),
        lambda op: Hpio(region_count=8, op=op),
        lambda op: Btio(total_bytes=1024 * 1024, n_steps=2, op=op),
        lambda op: SyntheticPattern(file_size=1024 * 1024, op=op),
    ],
)
@pytest.mark.parametrize("alias,expected", [("read", "R"), ("Write", "W")])
def test_workloads_accept_aliases(factory, alias, expected):
    assert factory(alias).op == expected


def test_workloads_reject_bad_op():
    with pytest.raises(ValueError):
        MpiIoTest(op="sideways")


def test_mpi_io_test_read_alias_runs():
    # The originally-reported ergonomics bug: MpiIoTest(op="read") raised.
    res = run_experiment(
        [
            JobSpec(
                "m",
                4,
                MpiIoTest(file_size=1024 * 1024, op="read"),
                strategy="vanilla",
            )
        ],
        cluster_spec=paper_spec(n_compute_nodes=4),
    )
    assert res.jobs[0].bytes_read > 0
    assert res.jobs[0].bytes_written == 0
