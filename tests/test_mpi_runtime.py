"""Tests for the MPI runtime: jobs, ranks, barriers, metrics."""

import math

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.disk.drive import DiskParams
from repro.mpi.ops import BarrierOp, ComputeOp, IoOp, Segment
from repro.mpi.runtime import MpiJob, MpiRuntime
from repro.mpiio.engine import IndependentEngine
from repro.workloads import SyntheticPattern
from repro.workloads.base import FileSpec, Workload


def small_runtime(n_nodes=2, n_servers=3):
    cluster = build_cluster(
        ClusterSpec(
            n_compute_nodes=n_nodes,
            n_data_servers=n_servers,
            disk=DiskParams(capacity_bytes=2 * 10**9),
        )
    )
    return MpiRuntime(cluster)


class ScriptedWorkload(Workload):
    """Same scripted op list for every rank."""

    name = "scripted"

    def __init__(self, ops_list, file_size=1024 * 1024):
        self._ops = ops_list
        self._file_size = file_size

    def ops(self, rank, size):
        return iter(list(self._ops))

    def files(self):
        return [FileSpec("scripted.dat", self._file_size)]


def vanilla(rt, job):
    return IndependentEngine(rt, job)


def launch(runtime, workload, nprocs=2, name="job"):
    for f in workload.files():
        if not runtime.cluster.fs.exists(f.name):
            runtime.cluster.fs.create(f.name, f.size)
    return runtime.launch(name, nprocs, workload, vanilla)


def test_job_runs_to_completion():
    rt = small_runtime()
    job = launch(rt, SyntheticPattern(file_size=512 * 1024))
    rt.run_to_completion()
    assert job.finished
    assert job.elapsed_s > 0
    assert job.total_io_bytes() == 512 * 1024


def test_job_throughput_and_io_ratio():
    rt = small_runtime()
    job = launch(rt, SyntheticPattern(file_size=512 * 1024, compute_per_call=0.001))
    rt.run_to_completion()
    assert job.throughput_mb_s() > 0
    assert 0 < job.mean_io_ratio() < 1


def test_compute_op_advances_clock_exactly():
    rt = small_runtime()
    job = launch(rt, ScriptedWorkload([ComputeOp(0.25), ComputeOp(0.25)]), nprocs=1)
    rt.run_to_completion()
    assert job.elapsed_s == pytest.approx(0.5)
    assert job.procs[0].metrics.compute_time_s == pytest.approx(0.5)


def test_barrier_synchronises_and_costs():
    rt = small_runtime()

    class Staggered(Workload):
        name = "staggered"

        def ops(self, rank, size):
            yield ComputeOp(0.1 * (rank + 1))
            yield BarrierOp()

        def files(self):
            return []

    job = launch(rt, Staggered(), nprocs=2)
    rt.run_to_completion()
    # Both ranks leave the barrier after the slowest arrival + wire cost.
    expected_cost = 2 * math.ceil(math.log2(2)) * (
        rt.cluster.spec.network.latency_s + MpiJob.MPI_HOP_OVERHEAD_S
    )
    assert job.elapsed_s == pytest.approx(0.2 + expected_cost)
    # Rank 0 waited for rank 1: its compute time includes the barrier wait.
    assert job.procs[0].metrics.compute_time_s == pytest.approx(
        0.1 + 0.1 + expected_cost
    )


def test_barrier_cost_grows_with_ranks():
    rt = small_runtime()
    j2 = MpiJob(rt, "a", 2, SyntheticPattern(), vanilla)
    j64 = MpiJob(rt, "b", 64, SyntheticPattern(), vanilla)
    assert j64._barrier_cost_s() > j2._barrier_cost_s()


def test_io_metrics_accumulate():
    rt = small_runtime()
    rt.cluster.fs.create("m.dat", 1024 * 1024)
    ops = [
        IoOp(file_name="m.dat", op="R", segments=(Segment(0, 64 * 1024),)),
        IoOp(file_name="m.dat", op="W", segments=(Segment(0, 32 * 1024),)),
    ]
    job = launch(rt, ScriptedWorkload(ops), nprocs=1)
    rt.run_to_completion()
    m = job.procs[0].metrics
    assert m.bytes_read == 64 * 1024
    assert m.bytes_written == 32 * 1024
    assert m.n_io_calls == 2
    assert m.io_time_s > 0


def test_ranks_placed_round_robin():
    rt = small_runtime(n_nodes=2)
    job = launch(rt, SyntheticPattern(file_size=256 * 1024), nprocs=4)
    rt.run_to_completion()
    assert [p.node_id for p in job.procs] == [0, 1, 0, 1]


def test_stream_ids_unique_across_jobs():
    rt = small_runtime()
    j1 = launch(rt, SyntheticPattern(file_name="a.dat", file_size=256 * 1024), name="a")
    j2 = launch(rt, SyntheticPattern(file_name="b.dat", file_size=256 * 1024), name="b")
    rt.run_to_completion()
    ids = [p.stream_id for p in j1.procs + j2.procs]
    assert len(set(ids)) == len(ids)


def test_job_rejects_zero_procs():
    rt = small_runtime()
    with pytest.raises(ValueError):
        MpiJob(rt, "bad", 0, SyntheticPattern(), vanilla)


def test_job_double_start_rejected():
    rt = small_runtime()
    job = launch(rt, SyntheticPattern(file_size=256 * 1024))
    with pytest.raises(RuntimeError):
        job.start()


def test_deferred_start():
    rt = small_runtime()
    w = SyntheticPattern(file_size=256 * 1024)
    rt.cluster.fs.create(w.file_name, w.file_size) if not rt.cluster.fs.exists(
        w.file_name
    ) else None
    job = rt.launch("late", 2, w, vanilla, start=False)
    assert job.start_time is None
    rt.sim.run(until=1.0)
    job.start()
    rt.run_to_completion()
    assert job.start_time == pytest.approx(1.0)


def test_empty_stream_rank_finishes_immediately():
    rt = small_runtime()
    job = launch(rt, ScriptedWorkload([]), nprocs=2)
    rt.run_to_completion()
    assert job.finished
    assert job.elapsed_s == 0.0
