"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_workload, main, make_parser


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    for name in WORKLOADS:
        assert name in out


def test_list_strategies(capsys):
    assert main(["list-strategies"]) == 0
    out = capsys.readouterr().out
    assert "dualpar" in out and "collective" in out


def test_build_workload_all_names():
    for name in WORKLOADS:
        w = build_workload(name, size_mb=8, op="R", nprocs=8)
        assert w.files()


def test_build_workload_unknown():
    with pytest.raises(SystemExit):
        build_workload("warp-drive", 8, "R", 8)


def test_run_small(capsys):
    rc = main(
        [
            "run",
            "--workload", "random",
            "--nprocs", "4",
            "--size-mb", "4",
            "--strategy", "vanilla",
            "--compute-nodes", "2",
            "--data-servers", "3",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "MB/s" in out and "vanilla" in out


def test_run_dualpar_shows_internals(capsys):
    rc = main(
        [
            "run",
            "--workload", "random",
            "--nprocs", "4",
            "--size-mb", "4",
            "--strategy", "dualpar-forced",
            "--compute-nodes", "2",
            "--data-servers", "3",
            "--quota-kb", "256",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "prefetch cycles" in out


def test_compare(capsys):
    rc = main(
        [
            "compare",
            "--workload", "random",
            "--nprocs", "4",
            "--size-mb", "4",
            "--strategies", "vanilla", "dualpar-forced",
            "--compute-nodes", "2",
            "--data-servers", "3",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "vanilla" in out and "dualpar-forced" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        make_parser().parse_args([])


def test_run_with_elevator_option(capsys):
    rc = main(
        [
            "run",
            "--workload", "random",
            "--nprocs", "4",
            "--size-mb", "4",
            "--strategy", "vanilla",
            "--compute-nodes", "2",
            "--data-servers", "3",
            "--elevator", "deadline",
        ]
    )
    assert rc == 0
