"""Edge-case tests: scheduler corner behaviour and kernel limits."""

import pytest

from repro.disk import DiskDrive, DiskParams
from repro.iosched import BlockLayer, CfqScheduler, DeadlineScheduler, make_scheduler
from repro.sim import SimulationError, Simulator


def make_layer(sim, sched):
    drive = DiskDrive(sim, DiskParams(capacity_bytes=2 * 10**9))
    return BlockLayer(sim, drive, sched), drive


def test_run_until_event_time_limit():
    sim = Simulator()

    def slow():
        yield sim.timeout(100)

    p = sim.process(slow())
    with pytest.raises(SimulationError, match="time limit"):
        sim.run_until_event(p, limit=1.0)


def test_cfq_async_only_workload():
    """Pure async (readahead-style) requests are served without idling."""
    sim = Simulator()
    layer, drive = make_layer(sim, CfqScheduler())

    def client():
        evs = [layer.submit(i * 1024, 64, is_async=True) for i in range(10)]
        for ev in evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    assert drive.stats.n_requests >= 1
    # Service proceeded promptly: no 8 ms idle gaps for async work.
    assert sim.now < 0.2


def test_cfq_sync_preempts_queued_async():
    """A sync request never waits behind the whole async backlog."""
    sim = Simulator()
    layer, drive = make_layer(sim, CfqScheduler())
    order = []

    def client():
        async_evs = [
            layer.submit(100_000 + i * 2048, 1024, is_async=True) for i in range(12)
        ]
        for ev in async_evs:
            def on(ev=ev):
                pass
        yield sim.timeout(0.001)
        sync_ev = layer.submit(500, 8, stream_id=1)
        t0 = sim.now
        yield sync_ev
        order.append(("sync", sim.now - t0))
        for ev in async_evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    # The sync request completed well before the ~12 x 7ms async backlog
    # would have drained.
    assert order[0][1] < 0.05


def test_cfq_think_time_disables_idling():
    """A slow-thinking stream does not earn idle windows."""
    sched = CfqScheduler(slice_idle_s=0.008)
    sim = Simulator()
    layer, drive = make_layer(sim, sched)

    def slow_reader():
        pos = 0
        for _ in range(5):
            ev = layer.submit(pos, 8, stream_id=1)
            yield ev
            yield sim.timeout(0.1)  # thinks far longer than slice_idle
            pos += 10_000

    def other():
        yield sim.timeout(0.005)
        for i in range(5):
            ev = layer.submit(400_000 + i * 1000, 8, stream_id=2)
            yield ev
            yield sim.timeout(0.1)

    p1 = sim.process(slow_reader())
    p2 = sim.process(other())
    sim.run_until_event(p1)
    sim.run_until_event(p2)
    st = sched._streams[1]
    assert st.ttime_mean > sched.slice_idle_s  # heuristic saw the gap


def test_deadline_pure_write_workload():
    sim = Simulator()
    layer, drive = make_layer(sim, DeadlineScheduler())

    def client():
        evs = [layer.submit(i * 5000, 64, op="W") for i in range(20)]
        for ev in evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    assert all(s.op == "W" for s in drive.stats.recent)


def test_anticipatory_write_does_not_anticipate():
    sim = Simulator()
    sched = make_scheduler("anticipatory")
    layer, drive = make_layer(sim, sched)

    def client():
        w = layer.submit(1000, 8, op="W", stream_id=1)
        yield w
        far = layer.submit(300_000, 8, op="R", stream_id=2)
        t0 = sim.now
        yield far
        return sim.now - t0

    p = sim.process(client())
    dt = sim.run_until_event(p)
    # No anticipation window after a write: the far read proceeds at
    # mechanical speed, not +6 ms anticipation.
    assert dt < 0.02


def test_blocklayer_interleaved_same_lbn_requests():
    """Duplicate-range requests both complete (no merging confusion)."""
    sim = Simulator()
    layer, drive = make_layer(sim, DeadlineScheduler())
    done = []

    def client():
        a = layer.submit(1000, 8)
        b = layer.submit(1000, 8)
        done.append((yield a))
        done.append((yield b))

    sim.run_until_event(sim.process(client()))
    assert len(done) == 2


def test_scheduler_len_tracks_queue():
    sim = Simulator()
    sched = CfqScheduler()
    layer, _ = make_layer(sim, sched)
    layer.submit(0, 8, stream_id=1)
    layer.submit(64, 8, stream_id=2)
    # Before dispatch runs, both are queued (merging may reduce this).
    assert 1 <= len(sched) <= 2
    sim.run(until=1.0)
    assert len(sched) == 0
