"""Robustness: determinism, degraded hardware, stragglers, adversarial mixes."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.core import DualParConfig
from repro.disk.drive import DiskParams
from repro.disk.seek import SeekModel
from repro.mpi.ops import ComputeOp, IoOp, Segment
from repro.runner import JobSpec, run_experiment
from repro.workloads import DependentReads, MpiIoTest, S3asim, SyntheticPattern
from repro.workloads.base import FileSpec, Workload


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=4,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


# ------------------------------------------------------------ determinism


@pytest.mark.parametrize("strategy", ["vanilla", "collective", "prefetch",
                                      "dualpar-forced"])
def test_simulation_is_deterministic(strategy):
    """The same experiment run twice produces bit-identical timings."""

    def run():
        res = run_experiment(
            [JobSpec("d", 8, MpiIoTest(file_size=4 * 1024 * 1024),
                     strategy=strategy)],
            cluster_spec=small_spec(),
        )
        ds = res.cluster.data_servers[0]
        return (
            res.jobs[0].end_s,
            res.jobs[0].io_time_s,
            ds.device.stats.n_requests,
            ds.device.stats.total_seek_sectors,
        )

    assert run() == run()


def test_concurrent_jobs_deterministic():
    def run():
        res = run_experiment(
            [
                JobSpec("a", 4, SyntheticPattern(file_name="a.dat",
                                                 file_size=2 * 1024 * 1024,
                                                 pattern="random", seed=1)),
                JobSpec("b", 4, SyntheticPattern(file_name="b.dat",
                                                 file_size=2 * 1024 * 1024,
                                                 pattern="random", seed=2),
                        delay_s=0.05),
            ],
            cluster_spec=small_spec(),
        )
        return tuple(j.end_s for j in res.jobs)

    assert run() == run()


# --------------------------------------------------------- degraded disks


def degrade_server(cluster, index, factor=4.0):
    """Inject a mechanically degraded drive on one server: the spindle
    spins ``factor``x slower (rotation and media transfer both suffer)
    and seeks take ``factor``x longer."""
    import dataclasses

    drive = cluster.data_servers[index].device
    drive.params = dataclasses.replace(
        drive.params,
        rpm=drive.params.rpm / factor,
        track_to_track_s=drive.params.track_to_track_s * factor,
        average_seek_s=drive.params.average_seek_s * factor,
        full_stroke_s=drive.params.full_stroke_s * factor,
    )
    sm = drive.seek_model
    drive.seek_model = SeekModel(
        n_cylinders=sm.n_cylinders,
        track_to_track_s=sm.track_to_track_s * factor,
        average_s=sm.average_s * factor,
        full_stroke_s=sm.full_stroke_s * factor,
    )


def run_with_degraded(strategy, degrade=True):
    cluster = build_cluster(small_spec())
    if degrade:
        degrade_server(cluster, 0)
    from repro.core import DualParSystem
    from repro.mpi.runtime import MpiRuntime
    from repro.runner.strategies import resolve_strategy

    rt = MpiRuntime(cluster)
    system = DualParSystem(rt) if strategy.startswith("dualpar") else None
    w = SyntheticPattern(file_size=8 * 1024 * 1024, pattern="random")
    cluster.fs.create(w.file_name, w.file_size)
    job = rt.launch("deg", 8, w, resolve_strategy(strategy, system))
    rt.run_to_completion()
    return job


@pytest.mark.parametrize("strategy", ["vanilla", "dualpar-forced"])
def test_degraded_server_slows_but_completes(strategy):
    healthy = run_with_degraded(strategy, degrade=False)
    degraded = run_with_degraded(strategy, degrade=True)
    assert degraded.finished
    assert degraded.total_io_bytes() == healthy.total_io_bytes()
    assert degraded.elapsed_s > healthy.elapsed_s


def test_locality_daemon_sees_degradation():
    """The degraded server's slot samples still report sanely (the EMC
    inputs remain well-formed under hardware asymmetry)."""
    cluster = build_cluster(small_spec(locality_interval_s=0.1))
    degrade_server(cluster, 0, factor=8.0)
    from repro.mpi.runtime import MpiRuntime
    from repro.runner.strategies import resolve_strategy

    rt = MpiRuntime(cluster)
    w = SyntheticPattern(file_size=4 * 1024 * 1024, pattern="random")
    cluster.fs.create(w.file_name, w.file_size)
    rt.launch("x", 8, w, resolve_strategy("vanilla"))
    rt.run_to_completion()
    rt.sim.run(until=rt.sim.now + 0.2)
    d = cluster.locality_daemons[0]
    assert d.recent_seek_dist() is not None
    assert d.recent_seek_dist() >= 0


# --------------------------------------------------------------- stragglers


class StragglerWorkload(Workload):
    """Rank 0 computes 10x longer between reads than its peers."""

    name = "straggler"

    def ops(self, rank, size):
        factor = 10.0 if rank == 0 else 1.0
        for i in range(8):
            yield ComputeOp(0.002 * factor)
            yield IoOp(
                file_name="st.dat",
                op="R",
                segments=(Segment((rank * 8 + i) * 64 * 1024, 64 * 1024),),
            )

    def files(self):
        return [FileSpec("st.dat", 64 * 1024 * 1024)]


def test_straggler_rank_does_not_deadlock_dualpar():
    res = run_experiment(
        [JobSpec("st", 8, StragglerWorkload(), strategy="dualpar-forced")],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(deadline_max_s=0.5),
    )
    assert res.jobs[0].bytes_read == 8 * 8 * 64 * 1024


# ------------------------------------------------------------ mixed fleet


def test_mixed_strategies_share_cluster():
    """Jobs under different engines coexist on one cluster."""
    res = run_experiment(
        [
            JobSpec("v", 4, SyntheticPattern(file_name="v.dat",
                                             file_size=2 * 1024 * 1024),
                    strategy="vanilla"),
            JobSpec("c", 4, MpiIoTest(file_name="c.dat",
                                      file_size=2 * 1024 * 1024),
                    strategy="collective"),
            JobSpec("d", 4, SyntheticPattern(file_name="d.dat",
                                             file_size=2 * 1024 * 1024,
                                             pattern="random"),
                    strategy="dualpar-forced"),
        ],
        cluster_spec=small_spec(),
    )
    for j in res.jobs:
        assert j.total_bytes == 2 * 1024 * 1024


def test_adversary_and_friendly_job_coexist():
    """A mis-prefetching job must not poison a well-behaved DualPar job
    sharing the same system (per-job mode state)."""
    res = run_experiment(
        [
            JobSpec("good", 4, SyntheticPattern(file_name="g.dat",
                                                file_size=4 * 1024 * 1024),
                    strategy="dualpar-forced"),
            JobSpec("bad", 4, DependentReads(file_name="b.dat",
                                             file_size=2 * 1024 * 1024),
                    strategy="dualpar-forced"),
        ],
        cluster_spec=small_spec(),
    )
    good = res.mpi_jobs[0].engine
    bad = res.mpi_jobs[1].engine
    assert res.job("good").bytes_read == 4 * 1024 * 1024
    # The adversary's wasted prefetches are attributed to it alone.
    assert bad.n_direct_fallback_bytes > 0
    assert good.n_direct_fallback_bytes == 0
