"""Unit & property tests for the global cache and quota tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ChunkKey, GlobalCache, QuotaTracker, chunk_range, chunks_of
from repro.net import Network
from repro.sim import Simulator


def make_cache(n_nodes=4, ttl=30.0):
    sim = Simulator()
    net = Network(sim, n_nodes)
    cache = GlobalCache(sim, net, list(range(n_nodes)), chunk_bytes=64 * 1024, ttl_s=ttl)
    return sim, cache


def run(sim, gen):
    return sim.run_until_event(sim.process(gen))


# ------------------------------------------------------------- chunk math


def test_chunk_range_single():
    assert list(chunk_range(0, 100, 64 * 1024)) == [0]


def test_chunk_range_spans_boundary():
    cb = 64 * 1024
    assert list(chunk_range(cb - 1, 2, cb)) == [0, 1]


def test_chunk_range_empty():
    assert list(chunk_range(500, 0)) == []


def test_chunk_range_rejects_negative():
    with pytest.raises(ValueError):
        chunk_range(-1, 10)


def test_chunks_of_keys():
    keys = list(chunks_of("f", 0, 128 * 1024, 64 * 1024))
    assert keys == [ChunkKey("f", 0), ChunkKey("f", 1)]


def test_chunk_key_byte_range():
    assert ChunkKey("f", 2).byte_range(64 * 1024) == (2 * 64 * 1024, 3 * 64 * 1024)


@given(
    offset=st.integers(min_value=0, max_value=10**7),
    length=st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_chunk_range_covers_property(offset, length):
    cb = 64 * 1024
    idxs = list(chunk_range(offset, length, cb))
    assert idxs[0] * cb <= offset
    assert (idxs[-1] + 1) * cb >= offset + length
    assert idxs == sorted(idxs)
    assert len(idxs) == len(set(idxs))


# -------------------------------------------------------------- basic ops


def test_get_miss_returns_false():
    sim, cache = make_cache()

    def body():
        hit = yield from cache.get(ChunkKey("f", 0), from_node=0)
        return hit

    assert run(sim, body()) is False
    assert cache.n_gets == 1
    assert cache.n_hits == 0


def test_put_then_get_hits():
    sim, cache = make_cache()
    key = ChunkKey("f", 3)

    def body():
        yield from cache.put(key, from_node=1, job_id=7)
        hit = yield from cache.get(key, from_node=2)
        return hit

    assert run(sim, body()) is True
    assert cache.hit_ratio == 1.0
    chunk = cache.peek(key)
    assert chunk.used is True
    assert chunk.job_id == 7


def test_owner_round_robin():
    _, cache = make_cache(n_nodes=4)
    owners = [cache.owner_of(ChunkKey("f", i)) for i in range(8)]
    assert owners == [0, 1, 2, 3, 0, 1, 2, 3]


def test_ttl_expiry():
    sim, cache = make_cache(ttl=1.0)
    key = ChunkKey("f", 0)

    def body():
        yield from cache.put(key, from_node=0)
        yield sim.timeout(2.0)
        return (yield from cache.get(key, from_node=0))

    assert run(sim, body()) is False
    assert cache.n_evictions == 1


def test_dirty_ranges_merge():
    sim, cache = make_cache()
    key = ChunkKey("f", 0)

    def body():
        yield from cache.put(key, from_node=0, dirty_range=(0, 100))
        yield from cache.put(key, from_node=0, dirty_range=(50, 200))
        yield from cache.put(key, from_node=0, dirty_range=(500, 600))

    run(sim, body())
    chunk = cache.peek(key)
    assert chunk.dirty
    assert GlobalCache._compact(chunk.dirty_ranges) == [(0, 200), (500, 600)]


def test_clean_clears_dirty():
    sim, cache = make_cache()
    key = ChunkKey("f", 0)

    def body():
        yield from cache.put(key, from_node=0, dirty_range=(0, 10))

    run(sim, body())
    cache.clean(key)
    assert not cache.peek(key).dirty
    assert cache.dirty_chunks() == []


def test_dirty_chunks_filter_by_job():
    sim, cache = make_cache()

    def body():
        yield from cache.put(ChunkKey("a", 0), from_node=0, job_id=1, dirty_range=(0, 5))
        yield from cache.put(ChunkKey("b", 0), from_node=0, job_id=2, dirty_range=(0, 5))

    run(sim, body())
    assert len(cache.dirty_chunks(job_id=1)) == 1
    assert len(cache.dirty_chunks()) == 2


def test_misprefetch_stats_and_purge():
    sim, cache = make_cache()

    def body():
        yield from cache.put(ChunkKey("f", 0), from_node=0, cycle_id=1, job_id=5)
        yield from cache.put(ChunkKey("f", 1), from_node=0, cycle_id=1, job_id=5)
        # use one of them
        yield from cache.get(ChunkKey("f", 0), from_node=0)

    run(sim, body())
    unused, total = cache.misprefetch_stats(job_id=5, cycle_id=1)
    assert (unused, total) == (1, 2)
    assert cache.purge_unused(job_id=5, cycle_id=1) == 1
    assert cache.contains(ChunkKey("f", 0))
    assert not cache.contains(ChunkKey("f", 1))


def test_purge_job():
    sim, cache = make_cache()

    def body():
        yield from cache.put(ChunkKey("f", 0), from_node=0, job_id=1)
        yield from cache.put(ChunkKey("g", 0), from_node=0, job_id=2)

    run(sim, body())
    assert cache.purge_job(1) == 1
    assert cache.resident_bytes() == 64 * 1024


def test_get_charges_network_time():
    sim, cache = make_cache()
    key = ChunkKey("f", 1)  # owner node 1

    def body():
        yield from cache.put(key, from_node=0)
        t0 = sim.now
        yield from cache.get(key, from_node=2, nbytes=64 * 1024)
        return sim.now - t0

    dt = run(sim, body())
    assert dt > 64 * 1024 / 117e6  # at least the wire time


# ------------------------------------------------------------- batched ops


def test_multiget_mixed_hits():
    sim, cache = make_cache()
    k0, k1 = ChunkKey("f", 0), ChunkKey("f", 1)

    def body():
        yield from cache.put(k0, from_node=0)
        res = yield from cache.multiget([(k0, 1000), (k1, 1000)], from_node=2)
        return res

    res = run(sim, body())
    assert res == {k0: True, k1: False}
    assert cache.n_hits == 1


def test_multiget_batches_per_owner():
    """A multiget touching many chunks of one owner is one message pair."""
    sim, cache = make_cache(n_nodes=2)
    keys = [ChunkKey("f", i * 2) for i in range(8)]  # all owner node 0

    def body():
        for k in keys:
            yield from cache.put(k, from_node=0)
        before = cache.network.messages_delivered
        yield from cache.multiget([(k, 64 * 1024) for k in keys], from_node=1)
        return cache.network.messages_delivered - before

    msgs = run(sim, body())
    assert msgs == 1  # one transfer from owner 0 to node 1


def test_multiput_stores_all():
    sim, cache = make_cache()
    puts = [(ChunkKey("f", i), None) for i in range(6)]

    def body():
        yield from cache.multiput(puts, from_node=0, cycle_id=3, job_id=9)

    run(sim, body())
    for key, _ in puts:
        c = cache.peek(key)
        assert c is not None and c.cycle_id == 3 and c.job_id == 9


def test_multiput_dirty_ranges():
    sim, cache = make_cache()

    def body():
        yield from cache.multiput(
            [(ChunkKey("f", 0), (10, 20))], from_node=0, job_id=1
        )

    run(sim, body())
    assert cache.peek(ChunkKey("f", 0)).dirty_ranges == [(10, 20)]


# ---------------------------------------------------------------- quota


def test_quota_accounting():
    q = QuotaTracker(quota_bytes=100)
    q.add_prefetch(40)
    q.add_dirty(30)
    assert q.used_bytes == 70
    assert q.remaining_bytes == 30
    assert not q.full
    q.add_dirty(40)
    assert q.full
    assert q.remaining_bytes == 0


def test_quota_resets():
    q = QuotaTracker(quota_bytes=100)
    q.add_prefetch(60)
    q.add_dirty(60)
    q.reset_prefetch()
    assert q.used_bytes == 60
    q.reset_dirty()
    assert q.used_bytes == 0


def test_quota_rejects_negative():
    with pytest.raises(ValueError):
        QuotaTracker(quota_bytes=-1)
    q = QuotaTracker(10)
    with pytest.raises(ValueError):
        q.add_dirty(-5)
    with pytest.raises(ValueError):
        q.add_prefetch(-5)
