"""Unit tests for DualPar internals: PEC ghosts/deadlines, CRM batching,
EMC metric computation."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.core import DualParConfig, DualParSystem
from repro.core.metrics import JobIoSampler, RequestRecorder
from repro.disk.drive import DiskParams
from repro.mpi.ops import ComputeOp, IoOp, Segment
from repro.mpi.runtime import MpiRuntime
from repro.runner import JobSpec, run_experiment
from repro.workloads import SyntheticPattern
from repro.workloads.base import FileSpec, Workload


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=4,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


# --------------------------------------------------------- RequestRecorder


def test_request_recorder_sorted_gaps():
    rec = RequestRecorder(node_id=0, window_s=10.0)
    # Requests arrive out of order; ReqDist sorts by offset.
    rec.record(1.0, "f", 128 * 1024, 64 * 1024)
    rec.record(1.1, "f", 0, 64 * 1024)
    # Sorted: [0,64K) then [128K,192K): one gap of 64 KB = 128 sectors.
    assert rec.recent_req_dist(now=2.0) == pytest.approx(128.0)


def test_request_recorder_contiguous_is_zero():
    rec = RequestRecorder(node_id=0, window_s=10.0)
    rec.record(1.0, "f", 0, 64 * 1024)
    rec.record(1.0, "f", 64 * 1024, 64 * 1024)
    assert rec.recent_req_dist(now=2.0) == 0.0


def test_request_recorder_window_expiry():
    rec = RequestRecorder(node_id=0, window_s=1.0)
    rec.record(0.0, "f", 0, 64 * 1024)
    rec.record(0.1, "f", 10 * 1024 * 1024, 64 * 1024)
    assert rec.recent_req_dist(now=5.0) is None  # too old


def test_request_recorder_per_file_separation():
    rec = RequestRecorder(node_id=0, window_s=10.0)
    # One request per file: no adjacent pairs anywhere.
    rec.record(1.0, "a", 0, 1024)
    rec.record(1.0, "b", 10 * 1024 * 1024, 1024)
    assert rec.recent_req_dist(now=2.0) is None


def test_request_recorder_overlap_clamped():
    rec = RequestRecorder(node_id=0, window_s=10.0)
    rec.record(1.0, "f", 0, 64 * 1024)
    rec.record(1.0, "f", 32 * 1024, 64 * 1024)  # overlapping
    assert rec.recent_req_dist(now=2.0) == 0.0


# ------------------------------------------------------------ JobIoSampler


def test_job_io_sampler_differences():
    cluster = build_cluster(small_spec())
    rt = MpiRuntime(cluster)
    from repro.mpi.runtime import MpiJob
    from repro.mpiio.engine import IndependentEngine

    job = MpiJob(rt, "s", 2, SyntheticPattern(), lambda r, j: IndependentEngine(r, j))
    sampler = JobIoSampler(job)
    job.procs = [type("P", (), {"metrics": m})() for m in _metrics(2)]
    assert sampler.sample() is None  # no activity yet
    job.procs[0].metrics.io_time_s = 3.0
    job.procs[0].metrics.compute_time_s = 1.0
    assert sampler.sample() == pytest.approx(0.75)
    # No further activity -> None again.
    assert sampler.sample() is None


def _metrics(n):
    from repro.mpi.runtime import ProcMetrics

    return [ProcMetrics() for _ in range(n)]


# ----------------------------------------------------------------- ghosts


class ComputeThenReads(Workload):
    """Long compute first, then reads -- exercises the ghost deadline."""

    name = "compute-then-reads"

    def __init__(self, compute_s=5.0, n_reads=8):
        self.compute_s = compute_s
        self.n_reads = n_reads

    def ops(self, rank, size):
        yield IoOp(file_name="g.dat", op="R",
                   segments=(Segment(rank * 64 * 1024, 64 * 1024),))
        yield ComputeOp(self.compute_s)
        for i in range(self.n_reads):
            yield IoOp(
                file_name="g.dat",
                op="R",
                segments=(Segment((size + rank * self.n_reads + i) * 64 * 1024,
                                  64 * 1024),),
            )

    def files(self):
        return [FileSpec("g.dat", 64 * 1024 * 1024)]


def test_ghost_deadline_interrupts_slow_preexecution():
    """Ghosts re-executing a long computation are stopped at the expected
    cache-fill deadline instead of stalling the cycle."""
    res = run_experiment(
        [JobSpec("g", 4, ComputeThenReads(compute_s=5.0), strategy="dualpar-forced")],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(deadline_max_s=0.2, deadline_min_s=0.05),
    )
    eng = res.mpi_jobs[0].engine
    assert eng.pec.n_deadline_stops > 0
    # The job still completes correctly.
    assert res.jobs[0].bytes_read == 4 * (1 + 8) * 64 * 1024


def test_ghost_budget_limits_recording():
    """With a small quota the ghost records ~quota bytes, not the world."""
    res = run_experiment(
        [JobSpec("q", 4, SyntheticPattern(file_size=8 * 1024 * 1024,
                                          request_bytes=64 * 1024),
                 strategy="dualpar-forced")],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(quota_bytes=256 * 1024),
    )
    eng = res.mpi_jobs[0].engine
    # Multiple cycles were needed: the budget capped each one.
    assert eng.pec.n_cycles >= 4
    assert res.jobs[0].bytes_read == 8 * 1024 * 1024


def test_crm_prefetch_deduplicates_shared_chunks():
    """All ranks reading the same region -> each chunk fetched once."""

    class SharedRead(Workload):
        name = "shared"

        def ops(self, rank, size):
            for i in range(16):
                yield IoOp(file_name="s.dat", op="R",
                           segments=(Segment(i * 64 * 1024, 64 * 1024),))

        def files(self):
            return [FileSpec("s.dat", 2 * 1024 * 1024)]

    res = run_experiment(
        [JobSpec("s", 4, SharedRead(), strategy="dualpar-forced")],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    # 16 chunks needed in total; CRM must not fetch 4x.
    assert eng.crm.prefetched_bytes <= 2 * 1024 * 1024


def test_emc_improvement_floor():
    """ReqDist is floored at one stripe unit so improvement stays finite."""
    cluster = build_cluster(small_spec())
    rt = MpiRuntime(cluster)
    system = DualParSystem(rt)
    # Seed recorders with perfectly contiguous requests (ReqDist ~ 0).
    system.recorders[0].record(rt.sim.now, "f", 0, 64 * 1024)
    system.recorders[0].record(rt.sim.now, "f", 64 * 1024, 64 * 1024)
    # Seed a locality daemon with fake samples.
    cluster.locality_daemons[0].samples.append((0.0, 12800.0, 10))
    imp = system.emc.improvement()
    assert imp is not None
    assert imp == pytest.approx(12800.0 / (64 * 1024 / 512))


def test_emc_improvement_none_without_data():
    cluster = build_cluster(small_spec())
    rt = MpiRuntime(cluster)
    system = DualParSystem(rt)
    assert system.emc.improvement() is None
    assert system.emc.ave_seek_dist() is None
    assert system.emc.ave_req_dist() is None


def test_engine_set_mode_validates():
    res = run_experiment(
        [JobSpec("m", 2, SyntheticPattern(file_size=256 * 1024),
                 strategy="dualpar", engine_kwargs=dict(force_mode="normal"))],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    with pytest.raises(ValueError):
        eng.set_mode("diagonal")


def test_crm_stream_ids_stable_per_node():
    res = run_experiment(
        [JobSpec("c", 4, SyntheticPattern(file_size=1024 * 1024),
                 strategy="dualpar-forced")],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    sid = eng.crm_stream_id(0)
    assert eng.crm_stream_id(0) == sid
    assert eng.crm_stream_id(1) != sid
