"""Tests for op types and the pre-executable op stream."""

import pytest

from repro.mpi.ops import BarrierOp, ComputeOp, IoOp, Segment
from repro.mpi.opstream import OpStream


def rd(offset, length=100, **kw):
    return IoOp(file_name="f", op="R", segments=(Segment(offset, length),), **kw)


# -------------------------------------------------------------------- ops


def test_segment_end():
    assert Segment(10, 5).end == 15


def test_compute_op_rejects_negative():
    with pytest.raises(ValueError):
        ComputeOp(-1.0)


def test_io_op_validation():
    with pytest.raises(ValueError):
        IoOp(file_name="f", op="X", segments=(Segment(0, 10),))
    with pytest.raises(ValueError):
        IoOp(file_name="f", op="R", segments=())
    with pytest.raises(ValueError):
        IoOp(file_name="f", op="R", segments=(Segment(-1, 10),))
    with pytest.raises(ValueError):
        IoOp(file_name="f", op="R", segments=(Segment(0, 0),))


def test_io_op_total_bytes():
    op = IoOp(file_name="f", op="R", segments=(Segment(0, 10), Segment(20, 30)))
    assert op.total_bytes == 40


def test_io_op_prediction_defaults_to_actual():
    op = rd(0)
    assert op.prediction == op.segments
    assert op.predictable


def test_io_op_mispredicted():
    op = IoOp(
        file_name="f",
        op="R",
        segments=(Segment(0, 10),),
        predicted_segments=(Segment(100, 10),),
    )
    assert op.prediction == (Segment(100, 10),)
    assert not op.predictable


# ---------------------------------------------------------------- stream


def test_stream_run_consumes_in_order():
    s = OpStream(iter([rd(0), rd(1), rd(2)]))
    assert s.next_for_run().segments[0].offset == 0
    assert s.next_for_run().segments[0].offset == 1
    assert s.next_for_run().segments[0].offset == 2
    assert s.next_for_run() is None
    assert s.finished


def test_stream_peek_does_not_consume():
    s = OpStream(iter([rd(0), rd(1)]))
    peeked = [op.segments[0].offset for op in s.peek()]
    assert peeked == [0, 1]
    # Normal cursor still sees everything.
    assert s.next_for_run().segments[0].offset == 0
    assert s.next_for_run().segments[0].offset == 1


def test_stream_peek_restarts_at_cursor():
    s = OpStream(iter([rd(i) for i in range(5)]))
    s.next_for_run()
    s.next_for_run()
    peeked = [op.segments[0].offset for op in s.peek()]
    assert peeked == [2, 3, 4]


def test_stream_interleaved_peek_and_run():
    """A ghost mid-iteration stays coherent while the normal cursor moves."""
    s = OpStream(iter([rd(i) for i in range(6)]))
    ghost = s.peek()
    assert next(ghost).segments[0].offset == 0
    assert next(ghost).segments[0].offset == 1
    # Normal cursor consumes 0 (behind ghost).
    assert s.next_for_run().segments[0].offset == 0
    assert next(ghost).segments[0].offset == 2
    # Normal cursor overtakes the ghost entirely.
    for _ in range(4):
        s.next_for_run()
    # Ghost snaps forward to the cursor (5), not the stale position.
    assert next(ghost).segments[0].offset == 5
    assert next(ghost, None) is None


def test_stream_n_consumed():
    s = OpStream(iter([rd(i) for i in range(3)]))
    assert s.n_consumed == 0
    s.next_for_run()
    assert s.n_consumed == 1
    list(s.peek())
    assert s.n_consumed == 1  # peeking never consumes


def test_stream_lookahead_len():
    s = OpStream(iter([rd(i) for i in range(4)]))
    assert s.lookahead_len == 0
    list(s.peek())
    assert s.lookahead_len == 4
    s.next_for_run()
    assert s.lookahead_len == 3


def test_stream_two_sequential_ghosts():
    """A second pre-execution re-covers what the first one saw, from the
    (possibly advanced) normal cursor -- fresh-fork semantics."""
    s = OpStream(iter([rd(i) for i in range(4)]))
    first = [op.segments[0].offset for op in s.peek()]
    assert first == [0, 1, 2, 3]
    s.next_for_run()
    second = [op.segments[0].offset for op in s.peek()]
    assert second == [1, 2, 3]


def test_stream_empty():
    s = OpStream(iter([]))
    assert s.next_for_run() is None
    assert list(s.peek()) == []
    assert s.finished


def test_mixed_op_kinds_flow_through():
    ops = [ComputeOp(0.5), BarrierOp(), rd(0)]
    s = OpStream(iter(ops))
    assert isinstance(s.next_for_run(), ComputeOp)
    assert isinstance(s.next_for_run(), BarrierOp)
    assert isinstance(s.next_for_run(), IoOp)
