"""Fast miniatures of every paper experiment.

The real regenerations live in benchmarks/ (minutes); these shrunken
versions run in seconds and guard the same qualitative orderings, so a
regression in any experiment path is caught by plain `pytest tests/`.
"""

import pytest

from repro import (
    Btio,
    Demo,
    DependentReads,
    DualParConfig,
    Hpio,
    IorMpiIo,
    JobSpec,
    MpiIoTest,
    Noncontig,
    S3asim,
    run_experiment,
)
from repro.cluster import ClusterSpec
from repro.disk.drive import DiskParams

NPROCS = 16


def mini_spec(**kw):
    defaults = dict(
        n_compute_nodes=8,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=4 * 10**9),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


def thpt(workload, strategy, **kw):
    res = run_experiment(
        [JobSpec("m", NPROCS, workload, strategy=strategy)],
        cluster_spec=mini_spec(),
        **kw,
    )
    return res.jobs[0].throughput_mb_s


# ------------------------------------------------------- fig1 (crossover)


def test_mini_fig1_crossover():
    compute_rich = lambda: Demo(file_size=8 * 1024 * 1024, segment_bytes=4096,
                                compute_per_call=0.02, nprocs_hint=NPROCS)
    io_bound = lambda: Demo(file_size=8 * 1024 * 1024, segment_bytes=4096,
                            compute_per_call=0.0, nprocs_hint=NPROCS)
    # Compute-rich: prefetching (S2) at least matches DualPar (S3 pays
    # redundant ghost computation).
    s2 = thpt(compute_rich(), "prefetch")
    s3 = thpt(compute_rich(), "dualpar-forced")
    assert s2 >= s3 * 0.95
    # I/O-bound: DualPar wins.
    s2b = thpt(io_bound(), "prefetch")
    s3b = thpt(io_bound(), "dualpar-forced")
    assert s3b > s2b


# ------------------------------------------------------- fig3 (single app)


@pytest.mark.parametrize(
    "workload_factory",
    [
        lambda: MpiIoTest(file_size=8 * 1024 * 1024),
        lambda: Noncontig(elmtcount=256, n_rows=512),
        lambda: IorMpiIo(file_size=16 * 1024 * 1024),
    ],
    ids=["mpi-io-test", "noncontig", "ior"],
)
def test_mini_fig3_dualpar_beats_vanilla(workload_factory):
    v = thpt(workload_factory(), "vanilla")
    d = thpt(workload_factory(), "dualpar-forced")
    assert d > v


# ------------------------------------------------------------ fig4 (BTIO)


def test_mini_fig4_btio_orderings():
    w = lambda: Btio(total_bytes=2 * 1024 * 1024, n_steps=1, cell_scale=16384,
                     op="W", segments_per_call=64)
    v = thpt(w(), "vanilla")
    c = thpt(w(), "collective")
    d = thpt(w(), "dualpar-forced")
    assert c > 2 * v
    assert d > 2 * v


# ---------------------------------------------------------- fig5 (s3asim)


def test_mini_fig5_s3asim_dualpar_leads():
    w = lambda: S3asim(n_queries=6, db_bytes=16 * 1024 * 1024,
                       min_seq_bytes=64 * 1024, max_seq_bytes=256 * 1024,
                       out_region_bytes=1024 * 1024)
    v = thpt(w(), "vanilla")
    d = thpt(w(), "dualpar-forced")
    assert d > v


# ------------------------------------------------ tab2/fig6 (interference)


def test_mini_table2_concurrent_instances():
    def run(strategy):
        res = run_experiment(
            [
                JobSpec(f"i{k}", NPROCS,
                        MpiIoTest(file_name=f"t2-{k}.dat",
                                  file_size=8 * 1024 * 1024, barrier_every=4),
                        strategy=strategy)
                for k in range(2)
            ],
            cluster_spec=mini_spec(placement="spread"),
        )
        return res.system_throughput_mb_s

    assert run("dualpar-forced") > run("vanilla")


# -------------------------------------------------------- fig8 (cache sweep)


def test_mini_fig8_more_cache_not_worse():
    w = lambda: Btio(total_bytes=2 * 1024 * 1024, n_steps=1, cell_scale=16384,
                     op="W", segments_per_call=64)
    small = thpt(w(), "dualpar-forced",
                 dualpar_config=DualParConfig(quota_bytes=64 * 1024))
    big = thpt(w(), "dualpar-forced",
               dualpar_config=DualParConfig(quota_bytes=1024 * 1024))
    assert big >= small * 0.8


# --------------------------------------------------------- tab3 (adversary)


def test_mini_table3_bounded_overhead():
    w = lambda: DependentReads(file_size=8 * 1024 * 1024)
    res_v = run_experiment([JobSpec("v", NPROCS, w(), strategy="vanilla")],
                           cluster_spec=mini_spec())
    res_d = run_experiment(
        [JobSpec("d", NPROCS, w(), strategy="dualpar",
                 engine_kwargs=dict(force_mode=None))],
        cluster_spec=mini_spec(),
        dualpar_config=DualParConfig(io_ratio_enter=0.0, io_ratio_exit=0.0,
                                     t_improvement=1e-9, emc_interval_s=0.05),
    )
    assert res_d.jobs[0].elapsed_s < res_v.jobs[0].elapsed_s * 1.6


# ----------------------------------------------------------- fig7 (adaptive)


def test_mini_fig7_interference_switch():
    spec = mini_spec(locality_interval_s=0.1)
    res = run_experiment(
        [
            JobSpec("seq", NPROCS,
                    MpiIoTest(file_name="a.dat", file_size=24 * 1024 * 1024,
                              barrier_every=0),
                    strategy="dualpar"),
            JobSpec("joiner", NPROCS,
                    Hpio(file_name="b.dat", region_count=512,
                         region_bytes=16 * 1024),
                    strategy="dualpar", delay_s=0.2),
        ],
        cluster_spec=spec,
        dualpar_config=DualParConfig(emc_interval_s=0.1, metric_window_s=0.5),
    )
    # No switch before the joiner arrives; at least one program switched
    # once the interference appeared.
    trans = res.dualpar.transitions
    assert all(t >= 0.2 for t, _, _ in trans)
    assert any(m == "datadriven" for _, _, m in trans)
