"""Unit & property tests for the disk model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskDrive, DiskGeometry, DiskParams, RaidArray, SeekModel
from repro.disk.geometry import SECTOR_BYTES
from repro.sim import Simulator


# ----------------------------------------------------------------- geometry


def test_geometry_cylinder_mapping():
    geo = DiskGeometry(total_sectors=9600, sectors_per_track=1200, heads=4)
    assert geo.sectors_per_cylinder == 4800
    assert geo.n_cylinders == 2
    assert geo.cylinder_of(0) == 0
    assert geo.cylinder_of(4799) == 0
    assert geo.cylinder_of(4800) == 1


def test_geometry_angle_wraps_per_track():
    geo = DiskGeometry(total_sectors=4800, sectors_per_track=1200, heads=4)
    assert geo.angle_of(0) == 0.0
    assert geo.angle_of(600) == pytest.approx(0.5)
    assert geo.angle_of(1200) == 0.0  # next track starts at angle 0


def test_geometry_from_capacity_rounds_up():
    geo = DiskGeometry.from_capacity(1_000_000)
    assert geo.total_sectors * SECTOR_BYTES >= 1_000_000


def test_geometry_rejects_bad_lbn():
    geo = DiskGeometry(total_sectors=100)
    with pytest.raises(ValueError):
        geo.cylinder_of(100)
    with pytest.raises(ValueError):
        geo.cylinder_of(-1)


def test_geometry_rejects_bad_params():
    with pytest.raises(ValueError):
        DiskGeometry(total_sectors=0)
    with pytest.raises(ValueError):
        DiskGeometry(total_sectors=10, sectors_per_track=0)


# ----------------------------------------------------------------- seek model


def test_seek_zero_distance_is_free():
    sm = SeekModel(n_cylinders=100_000)
    assert sm.seek_time(0) == 0.0


def test_seek_single_track():
    sm = SeekModel(n_cylinders=100_000)
    assert sm.seek_time(1) == pytest.approx(sm.track_to_track_s, rel=0.2)


def test_seek_hits_calibration_points():
    sm = SeekModel(n_cylinders=90_000, average_s=0.008, full_stroke_s=0.016)
    assert sm.seek_time(30_000) == pytest.approx(0.008, rel=0.05)
    assert sm.seek_time(90_000) == pytest.approx(0.016, rel=0.05)


def test_seek_monotone_nondecreasing():
    sm = SeekModel(n_cylinders=50_000)
    times = [sm.seek_time(d) for d in range(0, 50_000, 500)]
    assert all(b >= a - 1e-12 for a, b in zip(times, times[1:]))


def test_seek_symmetric():
    sm = SeekModel(n_cylinders=10_000)
    assert sm.seek_time(-500) == sm.seek_time(500)


def test_seek_rejects_bad_calibration():
    with pytest.raises(ValueError):
        SeekModel(n_cylinders=1000, track_to_track_s=0.01, average_s=0.005)
    with pytest.raises(ValueError):
        SeekModel(n_cylinders=1)


@given(st.integers(min_value=0, max_value=99_999))
@settings(max_examples=100, deadline=None)
def test_seek_time_bounds_property(d):
    """Seek time is within [0, ~full stroke] for all distances."""
    sm = SeekModel(n_cylinders=100_000)
    t = sm.seek_time(d)
    assert 0.0 <= t <= sm.full_stroke_s * 1.05


# ----------------------------------------------------------------- drive


def small_params(**kw) -> DiskParams:
    defaults = dict(capacity_bytes=256 * 1024 * 1024)
    defaults.update(kw)
    return DiskParams(**defaults)


def run_service(sim, drive, reqs):
    """Serve requests back-to-back; return total elapsed."""

    def proc():
        for lbn, n in reqs:
            yield from drive.service(lbn, n)

    p = sim.process(proc())
    sim.run_until_event(p)
    return sim.now


def test_sequential_read_achieves_media_rate():
    sim = Simulator()
    params = small_params()
    drive = DiskDrive(sim, params)
    total_sectors = 65536  # 32 MB
    chunk = 256
    reqs = [(lbn, chunk) for lbn in range(0, total_sectors, chunk)]
    elapsed = run_service(sim, drive, reqs)
    rate = total_sectors * SECTOR_BYTES / elapsed
    # First request pays a rotational wait; afterwards we stream.
    assert rate == pytest.approx(params.media_rate_bytes_s, rel=0.05)


def test_random_reads_much_slower_than_sequential():
    """The paper's core premise: >10x gap between random and sequential."""
    sim = Simulator()
    drive = DiskDrive(sim, small_params(capacity_bytes=2 * 10**9))
    import numpy as np

    rng = np.random.default_rng(42)
    n = 200
    chunk = 32  # 16 KB
    lbns = rng.integers(0, drive.total_sectors - chunk, size=n)
    elapsed_rand = run_service(sim, drive, [(int(l), chunk) for l in lbns])
    rand_rate = n * chunk * SECTOR_BYTES / elapsed_rand

    sim2 = Simulator()
    drive2 = DiskDrive(sim2, small_params(capacity_bytes=2 * 10**9))
    seq = [(i * chunk, chunk) for i in range(n)]
    elapsed_seq = run_service(sim2, drive2, seq)
    seq_rate = n * chunk * SECTOR_BYTES / elapsed_seq

    assert seq_rate / rand_rate > 10


def test_sorted_nearby_faster_than_scattered():
    """Elevator-ordered service beats the same set scattered."""
    import numpy as np

    chunk = 32
    rng = np.random.default_rng(7)
    lbns = sorted(int(x) for x in rng.integers(0, 4_000_000, size=100))

    sim = Simulator()
    drive = DiskDrive(sim, small_params(capacity_bytes=4 * 10**9))
    t_sorted = run_service(sim, drive, [(l, chunk) for l in lbns])

    shuffled = list(lbns)
    rng.shuffle(shuffled)
    sim2 = Simulator()
    drive2 = DiskDrive(sim2, small_params(capacity_bytes=4 * 10**9))
    t_shuffled = run_service(sim2, drive2, [(l, chunk) for l in shuffled])

    assert t_sorted < t_shuffled * 0.6


def test_service_time_includes_rotation_deterministically():
    sim = Simulator()
    drive = DiskDrive(sim, small_params())
    t1 = drive.service_time(1000, 8)
    t2 = drive.service_time(1000, 8)
    assert t1 == t2  # pure function at fixed clock/head state


def test_drive_tracks_seek_distance_stats():
    sim = Simulator()
    drive = DiskDrive(sim, small_params())
    run_service(sim, drive, [(0, 8), (10_000, 8), (20_000, 8)])
    assert drive.stats.n_requests == 3
    # First request has no predecessor -> 0; then |10000 - 8|, |20000 - 10008|.
    assert drive.stats.total_seek_sectors == (10_000 - 8) + (20_000 - 10_008)


def test_drive_rejects_out_of_range():
    sim = Simulator()
    drive = DiskDrive(sim, small_params())
    with pytest.raises(ValueError):
        drive.service_time(drive.total_sectors - 4, 8)
    with pytest.raises(ValueError):
        drive.service_time(0, 0)


def test_drive_on_access_hook():
    sim = Simulator()
    seen = []
    drive = DiskDrive(sim, small_params(), on_access=lambda t, l, n, op: seen.append((t, l, n, op)))
    run_service(sim, drive, [(64, 8)])
    assert seen == [(0.0, 64, 8, "R")]


def test_drive_concurrent_service_rejected():
    sim = Simulator()
    drive = DiskDrive(sim, small_params())

    def a():
        yield from drive.service(0, 64)

    def b():
        yield from drive.service(128, 64)

    sim.process(a())
    sim.process(b())
    with pytest.raises(RuntimeError, match="concurrent"):
        sim.run()


def test_media_rate_matches_params():
    p = DiskParams(rpm=7200, sectors_per_track=1200)
    assert p.media_rate_bytes_s == pytest.approx(1200 * 512 / (60 / 7200))
    assert p.media_rate_bytes_s == pytest.approx(73.7e6, rel=0.01)


# ----------------------------------------------------------------- RAID


def make_members(sim, n=2):
    return [
        DiskDrive(sim, small_params(capacity_bytes=64 * 1024 * 1024), name=f"m{i}")
        for i in range(n)
    ]


def test_raid0_capacity_is_sum():
    sim = Simulator()
    members = make_members(sim, 2)
    arr = RaidArray(sim, members, level=0)
    assert arr.total_sectors == 2 * members[0].total_sectors


def test_raid1_capacity_is_single():
    sim = Simulator()
    members = make_members(sim, 2)
    arr = RaidArray(sim, members, level=1)
    assert arr.total_sectors == members[0].total_sectors


def test_raid0_split_alternates_members():
    sim = Simulator()
    arr = RaidArray(sim, make_members(sim, 2), level=0, chunk_sectors=128)
    pieces = arr._split(0, 512)
    # 4 chunks -> members 0,1,0,1, coalesced per member into 2 runs each.
    by_member = {}
    for m, lbn, n in pieces:
        by_member.setdefault(m, 0)
        by_member[m] += n
    assert by_member == {0: 256, 1: 256}


def test_raid0_split_respects_offsets():
    sim = Simulator()
    arr = RaidArray(sim, make_members(sim, 2), level=0, chunk_sectors=128)
    # Request inside the second chunk -> member 1, chunk 0 of member 1.
    pieces = arr._split(130, 20)
    assert pieces == [(1, 2, 20)]


def test_raid0_parallel_speedup():
    """A large striped request completes faster than on one member."""
    sim = Simulator()
    members = make_members(sim, 2)
    arr = RaidArray(sim, members, level=0, chunk_sectors=128)

    def proc():
        yield from arr.service(0, 8192)

    p = sim.process(proc())
    sim.run_until_event(p)
    t_arr = sim.now

    sim2 = Simulator()
    solo = DiskDrive(sim2, small_params(capacity_bytes=64 * 1024 * 1024))

    def proc2():
        yield from solo.service(0, 8192)

    p2 = sim2.process(proc2())
    sim2.run_until_event(p2)
    assert t_arr < sim2.now * 0.75


def test_raid1_write_goes_to_all_members():
    sim = Simulator()
    members = make_members(sim, 2)
    arr = RaidArray(sim, members, level=1)

    def proc():
        yield from arr.service(0, 256, op="W")

    sim.run_until_event(sim.process(proc()))
    assert members[0].stats.n_requests == 1
    assert members[1].stats.n_requests == 1


def test_raid1_read_goes_to_one_member():
    sim = Simulator()
    members = make_members(sim, 2)
    arr = RaidArray(sim, members, level=1)

    def proc():
        yield from arr.service(0, 256, op="R")

    sim.run_until_event(sim.process(proc()))
    assert members[0].stats.n_requests + members[1].stats.n_requests == 1


def test_raid_rejects_bad_config():
    sim = Simulator()
    with pytest.raises(ValueError):
        RaidArray(sim, [], level=0)
    with pytest.raises(ValueError):
        RaidArray(sim, make_members(sim, 2), level=5)
    with pytest.raises(ValueError):
        RaidArray(sim, make_members(sim, 2), level=0, chunk_sectors=0)


def test_raid_rejects_mismatched_members():
    sim = Simulator()
    a = DiskDrive(sim, small_params(capacity_bytes=64 * 1024 * 1024))
    b = DiskDrive(sim, small_params(capacity_bytes=128 * 1024 * 1024))
    with pytest.raises(ValueError):
        RaidArray(sim, [a, b])


@given(
    lbn=st.integers(min_value=0, max_value=100_000),
    n=st.integers(min_value=1, max_value=2048),
    chunk=st.sampled_from([64, 128, 256]),
    members=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=150, deadline=None)
def test_raid0_split_covers_exactly_property(lbn, n, chunk, members):
    """RAID-0 split pieces partition the request: sizes sum, no overlap."""
    sim = Simulator()
    arr = RaidArray(
        sim,
        [
            DiskDrive(sim, small_params(capacity_bytes=256 * 1024 * 1024), name=f"m{i}")
            for i in range(members)
        ],
        level=0,
        chunk_sectors=chunk,
    )
    pieces = arr._split(lbn, n)
    assert sum(p[2] for p in pieces) == n
    # No two pieces on the same member overlap.
    by_member = {}
    for m, mlbn, cnt in pieces:
        by_member.setdefault(m, []).append((mlbn, cnt))
    for runs in by_member.values():
        runs.sort()
        for (a_lbn, a_n), (b_lbn, _) in zip(runs, runs[1:]):
            assert a_lbn + a_n <= b_lbn
