"""Tests for the benchmark workload generators."""

import pytest

from repro.mpi.ops import BarrierOp, ComputeOp, IoOp
from repro.workloads import (
    Btio,
    Demo,
    DependentReads,
    Hpio,
    IorMpiIo,
    MpiIoTest,
    Noncontig,
    S3asim,
    SyntheticPattern,
)


def io_ops(workload, rank, size):
    return [op for op in workload.ops(rank, size) if isinstance(op, IoOp)]


def all_segments(workload, size):
    segs = []
    for r in range(size):
        for op in io_ops(workload, r, size):
            segs.extend(op.segments)
    return segs


def coverage_bytes(workload, size):
    return sum(s.length for s in all_segments(workload, size))


# ---------------------------------------------------------------- generic


@pytest.mark.parametrize(
    "workload",
    [
        MpiIoTest(file_size=1024 * 1024),
        Demo(file_size=2 * 1024 * 1024),
        Hpio(region_count=64),
        IorMpiIo(file_size=2 * 1024 * 1024),
        Noncontig(elmtcount=16, n_rows=64).with_ncols_hint(4),
        S3asim(n_queries=4, db_bytes=4 * 1024 * 1024),
        Btio(total_bytes=1024 * 1024, n_steps=2),
        DependentReads(file_size=1024 * 1024),
        SyntheticPattern(file_size=1024 * 1024),
    ],
    ids=lambda w: w.name,
)
def test_workload_replayable(workload):
    """ops() must be deterministic across calls (ghost fork semantics)."""
    a = list(workload.ops(1, 4))
    b = list(workload.ops(1, 4))
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert type(x) is type(y)
        if isinstance(x, IoOp):
            assert x.segments == y.segments
            assert x.prediction == y.prediction


@pytest.mark.parametrize(
    "workload",
    [
        MpiIoTest(file_size=1024 * 1024),
        Demo(file_size=2 * 1024 * 1024),
        IorMpiIo(file_size=2 * 1024 * 1024),
        Btio(total_bytes=1024 * 1024, n_steps=2),
    ],
    ids=lambda w: w.name,
)
def test_segments_within_file(workload):
    sizes = {f.name: f.size for f in workload.files()}
    for r in range(4):
        for op in io_ops(workload, r, 4):
            limit = sizes[op.file_name]
            for s in op.segments:
                assert 0 <= s.offset and s.end <= limit


# ------------------------------------------------------------ mpi-io-test


def test_mpi_io_test_globally_sequential():
    w = MpiIoTest(file_size=1024 * 1024, request_bytes=16 * 1024)
    segs = sorted(all_segments(w, 4), key=lambda s: s.offset)
    # Segments tile the file exactly.
    pos = 0
    for s in segs:
        assert s.offset == pos
        pos = s.end
    assert pos == 1024 * 1024


def test_mpi_io_test_rank_interleave():
    w = MpiIoTest(file_size=1024 * 1024, request_bytes=16 * 1024)
    first = io_ops(w, 2, 4)[0]
    assert first.segments[0].offset == 2 * 16 * 1024


def test_mpi_io_test_barriers_emitted():
    w = MpiIoTest(file_size=256 * 1024, request_bytes=16 * 1024, barrier_every=1)
    kinds = [type(op) for op in w.ops(0, 4)]
    assert kinds.count(BarrierOp) == kinds.count(IoOp)


def test_mpi_io_test_write_mode():
    w = MpiIoTest(file_size=256 * 1024, op="W")
    assert all(op.op == "W" for op in io_ops(w, 0, 4))


def test_mpi_io_test_validation():
    with pytest.raises(ValueError):
        MpiIoTest(file_size=1000, request_bytes=16 * 1024 + 1)
    with pytest.raises(ValueError):
        MpiIoTest(op="Z")


# ------------------------------------------------------------------ demo


def test_demo_segments_per_call():
    w = Demo(file_size=8 * 1024 * 1024, segment_bytes=4096, segments_per_call=16)
    op = io_ops(w, 3, 8)[0]
    assert len(op.segments) == 16
    # Rank 3's k-th segment sits at (k*8 + 3) * 4096.
    assert [s.offset for s in op.segments] == [(k * 8 + 3) * 4096 for k in range(16)]


def test_demo_covers_file_exactly():
    w = Demo(file_size=8 * 1024 * 1024, segment_bytes=4096)
    assert coverage_bytes(w, 8) == w.n_calls(8) * 8 * 16 * 4096


def test_demo_compute_interleaved():
    w = Demo(file_size=2 * 1024 * 1024, compute_per_call=0.5)
    ops = list(w.ops(0, 8))
    assert isinstance(ops[0], ComputeOp) and ops[0].seconds == 0.5


# ------------------------------------------------------------------ hpio


def test_hpio_contiguous_when_no_spacing():
    w = Hpio(region_count=16, region_bytes=32 * 1024, region_spacing=0)
    segs = sorted(all_segments(w, 4), key=lambda s: s.offset)
    pos = 0
    for s in segs:
        assert s.offset == pos
        pos = s.end


def test_hpio_spacing_creates_holes():
    w = Hpio(region_count=8, region_bytes=1024, region_spacing=512)
    segs = sorted(all_segments(w, 2), key=lambda s: s.offset)
    assert segs[1].offset - segs[0].end == 512


def test_hpio_file_size():
    w = Hpio(region_count=4, region_bytes=1000, region_spacing=24)
    assert w.file_size == 4 * 1024 - 24


# ------------------------------------------------------------------- ior


def test_ior_partitioned_scopes_disjoint():
    w = IorMpiIo(file_size=4 * 1024 * 1024, request_bytes=32 * 1024)
    for r in range(4):
        segs = [s for op in io_ops(w, r, 4) for s in op.segments]
        scope = 1024 * 1024
        assert all(r * scope <= s.offset and s.end <= (r + 1) * scope for s in segs)
        # Sequential within scope.
        assert [s.offset for s in segs] == sorted(s.offset for s in segs)


def test_ior_validate_rejects_tiny_scope():
    w = IorMpiIo(file_size=64 * 1024, request_bytes=32 * 1024)
    with pytest.raises(ValueError):
        w.validate(4)


# -------------------------------------------------------------- noncontig


def test_noncontig_column_access():
    w = Noncontig(elmtcount=16, n_rows=32, bytes_per_call=4096).with_ncols_hint(4)
    width = 16 * 4
    ops = io_ops(w, 1, 4)
    seg0 = ops[0].segments[0]
    assert seg0.offset == 1 * width  # rank 1's column in row 0
    # Stride between consecutive rows is ncols * width.
    seg1 = ops[0].segments[1]
    assert seg1.offset - seg0.offset == 4 * width


def test_noncontig_collective_flag():
    w = Noncontig(elmtcount=16, n_rows=32, collective=True).with_ncols_hint(4)
    assert all(op.collective for op in io_ops(w, 0, 4))


def test_noncontig_validate():
    w = Noncontig(elmtcount=16, n_rows=32).with_ncols_hint(4)
    with pytest.raises(ValueError):
        w.validate(8)


def test_noncontig_covers_all_rows():
    w = Noncontig(elmtcount=16, n_rows=100, bytes_per_call=1024).with_ncols_hint(4)
    segs = [s for op in io_ops(w, 2, 4) for s in op.segments]
    assert len(segs) == 100


# ---------------------------------------------------------------- s3asim


def test_s3asim_reads_and_writes():
    w = S3asim(n_queries=8, db_bytes=8 * 1024 * 1024)
    ops = io_ops(w, 0, 4)
    assert any(op.op == "R" for op in ops)
    assert any(op.op == "W" for op in ops)


def test_s3asim_result_regions_disjoint():
    w = S3asim(n_queries=4, db_bytes=8 * 1024 * 1024, out_region_bytes=1024 * 1024)
    w0 = [s for op in io_ops(w, 0, 2) if op.op == "W" for s in op.segments]
    w1 = [s for op in io_ops(w, 1, 2) if op.op == "W" for s in op.segments]
    assert max(s.end for s in w0) <= min(s.offset for s in w1)


def test_s3asim_more_queries_more_data():
    small = coverage_bytes(S3asim(n_queries=4, db_bytes=8 * 1024 * 1024), 2)
    big = coverage_bytes(S3asim(n_queries=16, db_bytes=8 * 1024 * 1024), 2)
    assert big > small


def test_s3asim_validation():
    with pytest.raises(ValueError):
        S3asim(n_queries=0)
    with pytest.raises(ValueError):
        S3asim(min_seq_bytes=100, max_seq_bytes=50)


# ------------------------------------------------------------------ btio


def test_btio_cell_size_shrinks_with_procs():
    w = Btio(cell_scale=4096)
    assert w.cell_bytes(16) == 256
    assert w.cell_bytes(64) == 64
    assert w.cell_bytes(256) == 16


def test_btio_cells_disjoint_across_ranks():
    w = Btio(total_bytes=64 * 1024, n_steps=1, cell_scale=1024)
    s0 = {s.offset for op in io_ops(w, 0, 4) for s in op.segments}
    s1 = {s.offset for op in io_ops(w, 1, 4) for s in op.segments}
    assert not (s0 & s1)


def test_btio_verify_read_phase():
    w = Btio(total_bytes=64 * 1024, n_steps=1, verify_read=True)
    ops = io_ops(w, 0, 4)
    assert ops[-1].op == "R"


def test_btio_bad_steps():
    with pytest.raises(ValueError):
        Btio(total_bytes=1001, n_steps=2)


# -------------------------------------------------------------- dependent


def test_dependent_predictions_never_match_actuals():
    w = DependentReads(file_size=1024 * 1024, request_bytes=64 * 1024)
    actual = set()
    predicted = set()
    for r in range(2):
        for op in io_ops(w, r, 2):
            actual.update(s.offset for s in op.segments)
            predicted.update(s.offset for s in op.prediction)
    assert not (actual & predicted)


def test_dependent_reads_only_first_half():
    w = DependentReads(file_size=1024 * 1024, request_bytes=64 * 1024)
    for op in io_ops(w, 0, 2):
        assert op.segments[0].end <= 512 * 1024


# -------------------------------------------------------------- synthetic


def test_synthetic_patterns():
    for pattern in ("sequential", "partitioned", "random"):
        w = SyntheticPattern(file_size=1024 * 1024, pattern=pattern)
        segs = all_segments(w, 4)
        assert sum(s.length for s in segs) == 1024 * 1024


def test_synthetic_rejects_bad_pattern():
    with pytest.raises(ValueError):
        SyntheticPattern(pattern="zigzag")
