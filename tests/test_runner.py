"""Tests for the experiment harness, strategies, and calibration."""

import pytest

from repro.cluster import ClusterSpec
from repro.disk.drive import DiskParams
from repro.runner import (
    JobSpec,
    calibrate_compute_for_ratio,
    format_table,
    resolve_strategy,
    run_experiment,
)
from repro.runner.strategies import STRATEGY_NAMES
from repro.workloads import Demo, SyntheticPattern


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


# -------------------------------------------------------------- strategies


def test_all_strategies_resolvable():
    from repro.cluster import build_cluster
    from repro.core import DualParSystem
    from repro.mpi import MpiRuntime

    runtime = MpiRuntime(build_cluster(small_spec()))
    system = DualParSystem(runtime)
    for name in STRATEGY_NAMES:
        factory = resolve_strategy(name, system)
        assert callable(factory)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown strategy"):
        resolve_strategy("mystery")


def test_dualpar_strategy_needs_system():
    with pytest.raises(ValueError, match="needs a DualParSystem"):
        resolve_strategy("dualpar", None)


# -------------------------------------------------------------- experiment


def test_run_experiment_basic_measurements():
    res = run_experiment(
        [JobSpec("a", 4, SyntheticPattern(file_size=2 * 1024 * 1024))],
        cluster_spec=small_spec(),
    )
    j = res.jobs[0]
    assert j.bytes_read == 2 * 1024 * 1024
    assert j.elapsed_s > 0
    assert j.throughput_mb_s > 0
    assert 0 <= j.io_ratio <= 1
    assert res.makespan_s >= j.elapsed_s - 1e-9
    assert res.system_throughput_mb_s > 0


def test_run_experiment_concurrent_jobs():
    res = run_experiment(
        [
            JobSpec("a", 2, SyntheticPattern(file_name="fa.dat", file_size=1024 * 1024)),
            JobSpec("b", 2, SyntheticPattern(file_name="fb.dat", file_size=1024 * 1024)),
        ],
        cluster_spec=small_spec(),
    )
    assert len(res.jobs) == 2
    assert res.job("a").bytes_read == 1024 * 1024
    assert res.job("b").bytes_read == 1024 * 1024
    with pytest.raises(KeyError):
        res.job("c")


def test_run_experiment_delayed_start():
    res = run_experiment(
        [
            JobSpec("early", 2, SyntheticPattern(file_name="fa.dat", file_size=1024 * 1024)),
            JobSpec("late", 2, SyntheticPattern(file_name="fb.dat", file_size=1024 * 1024),
                    delay_s=0.5),
        ],
        cluster_spec=small_spec(),
    )
    assert res.job("late").start_s == pytest.approx(0.5)
    assert res.job("early").start_s == 0.0


def test_run_experiment_shared_file_dedup():
    w1 = SyntheticPattern(file_name="shared.dat", file_size=1024 * 1024)
    w2 = SyntheticPattern(file_name="shared.dat", file_size=1024 * 1024)
    res = run_experiment(
        [JobSpec("a", 2, w1), JobSpec("b", 2, w2)], cluster_spec=small_spec()
    )
    assert len(res.jobs) == 2


def test_run_experiment_conflicting_file_sizes_rejected():
    w1 = SyntheticPattern(file_name="x.dat", file_size=1024 * 1024)
    w2 = SyntheticPattern(file_name="x.dat", file_size=2 * 1024 * 1024)
    with pytest.raises(ValueError, match="sizes"):
        run_experiment([JobSpec("a", 2, w1), JobSpec("b", 2, w2)],
                       cluster_spec=small_spec())


def test_run_experiment_empty_rejected():
    with pytest.raises(ValueError):
        run_experiment([])


def test_run_experiment_timeline():
    res = run_experiment(
        [JobSpec("a", 4, SyntheticPattern(file_size=4 * 1024 * 1024))],
        cluster_spec=small_spec(),
        timeline_window_s=0.05,
    )
    assert res.timeline is not None
    series = res.timeline.series(window_s=0.05)
    assert sum(mb for _, mb in series) > 0


def test_job_result_io_ratio_definition():
    res = run_experiment(
        [JobSpec("a", 2, SyntheticPattern(file_size=1024 * 1024,
                                          compute_per_call=0.01))],
        cluster_spec=small_spec(),
    )
    j = res.jobs[0]
    assert j.compute_time_s > 0
    assert j.io_ratio == pytest.approx(
        j.io_time_s / (j.io_time_s + j.compute_time_s)
    )


# -------------------------------------------------------------- calibration


def test_calibrate_compute_for_ratio():
    builder = lambda cpc: Demo(
        file_size=4 * 1024 * 1024, segment_bytes=16 * 1024, compute_per_call=cpc
    )
    cpc = calibrate_compute_for_ratio(builder, 0.5, nprocs=4,
                                      cluster_spec=small_spec())
    assert cpc > 0
    # Verify the achieved ratio is in the neighbourhood of the target.
    res = run_experiment([JobSpec("v", 4, builder(cpc), strategy="vanilla")],
                         cluster_spec=small_spec())
    assert 0.3 < res.jobs[0].io_ratio < 0.7


def test_calibrate_ratio_one_means_zero_compute():
    builder = lambda cpc: Demo(file_size=2 * 1024 * 1024, compute_per_call=cpc)
    assert calibrate_compute_for_ratio(builder, 1.0, nprocs=4,
                                       cluster_spec=small_spec()) == 0.0


def test_calibrate_rejects_bad_ratio():
    with pytest.raises(ValueError):
        calibrate_compute_for_ratio(lambda c: Demo(), 0.0, 4)


# ------------------------------------------------------------------ tables


def test_format_table_alignment():
    out = format_table(
        ["scheme", "MB/s"],
        [["vanilla", 115.0], ["dualpar", 263.2]],
        title="Fig 3",
    )
    lines = out.splitlines()
    assert lines[0] == "Fig 3"
    assert "scheme" in lines[1] and "MB/s" in lines[1]
    assert "115.0" in out and "263.2" in out


def test_format_table_empty_rows():
    out = format_table(["a"], [])
    assert "a" in out
