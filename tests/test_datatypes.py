"""Unit & property tests for MPI derived datatypes and file views."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import ContigType, FileView, IndexedType, VectorType
from repro.mpi.ops import Segment


# ------------------------------------------------------------------ contig


def test_contig_flatten():
    t = ContigType(100)
    assert t.flatten(50, 3) == [Segment(50, 300)]
    assert t.size == 100 and t.extent == 100


def test_contig_rejects_bad():
    with pytest.raises(ValueError):
        ContigType(0)


# ------------------------------------------------------------------ vector


def test_vector_template():
    t = VectorType(count=3, blocklength=10, stride=50)
    assert t.flatten(0, 1) == [Segment(0, 10), Segment(50, 10), Segment(100, 10)]
    assert t.size == 30
    assert t.extent == 110


def test_vector_multiple_instances():
    t = VectorType(count=2, blocklength=10, stride=30)
    # extent = 40: instance 2 starts at 40.
    assert t.flatten(0, 2) == [
        Segment(0, 10),
        Segment(30, 20),  # instance 1's second block merges with instance 2's first
        Segment(70, 10),
    ]


def test_vector_stride_equals_blocklength_is_contiguous():
    t = VectorType(count=4, blocklength=10, stride=10)
    assert t.flatten(0, 1) == [Segment(0, 40)]


def test_vector_rejects_bad():
    with pytest.raises(ValueError):
        VectorType(count=0, blocklength=10, stride=10)
    with pytest.raises(ValueError):
        VectorType(count=2, blocklength=10, stride=5)


# ----------------------------------------------------------------- indexed


def test_indexed_sorted_template():
    t = IndexedType(blocks=((100, 10), (0, 20)))
    assert t.flatten(0, 1) == [Segment(0, 20), Segment(100, 10)]
    assert t.size == 30
    assert t.extent == 110


def test_indexed_rejects_overlap():
    with pytest.raises(ValueError):
        IndexedType(blocks=((0, 20), (10, 20)))


def test_indexed_rejects_empty():
    with pytest.raises(ValueError):
        IndexedType(blocks=())


# --------------------------------------------------------------- file view


def test_view_identity_with_contig():
    v = FileView(ContigType(1000), disp=0)
    assert v.segments(100, 50) == [Segment(100, 50)]


def test_view_displacement_shifts():
    v = FileView(ContigType(1000), disp=4096)
    assert v.segments(0, 100) == [Segment(4096, 100)]


def test_view_vector_skips_holes():
    # Column 0 of a 4-column int32 array, elmtcount=4 -> 16-byte cells
    # every 64 bytes.
    v = FileView(VectorType(count=2, blocklength=16, stride=64))
    # Logical bytes 0..31 = the two 16-byte cells.
    assert v.segments(0, 32) == [Segment(0, 16), Segment(64, 16)]


def test_view_starts_mid_block():
    v = FileView(VectorType(count=2, blocklength=16, stride=64))
    assert v.segments(8, 16) == [Segment(8, 8), Segment(64, 8)]


def test_view_tiles_repeat():
    v = FileView(VectorType(count=2, blocklength=16, stride=64))
    # One tile holds 32 data bytes over an 80-byte extent.
    segs = v.segments(32, 32)  # entirely the second tile
    assert segs == [Segment(80, 16), Segment(144, 16)]


def test_view_rejects_negative():
    v = FileView(ContigType(10))
    with pytest.raises(ValueError):
        v.segments(-1, 10)
    with pytest.raises(ValueError):
        FileView(ContigType(10), disp=-5)


@given(
    count=st.integers(min_value=1, max_value=8),
    block=st.integers(min_value=1, max_value=64),
    extra=st.integers(min_value=0, max_value=64),
    offset=st.integers(min_value=0, max_value=512),
    length=st.integers(min_value=0, max_value=1024),
)
@settings(max_examples=150, deadline=None)
def test_view_conservation_property(count, block, extra, offset, length):
    """A view access of N logical bytes produces exactly N physical bytes,
    in strictly increasing non-overlapping segments."""
    ft = VectorType(count=count, blocklength=block, stride=block + extra)
    v = FileView(ft, disp=128)
    segs = v.segments(offset, length)
    assert sum(s.length for s in segs) == length
    for a, b in zip(segs, segs[1:]):
        assert a.end <= b.offset  # sorted, disjoint (merged when adjacent)
    if segs:
        assert segs[0].offset >= 128


@given(
    count=st.integers(min_value=1, max_value=6),
    block=st.integers(min_value=1, max_value=32),
    extra=st.integers(min_value=1, max_value=32),
    n=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_flatten_conservation_property(count, block, extra, n):
    t = VectorType(count=count, blocklength=block, stride=block + extra)
    segs = t.flatten(0, n)
    assert sum(s.length for s in segs) == t.size * n
    for a, b in zip(segs, segs[1:]):
        assert a.end < b.offset or a.end <= b.offset
