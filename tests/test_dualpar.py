"""Integration tests for DualPar: EMC, PEC cycles, CRM, mis-prefetch."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import DualParConfig
from repro.disk.drive import DiskParams
from repro.runner import JobSpec, run_experiment
from repro.workloads import DependentReads, Hpio, MpiIoTest, SyntheticPattern


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=4,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=4 * 10**9),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


# ----------------------------------------------------------------- config


def test_config_defaults_match_paper():
    cfg = DualParConfig()
    assert cfg.quota_bytes == 1024 * 1024
    assert cfg.t_improvement == 3.0
    assert cfg.io_ratio_enter == 0.80
    assert cfg.misprefetch_threshold == 0.20


def test_config_validation():
    with pytest.raises(ValueError):
        DualParConfig(io_ratio_enter=0.5, io_ratio_exit=0.6)
    with pytest.raises(ValueError):
        DualParConfig(t_improvement=0)
    with pytest.raises(ValueError):
        DualParConfig(force_mode="sideways")
    with pytest.raises(ValueError):
        DualParConfig(normal_engine="magic")


# ------------------------------------------------------------ forced mode


def test_forced_datadriven_runs_cycles():
    res = run_experiment(
        [JobSpec("dp", 8, MpiIoTest(file_size=8 * 1024 * 1024),
                 strategy="dualpar-forced")],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    assert eng.pec.n_cycles >= 1
    assert eng.crm.prefetched_bytes > 0
    assert eng.n_cache_hits > 0
    assert res.jobs[0].bytes_read == 8 * 1024 * 1024


def test_forced_datadriven_beats_vanilla_on_io_bound_read():
    w = lambda: MpiIoTest(file_size=8 * 1024 * 1024)
    r_v = run_experiment([JobSpec("v", 8, w(), strategy="vanilla")],
                         cluster_spec=small_spec())
    r_d = run_experiment([JobSpec("d", 8, w(), strategy="dualpar-forced")],
                         cluster_spec=small_spec())
    assert r_d.jobs[0].elapsed_s < r_v.jobs[0].elapsed_s


def test_dualpar_write_buffering_and_writeback():
    res = run_experiment(
        [JobSpec("w", 8, MpiIoTest(file_size=8 * 1024 * 1024, op="W"),
                 strategy="dualpar-forced")],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    assert eng.crm.writeback_bytes == 8 * 1024 * 1024
    # All dirty data flushed by job end.
    assert eng.cache.dirty_chunks(res.mpi_jobs[0].job_id) == []
    # Data actually reached the disks.
    assert res.cluster.total_bytes_served() >= 8 * 1024 * 1024


def test_dualpar_batches_requests_deeply():
    """The defining mechanism: DualPar's servers see far deeper queues."""
    w = lambda: MpiIoTest(file_size=8 * 1024 * 1024)
    r_v = run_experiment([JobSpec("v", 8, w(), strategy="vanilla")],
                         cluster_spec=small_spec())
    r_d = run_experiment([JobSpec("d", 8, w(), strategy="dualpar-forced")],
                         cluster_spec=small_spec())
    assert r_d.cluster.mean_queue_depth() > 2 * r_v.cluster.mean_queue_depth()


def test_normal_mode_delegates_to_vanilla():
    res = run_experiment(
        [JobSpec("n", 4, SyntheticPattern(file_size=1024 * 1024),
                 strategy="dualpar", engine_kwargs=dict(force_mode="normal"))],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    assert eng.pec.n_cycles == 0
    assert res.jobs[0].bytes_read == 1024 * 1024


def test_normal_engine_collective_option():
    res = run_experiment(
        [JobSpec("nc", 4, SyntheticPattern(file_size=1024 * 1024),
                 strategy="dualpar",
                 engine_kwargs=dict(force_mode="normal", normal_engine="collective"))],
        cluster_spec=small_spec(),
    )
    assert res.jobs[0].bytes_read == 1024 * 1024


# ----------------------------------------------------------- mis-prefetch


def test_dependent_workload_triggers_lockout():
    """Table III: with fully data-dependent addresses every prefetch is
    wrong; EMC detects the mis-prefetch ratio and disables the mode."""
    res = run_experiment(
        [JobSpec("dep", 4, DependentReads(file_size=4 * 1024 * 1024),
                 strategy="dualpar", engine_kwargs=dict(force_mode=None))],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(
            # Pin entry so the test exercises the exit path deterministically.
            io_ratio_enter=0.0, io_ratio_exit=0.0, t_improvement=1e-9, emc_interval_s=0.05,
        ),
    )
    eng = res.mpi_jobs[0].engine
    # Either it never entered (no improvement signal) or it entered, saw
    # garbage, and locked out.  With the aggressive thresholds above it
    # must have entered at least once.
    assert res.jobs[0].bytes_read == 2 * 1024 * 1024  # first half actually read
    if eng.pec.n_cycles >= 2:
        assert eng.locked_out
        assert any(r >= 0.9 for _, r in eng.pec.misprefetch_history)


def test_dependent_workload_overhead_is_bounded():
    """Table III's headline: worst-case slowdown stays small."""
    w = lambda: DependentReads(file_size=4 * 1024 * 1024)
    r_v = run_experiment([JobSpec("v", 4, w(), strategy="vanilla")],
                         cluster_spec=small_spec())
    r_d = run_experiment(
        [JobSpec("d", 4, w(), strategy="dualpar",
                 engine_kwargs=dict(force_mode=None))],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(io_ratio_enter=0.0, io_ratio_exit=0.0, t_improvement=1e-9,
                                     emc_interval_s=0.05),
    )
    assert r_d.jobs[0].elapsed_s < r_v.jobs[0].elapsed_s * 1.6


def test_misprefetched_chunks_never_used():
    res = run_experiment(
        [JobSpec("dep", 4, DependentReads(file_size=4 * 1024 * 1024),
                 strategy="dualpar-forced")],
        cluster_spec=small_spec(),
    )
    eng = res.mpi_jobs[0].engine
    if eng.pec.misprefetch_history:
        assert all(r >= 0.9 for _, r in eng.pec.misprefetch_history)
    # Every read fell back to a direct request after its failed cycle.
    assert eng.n_direct_fallback_bytes > 0


# ----------------------------------------------------------------- EMC


def test_emc_enables_mode_for_io_bound_program():
    """An I/O-bound random-access program should be flipped to data-driven
    by EMC once seek distances exceed the sortable request distance."""
    res = run_experiment(
        [JobSpec("adaptive", 8,
                 Hpio(region_count=2048, region_bytes=16 * 1024, region_spacing=0),
                 strategy="dualpar")],
        cluster_spec=small_spec(placement="spread"),
        dualpar_config=DualParConfig(emc_interval_s=0.2, t_improvement=1.5),
    )
    system = res.dualpar
    assert system is not None
    assert len(system.emc.samples) > 0
    # EMC produced I/O-ratio samples for the job.
    assert any(r for s in system.emc.samples for r in s.io_ratios.values())


def test_emc_respects_force_mode():
    res = run_experiment(
        [JobSpec("forced", 4, SyntheticPattern(file_size=2 * 1024 * 1024),
                 strategy="dualpar-forced")],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(emc_interval_s=0.05),
    )
    # No transitions logged: the mode was pinned.
    assert all(mode != "normal" for _, _, mode in res.dualpar.transitions)


def test_emc_mode_transition_logged_on_misprefetch_exit():
    res = run_experiment(
        [JobSpec("dep", 4, DependentReads(file_size=4 * 1024 * 1024),
                 strategy="dualpar", engine_kwargs=dict(force_mode=None))],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(io_ratio_enter=0.0, io_ratio_exit=0.0, t_improvement=1e-9,
                                     emc_interval_s=0.05),
    )
    trans = res.dualpar.transitions
    if any(m == "datadriven" for _, _, m in trans):
        assert any(m == "normal" for _, _, m in trans)


# ------------------------------------------------------------- quota/cache


def test_larger_quota_fewer_cycles():
    def run_quota(q):
        res = run_experiment(
            [JobSpec("q", 8, MpiIoTest(file_size=8 * 1024 * 1024),
                     strategy="dualpar-forced")],
            cluster_spec=small_spec(),
            dualpar_config=DualParConfig(quota_bytes=q),
        )
        return res.mpi_jobs[0].engine.pec.n_cycles

    assert run_quota(128 * 1024) > run_quota(1024 * 1024)


def test_zero_quota_degenerates_gracefully():
    """Fig 8's 0 KB point: no cache space means effectively vanilla."""
    res = run_experiment(
        [JobSpec("z", 4, MpiIoTest(file_size=2 * 1024 * 1024),
                 strategy="dualpar-forced")],
        cluster_spec=small_spec(),
        dualpar_config=DualParConfig(quota_bytes=0),
    )
    assert res.jobs[0].bytes_read == 2 * 1024 * 1024
