"""Public-API integrity: every package imports, __all__ resolves, and
public items carry docstrings."""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.sim",
    "repro.sim.core",
    "repro.sim.resources",
    "repro.sim.sync",
    "repro.disk",
    "repro.disk.geometry",
    "repro.disk.seek",
    "repro.disk.drive",
    "repro.disk.raid",
    "repro.disk.stats",
    "repro.iosched",
    "repro.iosched.base",
    "repro.iosched.squeue",
    "repro.iosched.request",
    "repro.iosched.blocklayer",
    "repro.iosched.noop",
    "repro.iosched.deadline",
    "repro.iosched.cfq",
    "repro.iosched.anticipatory",
    "repro.net",
    "repro.net.ethernet",
    "repro.pfs",
    "repro.pfs.layout",
    "repro.pfs.filesystem",
    "repro.pfs.dataserver",
    "repro.pfs.metaserver",
    "repro.pfs.client",
    "repro.pfs.pagecache",
    "repro.pfs.writeback",
    "repro.cache",
    "repro.cache.chunk",
    "repro.cache.memcache",
    "repro.cache.quota",
    "repro.mpi",
    "repro.mpi.ops",
    "repro.mpi.opstream",
    "repro.mpi.runtime",
    "repro.mpi.datatypes",
    "repro.mpiio",
    "repro.mpiio.engine",
    "repro.mpiio.collective",
    "repro.mpiio.prefetch",
    "repro.mpiio.datasieve",
    "repro.mpiio.listio",
    "repro.core",
    "repro.core.config",
    "repro.core.metrics",
    "repro.core.emc",
    "repro.core.pec",
    "repro.core.crm",
    "repro.core.engine",
    "repro.core.system",
    "repro.workloads",
    "repro.cluster",
    "repro.cluster.spec",
    "repro.cluster.builder",
    "repro.runner",
    "repro.runner.experiment",
    "repro.runner.strategies",
    "repro.runner.results",
    "repro.runner.calibrate",
    "repro.service",
    "repro.service.schemas",
    "repro.service.catalog",
    "repro.service.worker",
    "repro.service.coordinator",
    "repro.service.client",
    "repro.trace",
    "repro.trace.blktrace",
    "repro.trace.timeline",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_all_resolves(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"
    for sym in getattr(mod, "__all__", []):
        assert hasattr(mod, sym), f"{name}.__all__ names missing symbol {sym!r}"


@pytest.mark.parametrize("name", MODULES)
def test_public_classes_and_functions_documented(name):
    mod = importlib.import_module(name)
    for sym in getattr(mod, "__all__", []):
        obj = getattr(mod, sym)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__.startswith("repro"):
                assert obj.__doc__, f"{name}.{sym} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__
