"""Coverage for the service submission schema and the result catalog.

Property tests (Hypothesis) pin the three schema invariants the
coordinator leans on: JSON round-trip identity, fingerprint stability
under field reordering, and outright rejection of foreign schema
versions.  The catalog half covers atomic first-write-wins commits and
corruption-reads-as-miss semantics.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, FaultPlan
from repro.guard import GuardConfig
from repro.runner.parallel import _run_spec, experiment_fingerprint
from repro.service import (
    RECORD_VERSION,
    SCHEMA_VERSION,
    CatalogRecord,
    ClusterSubmission,
    ExperimentSubmission,
    JobSubmission,
    ResultCatalog,
    canonical_json,
    result_to_dict,
)
from repro.service.schemas import guard_from_dict, guard_to_dict


def _submission(**over) -> ExperimentSubmission:
    defaults = dict(
        jobs=(JobSubmission("j0", "mpi-io-test", nprocs=4, size_mb=2),),
        cluster=ClusterSubmission(compute_nodes=4, data_servers=3),
        label="unit",
    )
    defaults.update(over)
    return ExperimentSubmission(**defaults)


# ---------------------------------------------------------------------------
# schema: validation and round-trips
# ---------------------------------------------------------------------------


def test_submission_roundtrips_through_dict_and_json():
    sub = _submission(
        quota_kb=256,
        guard=GuardConfig(min_hit_rate=0.5),
        fault_plan=FaultPlan(
            seed=7,
            events=(FaultEvent(kind="disk_failslow", at_s=0.1, until_s=0.5),),
        ),
    )
    assert ExperimentSubmission.from_dict(sub.to_dict()) == sub
    assert ExperimentSubmission.from_json(sub.to_json()) == sub


def test_submission_load_from_file(tmp_path):
    path = tmp_path / "spec.json"
    sub = _submission()
    path.write_text(sub.to_json(), encoding="utf-8")
    assert ExperimentSubmission.load(path) == sub


def test_unknown_fields_rejected_at_every_level():
    good = _submission().to_dict()
    for mutate in (
        lambda d: d.update(surprise=1),
        lambda d: d["jobs"][0].update(surprise=1),
        lambda d: d["cluster"].update(surprise=1),
        lambda d: d.update(guard={"job_cap_bytes": 1, "surprise": 2}),
        lambda d: d.update(
            fault_plan={"seed": 0, "events": [], "retry": {}, "surprise": 3}
        ),
    ):
        raw = json.loads(json.dumps(good))
        mutate(raw)
        with pytest.raises(ValueError, match="unknown"):
            ExperimentSubmission.from_dict(raw)


def test_missing_schema_version_rejected():
    raw = _submission().to_dict()
    del raw["schema_version"]
    with pytest.raises(ValueError, match="schema_version"):
        ExperimentSubmission.from_dict(raw)


@given(version=st.integers().filter(lambda v: v != SCHEMA_VERSION))
@settings(max_examples=25)
def test_unknown_schema_version_rejected(version):
    raw = _submission().to_dict()
    raw["schema_version"] = version
    with pytest.raises(ValueError, match="unsupported schema_version"):
        ExperimentSubmission.from_dict(raw)


def test_submission_validation_rejects_bad_values():
    with pytest.raises(ValueError, match="at least one job"):
        _submission(jobs=())
    with pytest.raises(ValueError, match="unknown workload"):
        _submission(jobs=(JobSubmission("j", "no-such-workload"),))
    with pytest.raises(ValueError, match="unknown strategy"):
        _submission(jobs=(JobSubmission("j", "random", strategy="warp"),))
    with pytest.raises(ValueError):
        _submission(jobs=(JobSubmission("j", "random", op="sideways"),))
    with pytest.raises(ValueError, match="size_mb"):
        _submission(jobs=(JobSubmission("j", "random", size_mb=0),))
    with pytest.raises(ValueError, match="nprocs"):
        _submission(jobs=(JobSubmission("j", "random", nprocs=-1),))
    with pytest.raises(ValueError, match="io_scheduler"):
        _submission(cluster=ClusterSubmission(io_scheduler="fifo"))
    with pytest.raises(ValueError, match="tenant"):
        _submission(tenant="")
    with pytest.raises(ValueError, match="quota_kb"):
        _submission(quota_kb=0)


def test_op_aliases_normalise_to_one_canonical_form():
    a = _submission(jobs=(JobSubmission("j", "random", op="read"),))
    b = _submission(jobs=(JobSubmission("j", "random", op="R"),))
    assert a == b
    assert a.to_dict() == b.to_dict()


def test_guard_config_roundtrip_and_unknown_field_rejection():
    guard = GuardConfig(min_hit_rate=0.42, breaker_failures=5)
    assert guard_from_dict(guard_to_dict(guard)) == guard
    with pytest.raises(ValueError, match="unknown GuardConfig"):
        guard_from_dict({"min_hit_rate": 0.1, "surprise": True})


def test_declared_bytes_sums_job_sizes():
    sub = _submission(
        jobs=(
            JobSubmission("a", "random", size_mb=3),
            JobSubmission("b", "random", size_mb=5),
        )
    )
    assert sub.declared_bytes == 8 * 1024 * 1024


def test_fingerprint_matches_lowered_spec_and_separates_knobs():
    base = _submission()
    assert base.fingerprint() == experiment_fingerprint(base.to_experiment_spec())
    # Same submission, fresh object: same address.
    assert _submission().fingerprint() == base.fingerprint()
    # Any knob that changes the cell changes the address.
    for other in (
        _submission(jobs=(JobSubmission("j0", "mpi-io-test", nprocs=4, size_mb=4),)),
        _submission(
            jobs=(
                JobSubmission("j0", "mpi-io-test", nprocs=4, size_mb=2, strategy="collective"),
            )
        ),
        _submission(cluster=ClusterSubmission(compute_nodes=4, data_servers=4)),
        _submission(quota_kb=128),
        _submission(guard=GuardConfig()),
        _submission(fault_plan=FaultPlan(seed=1)),
    ):
        assert other.fingerprint() != base.fingerprint()


# ---------------------------------------------------------------------------
# schema: property tests
# ---------------------------------------------------------------------------

_jobs_st = st.lists(
    st.builds(
        JobSubmission,
        name=st.sampled_from(["alpha", "beta"]),
        workload=st.sampled_from(["mpi-io-test", "random", "hpio"]),
        nprocs=st.integers(1, 16),
        size_mb=st.integers(1, 8),
        op=st.sampled_from(["R", "W", "read", "write"]),
        strategy=st.sampled_from(["vanilla", "collective", "dualpar"]),
        delay_s=st.floats(0, 2, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=3,
)

_submissions_st = st.builds(
    ExperimentSubmission,
    jobs=st.builds(tuple, _jobs_st),
    tenant=st.sampled_from(["default", "acme", "zephyr"]),
    label=st.text(alphabet="abc-", max_size=8),
    cluster=st.builds(
        ClusterSubmission,
        compute_nodes=st.integers(2, 8),
        data_servers=st.integers(2, 5),
        io_scheduler=st.sampled_from(["cfq", "noop"]),
    ),
    quota_kb=st.one_of(st.none(), st.integers(64, 1024)),
    observe=st.booleans(),
    guard=st.one_of(st.none(), st.builds(GuardConfig)),
    fault_plan=st.one_of(
        st.none(),
        st.builds(
            FaultPlan,
            seed=st.integers(0, 99),
            events=st.builds(
                lambda ev: (ev,),
                st.one_of(
                    st.builds(
                        FaultEvent,
                        kind=st.just("disk_failslow"),
                        at_s=st.floats(0, 1, allow_nan=False),
                        until_s=st.floats(1.5, 2, allow_nan=False),
                        transfer_factor=st.floats(1, 8, allow_nan=False),
                    ),
                    st.builds(
                        FaultEvent,
                        kind=st.just("net_degrade"),
                        at_s=st.floats(0, 1, allow_nan=False),
                        until_s=st.floats(1.5, 2, allow_nan=False),
                        extra_latency_s=st.floats(
                            0.001, 0.01, allow_nan=False
                        ),
                    ),
                ),
            ),
        ),
    ),
)


@given(sub=_submissions_st)
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_identity(sub):
    assert ExperimentSubmission.from_dict(sub.to_dict()) == sub
    assert ExperimentSubmission.from_json(sub.to_json(indent=None)) == sub


def _shuffled(obj, rng):
    """Recursively rebuild dicts with randomised key insertion order."""
    if isinstance(obj, dict):
        keys = list(obj)
        rng.shuffle(keys)
        return {k: _shuffled(obj[k], rng) for k in keys}
    if isinstance(obj, list):
        return [_shuffled(v, rng) for v in obj]
    return obj


@given(sub=_submissions_st, rng=st.randoms())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_fingerprint_stable_under_field_reordering(sub, rng):
    raw = json.loads(json.dumps(_shuffled(sub.to_dict(), rng)))
    assert ExperimentSubmission.from_dict(raw).fingerprint() == sub.fingerprint()


# ---------------------------------------------------------------------------
# catalog
# ---------------------------------------------------------------------------


def _record(fp="f" * 64, **over) -> CatalogRecord:
    defaults = dict(
        fingerprint=fp,
        code_version="c" * 64,
        submission=_submission().to_dict(),
        result={"makespan_s": 1.25},
        provenance={"tenant": "default", "worker_id": 0},
    )
    defaults.update(over)
    return CatalogRecord(**defaults)


def test_catalog_put_get_roundtrip(tmp_path):
    catalog = ResultCatalog(tmp_path)
    record = _record()
    assert record.fingerprint not in catalog
    assert catalog.put(record) is True
    assert record.fingerprint in catalog
    assert catalog.get(record.fingerprint) == record
    assert catalog.fingerprints() == [record.fingerprint]
    assert list(catalog.records()) == [record]
    assert len(catalog) == 1


def test_catalog_first_write_wins(tmp_path):
    catalog = ResultCatalog(tmp_path)
    first = _record(result={"makespan_s": 1.0})
    later = _record(result={"makespan_s": 9.0})
    assert catalog.put(first) is True
    assert catalog.put(later) is False
    assert catalog.get(first.fingerprint) == first
    assert len(catalog) == 1


def test_catalog_leaves_no_temp_files(tmp_path):
    catalog = ResultCatalog(tmp_path)
    for i in range(4):
        catalog.put(_record(fp=f"{i:064x}"))
    assert not list(catalog.records_dir.glob("*.tmp"))
    assert len(catalog) == 4


def test_catalog_corruption_reads_as_miss(tmp_path):
    catalog = ResultCatalog(tmp_path)
    record = _record()
    catalog.put(record)
    path = catalog.path_for(record.fingerprint)

    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert catalog.get(record.fingerprint) is None

    path.write_text('["not", "a", "record"]')
    assert catalog.get(record.fingerprint) is None

    # A whole record filed under the wrong fingerprint is also a miss.
    other = "0" * 64
    catalog.path_for(other).write_text(record.to_json())
    assert catalog.get(other) is None

    # Missing entries are a miss, not an error.
    assert catalog.get("9" * 64) is None


def test_record_version_gate():
    raw = _record().to_dict()
    raw["record_version"] = RECORD_VERSION + 1
    with pytest.raises(ValueError, match="unsupported record_version"):
        CatalogRecord.from_dict(raw)
    raw = _record().to_dict()
    del raw["record_version"]
    with pytest.raises(ValueError, match="record_version"):
        CatalogRecord.from_dict(raw)
    raw = _record().to_dict()
    raw["surprise"] = 1
    with pytest.raises(ValueError, match="unknown CatalogRecord"):
        CatalogRecord.from_dict(raw)


def test_result_to_dict_is_canonical_and_idempotent():
    slim = _run_spec(_submission().to_experiment_spec())
    payload = result_to_dict(slim)
    # Already JSON-normal form: re-encoding round-trips bit-identically.
    assert json.loads(canonical_json(payload)) == payload
    assert payload["makespan_s"] > 0
    assert payload["jobs"][0]["name"] == "j0"
    assert isinstance(payload["dualpar_transitions"], list)
    # And it is deterministic across runs of the same cell.
    again = result_to_dict(_run_spec(_submission().to_experiment_spec()))
    assert canonical_json(again) == canonical_json(payload)
