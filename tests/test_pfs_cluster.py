"""Integration tests: client -> network -> data server -> disk round trips."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.disk.drive import DiskParams


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
        placement="packed",
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


def test_cluster_builds_with_defaults():
    cluster = build_cluster()
    assert len(cluster.data_servers) == 9
    assert len(cluster.clients) == 8
    assert cluster.spec.metadata_node_id == 8 + 9


def test_spec_node_id_layout():
    spec = small_spec()
    assert spec.compute_node_id(0) == 0
    assert spec.data_server_node_id(0) == 2
    assert spec.metadata_node_id == 5
    assert spec.n_nodes == 6
    with pytest.raises(ValueError):
        spec.compute_node_id(2)
    with pytest.raises(ValueError):
        spec.data_server_node_id(3)


def test_read_round_trip():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    f = cluster.fs.create("input.dat", 1024 * 1024)
    client = cluster.clients[0]

    def proc():
        yield from client.read(f, 0, 256 * 1024, stream_id=1)

    sim.run_until_event(sim.process(proc()))
    assert client.bytes_read == 256 * 1024
    assert cluster.total_bytes_served() == 256 * 1024
    assert sim.now > 0


def test_write_round_trip():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    f = cluster.fs.create("out.dat", 1024 * 1024)
    client = cluster.clients[1]

    def proc():
        yield from client.write(f, 0, 512 * 1024, stream_id=2)

    sim.run_until_event(sim.process(proc()))
    assert client.bytes_written == 512 * 1024
    # Write payload striped over all 3 servers (8 units round-robin).
    assert all(ds.bytes_served > 0 for ds in cluster.data_servers)


def test_read_out_of_range_rejected():
    cluster = build_cluster(small_spec())
    f = cluster.fs.create("small.dat", 64 * 1024)
    client = cluster.clients[0]
    with pytest.raises(ValueError):
        list(client.read(f, 0, 128 * 1024, stream_id=0))


def test_large_read_faster_than_scattered_small_reads():
    """One striped 1 MB read beats 16 scattered 64 KB reads of the same
    total -- the disk-efficiency premise end to end."""
    import numpy as np

    spec = small_spec(placement="spread")
    cluster = build_cluster(spec)
    sim = cluster.sim
    files = [cluster.fs.create(f"f{i}", 16 * 1024 * 1024) for i in range(8)]
    client = cluster.clients[0]

    def contiguous():
        yield from client.read(files[0], 0, 1024 * 1024, stream_id=1, coalesce=True)

    sim.run_until_event(sim.process(contiguous()))
    t_contig = sim.now

    cluster2 = build_cluster(spec)
    sim2 = cluster2.sim
    files2 = [cluster2.fs.create(f"f{i}", 16 * 1024 * 1024) for i in range(8)]
    client2 = cluster2.clients[0]
    rng = np.random.default_rng(0)

    def scattered():
        for k in range(16):
            f = files2[int(rng.integers(0, 8))]
            off = int(rng.integers(0, (f.size - 65536) // 65536)) * 65536
            yield from client2.read(f, off, 65536, stream_id=1)

    sim2.run_until_event(sim2.process(scattered()))
    assert t_contig < sim2.now


def test_metadata_rpcs():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    mds = cluster.metadata_server
    results = []

    def proc():
        f = yield from mds.rpc_create(0, "meta.dat", 128 * 1024)
        results.append(f.name)
        g = yield from mds.rpc_open(1, "meta.dat")
        results.append(g.size)

    sim.run_until_event(sim.process(proc()))
    assert results == ["meta.dat", 128 * 1024]
    assert mds.n_ops == 2
    assert sim.now > 0


def test_locality_daemon_samples():
    cluster = build_cluster(small_spec(locality_interval_s=0.1))
    sim = cluster.sim
    f = cluster.fs.create("ld.dat", 4 * 1024 * 1024)
    client = cluster.clients[0]

    def proc():
        for i in range(8):
            yield from client.read(f, i * 256 * 1024, 256 * 1024, stream_id=1)

    sim.run_until_event(sim.process(proc()))
    sim.run(until=sim.now + 0.5)
    daemon = cluster.locality_daemons[0]
    assert len(daemon.samples) > 0
    # With some requests served, at least one active sample exists.
    assert daemon.recent_seek_dist() is not None


def test_traced_cluster_records_accesses():
    cluster = build_cluster(small_spec(trace_disks=True))
    sim = cluster.sim
    f = cluster.fs.create("tr.dat", 1024 * 1024)
    client = cluster.clients[0]

    def proc():
        yield from client.read(f, 0, 512 * 1024, stream_id=1)

    sim.run_until_event(sim.process(proc()))
    assert any(len(t) > 0 for t in cluster.traces)


def test_raid_cluster_builds_and_serves():
    cluster = build_cluster(small_spec(raid_members=2, raid_level=0))
    sim = cluster.sim
    f = cluster.fs.create("r.dat", 1024 * 1024)
    client = cluster.clients[0]

    def proc():
        yield from client.read(f, 0, 256 * 1024, stream_id=1)

    sim.run_until_event(sim.process(proc()))
    assert cluster.total_bytes_served() == 256 * 1024


def test_concurrent_clients_interfere():
    """Two clients streaming different files are slower than one alone
    (disk interference), but both complete."""
    spec = small_spec(placement="spread")

    def run_n(n_clients):
        cluster = build_cluster(spec)
        sim = cluster.sim
        files = [cluster.fs.create(f"c{i}", 8 * 1024 * 1024) for i in range(n_clients)]
        procs = []
        for i in range(n_clients):

            def stream(i=i):
                for k in range(16):
                    yield from cluster.clients[i].read(
                        files[i], k * 512 * 1024, 512 * 1024, stream_id=i
                    )

            procs.append(sim.process(stream()))
        for p in procs:
            sim.run_until_event(p)
        return sim.now

    t1 = run_n(1)
    t2 = run_n(2)
    assert t2 > t1 * 1.3
