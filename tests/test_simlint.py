"""simlint: per-rule fixtures, ignore comments, reporters, and the
full-tree gate (``repro lint src`` must stay clean)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools.simlint import (
    RULES,
    Finding,
    changed_paths,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

SIM_PATH = "src/repro/sim/fixture.py"  # profile: sim scope, not wallclock-exempt
# SL007 exempts the kernel package itself, so cross-component mutation
# fixtures use a non-kernel sim-scoped path.
PFS_PATH = "src/repro/pfs/fixture.py"


def rules_of(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# SL001 -- unordered iteration
# ---------------------------------------------------------------------------


class TestSL001:
    def test_fresh_set_iteration_flagged(self):
        src = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL001"]

    def test_dict_keys_iteration_flagged(self):
        src = "def f(d):\n    for k in d.keys():\n        pass\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL001"]

    def test_tracked_local_set_flagged(self):
        src = "def f(xs):\n    s = set(xs)\n    for x in s:\n        pass\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL001"]

    def test_set_attribute_flagged(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.pending = set()\n"
            "    def go(self):\n"
            "        return [x for x in self.pending]\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL001"]

    def test_dataclass_field_set_flagged_cross_object(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Cycle:\n"
            "    blocked: set[int] = field(default_factory=set)\n"
            "def f(cyc):\n"
            "    for r in cyc.blocked:\n"
            "        pass\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL001"]

    def test_sorted_set_is_clean(self):
        src = "def f(xs):\n    for x in sorted(set(xs)):\n        pass\n"
        assert lint_source(src, SIM_PATH) == []

    def test_constant_literal_set_is_clean(self):
        src = "def f():\n    for x in {1, 2, 3}:\n        pass\n"
        assert lint_source(src, SIM_PATH) == []

    def test_reassigned_to_list_clears_tracking(self):
        src = "def f(xs):\n    s = set(xs)\n    s = sorted(s)\n    for x in s:\n        pass\n"
        assert lint_source(src, SIM_PATH) == []

    def test_outside_sim_scope_not_flagged(self):
        src = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert lint_source(src, "src/repro/workloads/fixture.py") == []

    # Set-algebra expressions directly in the iterable position: the
    # operands' types are unknown, but `for x in a | b` over sets is the
    # classic nondeterministic-iteration bug, so it flags.
    @pytest.mark.parametrize("expr", ["a | b", "a & b", "a ^ b", "a - b"])
    def test_set_algebra_in_for_flagged(self, expr):
        src = f"def f(a, b):\n    for x in {expr}:\n        pass\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL001"]

    def test_set_cast_of_union_flagged(self):
        src = "def f(a, b):\n    for x in set(a | b):\n        pass\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL001"]

    def test_constant_literal_union_is_clean(self):
        # Both operands are constant literals -- same carve-out as the
        # plain constant-set iterable.
        src = "def f():\n    for x in {1, 2} | {3}:\n        pass\n"
        assert lint_source(src, SIM_PATH) == []

    def test_sorted_union_is_clean(self):
        src = "def f(a, b):\n    for x in sorted(a | b):\n        pass\n"
        assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# SL002 -- wall-clock reads
# ---------------------------------------------------------------------------


class TestSL002:
    def test_time_time_flagged(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL002"]

    def test_perf_counter_from_import_flagged(self):
        src = "from time import perf_counter\ndef f():\n    return perf_counter()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL002"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\ndef f():\n    return datetime.now()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL002"]

    def test_datetime_module_form_flagged(self):
        src = "import datetime\ndef f():\n    return datetime.datetime.now()\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL002"]

    def test_benchmarks_and_runner_exempt(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert lint_source(src, "benchmarks/bench_x.py") == []
        assert lint_source(src, "src/repro/runner/parallel.py") == []

    def test_time_sleep_not_flagged(self):
        src = "import time\ndef f():\n    time.sleep(1)\n"
        assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# SL003 -- global RNG state
# ---------------------------------------------------------------------------


class TestSL003:
    def test_module_level_random_flagged(self):
        src = "import random\ndef f():\n    return random.randint(0, 9)\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL003"]

    def test_from_import_flagged(self):
        src = "from random import shuffle\ndef f(xs):\n    shuffle(xs)\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL003"]

    def test_numpy_global_flagged(self):
        src = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL003"]

    def test_seeded_instances_allowed(self):
        src = (
            "import random\n"
            "import numpy as np\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    nrng = np.random.default_rng(seed)\n"
            "    return rng.random() + nrng.random()\n"
        )
        assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# SL004 -- mutable defaults
# ---------------------------------------------------------------------------


class TestSL004:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "list()", "dict()", "{1: 2}"]
    )
    def test_mutable_default_flagged(self, default):
        src = f"def f(x={default}):\n    pass\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL004"]

    def test_kwonly_and_lambda_defaults_flagged(self):
        src = "def f(*, x=[]):\n    pass\ng = lambda y={}: y\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL004", "SL004"]

    def test_none_and_tuple_defaults_clean(self):
        src = "def f(x=None, y=(), z=3):\n    pass\n"
        assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# SL005 -- non-Event yields in process generators
# ---------------------------------------------------------------------------


class TestSL005:
    def test_constant_yield_flagged(self):
        src = (
            "def proc(sim):\n"
            "    yield sim.timeout(1.0)\n"
            "    yield 42\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL005"]

    def test_bare_yield_flagged(self):
        src = "def proc(sim):\n    yield sim.timeout(1.0)\n    yield\n"
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL005"]

    def test_non_process_generator_not_flagged(self):
        # A workload op stream yields plain values and never events.
        src = "def ops(n):\n    for i in range(n):\n        yield i\n"
        assert lint_source(src, SIM_PATH) == []

    def test_event_yields_clean(self):
        src = (
            "def proc(sim, res):\n"
            "    req = res.request()\n"
            "    yield req\n"
            "    yield sim.timeout(0.5)\n"
        )
        assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# SL006 -- unbounded queues
# ---------------------------------------------------------------------------


class TestSL006:
    def test_unbounded_deque_flagged(self):
        # A module-level deque is both unbounded (SL006) and shared
        # module state (SL008).
        src = "from collections import deque\nq = deque()\n"
        assert sorted(rules_of(lint_source(src, SIM_PATH))) == ["SL006", "SL008"]

    def test_module_form_deque_flagged(self):
        src = "import collections\nq = collections.deque()\n"
        assert sorted(rules_of(lint_source(src, SIM_PATH))) == ["SL006", "SL008"]

    def test_instance_deque_flagged_without_sl008(self):
        src = (
            "from collections import deque\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.queue = deque()\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL006"]

    def test_maxlen_deque_clean(self):
        # Bounded for SL006's purposes (the module-level binding itself
        # still trips SL008, so select the rule under test).
        src = "from collections import deque\nq = deque(maxlen=64)\n"
        assert lint_source(src, SIM_PATH, select=["SL006"]) == []

    def test_two_arg_deque_clean(self):
        # deque(iterable, maxlen) positional form is bounded.
        src = "from collections import deque\nq = deque([], 64)\n"
        assert lint_source(src, SIM_PATH, select=["SL006"]) == []

    def test_queueish_list_attribute_flagged(self):
        src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self.queue = []\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL006"]

    def test_waiters_list_call_flagged(self):
        src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self.read_waiters = list()\n"
        )
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL006"]

    def test_non_queueish_attribute_clean(self):
        src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self.results = []\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_local_list_clean(self):
        # Locals are structurally bounded by their enclosing call; only
        # long-lived attribute queues need a documented budget.
        src = "def f():\n    queue = []\n    return queue\n"
        assert lint_source(src, SIM_PATH) == []

    def test_outside_sim_scope_clean(self):
        src = "from collections import deque\nq = deque()\n"
        assert lint_source(src, "src/repro/workloads/fixture.py") == []

    def test_ignore_comment_with_reason(self):
        src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self.queue = []  # simlint: ignore[SL006] drained per tick\n"
        )
        assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# SL007 -- cross-component direct mutation
# ---------------------------------------------------------------------------


class TestSL007:
    def test_foreign_mutator_call_flagged(self):
        src = "class C:\n    def f(self, other):\n        other.queue.append(1)\n"
        assert rules_of(lint_source(src, PFS_PATH)) == ["SL007"]

    def test_self_chain_crossing_object_flagged(self):
        # `self.server` is another component stored on self; mutating its
        # queue bypasses the owner's API.
        src = "class C:\n    def f(self):\n        self.server.queue.append(1)\n"
        assert rules_of(lint_source(src, PFS_PATH)) == ["SL007"]

    def test_foreign_subscript_store_flagged(self):
        src = "class C:\n    def f(self, other, k, v):\n        other.table[k] = v\n"
        assert rules_of(lint_source(src, PFS_PATH)) == ["SL007"]

    def test_own_state_clean(self):
        src = "class C:\n    def f(self):\n        self.queue.append(1)\n"
        assert lint_source(src, PFS_PATH) == []

    def test_own_accessor_result_clean(self):
        # A local returned by one of self's own methods is own subtree
        # state (`cyc = self._ensure_cycle(); cyc.blocked.add(r)`).
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        st = self._get()\n"
            "        st.queue.append(1)\n"
        )
        assert lint_source(src, PFS_PATH) == []

    def test_self_alias_clean(self):
        src = (
            "class C:\n"
            "    def f(self, sid):\n"
            "        st = self._streams[sid]\n"
            "        st.queue.append(1)\n"
        )
        assert lint_source(src, PFS_PATH) == []

    def test_tuple_unpack_alias_clean(self):
        src = (
            "class C:\n"
            "    def f(self, i):\n"
            "        a, b = self.units[i], self.units[i + 1]\n"
            "        a.parts.extend(b.parts)\n"
        )
        assert lint_source(src, PFS_PATH) == []

    def test_constructed_local_clean(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        req = Request()\n"
            "        req.parts.append(1)\n"
        )
        assert lint_source(src, PFS_PATH) == []

    def test_callbacks_registration_exempt(self):
        # Appending to .callbacks is the kernel's documented registration
        # API, not a state grab.
        src = "class C:\n    def f(self, proc):\n        proc.callbacks.append(self.done)\n"
        assert lint_source(src, PFS_PATH) == []

    def test_kernel_package_exempt(self):
        src = "class C:\n    def f(self, other):\n        other.queue.append(1)\n"
        assert lint_source(src, SIM_PATH) == []

    def test_ignore_comment(self):
        src = (
            "class C:\n"
            "    def f(self, other):\n"
            "        other.queue.append(1)  # simlint: ignore[SL007] same-LP payload\n"
        )
        assert lint_source(src, PFS_PATH) == []


# ---------------------------------------------------------------------------
# SL008 -- module-level mutable state
# ---------------------------------------------------------------------------


class TestSL008:
    @pytest.mark.parametrize(
        "binding",
        [
            "REG = {'a': 1}",
            "REG = []",
            "REG = set()",
            "REG: dict = {}",
            "REG = [x for x in range(3)]",
        ],
    )
    def test_module_mutable_binding_flagged(self, binding):
        assert rules_of(lint_source(binding + "\n", PFS_PATH)) == ["SL008"]

    def test_mappingproxy_clean(self):
        src = "from types import MappingProxyType\nREG = MappingProxyType({'a': 1})\n"
        assert lint_source(src, PFS_PATH) == []

    def test_immutable_constants_clean(self):
        src = "A = ('x', 'y')\nB = frozenset({'x'})\nC = 3\n"
        assert lint_source(src, PFS_PATH) == []

    def test_class_attribute_not_flagged(self):
        src = "class C:\n    REG = {}\n"
        assert lint_source(src, PFS_PATH) == []

    def test_function_local_not_flagged(self):
        src = "def f():\n    reg = {}\n    return reg\n"
        assert lint_source(src, PFS_PATH) == []

    def test_dunder_exempt(self):
        src = "__all__ = ['a']\n"
        assert lint_source(src, PFS_PATH) == []

    def test_outside_sim_scope_clean(self):
        src = "REG = {}\n"
        assert lint_source(src, "src/repro/workloads/fixture.py") == []


# ---------------------------------------------------------------------------
# ignore comments
# ---------------------------------------------------------------------------


class TestIgnores:
    SRC = "import time\ndef f():\n    return time.time(){comment}\n"

    def test_rule_specific_ignore(self):
        src = self.SRC.format(comment="  # simlint: ignore[SL002] harness timing")
        assert lint_source(src, SIM_PATH) == []

    def test_blanket_ignore(self):
        src = self.SRC.format(comment="  # simlint: ignore")
        assert lint_source(src, SIM_PATH) == []

    def test_wrong_rule_ignore_does_not_suppress(self):
        src = self.SRC.format(comment="  # simlint: ignore[SL001]")
        assert rules_of(lint_source(src, SIM_PATH)) == ["SL002"]

    def test_multi_rule_ignore(self):
        src = self.SRC.format(comment="  # simlint: ignore[SL001, SL002]")
        assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# reporters, selection, path walking, CLI
# ---------------------------------------------------------------------------


class TestReporting:
    FINDINGS_SRC = "import time\ndef f(x=[]):\n    return time.time()\n"

    def test_json_reporter_schema(self):
        findings = lint_source(self.FINDINGS_SRC, SIM_PATH)
        doc = json.loads(render_json(findings))
        assert doc["version"] == 1
        assert doc["counts"] == {"SL002": 1, "SL004": 1}
        assert len(doc["findings"]) == 2
        for item in doc["findings"]:
            assert set(item) == {"path", "line", "col", "rule", "message"}
            assert item["rule"] in RULES

    def test_text_reporter(self):
        findings = lint_source(self.FINDINGS_SRC, SIM_PATH)
        text = render_text(findings)
        assert f"{SIM_PATH}:2" in text and "SL004" in text
        assert "2 finding(s)" in text
        assert render_text([]) == "simlint: no findings"

    def test_select_filters_rules(self):
        findings = lint_source(self.FINDINGS_SRC, SIM_PATH, select=["SL004"])
        assert rules_of(findings) == ["SL004"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="SL999"):
            lint_source("x = 1\n", SIM_PATH, select=["SL999"])

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def f(:\n", SIM_PATH)
        assert rules_of(findings) == ["SL000"]

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("def f(x=[]):\n    pass\n")
        (pkg / "good.py").write_text("def f(x=None):\n    pass\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "junk.py").write_text("def f(x=[]):\n    pass\n")
        findings = lint_paths([tmp_path])
        assert [Path(f.path).name for f in findings] == ["bad.py"]

    def test_cli_lint_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x=None):\n    pass\n")
        assert cli_main(["lint", str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    pass\n")
        assert cli_main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "SL004" in out

    def test_cli_lint_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    pass\n")
        assert cli_main(["lint", str(dirty), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"SL004": 1}


class TestChangedPaths:
    """`repro lint --changed` lints only files modified vs the merge-base."""

    @staticmethod
    def _git(cwd, *args):
        import subprocess

        r = subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
        )
        assert r.returncode == 0, r.stderr
        return r.stdout

    def test_only_modified_and_untracked_returned(self, tmp_path, monkeypatch):
        pkg = tmp_path / "src" / "repro" / "pfs"
        pkg.mkdir(parents=True)
        committed = pkg / "clean.py"
        committed.write_text("def f(x=None):\n    pass\n")
        self._git(tmp_path, "init", "-q", "-b", "main")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        modified = pkg / "touched.py"
        modified.write_text("def g(y=[]):\n    pass\n")  # untracked + dirty
        monkeypatch.chdir(tmp_path)
        subset = changed_paths([tmp_path / "src"])
        assert subset is not None
        assert [p.name for p in subset] == ["touched.py"]
        findings = lint_paths(subset)
        assert rules_of(findings) == ["SL004"]

    def test_outside_repo_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        assert changed_paths([tmp_path]) is None

    def test_cli_changed_falls_back_to_full_tree(self, tmp_path, monkeypatch):
        # Outside a repository --changed lints the full argument set.
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    pass\n")
        assert cli_main(["lint", str(dirty), "--changed"]) == 1


def test_full_tree_is_clean():
    """The acceptance gate: ``repro lint src`` exits 0 on this tree."""

    src = Path(__file__).resolve().parent.parent / "src"
    findings = lint_paths([src])
    assert findings == [], render_text(findings)


class TestPathFiltering:
    """lint must never choke on binary files or linted-by-accident caches."""

    def test_binary_py_file_is_skipped(self, tmp_path):
        bogus = tmp_path / "compiled.py"
        bogus.write_bytes(b"\x00\x01\xfe\xff not utf-8 \x80")
        assert lint_file(bogus) == []
        assert lint_paths([bogus]) == []

    def test_explicit_pycache_argument_is_filtered(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        stale = cache / "mod.cpython-312.py"
        stale.write_text("def f(x=[]):\n    pass\n")
        hidden = tmp_path / ".hidden.py"
        hidden.write_text("def g(y={}):\n    pass\n")
        # Explicit file args go through the same hidden/__pycache__ filter
        # as directory walks.
        assert lint_paths([stale, hidden]) == []
        assert lint_paths([tmp_path]) == []

    def test_faults_package_is_sim_scoped(self):
        from repro.devtools.simlint import SIM_PACKAGES

        assert "faults" in SIM_PACKAGES
