"""Unit tests for the deterministic fault-injection layer (repro.faults)."""

import random

import pytest

from repro.cache.chunk import ChunkKey
from repro.cache.memcache import GlobalCache
from repro.cluster import ClusterSpec, build_cluster
from repro.disk.drive import DiskParams
from repro.faults import (
    FAULT_KINDS,
    DiskFault,
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NetFault,
    RetryPolicy,
    ServerHealth,
)
from repro.net.ethernet import Network, NetworkParams
from repro.sim import SimulationError, Simulator


def small_spec(**kw):
    defaults = dict(
        n_compute_nodes=2,
        n_data_servers=3,
        disk=DiskParams(capacity_bytes=2 * 10**9),
        placement="packed",
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


def raid1_spec(**kw):
    return small_spec(raid_members=2, raid_level=1, **kw)


# ----------------------------------------------------------------- FaultPlan


def test_fault_kinds_catalogue():
    assert set(FAULT_KINDS) == {
        "disk_failslow",
        "server_crash",
        "mirror_fail",
        "net_degrade",
        "net_partition",
        "cache_evict",
    }


def test_event_validation_rejects_bad_inputs():
    with pytest.raises(ValueError):
        FaultEvent(kind="meteor_strike", at_s=0.0)
    with pytest.raises(ValueError):
        FaultEvent(kind="server_crash", at_s=-1.0)
    with pytest.raises(ValueError):
        FaultEvent(kind="server_crash", at_s=2.0, until_s=1.0)
    with pytest.raises(ValueError):
        FaultEvent(kind="disk_failslow", at_s=0.0, transfer_factor=0.5)
    with pytest.raises(ValueError):
        FaultEvent(kind="net_degrade", at_s=0.0)  # no latency nor jitter
    with pytest.raises(ValueError):
        FaultEvent(kind="net_partition", at_s=0.0, until_s=1.0)  # no nodes
    with pytest.raises(ValueError):
        # An unhealed partition would hang blocked senders forever.
        FaultEvent(kind="net_partition", at_s=0.0, nodes=(1,))
    with pytest.raises(ValueError):
        FaultEvent(kind="mirror_fail", at_s=0.0, rebuild_rate_bytes_s=0.0)


def test_evicted_nodes_defaults_to_target():
    ev = FaultEvent(kind="cache_evict", at_s=0.0, target=3)
    assert ev.evicted_nodes == (3,)
    ev2 = FaultEvent(kind="cache_evict", at_s=0.0, nodes=(1, 2))
    assert ev2.evicted_nodes == (1, 2)


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        seed=7,
        events=(
            FaultEvent(kind="disk_failslow", at_s=0.5, until_s=2.0, target=1),
            FaultEvent(kind="net_partition", at_s=1.0, until_s=1.5, nodes=(0, 3)),
        ),
        retry=RetryPolicy(base_timeout_s=0.5, max_retries=4),
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    path = tmp_path / "plan.json"
    plan.dump(path)
    assert FaultPlan.load(path) == plan


def test_plan_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultEvent"):
        FaultPlan.from_dict(
            {"events": [{"kind": "server_crash", "at_s": 0.0, "blast_radius": 9}]}
        )
    with pytest.raises(ValueError, match="unknown RetryPolicy"):
        FaultPlan.from_dict({"retry": {"jitterbug": 1}})


# --------------------------------------------------------------- RetryPolicy


def test_retry_policy_timeout_is_size_aware():
    pol = RetryPolicy(base_timeout_s=1.0, timeout_per_byte_s=1e-6)
    assert pol.timeout_for(0) == 1.0
    assert pol.timeout_for(10_000_000) == pytest.approx(11.0)


def test_retry_policy_backoff_doubles_and_caps():
    pol = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0, backoff_max_s=0.05)
    assert pol.backoff_s(1) == pytest.approx(0.01)
    assert pol.backoff_s(2) == pytest.approx(0.02)
    assert pol.backoff_s(3) == pytest.approx(0.04)
    assert pol.backoff_s(4) == pytest.approx(0.05)  # capped
    assert pol.backoff_s(10) == pytest.approx(0.05)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(base_timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError, match="backoff_jitter"):
        RetryPolicy(backoff_jitter="equal")


def test_unjittered_backoff_ignores_rng():
    # The default policy must replay identically whether or not the
    # injector hands it the plan RNG (pre-jitter plans stay bit-exact).
    pol = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0, backoff_max_s=0.05)
    rng = random.Random(1)
    assert [pol.backoff_s(a, rng=rng) for a in range(1, 5)] == [
        pol.backoff_s(a) for a in range(1, 5)
    ]
    assert rng.random() == random.Random(1).random()  # RNG never consumed


def test_full_jitter_is_bounded_and_seeded():
    pol = RetryPolicy(
        backoff_base_s=0.01,
        backoff_factor=2.0,
        backoff_max_s=0.05,
        backoff_jitter="full",
    )
    plain = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0, backoff_max_s=0.05)
    sleeps = [pol.backoff_s(a, rng=random.Random(42)) for a in range(1, 8)]
    for attempt, s in enumerate(sleeps, start=1):
        assert 0.0 <= s <= plain.backoff_s(attempt)  # under the unjittered ceiling
    # Same seed, same sleeps -- and without an RNG it falls back to the ceiling.
    assert sleeps == [pol.backoff_s(a, rng=random.Random(42)) for a in range(1, 8)]
    assert pol.backoff_s(3) == plain.backoff_s(3)


def test_backoff_jitter_round_trips_through_json():
    plan = FaultPlan(
        seed=3,
        events=(FaultEvent(kind="server_crash", at_s=1.0, until_s=2.0, target=0),),
        retry=RetryPolicy(backoff_jitter="full"),
    )
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan
    assert restored.retry.backoff_jitter == "full"


# -------------------------------------------------------------- ServerHealth


def test_server_health_transitions_and_recovery_event():
    sim = Simulator()
    h = ServerHealth(sim, 3)
    assert h.live_servers() == [0, 1, 2]
    assert h.is_up(1)
    h.mark(1, "down")
    assert not h.is_up(1)
    assert h.live_servers() == [0, 2]
    # "slow" servers are still live (they answer, slowly).
    h.mark(2, "slow")
    assert h.is_up(2)
    assert h.live_servers() == [0, 2]
    ev = h.recovery_event(1)
    assert not ev.triggered
    assert h.recovery_event(1) is ev  # cached while down
    h.mark(1, "up")
    assert ev.triggered
    # Recovery event of an up server fires immediately.
    assert h.recovery_event(0).triggered
    assert [(s, state) for _, s, state in h.transitions] == [
        (1, "down"),
        (2, "slow"),
        (1, "up"),
    ]


def test_server_health_same_state_mark_is_noop():
    sim = Simulator()
    h = ServerHealth(sim, 2)
    h.mark(0, "down")
    h.mark(0, "down")
    assert len(h.transitions) == 1


# ------------------------------------------------------------------ NetFault


def test_net_fault_gate_delay_is_deterministic():
    import random

    def run(seed):
        sim = Simulator()
        nf = NetFault(sim, random.Random(seed))
        nf.extra_latency_s = 0.001
        nf.jitter_s = 0.002
        times = []

        def sender():
            for _ in range(5):
                yield from nf.gate(0, 1)
                times.append(sim.now)

        sim.run_until_event(sim.process(sender()))
        return times

    assert run(3) == run(3)
    assert run(3) != run(4)
    assert all(t > 0 for t in run(3))


def test_net_fault_partition_blocks_until_heal():
    sim = Simulator()
    nf = NetFault(sim, __import__("random").Random(0))
    nf.partition((1,))
    with pytest.raises(FaultError):
        nf.partition((2,))
    assert nf.crosses_cut(0, 1)
    assert not nf.crosses_cut(0, 2)
    assert not nf.crosses_cut(1, 1)  # both sides of the cut: local traffic
    arrived = []

    def sender():
        yield from nf.gate(0, 1)
        arrived.append(sim.now)

    def healer():
        yield sim.timeout(1.0)
        nf.heal()

    sim.process(sender())
    sim.process(healer())
    sim.run()
    assert arrived == [1.0]
    assert nf.n_blocked == 1


# ----------------------------------------------------------------- DiskFault


def _one_read(cluster, nbytes=512 * 1024):
    sim = cluster.sim
    f = cluster.fs.create("f.dat", 4 * 1024 * 1024)
    client = cluster.clients[0]

    def proc():
        yield from client.read(f, 0, nbytes, stream_id=1)

    t0 = sim.now
    sim.run_until_event(sim.process(proc()))
    return sim.now - t0


def test_disk_failslow_slows_service_and_reverts():
    base = _one_read(build_cluster(small_spec()))
    slow_cluster = build_cluster(small_spec())
    for ds in slow_cluster.data_servers:
        ds.device.fault = DiskFault(transfer_factor=10.0, extra_seek_s=0.005)
    degraded = _one_read(slow_cluster)
    assert degraded > base * 1.5
    # Clearing the fault restores nominal behavior exactly.
    clear_cluster = build_cluster(small_spec())
    for ds in clear_cluster.data_servers:
        ds.device.fault = DiskFault(transfer_factor=10.0)
        ds.device.fault = None
    assert _one_read(clear_cluster) == pytest.approx(base)


# -------------------------------------------------------------- GlobalCache


def _cache(n=3):
    sim = Simulator()
    net = Network(sim, n_nodes=n)
    return sim, GlobalCache(sim, net, compute_node_ids=list(range(n)))


def test_cache_evict_drops_clean_migrates_dirty():
    sim, cache = _cache(3)
    keys = [ChunkKey("f", i) for i in range(6)]

    def fill():
        for i, k in enumerate(keys):
            dirty = (100, 200) if i % 2 else None
            yield from cache.put(k, from_node=0, dirty_range=dirty)

    sim.run_until_event(sim.process(fill()))
    victim = cache.owner_of(keys[0])
    owned = [k for k in keys if cache.owner_of(k) == victim]
    dirty_owned = [k for k in owned if cache.peek(k).dirty]
    evicted, migrated = cache.fail_node(victim)
    assert evicted == len(owned) - len(dirty_owned)
    assert migrated == len(dirty_owned)
    for k in dirty_owned:
        c = cache.peek(k)
        assert c is not None and c.owner_node != victim
    for k in owned:
        if k not in dirty_owned:
            assert cache.peek(k) is None
    assert victim not in cache._ring
    cache.restore_node(victim)
    assert victim in cache._ring


def test_cache_evict_validation():
    _, cache = _cache(2)
    with pytest.raises(ValueError):
        cache.fail_node(99)
    cache.fail_node(0)
    with pytest.raises(ValueError):
        cache.fail_node(0)  # already evicted
    with pytest.raises(ValueError):
        cache.fail_node(1)  # last node
    with pytest.raises(ValueError):
        cache.restore_node(1)  # not evicted


# ------------------------------------------------------------ RAID-1 faults


def test_raid1_read_fails_over_and_writes_skip_failed_member():
    cluster = build_cluster(raid1_spec())
    dev = cluster.data_servers[0].device
    dev.read_targets = []
    dev.fail_member(1)
    with pytest.raises(ValueError):
        dev.fail_member(1)  # already failed
    with pytest.raises(ValueError):
        dev.fail_member(0)  # last in-sync mirror
    sim = cluster.sim

    def io():
        yield from dev.service(0, 256, "R")
        yield from dev.service(dev.chunk_sectors, 256, "R")
        yield from dev.service(0, 128, "W")

    sim.run_until_event(sim.process(io()))
    assert all(m == 0 for _, m in dev.read_targets)
    assert dev.n_degraded_reads >= 1
    # The write landed on the survivor only.
    assert dev.members[0].stats.n_requests > dev.members[1].stats.n_requests


def test_raid1_repair_rebuilds_then_serves_reads_again():
    cluster = build_cluster(raid1_spec())
    dev = cluster.data_servers[0].device
    sim = cluster.sim
    dev.fail_member(1)
    proc = dev.repair_member(1, rebuild_rate_bytes_s=500e6, rebuild_bytes=2 << 20)
    assert dev._member_stale[1] and not dev._member_failed[1]
    sim.run_until_event(proc)
    assert dev.n_rebuilds == 1
    assert dev.rebuilt_bytes >= 2 << 20
    assert not dev._member_stale[1]
    # Preferred-member reads reach member 1 again.
    dev.read_targets = []

    def io():
        yield from dev.service(dev.chunk_sectors, 64, "R")

    sim.run_until_event(sim.process(io()))
    assert dev.read_targets == [(dev.chunk_sectors, 1)]


def test_raid1_rebuild_contends_with_foreground_io():
    cluster = build_cluster(raid1_spec())
    dev = cluster.data_servers[0].device
    sim = cluster.sim
    dev.fail_member(1)
    dev.repair_member(1, rebuild_rate_bytes_s=100e6, rebuild_bytes=8 << 20)

    def io():
        for _ in range(4):
            yield from dev.service(0, 256, "R")

    sim.run_until_event(sim.process(io()))
    assert dev.rebuilt_bytes > 0  # rebuild ran interleaved with service


def test_raid0_rejects_member_faults():
    cluster = build_cluster(small_spec(raid_members=2, raid_level=0))
    with pytest.raises(ValueError):
        cluster.data_servers[0].device.fail_member(0)


# ---------------------------------------------------------- DataServer crash


def test_server_crash_drops_requests_and_recover_restores():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    ds = cluster.data_servers[0]
    ds.enable_fault_tracking()
    f = cluster.fs.create("c.dat", 4 * 1024 * 1024)
    client = cluster.clients[0]
    ds.crash()
    assert ds.crashed
    with pytest.raises(SimulationError):
        ds.crash()
    from repro.pfs.dataserver import ServerRequest

    dead = ds.handle(
        ServerRequest(file_name="c.dat", object_offset=0, length=4096, op="R",
                      stream_id=1)
    )
    sim.run(until=1.0)
    assert not dead.triggered
    assert ds.n_dropped_requests == 1
    ds.recover()
    with pytest.raises(SimulationError):
        ds.recover()
    assert not ds.crashed
    assert ds.n_crashes == 1 and ds.n_recoveries == 1

    def proc():
        yield from client.read(f, 0, 64 * 1024, stream_id=1)

    sim.run_until_event(sim.process(proc()))
    assert client.bytes_read == 64 * 1024


def test_server_crash_interrupts_inflight_service():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    ds = cluster.data_servers[0]
    ds.enable_fault_tracking()
    cluster.fs.create("c.dat", 4 * 1024 * 1024)
    from repro.pfs.dataserver import ServerRequest

    done = ds.handle(
        ServerRequest(file_name="c.dat", object_offset=0, length=1 << 20, op="R",
                      stream_id=1)
    )

    def crasher():
        yield sim.timeout(1e-4)
        ds.crash()

    sim.process(crasher())
    sim.run(until=5.0)
    assert not done.triggered  # the request died with the server
    assert ds._service_procs == {}


def test_commit_log_is_exactly_once_per_request_id():
    cluster = build_cluster(small_spec())
    sim = cluster.sim
    ds = cluster.data_servers[0]
    ds.enable_fault_tracking()
    cluster.fs.create("c.dat", 4 * 1024 * 1024)
    from repro.pfs.dataserver import ServerRequest

    def send(rid):
        return ds.handle(
            ServerRequest(file_name="c.dat", object_offset=0, length=4096, op="W",
                          stream_id=1, req_id=rid)
        )

    send(7)
    send(7)  # duplicate delivery (a retry whose first attempt also landed)
    send(8)
    sim.run(until=5.0)
    assert sorted(ds.commit_log) == [7, 8]


# ---------------------------------------------------------- FaultInjector


def test_injector_validates_plan_against_cluster():
    cluster = build_cluster(small_spec())
    with pytest.raises(FaultError, match="3 data servers"):
        FaultInjector(
            cluster,
            FaultPlan(events=(FaultEvent(kind="server_crash", at_s=0.0, target=9),)),
        )
    with pytest.raises(FaultError, match="RAID-1"):
        FaultInjector(
            cluster,
            FaultPlan(events=(FaultEvent(kind="mirror_fail", at_s=0.0, target=0),)),
        )
    with pytest.raises(FaultError, match="not a compute node"):
        FaultInjector(
            cluster,
            FaultPlan(events=(FaultEvent(kind="cache_evict", at_s=0.0, target=5),)),
        )
    with pytest.raises(FaultError, match="out of range"):
        FaultInjector(
            cluster,
            FaultPlan(
                events=(
                    FaultEvent(kind="net_partition", at_s=0.0, until_s=1.0,
                               nodes=(99,)),
                )
            ),
        )


def test_injector_empty_plan_installs_nothing():
    cluster = build_cluster(small_spec())
    inj = FaultInjector(cluster, FaultPlan(seed=5))
    inj.install()
    assert cluster.network.fault is None
    assert cluster.metadata_server.health is None
    assert all(c.faults is None for c in cluster.clients)
    assert all(ds.commit_log is None for ds in cluster.data_servers)
    with pytest.raises(FaultError):
        inj.install()  # double install


def test_injector_applies_and_reverts_on_schedule():
    cluster = build_cluster(small_spec())
    plan = FaultPlan(
        seed=1,
        events=(
            FaultEvent(kind="disk_failslow", at_s=0.5, until_s=1.5, target=1,
                       transfer_factor=3.0),
        ),
    )
    inj = FaultInjector(cluster, plan)
    inj.install()
    sim = cluster.sim
    sim.run(until=0.6)
    assert cluster.data_servers[1].device.fault is not None
    assert inj.health.state_of(1) == "slow"
    sim.run(until=2.0)
    assert cluster.data_servers[1].device.fault is None
    assert inj.health.state_of(1) == "up"
    assert [(k, p) for _, k, p, _ in inj.log] == [
        ("disk_failslow", "apply"),
        ("disk_failslow", "revert"),
    ]


def test_injector_next_request_id_monotone():
    cluster = build_cluster(small_spec())
    inj = FaultInjector(cluster, FaultPlan())
    ids = [inj.next_request_id() for _ in range(5)]
    assert ids == [1, 2, 3, 4, 5]
