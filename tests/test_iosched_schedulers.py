"""Tests for the elevator algorithms and the block layer dispatch loop."""

import pytest

from repro.disk import DiskDrive, DiskParams
from repro.iosched import (
    AnticipatoryScheduler,
    BlockLayer,
    CfqScheduler,
    DeadlineScheduler,
    NoopScheduler,
    make_scheduler,
)
from repro.sim import Simulator


def make_layer(sim, sched, capacity_mb=256):
    drive = DiskDrive(sim, DiskParams(capacity_bytes=capacity_mb * 1024 * 1024))
    return BlockLayer(sim, drive, sched), drive


# ------------------------------------------------------------------ factory


def test_make_scheduler_known_names():
    for name, cls in [
        ("noop", NoopScheduler),
        ("deadline", DeadlineScheduler),
        ("cfq", CfqScheduler),
        ("anticipatory", AnticipatoryScheduler),
    ]:
        assert isinstance(make_scheduler(name), cls)


def test_make_scheduler_unknown_name():
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("bfq")


# --------------------------------------------------------------------- noop


def test_noop_serves_fifo():
    sim = Simulator()
    layer, drive = make_layer(sim, NoopScheduler())
    order = []

    def client():
        evs = []
        for lbn in (5000, 100, 9000):
            evs.append((lbn, layer.submit(lbn, 8)))
        for lbn, ev in evs:
            yield ev
            order.append(lbn)

    sim.run_until_event(sim.process(client()))
    # FIFO service: completion order equals submission order.
    lbns = [s.lbn for s in drive.stats.recent]
    assert lbns == [5000, 100, 9000]


def test_noop_merges_sequential_tail():
    sim = Simulator()
    layer, drive = make_layer(sim, NoopScheduler())

    def client():
        a = layer.submit(100, 8)
        b = layer.submit(108, 8)  # contiguous with a
        yield a
        yield b

    sim.run_until_event(sim.process(client()))
    assert drive.stats.n_requests == 1  # served as one merged unit
    assert layer.scheduler.n_merges == 1


# ----------------------------------------------------------------- deadline


def test_deadline_sorts_batch():
    """A burst of scattered requests is served in ascending LBN order."""
    sim = Simulator()
    layer, drive = make_layer(sim, DeadlineScheduler())
    lbns = [90_000, 100, 50_000, 20_000, 70_000]

    def client():
        evs = [layer.submit(lbn, 8) for lbn in lbns]
        for ev in evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    served = [s.lbn for s in drive.stats.recent]
    assert served == sorted(lbns)


def test_deadline_expired_read_preempts():
    """A request whose deadline passed is served before sorted order."""
    sim = Simulator()
    sched = DeadlineScheduler(read_expire_s=0.05, fifo_batch=1)
    layer, drive = make_layer(sim, sched)
    done = []

    def client():
        # Far-away request first; it will expire while a stream of nearby
        # requests keeps arriving.
        far = layer.submit(400_000, 8)

        def on_far(ev):
            done.append(("far", sim.now))

        near_evs = []
        for i in range(30):
            near_evs.append(layer.submit(i * 16, 8))
            yield sim.timeout(0.004)
        yield far
        done.append(("far", sim.now))
        for ev in near_evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    assert done and done[0][1] < 0.3  # served well before the near stream drains


def test_deadline_write_not_starved():
    sim = Simulator()
    sched = DeadlineScheduler(writes_starved=1)
    layer, drive = make_layer(sim, sched)

    def client():
        w = layer.submit(200_000, 8, op="W")
        reads = [layer.submit(i * 16, 8, op="R") for i in range(40)]
        yield w
        for ev in reads:
            yield ev

    sim.run_until_event(sim.process(client()))
    ops = [s.op for s in drive.stats.recent]
    assert "W" in ops[:40]


# ---------------------------------------------------------------------- cfq


def test_cfq_round_robins_streams():
    """Two streams in distinct regions each get contiguous service runs."""
    sim = Simulator()
    sched = CfqScheduler(slice_sync_s=0.05, slice_idle_s=0.002)
    layer, drive = make_layer(sim, sched)

    def client():
        evs = []
        for i in range(20):
            evs.append(layer.submit(1_000 + i * 24, 8, stream_id=1))
            evs.append(layer.submit(300_000 + i * 24, 8, stream_id=2))
        for ev in evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    served = [s.lbn for s in drive.stats.recent]
    # Service alternates between region runs, not per-request ping-pong:
    # count transitions between the two regions.
    regions = [0 if lbn < 150_000 else 1 for lbn in served]
    transitions = sum(1 for a, b in zip(regions, regions[1:]) if a != b)
    assert transitions < len(served) / 2


def test_cfq_idles_for_active_stream():
    """CFQ waits slice_idle for the active stream's next synchronous request
    instead of immediately seeking to another stream."""
    sim = Simulator()
    sched = CfqScheduler(slice_sync_s=0.5, slice_idle_s=0.01)
    layer, drive = make_layer(sim, sched)
    order = []

    def stream1():
        # Synchronous sequential reader: issues next request right after
        # the previous completes (well within the idle window).
        pos = 1000
        for _ in range(5):
            ev = layer.submit(pos, 8, stream_id=1)
            yield ev
            order.append(("s1", pos))
            pos += 8

    def stream2():
        yield sim.timeout(0.001)
        ev = layer.submit(500_000, 8, stream_id=2)
        yield ev
        order.append(("s2", 500_000))

    p1 = sim.process(stream1())
    p2 = sim.process(stream2())
    sim.run_until_event(p1)
    sim.run_until_event(p2)
    # Stream 1's five sequential requests are served as an unbroken run
    # despite stream 2's distant request arriving in between.
    s1_positions = [i for i, (tag, _) in enumerate(order) if tag == "s1"]
    assert s1_positions == [0, 1, 2, 3, 4]


def test_cfq_slice_expiry_rotates():
    sim = Simulator()
    sched = CfqScheduler(slice_sync_s=0.02, slice_idle_s=0.001)
    layer, drive = make_layer(sim, sched)

    def client():
        evs = []
        for i in range(50):
            evs.append(layer.submit(1_000 + i * 8, 8, stream_id=1))
        for i in range(5):
            evs.append(layer.submit(300_000 + i * 8, 8, stream_id=2))
        for ev in evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    served = [s.lbn for s in drive.stats.recent]
    first_s2 = next(i for i, lbn in enumerate(served) if lbn >= 150_000)
    # Stream 2 is not starved until all 50 stream-1 requests are done.
    assert first_s2 < 50


# -------------------------------------------------------------- anticipatory


def test_anticipatory_waits_for_sequential_reader():
    sim = Simulator()
    sched = AnticipatoryScheduler(antic_expire_s=0.01)
    layer, drive = make_layer(sim, sched)
    order = []

    def reader():
        pos = 1000
        for _ in range(4):
            ev = layer.submit(pos, 8, stream_id=1)
            yield ev
            order.append(("r", pos))
            pos += 8

    def disturber():
        yield sim.timeout(0.0005)
        ev = layer.submit(400_000, 8, stream_id=2)
        yield ev
        order.append(("d", 400_000))

    p1 = sim.process(reader())
    p2 = sim.process(disturber())
    sim.run_until_event(p1)
    sim.run_until_event(p2)
    r_idx = [i for i, (tag, _) in enumerate(order) if tag == "r"]
    assert r_idx == [0, 1, 2, 3]


# ------------------------------------------------------------- block layer


def test_blocklayer_completion_values_are_times():
    sim = Simulator()
    layer, _ = make_layer(sim, NoopScheduler())
    got = []

    def client():
        t = yield layer.submit(100, 8)
        got.append(t)

    sim.run_until_event(sim.process(client()))
    assert got and got[0] == pytest.approx(sim.now)


def test_blocklayer_stats_track_submissions():
    sim = Simulator()
    layer, _ = make_layer(sim, NoopScheduler())

    def client():
        evs = [layer.submit(i * 64, 8) for i in range(10)]
        for ev in evs:
            yield ev

    sim.run_until_event(sim.process(client()))
    assert layer.stats.n_submitted == 10
    assert layer.stats.n_units_served >= 1
    assert layer.stats.mean_queue_depth >= 1


def test_blocklayer_deep_queue_enables_sorting_throughput():
    """The motivating-example effect in miniature: the same random request
    set completes faster submitted as one burst (deep queue, sortable) than
    trickled synchronously (depth 1)."""
    import numpy as np

    rng = np.random.default_rng(3)
    lbns = [int(x) for x in rng.integers(0, 400_000, size=80)]

    # Burst submission.
    sim = Simulator()
    layer, _ = make_layer(sim, DeadlineScheduler(), capacity_mb=512)

    def burst():
        evs = [layer.submit(lbn, 32) for lbn in lbns]
        for ev in evs:
            yield ev

    sim.run_until_event(sim.process(burst()))
    t_burst = sim.now

    # Synchronous trickle.
    sim2 = Simulator()
    layer2, _ = make_layer(sim2, DeadlineScheduler(), capacity_mb=512)

    def trickle():
        for lbn in lbns:
            yield layer2.submit(lbn, 32)

    sim2.run_until_event(sim2.process(trickle()))
    assert t_burst < sim2.now * 0.7
