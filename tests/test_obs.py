"""Tests for the observability layer: registry, tracing, export, wiring.

Covers the contract the subsystem advertises: get-or-create registry
semantics, span propagation across a full PFS read path, Chrome
trace_event schema validity, bit-identical determinism of observed runs,
the zero-overhead-when-disabled structure, and the CI kernel-bench
regression gate.
"""

import dataclasses
import json
import pathlib
import subprocess
import sys

import pytest

from repro import JobSpec, MpiIoTest, run_experiment
from repro.cli import main
from repro.cluster import paper_spec
from repro.obs import (
    NULL_INSTRUMENT,
    NULL_OBS,
    NULL_SPAN,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Observability,
    PeriodicSampler,
    Tracer,
    chrome_trace_events,
    darshan_summary,
    merge_metric_snapshots,
    write_chrome_trace,
    write_metrics,
)
from repro.sim.core import Simulator

REPO = pathlib.Path(__file__).resolve().parent.parent
GATE = REPO / "benchmarks" / "check_regression.py"
BASELINE = REPO / "benchmarks" / "results" / "BENCH_kernel.baseline.json"


def small_spec(strategy="vanilla"):
    return [JobSpec("j", 4, MpiIoTest(file_size=2 * 1024 * 1024), strategy=strategy)]


def small_cluster():
    return paper_spec(n_compute_nodes=4)


# ------------------------------------------------------------ registry


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    c1 = reg.counter("disk.d0.seeks")
    c1.inc(3)
    c2 = reg.counter("disk.d0.seeks")
    assert c1 is c2
    assert c2.value == 3


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered as counter"):
        reg.gauge("x")


def test_registry_attach_conflict_raises():
    from repro.obs import EventLog

    reg = MetricsRegistry()
    log = EventLog("blktrace.s0", fields=("time", "lbn"))
    reg.attach("blktrace.s0", log)
    reg.attach("blktrace.s0", log)  # same object: idempotent
    with pytest.raises(ValueError):
        reg.attach("blktrace.s0", EventLog("blktrace.s0"))


def test_histogram_buckets_and_stats():
    reg = MetricsRegistry()
    h = reg.histogram("lat", bounds=[1.0, 10.0, 100.0])
    for v in [0.5, 5.0, 50.0, 500.0]:
        h.observe(v)
    assert h.counts == [1, 1, 1, 1]  # one per bucket incl. overflow
    assert h.n == 4
    assert h.min == 0.5 and h.max == 500.0
    assert h.mean == pytest.approx(555.5 / 4)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("bad", bounds=[10.0, 1.0])


def test_snapshot_shape_and_json_round_trip():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.gauge("g").set(7)
    reg.histogram("h", bounds=[1.0]).observe(2.0)
    reg.timeseries("t").record(1.0, 2.0)
    reg.event_log("e", fields=("a",)).append((1,))
    snap = reg.snapshot(now=42.0)
    assert snap["sim_time_s"] == 42.0
    assert snap["counters"] == {"c": 1}
    assert snap["gauges"] == {"g": 7}
    assert snap["histograms"]["h"]["counts"] == [0, 1]
    assert snap["timeseries"]["t"] == [[1.0, 2.0]]
    # Event logs snapshot to a count, never a dump.
    assert snap["event_logs"]["e"] == {"fields": ["a"], "n": 1}
    assert json.loads(json.dumps(snap)) == snap


def test_null_registry_is_inert():
    reg = NullRegistry()
    assert reg.counter("x") is NULL_INSTRUMENT
    reg.counter("x").inc(5)
    assert len(reg) == 0
    assert "x" not in reg
    assert reg.snapshot(1.0) == {}


# ------------------------------------------------------------- tracing


def test_span_records_sim_time_and_nests():
    sim = Simulator()
    tracer = Tracer()
    tracer.bind(sim)

    def body(sim):
        with tracer.span("outer", track="t"):
            yield sim.timeout(2.0)
            with tracer.span("inner", track="t"):
                yield sim.timeout(1.0)

    sim.process(body(sim))
    sim.run()
    outer, inner = tracer.spans
    assert (outer.t0, outer.t1) == (0.0, 3.0)
    assert (inner.t0, inner.t1) == (2.0, 3.0)
    # Sync spans nest: inner lies within outer on the same track.
    assert outer.t0 <= inner.t0 and inner.t1 <= outer.t1


def test_trace_context_stream_binding():
    tracer = Tracer()
    t1, t2 = tracer.new_trace(), tracer.new_trace()
    assert (t1, t2) == (1, 2)
    tracer.bind_stream(7, t2)
    assert tracer.trace_of_stream(7) == t2
    assert tracer.trace_of_stream(99) == 0  # unbound = untraced


def test_null_tracer_is_inert_and_reentrant():
    tracer = NullTracer()
    span = tracer.span("x", track="t")
    assert span is NULL_SPAN
    with span:
        with span:
            pass
    assert len(tracer) == 0
    assert tracer.new_trace() == 0


def test_periodic_sampler_validates_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 0.0, lambda now: None)


def test_periodic_sampler_fires_at_interval():
    sim = Simulator()
    ticks = []
    PeriodicSampler(sim, 1.0, ticks.append)
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]


# ----------------------------------------- span propagation (pfs read)


def test_spans_propagate_across_pfs_read():
    obs = Observability()
    run_experiment(small_spec("vanilla"), cluster_spec=small_cluster(), observe=obs)
    by_name = {}
    for rec in obs.tracer.spans:
        by_name.setdefault(rec.name, []).append(rec)
    for name in ("mpi.io", "pfs.io", "pfs.server", "disk.service"):
        assert by_name.get(name), f"no {name} spans recorded"
    # Every layer of the first MPI-IO call shares its trace-context id.
    tid = by_name["mpi.io"][0].trace_id
    assert tid > 0
    for name in ("pfs.io", "pfs.server", "disk.service"):
        assert any(r.trace_id == tid for r in by_name[name]), (
            f"trace {tid} never reached {name}"
        )
    # Spans are closed and causally ordered within the trace.
    mpi = by_name["mpi.io"][0]
    assert mpi.t1 is not None and mpi.t1 > mpi.t0
    disk = [r for r in by_name["disk.service"] if r.trace_id == tid]
    assert all(r.t0 >= mpi.t0 and r.t1 <= mpi.t1 for r in disk)


# ------------------------------------------------------- chrome export


def test_chrome_trace_schema(tmp_path):
    obs = Observability()
    res = run_experiment(small_spec("vanilla"), cluster_spec=small_cluster(), observe=obs)
    events = chrome_trace_events(obs.tracer, registry_snapshot=res.metrics)
    assert events, "no trace events"
    phases = {e["ph"] for e in events}
    assert {"M", "X"} <= phases
    begins, ends = [], []
    for e in events:
        assert {"ph", "pid", "name"} <= e.keys()
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0
        elif e["ph"] == "b":
            begins.append(e["id"])
        elif e["ph"] == "e":
            ends.append(e["id"])
        elif e["ph"] in ("i", "C"):
            assert "ts" in e
    assert sorted(begins) == sorted(ends)  # async pairs balance
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)
    assert any(e["name"] == "thread_name" for e in meta)
    out = write_chrome_trace(tmp_path / "trace.json", events)
    doc = json.loads(out.read_text())
    assert doc["traceEvents"] == events


def test_darshan_summary_lists_every_rank():
    obs = Observability()
    res = run_experiment(small_spec("vanilla"), cluster_spec=small_cluster(), observe=obs)
    table = darshan_summary(res)
    assert "io ratio" in table
    assert table.count("\n") >= 4  # header + one row per rank


def test_merge_metric_snapshots_sums_counters():
    a = {"counters": {"x": 1, "y": 2}}
    b = {"counters": {"x": 10}}
    merged = merge_metric_snapshots({"a": a, "b": b})
    assert merged["merged"]["counters"] == {"x": 11, "y": 2}
    assert merged["cells"]["a"] is a


# -------------------------------------------------------- determinism


def test_observed_run_is_bit_identical_to_plain():
    spec = small_spec("dualpar-forced")
    plain = run_experiment(spec, cluster_spec=small_cluster(), timeline_window_s=0.5)
    observed = run_experiment(
        small_spec("dualpar-forced"),
        cluster_spec=small_cluster(),
        timeline_window_s=0.5,
        observe=Observability(),
    )
    assert [dataclasses.asdict(j) for j in plain.jobs] == [
        dataclasses.asdict(j) for j in observed.jobs
    ]
    assert plain.makespan_s == observed.makespan_s
    assert plain.timeline.series() == observed.timeline.series()
    assert plain.metrics is None and observed.metrics is not None


def test_observed_metrics_cover_every_layer():
    obs = Observability()
    run_experiment(
        small_spec("dualpar-forced"),
        cluster_spec=paper_spec(n_compute_nodes=4, trace_disks=True),
        observe=obs,
    )
    names = obs.registry.names()
    for prefix in ("disk.", "blk.", "pfs.", "cache.", "emc.", "pec.", "crm.", "blktrace."):
        assert any(n.startswith(prefix) for n in names), f"no {prefix}* metrics"


# ------------------------------------------- zero-overhead when disabled


def test_plain_simulator_shares_null_obs():
    sim = Simulator()
    assert sim.obs is NULL_OBS
    assert not sim.obs.enabled
    assert Simulator().obs is sim.obs  # one shared singleton, no per-sim cost


def test_disabled_components_hold_none_not_instruments():
    from repro.cluster import build_cluster

    cluster = build_cluster(small_cluster())
    for ds in cluster.data_servers:
        assert ds.device._metrics is None
    run_experiment(small_spec("vanilla"), cluster_spec=small_cluster())
    # A plain run records nothing into the shared null tracer.
    assert len(NULL_OBS.tracer.spans) == 0
    assert len(NULL_OBS.registry) == 0


# --------------------------------------------------------- CLI wiring


def test_cli_metrics_and_trace_out(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    trace = tmp_path / "t.json"
    rc = main(
        [
            "run",
            "--workload", "mpi-io-test",
            "--nprocs", "4",
            "--size-mb", "4",
            "--strategy", "dualpar-forced",
            "--compute-nodes", "2",
            "--data-servers", "3",
            "--metrics", str(metrics),
            "--trace-out", str(trace),
        ]
    )
    assert rc == 0
    snap = json.loads(metrics.read_text())
    for prefix in ("disk.", "pfs.", "cache.", "emc.", "pec.", "crm."):
        assert any(n.startswith(prefix) for n in snap["counters"]), prefix
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"]
    assert "per-rank I/O summary" in capsys.readouterr().out


def test_write_metrics_round_trips(tmp_path):
    snap = {"sim_time_s": 1.0, "counters": {"a": 2}}
    out = write_metrics(tmp_path / "m.json", snap)
    assert json.loads(out.read_text()) == snap


# ------------------------------------------------- CI regression gate


def run_gate(*argv):
    return subprocess.run(
        [sys.executable, str(GATE), *argv],
        capture_output=True,
        text=True,
        cwd=str(REPO),
    )


def test_committed_baseline_is_valid():
    data = json.loads(BASELINE.read_text())
    assert data["events_per_sec"] > 0
    assert 0 < data["tolerance"] < 1


def test_regression_gate_passes_and_fails(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"events_per_sec": 1_000_000, "tolerance": 0.25}))
    ok = run_gate("--baseline", str(baseline), "--measured", "900000")
    assert ok.returncode == 0, ok.stdout + ok.stderr
    assert "PASS" in ok.stdout
    # 700k is a >25% drop from 1M: the gate must fail the build.
    bad = run_gate("--baseline", str(baseline), "--measured", "700000")
    assert bad.returncode == 1
    assert "FAIL" in bad.stdout


def test_regression_gate_boundary_and_tolerance_override(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"events_per_sec": 1_000_000, "tolerance": 0.25}))
    # Exactly at the threshold passes (>= threshold).
    at = run_gate("--baseline", str(baseline), "--measured", "750000")
    assert at.returncode == 0
    # A tighter CLI tolerance overrides the baseline's.
    tight = run_gate(
        "--baseline", str(baseline), "--measured", "900000", "--tolerance", "0.05"
    )
    assert tight.returncode == 1
