"""Service smoke harness: the CI `service` job and `make serve-smoke`.

Starts a real ``repro serve`` coordinator subprocess, fires 8
submissions (6 unique cells + 2 duplicates) at it from 2 concurrent
client *processes* -- so the dedup under test is genuinely
cross-process -- then SIGTERMs the coordinator and checks the drain:

- every submission is answered ``ok`` with a committed record;
- the catalog holds exactly 6 entries (one per unique fingerprint);
- the coordinator's counters show 6 queued runs and 2 dedup hits
  (``joined`` while in flight or ``cached`` after commit);
- each catalogued result is bit-identical to a direct in-process
  ``run_experiment`` of the same spec;
- SIGTERM exits 0 after printing the drain summary.

Writes ``summary.json`` next to the catalog for the CI artifact.
Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.runner.parallel import _run_spec  # noqa: E402
from repro.service import (  # noqa: E402
    ClusterSubmission,
    ExperimentSubmission,
    JobSubmission,
    ResultCatalog,
    canonical_json,
    result_to_dict,
    wait_until_ready,
)


def _submission(label: str, size_mb: int, tenant: str) -> ExperimentSubmission:
    return ExperimentSubmission(
        jobs=(JobSubmission("j0", "mpi-io-test", nprocs=4, size_mb=size_mb),),
        cluster=ClusterSubmission(compute_nodes=4, data_servers=3),
        label=label,
        tenant=tenant,
    )


def _batches() -> list[list[ExperimentSubmission]]:
    """8 submissions split over 2 client processes; the duplicates sit
    in the *other* process than their originals."""
    unique = [_submission(f"u{i}", 2 + i, f"tenant-{i % 2}") for i in range(6)]
    # Duplicates differ only by label/tenant -- neither keys the
    # fingerprint, so these are true content-addressed repeats.
    dup_a = _submission("dup-of-u0", 2, "tenant-1")
    dup_b = _submission("dup-of-u3", 5, "tenant-0")
    assert dup_a.fingerprint() == unique[0].fingerprint()
    assert dup_b.fingerprint() == unique[3].fingerprint()
    return [
        [unique[0], unique[2], unique[4], dup_b],
        [unique[1], unique[3], unique[5], dup_a],
    ]


def _client_main(port: int, batch_index: int, payloads: list[dict], q) -> None:
    from repro.service import ExperimentSubmission, wait_until_ready

    client = wait_until_ready("127.0.0.1", port)
    out = []
    for raw in payloads:
        response = client.submit(
            ExperimentSubmission.from_dict(raw), wait=True, timeout=600.0
        )
        out.append(
            {
                "ok": response.get("ok"),
                "fingerprint": response.get("fingerprint"),
                "submit_status": response.get("submit_status", response.get("status")),
            }
        )
    q.put((batch_index, out))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--out-dir", default="serve-smoke-out", help="catalog + summary root"
    )
    args = parser.parse_args()

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    catalog_dir = out_dir / "catalog"
    port_file = out_dir / "port"
    if port_file.exists():
        port_file.unlink()

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            str(args.workers),
            "--catalog",
            str(catalog_dir),
            "--port-file",
            str(port_file),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    failures: list[str] = []
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists() and time.monotonic() < deadline:
            if server.poll() is not None:
                print(server.stdout.read())
                print("FAIL: coordinator exited before binding", flush=True)
                return 1
            time.sleep(0.05)
        port = int(port_file.read_text().strip())
        client = wait_until_ready("127.0.0.1", port)
        print(f"coordinator up on port {port}", flush=True)

        batches = _batches()
        ctx = multiprocessing.get_context()
        q = ctx.Queue()
        clients = [
            ctx.Process(
                target=_client_main,
                args=(port, i, [s.to_dict() for s in batch], q),
            )
            for i, batch in enumerate(batches)
        ]
        for p in clients:
            p.start()
        replies = dict(q.get(timeout=600) for _ in clients)
        for p in clients:
            p.join(60)
            if p.exitcode != 0:
                failures.append(f"client process exited {p.exitcode}")

        flat = [r for i in sorted(replies) for r in replies[i]]
        if not all(r["ok"] for r in flat):
            failures.append(f"submission(s) failed: {flat}")

        status = client.status()
        counters = status["counters"]
        n_dedup = counters["joined"] + counters["cached"]
        if counters["queued"] != 6:
            failures.append(f"expected 6 queued runs, got {counters['queued']}")
        if n_dedup != 2:
            failures.append(f"expected 2 dedup hits, got {n_dedup}")
        if counters["failed"] or counters["rejected_invalid"]:
            failures.append(f"unexpected failures/rejects: {counters}")

        # Drain on SIGTERM, then audit the catalog.
        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=300)
        print(out, flush=True)
        if server.returncode != 0:
            failures.append(f"serve exited {server.returncode} on SIGTERM")
        if "drained:" not in out:
            failures.append("serve did not print its drain summary")

        catalog = ResultCatalog(catalog_dir)
        if len(catalog) != 6:
            failures.append(f"expected 6 catalog entries, got {len(catalog)}")
        checked = 0
        for batch in batches:
            for sub in batch[:3]:  # the unique specs
                record = catalog.get(sub.fingerprint())
                if record is None:
                    failures.append(f"missing record for {sub.label}")
                    continue
                direct = result_to_dict(_run_spec(sub.to_experiment_spec()))
                if canonical_json(record.result) != canonical_json(direct):
                    failures.append(f"record for {sub.label} != direct run")
                checked += 1

        summary = {
            "queued": counters["queued"],
            "dedup_hits": n_dedup,
            "catalog_entries": len(catalog),
            "bit_identical_checked": checked,
            "counters": counters,
            "replies": flat,
            "failures": failures,
        }
        (out_dir / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True), encoding="utf-8"
        )
        print(
            f"serve-smoke: {counters['queued']} runs, {n_dedup} dedup hits, "
            f"{len(catalog)} catalog entries, {checked} bit-identity checks",
            flush=True,
        )
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate(timeout=30)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", flush=True)
        return 1
    print("serve-smoke: PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
