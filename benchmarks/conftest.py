"""Shared benchmark fixtures.

Every bench regenerates one paper artifact (table or figure): it runs the
simulation, prints the paper-style rows/series, writes them to
``benchmarks/results/<name>.txt``, and asserts the qualitative *shape*
the paper reports (who wins, roughly by how much, where crossovers sit).

The pytest-benchmark timer wraps one full simulation run
(``rounds=1``) -- wall time of the simulator is the quantity tracked, the
paper-style numbers come from simulated time and are printed/archived.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Anchor the experiment result cache at the repo root so cold/warm runs
# share it regardless of the pytest invocation directory.  Benches fan
# their independent cells through repro.runner.parallel.run_experiments,
# which memoises each cell here (delete the directory, or run with
# REPRO_NO_BENCH_CACHE=1, to force recomputation).
os.environ.setdefault(
    "REPRO_BENCH_CACHE",
    str(pathlib.Path(__file__).resolve().parent.parent / ".bench_cache"),
)


def bench_jobs() -> int:
    """Worker-process count for grid fan-out (override with BENCH_JOBS)."""
    env = os.environ.get("BENCH_JOBS")
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return os.cpu_count() or 1


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, capsys):
    """Print a result block and persist it to results/<name>.txt."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n===== {name} =====\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer; return its value."""
    box = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box["result"]
