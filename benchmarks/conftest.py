"""Shared benchmark fixtures.

Every bench regenerates one paper artifact (table or figure): it runs the
simulation, prints the paper-style rows/series, writes them to
``benchmarks/results/<name>.txt``, and asserts the qualitative *shape*
the paper reports (who wins, roughly by how much, where crossovers sit).

The pytest-benchmark timer wraps one full simulation run
(``rounds=1``) -- wall time of the simulator is the quantity tracked, the
paper-style numbers come from simulated time and are printed/archived.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, capsys):
    """Print a result block and persist it to results/<name>.txt."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n===== {name} =====\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer; return its value."""
    box = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box["result"]
