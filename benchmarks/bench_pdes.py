"""PDES speedup bench: one sharded cell at 1/2/4/8 workers vs serial.

Runs the :mod:`repro.sim.pdes` cell (a fig3-style read striped over many
data servers) once serially and once per worker count, measures wall
time and events/sec, and writes ``benchmarks/out/BENCH_pdes.json``::

    PYTHONPATH=src python benchmarks/bench_pdes.py                # full
    PYTHONPATH=src python benchmarks/bench_pdes.py --profile ci   # small

Every leg's result digest must be byte-identical to the serial leg --
the bench hard-fails on a mismatch, so a speedup number can never be
quoted for a run that changed the answer.

Profiles:

- ``full``: the acceptance-scale cell -- 100 data servers, 50 client
  nodes, 10,000 ranks (one 64 KB call each).
- ``ci``: an 8-server, 64-rank cell sized for the CI gate; the
  committed ``benchmarks/results/BENCH_pdes.baseline.json`` is pinned
  on this profile (see check_pdes.py).

Speedup is wall-clock relative to the *serial calendar-queue run* of
the same cell, so it is an honest end-to-end figure: on a single-CPU
host the sharded legs lose (fork + pipe overhead, no real
parallelism) and record speedups below 1.0.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Worker counts the sharded legs sweep (serial is measured separately).
WORKER_COUNTS = [1, 2, 4, 8]

PROFILES = {
    # 10k ranks, one 64 KB call each, striped over 100 servers.
    "full": dict(
        n_servers=100,
        n_client_nodes=50,
        n_ranks=10_000,
        file_size=10_000 * 64 * 1024,
        request_bytes=64 * 1024,
    ),
    # Small enough for a CI leg, large enough that per-round protocol
    # overhead (not startup noise) dominates the sharded figure.
    "ci": dict(
        n_servers=8,
        n_client_nodes=4,
        n_ranks=64,
        file_size=1024 * 64 * 1024,
        request_bytes=64 * 1024,
    ),
}


def run_profile(profile: str, workers: list[int] | None = None) -> dict:
    """Measure one profile; returns the BENCH_pdes payload (not written)."""
    from repro.sim.pdes import CellParams, run_sharded_cell

    params = CellParams(**PROFILES[profile])
    workers = workers if workers is not None else WORKER_COUNTS

    t0 = time.perf_counter()
    serial = run_sharded_cell(params, workers=0)
    serial_wall = time.perf_counter() - t0

    legs = {}
    for w in workers:
        t0 = time.perf_counter()
        res = run_sharded_cell(params, workers=w)
        wall = time.perf_counter() - t0
        if res.digest != serial.digest:
            raise SystemExit(
                f"FATAL: workers={w} digest {res.digest} != serial {serial.digest}"
            )
        legs[str(w)] = {
            "wall_s": wall,
            "events_per_sec": res.events / wall if wall > 0 else 0.0,
            "speedup": serial_wall / wall if wall > 0 else 0.0,
            "rounds": res.stats.rounds,
            "null_messages": res.stats.null_messages,
            "horizon_stalls": res.stats.horizon_stalls,
        }

    return {
        "profile": profile,
        "cell": PROFILES[profile],
        "events": serial.events,
        "digest": serial.digest,
        "serial": {
            "wall_s": serial_wall,
            "events_per_sec": serial.events / serial_wall if serial_wall > 0 else 0.0,
        },
        "workers": legs,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--profile", choices=sorted(PROFILES), default="full")
    ap.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        help=f"worker counts to sweep (default {WORKER_COUNTS})",
    )
    ap.add_argument(
        "--out",
        type=pathlib.Path,
        default=OUT_DIR / "BENCH_pdes.json",
        help="output JSON (default benchmarks/out/BENCH_pdes.json)",
    )
    args = ap.parse_args(argv)

    payload = run_profile(args.profile, args.workers)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    s = payload["serial"]
    print(f"profile {payload['profile']}: {payload['events']:,} events, "
          f"digest {payload['digest'][:16]}")
    print(f"  serial    : {s['wall_s']:8.3f} s  {s['events_per_sec']:>12,.0f} ev/s")
    for w, leg in sorted(payload["workers"].items(), key=lambda kv: int(kv[0])):
        print(f"  workers={w:>2}: {leg['wall_s']:8.3f} s  "
              f"{leg['events_per_sec']:>12,.0f} ev/s  "
              f"speedup x{leg['speedup']:.2f}  "
              f"({leg['rounds']} rounds, {leg['null_messages']} nulls)")
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    raise SystemExit(main())
