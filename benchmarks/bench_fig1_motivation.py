"""Figure 1 + Table I: the motivating experiment (Section II).

The synthetic ``demo`` program (8 processes, noncontiguous 16-segment
vector reads sweeping a file front to back) is run under the three
strategies of Table I:

- Strategy 1: computation-driven execution (vanilla MPI-IO);
- Strategy 2: pre-execution prefetching, requests issued immediately,
  computation sliced away;
- Strategy 3: data-driven execution (DualPar pinned in data-driven mode,
  ghost computation retained).

(a) execution time vs I/O ratio (compute time calibrated per ratio, as
the paper does); (b) execution time vs segment size at I/O ratio 0.9;
(c)/(d) the LBN access sequence on data server 1 under strategies 2 and 3.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro import (
    Demo,
    JobSpec,
    calibrate_compute_for_ratio,
    format_table,
    run_experiment,
)
from repro.cluster import paper_spec

NPROCS = 8
FILE_MB = 48

STRATEGIES = [
    ("strategy1", "vanilla", {}),
    ("strategy2", "prefetch", {}),
    ("strategy3", "dualpar-forced", {}),
]


def demo_workload(segment_kb: int, compute_per_call: float) -> Demo:
    return Demo(
        file_size=FILE_MB * 1024 * 1024,
        segment_bytes=segment_kb * 1024,
        segments_per_call=16,
        compute_per_call=compute_per_call,
        nprocs_hint=NPROCS,
    )


def run_strategy(workload: Demo, strategy: str, **kw):
    return run_experiment(
        [JobSpec("demo", NPROCS, workload, strategy=strategy, engine_kwargs=kw)],
        cluster_spec=paper_spec(n_compute_nodes=8),
    )


def test_fig1a_io_ratio_sweep(benchmark, report):
    """Fig 1(a): strategy 2 wins at low I/O ratio, strategy 3 at high."""

    ratios = [0.2, 0.43, 0.72, 0.9, 1.0]

    def run():
        builder = lambda cpc: demo_workload(4, cpc)
        rows = []
        for ratio in ratios:
            cpc = (
                0.0
                if ratio >= 1.0
                else calibrate_compute_for_ratio(
                    builder, ratio, NPROCS, cluster_spec=paper_spec(n_compute_nodes=8)
                )
            )
            row = [f"{ratio:.0%}"]
            for _, strategy, kw in STRATEGIES:
                res = run_strategy(builder(cpc), strategy, **kw)
                row.append(res.jobs[0].elapsed_s)
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report(
        "fig1a_io_ratio_sweep",
        format_table(
            ["I/O ratio", "strategy1 (s)", "strategy2 (s)", "strategy3 (s)"],
            rows,
            title="Fig 1(a): demo execution time vs I/O ratio (4 KB segments)",
            float_fmt="{:.2f}",
        ),
    )
    # Low ratio: prefetching (S2) beats suspend-everything (S3).
    low = rows[0]
    assert low[2] < low[3], "S2 should win at low I/O intensity"
    # Fully I/O bound: S3 is the fastest of the three (paper: ~36% faster).
    high = rows[-1]
    assert high[3] < high[1] and high[3] < high[2], "S3 should win at ~100% I/O"


def test_fig1b_segment_size_sweep(benchmark, report):
    """Fig 1(b): S3's edge is large for small segments, fades beyond 32 KB."""

    sizes_kb = [4, 8, 16, 32, 64, 128]

    def run():
        rows = []
        for kb in sizes_kb:
            builder = lambda cpc, kb=kb: demo_workload(kb, cpc)
            cpc = calibrate_compute_for_ratio(
                builder, 0.9, NPROCS, cluster_spec=paper_spec(n_compute_nodes=8)
            )
            row = [f"{kb} KB"]
            for _, strategy, kw in STRATEGIES:
                res = run_strategy(builder(cpc), strategy, **kw)
                row.append(res.jobs[0].elapsed_s)
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report(
        "fig1b_segment_size_sweep",
        format_table(
            ["segment", "strategy1 (s)", "strategy2 (s)", "strategy3 (s)"],
            rows,
            title="Fig 1(b): demo execution time vs segment size (I/O ratio 90%)",
            float_fmt="{:.2f}",
        ),
    )
    # S3 beats S2 clearly at 4 KB...
    s2_over_s3_small = rows[0][2] / rows[0][3]
    # ...and the advantage shrinks by 128 KB.
    s2_over_s3_large = rows[-1][2] / rows[-1][3]
    assert s2_over_s3_small > 1.1
    assert s2_over_s3_large < s2_over_s3_small


def test_fig1cd_disk_access_order(benchmark, report):
    """Fig 1(c,d): S2 produces back-and-forth head movement; S3's service
    order sweeps mostly one way."""

    def run():
        out = {}
        for label, strategy in (("c_strategy2", "prefetch"), ("d_strategy3", "dualpar-forced")):
            spec = paper_spec(n_compute_nodes=8, trace_disks=True)
            res = run_experiment(
                [JobSpec("demo", NPROCS, demo_workload(4, 0.0), strategy=strategy)],
                cluster_spec=spec,
            )
            trace = res.cluster.traces[0]
            st = res.cluster.data_servers[0].block_layer.stats
            t1 = res.jobs[0].end_s
            mid0, mid1 = t1 * 0.3, t1 * 0.7
            out[label] = (
                trace.monotonicity(0, t1),
                trace.mean_seek_distance(0, t1),
                st.n_units_served,
                st.mean_unit_sectors * 512 / 1024,
                trace.ascii_plot(mid0, mid1, width=64, height=14),
            )
        return out

    out = run_once(benchmark, run)
    text = []
    for label, (mono, seek, units, unit_kb, art) in out.items():
        text.append(
            f"Fig 1({label}): forward-motion fraction={mono:.2f}, "
            f"mean seek={seek:.0f} sectors, disk ops={units}, "
            f"mean op size={unit_kb:.0f} KB\n{art}\n"
        )
    report("fig1cd_disk_access_order", "\n".join(text))
    # The paper contrasts S2's fragmented issue order with S3's batch: in
    # this substrate the robust observable is that S3 moves the same data
    # in no more disk operations than S2 (larger effective requests --
    # "the average request size is 128KB for Strategy 3 and 12KB for
    # Strategy 2").  Head-movement direction is muted here because the
    # simulated kernel readahead straightens S2's order; see
    # EXPERIMENTS.md.
    assert out["d_strategy3"][2] <= out["c_strategy2"][2]


def test_table1_strategy_characteristics(benchmark, report):
    """Table I, measured: overlap of computation and I/O, and the
    correlation between computation order and I/O service order."""

    def run():
        builder = lambda cpc: demo_workload(4, cpc)
        cpc = calibrate_compute_for_ratio(
            builder, 0.3, NPROCS, cluster_spec=paper_spec(n_compute_nodes=8)
        )
        rows = []
        baseline_io = None
        for name, strategy, kw in STRATEGIES:
            spec = paper_spec(n_compute_nodes=8, trace_disks=True)
            res = run_experiment(
                [JobSpec("demo", NPROCS, builder(cpc), strategy=strategy,
                         engine_kwargs=kw)],
                cluster_spec=spec,
            )
            j = res.jobs[0]
            if baseline_io is None:
                baseline_io = j.io_time_s
            # "Overlap": fraction of the baseline's visible I/O wait this
            # strategy hides behind computation.
            hidden = max(0.0, 1.0 - j.io_time_s / baseline_io)
            mono = res.cluster.traces[0].monotonicity(0, j.end_s)
            rows.append([name, j.elapsed_s, hidden, mono])
        return rows

    rows = run_once(benchmark, run)
    report(
        "table1_strategy_characteristics",
        format_table(
            ["strategy", "exec time (s)", "I/O hidden vs S1", "service-order monotonicity"],
            rows,
            title="Table I (measured): strategy characteristics at I/O ratio 30%",
            float_fmt="{:.2f}",
        ),
    )
    # In its sweet spot (compute-rich), strategy 2 finishes first by
    # overlapping I/O with computation.
    assert rows[1][1] < rows[0][1]
