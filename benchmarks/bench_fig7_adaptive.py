"""Figure 7: opportunistic mode switching under a varying workload.

mpi-io-test starts alone (sequential; I/O efficiency is fine, so EMC
leaves it computation-driven).  Later hpio joins, reading its own file:
the interference collapses disk efficiency, EMC's aveSeekDist/aveReqDist
crosses T_improvement, and both programs are switched to data-driven
execution -- recovering throughput until hpio completes (paper: +46%
while both run).  (b) shows the per-server average seek distance falling
after the switch.

Scaled: hpio joins at t=1.5 s instead of t=50 s; 0.5 s sampling windows.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro import DualParConfig, Hpio, JobSpec, MpiIoTest, format_table, run_experiment
from repro.cluster import paper_spec

NPROCS = 32
JOIN_AT_S = 1.5
WINDOW_S = 0.5


def scenario(strategy: str):
    spec = paper_spec(n_compute_nodes=16, trace_disks=True, locality_interval_s=0.25)
    cfg = DualParConfig(emc_interval_s=0.25, metric_window_s=1.0)
    specs = [
        JobSpec(
            "mpi-io-test",
            NPROCS,
            MpiIoTest(file_name="a.dat", file_size=384 * 1024 * 1024, barrier_every=0),
            strategy=strategy,
        ),
        JobSpec(
            "hpio",
            NPROCS,
            Hpio(file_name="b.dat", region_count=8192, region_bytes=16 * 1024),
            strategy=strategy,
            delay_s=JOIN_AT_S,
        ),
    ]
    return run_experiment(
        specs, cluster_spec=spec, dualpar_config=cfg, timeline_window_s=WINDOW_S
    )


def test_fig7_adaptive_mode_switching(benchmark, report):
    def run():
        out = {}
        for strategy in ("vanilla", "dualpar"):
            res = scenario(strategy)
            series = res.timeline.series(WINDOW_S, t_end=res.makespan_s)
            seek_series = [
                (t, m)
                for t, m, n in res.cluster.locality_daemons[0].samples
                if n > 0
            ]
            out[strategy] = {
                "series": series,
                "seek": seek_series,
                "makespan": res.makespan_s,
                "transitions": res.dualpar.transitions if res.dualpar else [],
                "hpio_end": res.job("hpio").end_s,
            }
        return out

    out = run_once(benchmark, run)

    # (a) throughput timelines
    van, dp = out["vanilla"], out["dualpar"]
    n = max(len(van["series"]), len(dp["series"]))
    rows = []
    for i in range(n):
        t = i * WINDOW_S
        v = van["series"][i][1] if i < len(van["series"]) else 0.0
        d = dp["series"][i][1] if i < len(dp["series"]) else 0.0
        rows.append([f"{t:.1f}", v, d])
    text_a = format_table(
        ["t (s)", "vanilla MB/s", "DualPar MB/s"],
        rows,
        title=f"Fig 7(a): system throughput timeline (hpio joins at t={JOIN_AT_S}s)",
    )

    # (b) seek-distance samples on data server 1
    rows_b = [
        [f"{t:.2f}", v_seek, d_seek]
        for (t, v_seek), (_, d_seek) in zip(van["seek"], dp["seek"])
    ]
    text_b = format_table(
        ["t (s)", "vanilla seek (sectors)", "DualPar seek (sectors)"],
        rows_b,
        title="Fig 7(b): average seek distance on data server 1",
        float_fmt="{:.0f}",
    )
    trans_text = "DualPar mode transitions: " + repr(dp["transitions"])
    report("fig7_adaptive", "\n\n".join([text_a, text_b, trans_text]))

    # Before hpio joins the sequential program stays computation-driven...
    assert all(t >= JOIN_AT_S for t, _, _ in dp["transitions"])
    # ...and both programs enter data-driven mode once it does.
    switched = {name for _, name, mode in dp["transitions"] if mode == "datadriven"}
    assert switched == {"mpi-io-test", "hpio"}
    # DualPar improves throughput during the contention phase.
    def phase_mean(info):
        pts = [mb for t, mb in info["series"] if JOIN_AT_S + 2 * WINDOW_S <= t < info["hpio_end"]]
        return sum(pts) / len(pts) if pts else 0.0

    assert phase_mean(dp) > phase_mean(van) * 1.1
    # And finishes the whole scenario sooner.
    assert dp["makespan"] < van["makespan"]
