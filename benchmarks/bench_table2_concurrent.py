"""Table II + Figure 6: two concurrent mpi-io-test instances.

Each instance streams its own file; their requests interleave at the
shared data servers and the disk head ping-pongs between the two files'
regions under vanilla MPI-IO.  DualPar accumulates, sorts, and batches,
so requests arrive "in a bursty manner and with an optimized order".

Paper Table II (MB/s): read 160/168/284, write 54/67/127 -- DualPar
roughly doubles vanilla on both.  Fig 6 shows the LBN traces; the paper
reports DualPar cutting the average seek distance by up to 10x.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro import JobSpec, MpiIoTest, format_table, run_experiment
from repro.cluster import paper_spec

NPROCS = 32
FILE_MB = 96
SCHEMES = ["vanilla", "collective", "dualpar-forced"]


def make_specs(op: str, scheme: str):
    return [
        JobSpec(
            f"mpi-io-test-{i}",
            NPROCS,
            MpiIoTest(
                file_name=f"miot{i}.dat",
                file_size=FILE_MB * 1024 * 1024,
                request_bytes=16 * 1024,
                op=op,
                barrier_every=4,
            ),
            strategy=scheme,
        )
        for i in range(2)
    ]


def run_cell(op: str, scheme: str, trace: bool = False):
    spec = paper_spec(trace_disks=trace)
    return run_experiment(make_specs(op, scheme), cluster_spec=spec)


def test_table2_concurrent_throughput(benchmark, report):
    def run():
        rows = []
        for op, label in (("R", "Read"), ("W", "Write")):
            row = [label]
            for scheme in SCHEMES:
                res = run_cell(op, scheme)
                row.append(res.system_throughput_mb_s)
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report(
        "table2_concurrent_throughput",
        format_table(
            ["op", "vanilla MPI-IO", "collective I/O", "DualPar"],
            rows,
            title="Table II: aggregate throughput, 2 concurrent mpi-io-test (MB/s)",
        ),
    )
    for label, van, coll, dp in rows:
        assert dp > van, f"{label}: DualPar must beat vanilla"
        assert dp > coll * 0.95, f"{label}: DualPar must be at least on par with collective"
    # Reads: DualPar's margin over vanilla is substantial (paper ~1.8x).
    assert rows[0][3] > rows[0][1] * 1.3


def test_fig6_interference_traces(benchmark, report):
    def run():
        out = {}
        for scheme in ("vanilla", "dualpar-forced"):
            res = run_cell("R", scheme, trace=True)
            trace = res.cluster.traces[0]
            t1 = min(j.end_s for j in res.jobs)
            mid0, mid1 = t1 * 0.3, min(t1 * 0.3 + 1.0, t1)
            out[scheme] = (
                trace.mean_seek_distance(0, t1),
                trace.ascii_plot(mid0, mid1, width=64, height=14),
                res.system_throughput_mb_s,
            )
        return out

    out = run_once(benchmark, run)
    text = []
    for scheme, (seek, art, thpt) in out.items():
        text.append(
            f"Fig 6 ({scheme}): mean seek distance={seek:.0f} sectors, "
            f"throughput={thpt:.1f} MB/s\n{art}\n"
        )
    report("fig6_interference_traces", "\n".join(text))
    # DualPar sharply reduces the average seek distance (paper: up to 10x).
    assert out["dualpar-forced"][0] < out["vanilla"][0] / 2
