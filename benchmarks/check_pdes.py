"""CI regression gate for the PDES sharding bench.

Compares a ``BENCH_pdes.json`` measurement (see bench_pdes.py) against
the committed baseline ``benchmarks/results/BENCH_pdes.baseline.json``
and exits non-zero when either figure regressed more than the allowed
tolerance (25% by default)::

    PYTHONPATH=src python benchmarks/check_pdes.py            # run bench
    PYTHONPATH=src python benchmarks/check_pdes.py --from \\
        benchmarks/out/BENCH_pdes.json                        # pre-run

Two figures are gated:

- *serial events/sec* -- the cell's raw simulation rate.  Host speed
  varies across CI runners, so the live run re-measures the same
  pure-Python calibration loop as check_regression.py and scales the
  baseline by ``local_calibration / baseline_calibration``.
- *speedup per worker count* -- sharded wall over serial wall.  A
  speedup is a ratio of two runs on the same host, so it needs no
  calibration; the gate fails if any worker leg's measured speedup
  drops more than the tolerance below the baseline's.  Baselines pinned
  on a single-CPU host record speedups below 1.0 (fork + pipe overhead
  with no real parallelism); a multi-core runner only clears the bar
  more easily, so the gate stays honest on both kinds of host.

Maintenance::

    python benchmarks/check_pdes.py --update-baseline     # re-pin (ci)
    python benchmarks/check_pdes.py --from measured.json  # gate a file

``--from`` skips the bench *and* calibration scaling: the figures in
the given file are compared raw against the baseline (synthetic tests).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUT_DIR = pathlib.Path(__file__).parent / "out"
BASELINE_PATH = RESULTS_DIR / "BENCH_pdes.baseline.json"
REPORT_PATH = OUT_DIR / "BENCH_pdes_gate.json"

DEFAULT_TOLERANCE = 0.25
#: Profile the committed baseline is pinned on.
BASELINE_PROFILE = "ci"


def load_json(path: pathlib.Path) -> dict:
    with path.open() as f:
        return json.load(f)


def check(measured: dict, baseline: dict, tolerance: float,
          local_calibration: float | None = None) -> tuple[bool, dict]:
    """Gate one bench payload against the baseline; returns (ok, report)."""
    checks = []

    scale = 1.0
    base_cal = baseline.get("calibration_ops_per_sec")
    if local_calibration is not None and base_cal:
        scale = local_calibration / float(base_cal)

    base_serial = float(baseline["serial"]["events_per_sec"])
    meas_serial = float(measured["serial"]["events_per_sec"])
    threshold = base_serial * scale * (1.0 - tolerance)
    checks.append({
        "name": "serial_events_per_sec",
        "measured": meas_serial,
        "baseline": base_serial,
        "calibration_scale": scale,
        "threshold": threshold,
        "ok": meas_serial >= threshold,
    })

    for w, leg in sorted(baseline.get("workers", {}).items(), key=lambda kv: int(kv[0])):
        base_speedup = float(leg["speedup"])
        meas_leg = measured.get("workers", {}).get(w)
        if meas_leg is None:
            checks.append({
                "name": f"speedup_workers_{w}",
                "measured": None,
                "baseline": base_speedup,
                "threshold": None,
                "ok": False,
            })
            continue
        meas_speedup = float(meas_leg["speedup"])
        threshold = base_speedup * (1.0 - tolerance)
        checks.append({
            "name": f"speedup_workers_{w}",
            "measured": meas_speedup,
            "baseline": base_speedup,
            "threshold": threshold,
            "ok": meas_speedup >= threshold,
        })

    ok = all(c["ok"] for c in checks)
    return ok, {"tolerance": tolerance, "ok": ok, "checks": checks}


def _calibration_rate() -> float:
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from check_regression import calibration_rate

    return calibration_rate()


def _run_bench(profile: str) -> dict:
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from bench_pdes import run_profile

    return run_profile(profile)


def write_baseline(path: pathlib.Path, payload: dict, calibration: float) -> None:
    pinned = {
        "profile": payload["profile"],
        "events": payload["events"],
        "serial": {"events_per_sec": payload["serial"]["events_per_sec"]},
        "workers": {
            w: {"speedup": leg["speedup"],
                "events_per_sec": leg["events_per_sec"]}
            for w, leg in payload["workers"].items()
        },
        "calibration_ops_per_sec": calibration,
        "tolerance": DEFAULT_TOLERANCE,
        "bench": f"benchmarks/bench_pdes.py --profile {payload['profile']}",
        "method": "speedups gated raw (host-relative ratios); serial "
                  "events/sec scaled by the local calibration rate",
    }
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(pinned, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline", type=pathlib.Path, default=BASELINE_PATH,
        help=f"baseline JSON (default {BASELINE_PATH})",
    )
    ap.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional drop (default: baseline's, else 0.25)",
    )
    ap.add_argument(
        "--from", dest="from_json", type=pathlib.Path, default=None,
        metavar="PATH",
        help="gate this BENCH_pdes.json instead of running the bench "
        "(disables calibration scaling)",
    )
    ap.add_argument(
        "--profile", default=BASELINE_PROFILE,
        help=f"bench profile for live runs (default {BASELINE_PROFILE})",
    )
    ap.add_argument(
        "--update-baseline", action="store_true",
        help="re-measure and overwrite the baseline file, then exit 0",
    )
    args = ap.parse_args(argv)

    if args.update_baseline:
        payload = _run_bench(args.profile)
        cal = _calibration_rate()
        write_baseline(args.baseline, payload, cal)
        print(f"baseline updated: {payload['serial']['events_per_sec']:,.0f} "
              f"ev/s serial, speedups "
              f"{ {w: round(leg['speedup'], 3) for w, leg in sorted(payload['workers'].items(), key=lambda kv: int(kv[0]))} } "
              f"-> {args.baseline}")
        return 0

    baseline = load_json(args.baseline)
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))

    if args.from_json is not None:
        measured, local_cal = load_json(args.from_json), None
    else:
        measured = _run_bench(args.profile)
        local_cal = _calibration_rate()
        try:
            # Live runs double as the bench: persist the measurement so
            # CI uploads one consistent pair (measurement + verdict).
            OUT_DIR.mkdir(exist_ok=True)
            (OUT_DIR / "BENCH_pdes.json").write_text(
                json.dumps(measured, indent=2, sort_keys=True) + "\n"
            )
        except OSError:
            pass

    ok, report = check(measured, baseline, tolerance, local_cal)

    try:
        REPORT_PATH.parent.mkdir(exist_ok=True)
        REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass  # the verdict matters, the artifact is best-effort

    for c in report["checks"]:
        meas = "missing" if c["measured"] is None else f"{c['measured']:,.2f}"
        thr = "-" if c["threshold"] is None else f"{c['threshold']:,.2f}"
        verdict = "ok" if c["ok"] else "FAIL"
        print(f"  {c['name']:<26} measured {meas:>12}  "
              f"baseline {c['baseline']:>12,.2f}  threshold {thr:>12}  {verdict}")
    print(f"verdict: {'PASS' if ok else 'FAIL: pdes sharding regressed'} "
          f"(tolerance -{tolerance:.0%})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    raise SystemExit(main())
