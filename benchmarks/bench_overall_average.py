"""The conclusion's headline number.

"Our experimental evaluation ... shows that DualPar can effectively
improve I/O efficiency in various scenarios, whether or not collective
I/O is used, increasing system I/O throughput by 31% on average."

This bench runs a compact grid over the single-application workloads and
reports DualPar's improvement over BOTH baselines -- vanilla MPI-IO and
collective I/O -- plus the geometric-mean improvement over the best
baseline per cell, which is the conservative reading of the claim.
"""

from __future__ import annotations

import math

import pytest

from conftest import bench_jobs, run_once
from repro import (
    ExperimentSpec,
    IorMpiIo,
    JobSpec,
    MpiIoTest,
    Noncontig,
    format_table,
    run_experiments,
)
from repro.cluster import paper_spec

NPROCS = 64


def grid():
    return [
        ("mpi-io-test R", MpiIoTest(file_size=64 * 1024 * 1024, op="R")),
        ("mpi-io-test W", MpiIoTest(file_size=64 * 1024 * 1024, op="W")),
        ("noncontig R", Noncontig(elmtcount=256, n_rows=4096, op="R")),
        ("ior-mpi-io R", IorMpiIo(file_size=128 * 1024 * 1024, op="R")),
        ("ior-mpi-io W", IorMpiIo(file_size=128 * 1024 * 1024, op="W")),
    ]


def test_overall_average_improvement(benchmark, report):
    def run():
        schemes = ("vanilla", "collective", "dualpar-forced")
        specs = [
            ExperimentSpec(
                [JobSpec(name, NPROCS, workload, strategy=scheme)],
                cluster_spec=paper_spec(),
                label=f"{name}/{scheme}",
            )
            for name, workload in grid()
            for scheme in schemes
        ]
        results = run_experiments(specs, jobs=bench_jobs())
        rows = []
        for wi, (name, _workload) in enumerate(grid()):
            cells = {
                scheme: results[wi * len(schemes) + si].jobs[0].throughput_mb_s
                for si, scheme in enumerate(schemes)
            }
            best_base = max(cells["vanilla"], cells["collective"])
            rows.append(
                [
                    name,
                    cells["vanilla"],
                    cells["collective"],
                    cells["dualpar-forced"],
                    (cells["dualpar-forced"] / best_base - 1.0) * 100.0,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    gmean = math.exp(
        sum(math.log(max(1.0 + r[4] / 100.0, 1e-9)) for r in rows) / len(rows)
    )
    rows.append(["GEOMEAN vs best baseline", "", "", "", (gmean - 1.0) * 100.0])
    report(
        "overall_average_improvement",
        format_table(
            ["workload", "vanilla", "collective", "DualPar", "gain vs best (%)"],
            rows,
            title="Conclusion check: DualPar vs the BEST of vanilla/collective "
            "per cell (paper: +31% average)",
        ),
    )
    # The paper's headline band: meaningful positive average improvement
    # over the best competing scheme.
    assert (gmean - 1.0) * 100.0 > 15.0
