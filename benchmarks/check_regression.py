"""CI benchmark-regression gate for the simulation kernel.

Compares the kernel's event-loop throughput against the committed
baseline in ``benchmarks/results/BENCH_kernel.baseline.json`` and exits
non-zero when it has regressed more than the allowed tolerance (25% by
default).  Replaces the old smoke-only bench step in CI::

    PYTHONPATH=src python benchmarks/check_regression.py

Noise handling, because CI runners are shared and vary in speed:

- the measured figure is the *median of three* independent bench runs,
  not a single sample;
- the baseline records a *calibration rate* -- a fixed pure-Python loop
  measured on the baseline host -- and the gate re-measures it locally,
  scaling the baseline by ``local_calibration / baseline_calibration``.
  A runner that is half as fast overall gets a proportionally lower
  bar, so the gate tracks kernel regressions, not host speed.

Maintenance::

    python benchmarks/check_regression.py --update-baseline   # re-pin
    python benchmarks/check_regression.py --measured 5e5      # synthetic
                                          # figure, no bench run (tests)

``--measured`` skips both the bench and the calibration scaling: the
given raw events/sec is compared straight against the baseline figure.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_kernel.baseline.json"
# Generated verdicts go under benchmarks/out/ (gitignored wholesale);
# benchmarks/results/ holds only deliberately committed baselines and
# archived figures, so a gate run can never dirty the tree.
REPORT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_regression.json"

DEFAULT_TOLERANCE = 0.25
MEDIAN_OF = 3


def calibration_rate(n: int = 2_000_000) -> float:
    """Ops/sec of a fixed pure-Python integer loop.

    Both this loop and the simulator's event loop are interpreter-bound,
    so their ratio is roughly stable across hosts and Python versions --
    that ratio is what the gate actually checks.
    """
    best = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        x = 0
        for i in range(n):
            x += i & 7
        dt = time.perf_counter() - t0
        best = max(best, n / dt)
    return best


def measure_median_events_per_sec() -> float:
    """Median of three independent kernel-bench runs."""
    from bench_kernel_micro import measure_events_per_sec

    samples = [measure_events_per_sec(repeats=1) for _ in range(MEDIAN_OF)]
    return statistics.median(samples)


def load_baseline(path: pathlib.Path) -> dict:
    with path.open() as f:
        data = json.load(f)
    if "events_per_sec" not in data:
        raise ValueError(f"{path}: missing 'events_per_sec'")
    return data


def write_baseline(path: pathlib.Path, measured: float, calibration: float) -> None:
    payload = {
        "events_per_sec": measured,
        "calibration_ops_per_sec": calibration,
        "tolerance": DEFAULT_TOLERANCE,
        "bench": "benchmarks/bench_kernel_micro.py::measure_events_per_sec",
        "method": f"median of {MEDIAN_OF} runs, baseline scaled by local calibration rate",
    }
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def check(
    measured: float,
    baseline: dict,
    tolerance: float,
    local_calibration: float | None = None,
) -> tuple[bool, dict]:
    """Gate ``measured`` against ``baseline``; returns (ok, report)."""
    reference = float(baseline["events_per_sec"])
    scale = 1.0
    base_cal = baseline.get("calibration_ops_per_sec")
    if local_calibration is not None and base_cal:
        scale = local_calibration / float(base_cal)
    threshold = reference * scale * (1.0 - tolerance)
    ok = measured >= threshold
    report = {
        "measured_events_per_sec": measured,
        "baseline_events_per_sec": reference,
        "calibration_scale": scale,
        "scaled_baseline": reference * scale,
        "tolerance": tolerance,
        "threshold": threshold,
        "ok": ok,
    }
    return ok, report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=BASELINE_PATH,
        help=f"baseline JSON (default {BASELINE_PATH})",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional drop (default: baseline's, else 0.25)",
    )
    ap.add_argument(
        "--measured",
        type=float,
        default=None,
        metavar="EVENTS_PER_SEC",
        help="use this raw figure instead of running the bench "
        "(synthetic tests; disables calibration scaling)",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-measure and overwrite the baseline file, then exit 0",
    )
    args = ap.parse_args(argv)

    sys.path.insert(0, str(pathlib.Path(__file__).parent))

    if args.update_baseline:
        measured = measure_median_events_per_sec()
        cal = calibration_rate()
        write_baseline(args.baseline, measured, cal)
        print(f"baseline updated: {measured:,.0f} events/sec "
              f"(calibration {cal:,.0f} ops/sec) -> {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))

    if args.measured is not None:
        measured, local_cal = args.measured, None
    else:
        measured = measure_median_events_per_sec()
        local_cal = calibration_rate()

    ok, report = check(measured, baseline, tolerance, local_cal)

    try:
        REPORT_PATH.parent.mkdir(exist_ok=True)
        REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass  # the verdict matters, the artifact is best-effort

    print(f"        measured: {report['measured_events_per_sec']:>14,.0f} events/sec")
    print(f"        baseline: {report['baseline_events_per_sec']:>14,.0f} events/sec")
    if report["calibration_scale"] != 1.0:
        print(f" scaled baseline: {report['scaled_baseline']:>14,.0f} events/sec "
              f"(host calibration x{report['calibration_scale']:.2f})")
    print(f"       threshold: {report['threshold']:>14,.0f} events/sec "
          f"(-{tolerance:.0%})")
    print(f"         verdict: {'PASS' if ok else 'FAIL: kernel regressed'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
