"""Figure 8: BTIO throughput vs per-process cache size.

BTIO (non-sequential, tiny requests) runs pinned in data-driven mode
while the per-process cache quota sweeps 0 KB -> 1024 KB.  The paper:
0 KB is "essentially disabled" (vanilla-equivalent, 2.7 MB/s); 64 KB
already gives ~43x because BTIO's native requests are tiny; returns
diminish beyond a few hundred KB.
"""

from __future__ import annotations

import pytest

from conftest import bench_jobs, run_once
from repro import (
    Btio,
    DualParConfig,
    ExperimentSpec,
    JobSpec,
    format_table,
    run_experiments,
)
from repro.cluster import paper_spec

NPROCS = 64
QUOTAS_KB = [0, 64, 128, 256, 512, 1024]


def make_workload():
    return Btio(
        total_bytes=8 * 1024 * 1024,
        n_steps=2,
        cell_scale=16384,
        op="W",
        compute_per_step=0.002,
        segments_per_call=64,
    )


def test_fig8_cache_size_sweep(benchmark, report):
    def run():
        cells = [
            ExperimentSpec(
                [JobSpec("btio", NPROCS, make_workload(), strategy="dualpar-forced")],
                cluster_spec=paper_spec(),
                dualpar_config=DualParConfig(quota_bytes=kb * 1024),
                label=f"{kb} KB",
            )
            for kb in QUOTAS_KB
        ]
        # Vanilla reference (the paper's 0 KB equivalence claim).
        cells.append(
            ExperimentSpec(
                [JobSpec("btio", NPROCS, make_workload(), strategy="vanilla")],
                cluster_spec=paper_spec(),
                label="vanilla",
            )
        )
        results = run_experiments(cells, jobs=bench_jobs())
        labels = [f"{kb} KB" for kb in QUOTAS_KB] + ["vanilla"]
        return [
            [label, res.jobs[0].throughput_mb_s]
            for label, res in zip(labels, results)
        ]

    rows = run_once(benchmark, run)
    report(
        "fig8_cache_size_sweep",
        format_table(
            ["cache per process", "throughput (MB/s)"],
            rows,
            title="Fig 8: BTIO system throughput vs per-process cache size",
        ),
    )
    by = {r[0]: r[1] for r in rows}
    # A small cache already brings a large improvement over 0 KB...
    assert by["64 KB"] > 5 * by["0 KB"]
    # ...with diminishing returns after: doubling 512->1024 gains < 50%.
    assert by["1024 KB"] < by["512 KB"] * 1.5
    # Throughput is non-decreasing in cache size (within 25% tolerance).
    vals = [by[f"{kb} KB"] for kb in QUOTAS_KB]
    for a, b in zip(vals, vals[1:]):
        assert b > a * 0.75
