"""Figure 3: single-application I/O throughput (Section V-B).

One program at a time -- mpi-io-test (sequential), noncontig
(noncontiguous columns), ior-mpi-io (random-across-ranks) -- each with
read and write variants, under vanilla MPI-IO, collective I/O, and
DualPar (pinned data-driven, as the paper runs this section).

Expected shapes (paper values in MB/s for reads: mpi-io-test
115/117/263, noncontig: DualPar 390 = 1.57x collective, ior-mpi-io:
collective loses its advantage, DualPar +150%):

- DualPar has the highest throughput on every workload;
- collective I/O ~ vanilla on ior-mpi-io (striping mismatch);
- DualPar's margin over collective is largest on noncontig.
"""

from __future__ import annotations

import pytest

from conftest import bench_jobs, run_once
from repro import (
    ExperimentSpec,
    IorMpiIo,
    JobSpec,
    MpiIoTest,
    Noncontig,
    format_table,
    run_experiments,
)
from repro.cluster import paper_spec

NPROCS = 64
SCHEMES = ["vanilla", "collective", "dualpar-forced"]


def workloads(op: str):
    return [
        ("mpi-io-test", lambda: MpiIoTest(file_size=64 * 1024 * 1024, op=op)),
        ("noncontig", lambda: Noncontig(elmtcount=256, n_rows=4096, op=op)),
        ("ior-mpi-io", lambda: IorMpiIo(file_size=128 * 1024 * 1024, op=op)),
    ]


def run_grid(op: str):
    cells = [
        ExperimentSpec(
            [JobSpec(wname, NPROCS, build(), strategy=scheme)],
            cluster_spec=paper_spec(),
            label=f"{wname}/{scheme}",
        )
        for wname, build in workloads(op)
        for scheme in SCHEMES
    ]
    results = run_experiments(cells, jobs=bench_jobs())
    rows = []
    for wi, (wname, _build) in enumerate(workloads(op)):
        row = [wname]
        for si in range(len(SCHEMES)):
            row.append(results[wi * len(SCHEMES) + si].jobs[0].throughput_mb_s)
        rows.append(row)
    return rows


def check_shapes(rows):
    by_name = {r[0]: r[1:] for r in rows}
    for name, (van, coll, dp) in by_name.items():
        assert dp > van, f"{name}: DualPar must beat vanilla ({dp:.0f} vs {van:.0f})"
    # ior: collective gains nothing (within 35% of vanilla, and below DualPar).
    van, coll, dp = by_name["ior-mpi-io"]
    assert coll < dp
    assert coll < van * 1.35
    # noncontig: both optimisations crush vanilla; DualPar ahead of collective.
    van, coll, dp = by_name["noncontig"]
    assert coll > van and dp > coll


def test_fig3a_single_app_read(benchmark, report):
    rows = run_once(benchmark, lambda: run_grid("R"))
    report(
        "fig3a_single_app_read",
        format_table(
            ["workload", "vanilla MPI-IO", "collective I/O", "DualPar"],
            rows,
            title="Fig 3(a): single-program READ throughput (MB/s)",
        ),
    )
    check_shapes(rows)


def test_fig3b_single_app_write(benchmark, report):
    rows = run_once(benchmark, lambda: run_grid("W"))
    report(
        "fig3b_single_app_write",
        format_table(
            ["workload", "vanilla MPI-IO", "collective I/O", "DualPar"],
            rows,
            title="Fig 3(b): single-program WRITE throughput (MB/s)",
        ),
    )
    by_name = {r[0]: r[1:] for r in rows}
    for name, (van, coll, dp) in by_name.items():
        assert dp > van, f"{name}: DualPar must beat vanilla on writes"
