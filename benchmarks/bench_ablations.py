"""Ablations over the design choices DESIGN.md calls out.

Not a paper figure -- these benches isolate the mechanisms DualPar's
gains are attributed to:

1. kernel I/O scheduler choice (CFQ / deadline / noop / anticipatory)
   under vanilla vs DualPar -- DualPar's pre-sorted batches should make
   it far less sensitive to the elevator than vanilla is;
2. T_improvement sensitivity (the paper: "system performance is not
   sensitive to this threshold");
3. CRM hole filling on/off on a holey workload;
4. list I/O on/off for batched issue;
5. ghost computation retained (DualPar) vs stripped (Strategy-2 style) --
   the prediction-fidelity/overhead trade the paper discusses.
"""

from __future__ import annotations

import pytest

from conftest import bench_jobs, run_once
from repro import (
    Demo,
    DualParConfig,
    ExperimentSpec,
    Hpio,
    JobSpec,
    MpiIoTest,
    Noncontig,
    format_table,
    run_experiment,
    run_experiments,
)
from repro.cluster import paper_spec

NPROCS = 32


def test_ablation_io_scheduler(benchmark, report):
    def run():
        scheds = ("cfq", "deadline", "noop", "anticipatory")
        strategies = ("vanilla", "dualpar-forced")
        cells = [
            ExperimentSpec(
                [JobSpec("m", NPROCS,
                         MpiIoTest(file_size=48 * 1024 * 1024, barrier_every=4),
                         strategy=strategy)],
                cluster_spec=paper_spec(io_scheduler=sched),
                label=f"{sched}/{strategy}",
            )
            for sched in scheds
            for strategy in strategies
        ]
        results = run_experiments(cells, jobs=bench_jobs())
        rows = []
        for i, sched in enumerate(scheds):
            row = [sched]
            for si in range(len(strategies)):
                row.append(results[i * len(strategies) + si].jobs[0].throughput_mb_s)
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report(
        "ablation_io_scheduler",
        format_table(
            ["elevator", "vanilla MB/s", "DualPar MB/s"],
            rows,
            title="Ablation: kernel I/O scheduler under each execution mode",
        ),
    )
    # DualPar's batched pre-sorted issue makes it much less elevator-
    # sensitive than vanilla: its min/max spread is tighter.
    van = [r[1] for r in rows]
    dp = [r[2] for r in rows]
    assert (max(dp) / min(dp)) < (max(van) / min(van)) * 1.5
    # And DualPar beats vanilla under every elevator.
    for sched, v, d in rows:
        assert d > v, f"{sched}: DualPar should win regardless of elevator"


def test_ablation_t_improvement(benchmark, report):
    """Mode switching lands the same way across a wide threshold range."""

    def scenario(t_improvement):
        spec = paper_spec(n_compute_nodes=16, locality_interval_s=0.25)
        cfg = DualParConfig(
            emc_interval_s=0.25, metric_window_s=1.0, t_improvement=t_improvement
        )
        specs = [
            JobSpec("seq", NPROCS,
                    MpiIoTest(file_name="a.dat", file_size=192 * 1024 * 1024,
                              barrier_every=0),
                    strategy="dualpar"),
            JobSpec("hpio", NPROCS,
                    Hpio(file_name="b.dat", region_count=4096, region_bytes=16 * 1024),
                    strategy="dualpar", delay_s=1.0),
        ]
        return ExperimentSpec(
            specs, cluster_spec=spec, dualpar_config=cfg, label=f"T={t_improvement}"
        )

    def run():
        thresholds = (1.0, 3.0, 10.0, 30.0)
        results = run_experiments(
            [scenario(t) for t in thresholds], jobs=bench_jobs()
        )
        rows = []
        for t, res in zip(thresholds, results):
            switched = len(
                {n for _, n, m in res.dualpar_transitions if m == "datadriven"}
            )
            rows.append([t, res.system_throughput_mb_s, switched])
        return rows

    rows = run_once(benchmark, run)
    report(
        "ablation_t_improvement",
        format_table(
            ["T_improvement", "system MB/s", "programs switched"],
            rows,
            title="Ablation: sensitivity to the T_improvement threshold",
        ),
    )
    # Paper: "system performance is not sensitive to this threshold".
    thpts = [r[1] for r in rows]
    assert max(thpts) / min(thpts) < 1.4
    # The contention is drastic enough that even T=30 still triggers.
    assert all(r[2] == 2 for r in rows)


def test_ablation_hole_filling(benchmark, report):
    """Bridging small holes (reads) turns a holey pattern into large
    sequential requests at the cost of extra data moved."""

    def run():
        # Regions spaced so that whole cache chunks fall in the holes
        # (holes smaller than a chunk are bridged by chunk alignment
        # regardless of the flag).
        cells = [
            ExperimentSpec(
                [JobSpec("h", NPROCS,
                         Hpio(region_count=1536, region_bytes=16 * 1024,
                              region_spacing=112 * 1024),
                         strategy="dualpar-forced")],
                cluster_spec=paper_spec(),
                dualpar_config=DualParConfig(
                    fill_holes=fill, hole_threshold_bytes=128 * 1024
                ),
                label=f"fill={fill}",
            )
            for fill in (True, False)
        ]
        results = run_experiments(cells, jobs=bench_jobs())
        rows = []
        for fill, res in zip((True, False), results):
            extra = res.total_bytes_served / max(res.jobs[0].bytes_read, 1)
            rows.append(["on" if fill else "off", res.jobs[0].throughput_mb_s, extra])
        return rows

    rows = run_once(benchmark, run)
    report(
        "ablation_hole_filling",
        format_table(
            ["hole filling", "throughput MB/s", "bytes served / bytes requested"],
            rows,
            title="Ablation: CRM hole filling on a sparse (16 KB / 112 KB hole) read pattern",
            float_fmt="{:.2f}",
        ),
    )
    on, off = rows[0], rows[1]
    # Hole filling trades extra data moved for larger sequential requests.
    assert on[2] > off[2], "filling must read strictly more data"
    # On this substrate the elevator + readahead already handle the gaps,
    # so the trade does NOT pay off -- an honest negative result (the
    # paper's gain presumes a scheduler that cannot skip holes cheaply).
    # We assert only that the penalty stays bounded.
    assert on[1] > off[1] * 0.75


def test_ablation_list_io(benchmark, report):
    def run():
        from repro import SyntheticPattern

        # A random access order leaves the CRM's per-cycle chunk set
        # scattered: with list I/O each server gets ONE multi-range
        # message, without it every extent is its own RPC.
        cells = [
            ExperimentSpec(
                [JobSpec("r", NPROCS,
                         SyntheticPattern(file_size=64 * 1024 * 1024,
                                          request_bytes=16 * 1024,
                                          pattern="random"),
                         strategy="dualpar-forced")],
                cluster_spec=paper_spec(),
                dualpar_config=DualParConfig(use_list_io=use, fill_holes=False),
                label=f"list_io={use}",
            )
            for use in (True, False)
        ]
        results = run_experiments(cells, jobs=bench_jobs())
        return [
            ["on" if use else "off", res.jobs[0].throughput_mb_s]
            for use, res in zip((True, False), results)
        ]

    rows = run_once(benchmark, run)
    report(
        "ablation_list_io",
        format_table(
            ["list I/O", "throughput MB/s"],
            rows,
            title="Ablation: list I/O packing for CRM batches (noncontig)",
        ),
    )
    # Batched single-message issue should not lose to per-extent RPCs.
    assert rows[0][1] >= rows[1][1] * 0.9


def test_ablation_server_writeback(benchmark, report):
    """Server-side write-back caching (the paper forces a 1 s flush):
    the kernel flusher batches vanilla's scattered writes -- narrowing,
    but not closing, DualPar's write advantage, because DualPar's
    application-level batches are sorted across the WHOLE program."""

    def sustained_mb_s(res):
        """Throughput including draining the server write-back buffers --
        the honest number; without the drain a short write benchmark just
        measures its own RAM."""
        sim = res.runtime.sim
        servers = res.cluster.data_servers

        def dirty():
            return sum(
                ds.writeback.dirty_bytes for ds in servers if ds.writeback is not None
            )

        guard = 0
        while dirty() > 0 and guard < 10_000:
            sim.run(until=sim.now + 0.05)
            guard += 1
        total = sum(j.total_bytes for j in res.jobs)
        return total / 1e6 / sim.now

    def run():
        rows = []
        for wb, label in ((None, "write-through"), (1.0, "write-back 1s")):
            row = [label]
            for strategy in ("vanilla", "dualpar-forced"):
                res = run_experiment(
                    [JobSpec("w", NPROCS,
                             MpiIoTest(file_size=48 * 1024 * 1024, op="W",
                                       barrier_every=4),
                             strategy=strategy)],
                    cluster_spec=paper_spec(
                        server_writeback_interval_s=wb,
                        # Small dirty cap: emulate sustained writes that
                        # cannot hide in server RAM.
                        server_writeback_max_dirty=2 * 1024 * 1024,
                    ),
                )
                row.append(res.jobs[0].throughput_mb_s)
                row.append(sustained_mb_s(res))
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report(
        "ablation_server_writeback",
        format_table(
            ["server cache", "vanilla MB/s", "vanilla sustained",
             "DualPar MB/s", "DualPar sustained"],
            rows,
            title="Ablation: server-side write-back caching (mpi-io-test writes);\n"
            "'sustained' includes draining the server buffers to disk",
        ),
    )
    wt, wb = rows[0], rows[1]
    # The kernel flusher improves vanilla's sustained writes (it sorts
    # and batches what trickled in)...
    assert wb[2] > wt[2] * 1.2
    # ...but application-level batching still at least matches it: the
    # flusher can only sort what fits in server RAM at once.
    assert wb[4] > wb[2] * 0.8
    # Write-through: DualPar dominates (the Fig 3(b) regime).
    assert wt[3] > wt[1]


def test_ablation_ghost_compute(benchmark, report):
    """Ghost computation retained vs stripped at a moderate I/O ratio:
    stripping makes cycles cheaper but is what requires source access and
    slicing in the real world (DualPar retains it on purpose)."""

    def run():
        cells = [
            ExperimentSpec(
                [JobSpec("d", 8,
                         Demo(file_size=24 * 1024 * 1024, segment_bytes=4096,
                              compute_per_call=0.002, nprocs_hint=8),
                         strategy="dualpar-forced")],
                cluster_spec=paper_spec(n_compute_nodes=8),
                dualpar_config=DualParConfig(ghost_compute_factor=factor),
                label=f"ghost={factor:.0%}",
            )
            for factor in (1.0, 0.0)
        ]
        results = run_experiments(cells, jobs=bench_jobs())
        return [
            [f"{factor:.0%}", res.jobs[0].elapsed_s]
            for factor, res in zip((1.0, 0.0), results)
        ]

    rows = run_once(benchmark, run)
    report(
        "ablation_ghost_compute",
        format_table(
            ["ghost compute retained", "execution time (s)"],
            rows,
            title="Ablation: pre-execution computation retained vs sliced away",
            float_fmt="{:.2f}",
        ),
    )
    # Stripping computation can only help wall time (the paper keeps it
    # for prediction fidelity and source-free operation, not speed).
    assert rows[1][1] <= rows[0][1] * 1.05
