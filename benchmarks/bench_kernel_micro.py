"""Kernel microbenchmark: raw event-loop throughput and cell wall time.

Tracks the perf-regression surface of the PR-1 fast path (Timeout pool,
inlined run loop, pre-bound process resume): events/sec through the bare
simulator with the pool on and off, plus the wall time of one small
``run_experiment`` cell.  Results land in paper-style text *and* a
machine-readable ``benchmarks/results/BENCH_kernel.json`` so CI and
later sessions can diff them.

Runnable standalone (no pytest) for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_kernel_micro.py
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro import JobSpec, MpiIoTest, run_experiment
from repro.cluster import paper_spec
from repro.sim.core import Simulator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seed-kernel numbers measured on this container at commit c8e7675
#: (median of repeated runs) -- the "pre-change kernel" reference the
#: speedup figures in BENCH_kernel.json are computed against.
SEED_BASELINE = {
    "events_per_sec": 635_000,
    "vanilla_cell_s": 0.0856,
}


def _timeout_loop(sim, n):
    timeout = sim.timeout
    for _ in range(n):
        yield timeout(1.0)


def _pingpong(sim, store, n, rank):
    for i in range(n):
        yield store.put((rank, i))
        yield store.get()


def measure_events_per_sec(
    n_procs: int = 16, n_iters: int = 20_000, repeats: int = 3, queue=None
) -> float:
    """Best-of-N events/sec through the bare kernel (yield-Timeout loop)."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator() if queue is None else Simulator(queue=queue)
        for _p in range(n_procs):
            sim.process(_timeout_loop(sim, n_iters))
        t0 = time.perf_counter()
        sim.run()
        rate = n_procs * n_iters / (time.perf_counter() - t0)
        best = max(best, rate)
    return best


def measure_queue_ab(repeats: int = 3) -> dict:
    """Heap-vs-calendar A/B on the same workload.

    ``calendar`` is the default discipline (C-accelerated when the
    in-tree extension built); ``calendar_py`` forces the pure-Python
    calendar by passing an explicit instance, which also bypasses the C
    dispatch pump; ``heap`` is the reference binary heap.
    """
    from repro.sim import CalendarQueue

    return {
        "heap": measure_events_per_sec(repeats=repeats, queue="heap"),
        "calendar": measure_events_per_sec(repeats=repeats, queue="calendar"),
        "calendar_py": measure_events_per_sec(repeats=repeats, queue=CalendarQueue()),
    }


def _pow2_bin(x: float) -> str:
    from math import floor, log2

    return f"2^{floor(log2(x))}" if x > 0 else "0"


def measure_queue_histograms(n_events: int = 50_000) -> dict:
    """Queue-depth and inter-cohort-gap histograms over a bursty,
    heavy-tailed schedule (the traffic shape the calendar's lazy width
    adaptation is tuned for).  Justifies the power-of-two sizing rule:
    the gap mass should sit within a few bins of the final slot width.
    """
    from random import Random

    from repro.sim import CalendarQueue
    from repro.sim.core import NORMAL

    rng = Random(20260808)
    q = CalendarQueue()
    depth: dict[str, int] = {}
    gaps: dict[str, int] = {}
    now = 0.0
    pushed = popped = 0
    while popped < n_events:
        while pushed < n_events and (len(q) < 32 or rng.random() < 0.6):
            # Service times spanning microseconds to hours, in bursts.
            dt = rng.expovariate(1.0) * 2.0 ** rng.uniform(-10.0, 8.0)
            q.push(now + dt, NORMAL, pushed)
            pushed += 1
        cohort = q.pop_cohort()
        if cohort is None:
            continue
        t, _prio, events = cohort
        popped += len(events)
        events[:] = [None] * len(events)
        if t > now:
            g = _pow2_bin(t - now)
            gaps[g] = gaps.get(g, 0) + 1
            now = t
        d = _pow2_bin(float(len(q)))
        depth[d] = depth.get(d, 0) + 1

    def _sorted(h: dict) -> dict:
        return dict(sorted(h.items(), key=lambda kv: float(kv[0].replace("2^", "") or 0)))

    return {
        "depth": _sorted(depth),
        "inter_event_gap_s": _sorted(gaps),
        "final_calendar_info": q.info(),
    }


def measure_mixed_events_per_sec(n_procs: int = 16, n_iters: int = 5_000) -> float:
    """Events/sec with Store put/get traffic mixed in (succeed() path)."""
    from repro.sim.resources import Store

    sim = Simulator()
    store = Store(sim)
    for rank in range(n_procs):
        sim.process(_pingpong(sim, store, n_iters, rank))
    t0 = time.perf_counter()
    sim.run()
    # Two events per iteration per process (put + get).
    return 2 * n_procs * n_iters / (time.perf_counter() - t0)


def measure_cell_seconds(repeats: int = 3) -> float:
    """Best-of-N wall time of one small 16-rank vanilla experiment cell."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_experiment(
            [JobSpec("m", 16, MpiIoTest(file_size=16 * 1024 * 1024), strategy="vanilla")],
            cluster_spec=paper_spec(n_compute_nodes=8),
        )
        best = min(best, time.perf_counter() - t0)
    return best


def collect() -> dict:
    pooled = measure_events_per_sec()
    os.environ["REPRO_NO_EVENT_POOL"] = "1"
    try:
        unpooled = measure_events_per_sec(repeats=2)
    finally:
        del os.environ["REPRO_NO_EVENT_POOL"]
    mixed = measure_mixed_events_per_sec()
    cell_s = measure_cell_seconds()
    queue_ab = measure_queue_ab()
    histograms = measure_queue_histograms()
    return {
        "events_per_sec": pooled,
        "events_per_sec_no_pool": unpooled,
        "events_per_sec_mixed": mixed,
        "queue_ab": queue_ab,
        "calendar_vs_heap": queue_ab["calendar"] / queue_ab["heap"],
        "queue_histograms": histograms,
        "vanilla_cell_s": cell_s,
        "cells_per_sec": 1.0 / cell_s,
        "seed_baseline": SEED_BASELINE,
        "speedup_vs_seed": pooled / SEED_BASELINE["events_per_sec"],
        "cell_speedup_vs_seed": SEED_BASELINE["vanilla_cell_s"] / cell_s,
    }


def write_bench_json(payload: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_kernel.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def _rows(data: dict) -> list[list]:
    ab = data["queue_ab"]
    return [
        ["events/sec (pooled)", f"{data['events_per_sec']:,.0f}"],
        ["events/sec (REPRO_NO_EVENT_POOL=1)", f"{data['events_per_sec_no_pool']:,.0f}"],
        ["events/sec (mixed store traffic)", f"{data['events_per_sec_mixed']:,.0f}"],
        ["events/sec (queue=heap)", f"{ab['heap']:,.0f}"],
        ["events/sec (queue=calendar)", f"{ab['calendar']:,.0f}"],
        ["events/sec (queue=calendar, pure python)", f"{ab['calendar_py']:,.0f}"],
        ["calendar vs heap", f"{data['calendar_vs_heap']:.2f}x"],
        ["16-rank vanilla cell (s)", f"{data['vanilla_cell_s']:.4f}"],
        ["speedup vs seed kernel", f"{data['speedup_vs_seed']:.2f}x"],
        ["cell speedup vs seed kernel", f"{data['cell_speedup_vs_seed']:.2f}x"],
    ]


def test_kernel_micro(benchmark, report):
    from conftest import run_once
    from repro import format_table

    data = run_once(benchmark, collect)
    write_bench_json(data)
    report(
        "kernel_micro",
        format_table(
            ["metric", "value"],
            _rows(data),
            title="Kernel microbenchmark (see BENCH_kernel.json)",
        ),
    )
    # Regression guards, kept loose enough for noisy shared hardware:
    # the kernel must still push a healthy event rate, and the pool must
    # never make things slower than the escape-hatch path.
    assert data["events_per_sec"] > 100_000
    assert data["events_per_sec"] > 0.8 * data["events_per_sec_no_pool"]
    assert data["queue_ab"]["heap"] > 100_000
    # The default discipline must never lose badly to the reference heap.
    assert data["calendar_vs_heap"] > 0.8
    assert data["queue_histograms"]["inter_event_gap_s"]


def main() -> int:
    data = collect()
    out = write_bench_json(data)
    for label, value in _rows(data):
        print(f"{label:>38}: {value}")
    print(f"wrote {out}")
    ok = data["events_per_sec"] > 100_000
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
