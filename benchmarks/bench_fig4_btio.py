"""Figure 4: three concurrent BTIO instances, throughput vs process count.

The paper runs three BTIO programs concurrently (each writing its own
solution file) at 16, 64, and 256 processes.  BTIO's per-rank request
size shrinks with the process count (4 bytes at 256 procs in the paper;
scaled here -- see DESIGN.md), so vanilla MPI-IO collapses while
collective I/O and DualPar transform the tiny writes into large ones
(paper: up to 24x and 35x over vanilla).  Collective's edge *shrinks* as
processes grow (its per-call exchange grows with P); DualPar scales
better.
"""

from __future__ import annotations

import pytest

from conftest import bench_jobs, run_once
from repro import Btio, ExperimentSpec, JobSpec, format_table, run_experiments
from repro.cluster import paper_spec

N_INSTANCES = 3
#: Scaled solution size per instance (paper: 6.8 GB; see DESIGN.md).
TOTAL_BYTES = 6 * 1024 * 1024
SCHEMES = ["vanilla", "collective", "dualpar-forced"]
NPROCS_SWEEP = [16, 64, 256]


def make_specs(nprocs: int, scheme: str):
    return [
        JobSpec(
            f"btio{i}",
            nprocs,
            Btio(
                file_name=f"btio{i}.dat",
                total_bytes=TOTAL_BYTES,
                n_steps=2,
                cell_scale=16384,
                op="W",
                compute_per_step=0.002,
                segments_per_call=64,
            ),
            strategy=scheme,
        )
        for i in range(N_INSTANCES)
    ]


def test_fig4_btio_scaling(benchmark, report):
    def run():
        cells = [
            ExperimentSpec(
                make_specs(nprocs, scheme),
                cluster_spec=paper_spec(),
                label=f"P={nprocs}/{scheme}",
            )
            for nprocs in NPROCS_SWEEP
            for scheme in SCHEMES
        ]
        results = run_experiments(cells, jobs=bench_jobs())
        rows = []
        for pi, nprocs in enumerate(NPROCS_SWEEP):
            row = [nprocs]
            for si in range(len(SCHEMES)):
                row.append(results[pi * len(SCHEMES) + si].system_throughput_mb_s)
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report(
        "fig4_btio_scaling",
        format_table(
            ["# processes", "vanilla MPI-IO", "collective I/O", "DualPar"],
            rows,
            title=(
                "Fig 4: system throughput, 3 concurrent BTIO instances (MB/s)\n"
                f"(scaled: {TOTAL_BYTES // 2**20} MB/instance, cell = 16384//P bytes)"
            ),
        ),
    )
    for nprocs, van, coll, dp in rows:
        assert coll > 2 * van, f"P={nprocs}: collective must crush vanilla"
        assert dp > 2 * van, f"P={nprocs}: DualPar must crush vanilla"
    # Vanilla degrades as requests shrink with more processes.
    assert rows[-1][1] < rows[0][1]
    # Collective's advantage over DualPar shrinks with process count
    # (paper: "the performance advantage of collective IO gradually
    # reduced when more processes are used ... DualPar has better
    # scalability").
    ratio_16 = rows[0][3] / rows[0][2]
    ratio_256 = rows[-1][3] / rows[-1][2]
    assert ratio_256 > ratio_16
    # At the largest process count DualPar is at least on par.
    assert rows[-1][3] >= rows[-1][2] * 0.95
