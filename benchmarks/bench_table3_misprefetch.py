"""Table III: worst-case mis-prefetch overhead.

An MPI program whose requested addresses depend on previously read data:
every prefetch the pre-execution generates is wrong.  DualPar detects the
high mis-prefetch ratio and turns the data-driven mode off, so the cost
is a one-time overhead that grows mildly with the cache size (paper:
only 7.2% slower at a 4 MB cache).
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro import DependentReads, DualParConfig, JobSpec, format_table, run_experiment
from repro.cluster import paper_spec

NPROCS = 16
QUOTAS_KB = [512, 1024, 2048, 4096]


def make_workload():
    return DependentReads(file_size=96 * 1024 * 1024, request_bytes=64 * 1024)


def test_table3_misprefetch_overhead(benchmark, report):
    def run():
        base = run_experiment(
            [JobSpec("dep", NPROCS, make_workload(), strategy="vanilla")],
            cluster_spec=paper_spec(n_compute_nodes=16),
        )
        t_vanilla = base.jobs[0].elapsed_s
        rows = [["no DualPar", t_vanilla, 0.0]]
        for kb in QUOTAS_KB:
            res = run_experiment(
                [JobSpec("dep", NPROCS, make_workload(), strategy="dualpar",
                         engine_kwargs=dict(force_mode=None))],
                cluster_spec=paper_spec(n_compute_nodes=16),
                dualpar_config=DualParConfig(
                    quota_bytes=kb * 1024,
                    # Entry pinned open so the adversary actually tricks
                    # DualPar into a wasted cycle, as in the paper's setup.
                    io_ratio_enter=0.0,
                    io_ratio_exit=0.0,
                    t_improvement=1e-9,
                    emc_interval_s=0.1,
                ),
            )
            t = res.jobs[0].elapsed_s
            rows.append([f"{kb} KB", t, (t / t_vanilla - 1.0) * 100.0])
        return rows, t_vanilla

    rows, t_vanilla = run_once(benchmark, run)
    report(
        "table3_misprefetch_overhead",
        format_table(
            ["cache size", "execution time (s)", "overhead vs vanilla (%)"],
            rows,
            title="Table III: worst case (all prefetches wrong), 96 MB dependent reads",
            float_fmt="{:.2f}",
        ),
    )
    # Even at the largest cache the overhead stays bounded (paper: 7.2%
    # at 4 MB; we allow a generous band since substrate constants differ).
    worst = max(r[2] for r in rows[1:])
    assert worst < 30.0, f"worst-case overhead {worst:.1f}% too high"


def test_table3_mode_disabled_after_detection(benchmark, report):
    """The 'one-time overhead' claim: DualPar locks the mode out."""

    def run():
        res = run_experiment(
            [JobSpec("dep", NPROCS, make_workload(), strategy="dualpar",
                     engine_kwargs=dict(force_mode=None))],
            cluster_spec=paper_spec(n_compute_nodes=16),
            dualpar_config=DualParConfig(
                io_ratio_enter=0.0, io_ratio_exit=0.0,
                t_improvement=1e-9, emc_interval_s=0.1,
            ),
        )
        eng = res.mpi_jobs[0].engine
        return {
            "cycles": eng.pec.n_cycles,
            "locked_out": eng.locked_out,
            "history": eng.pec.misprefetch_history,
        }

    out = run_once(benchmark, run)
    report(
        "table3_lockout",
        f"prefetch cycles before lockout: {out['cycles']}\n"
        f"locked out: {out['locked_out']}\n"
        f"mis-prefetch ratios per cycle: {out['history']}",
    )
    if out["cycles"] >= 2:
        assert out["locked_out"]
        assert out["cycles"] < 10, "lockout must happen within a few cycles"
