"""Randomized-chaos soak cell: guard + watchdog + sanitizer, seeded.

Runs a sequence of guarded experiment cells, each with a *randomized*
fault schedule drawn from a pinned seed (``--seed``), the runtime
SimSanitizer armed, and the full safety governor attached (budgets,
benefit governor, circuit breaker, stall watchdog).  The run **fails**
when any cell produces

- a watchdog **deadlock** report (every foreground process stalled), or
- a sanitizer finding (raised as ``SanitizerError``), or
- a cell that does not complete within its simulated-time limit.

Watchdog ``stall`` reports are informational: long fault windows
legitimately block processes for a while.  To keep deadlock detection
meaningful the generated fault windows are always shorter than the
watchdog's ``stall_window_s`` (see docs/degradation.md, "tuning the
watchdog").

Everything is deterministic per seed; the wall-clock budget only bounds
how many of the planned cells actually run in CI.  Artifacts (guard
summaries, transitions, metrics snapshots) land in ``--out-dir``.

Usage::

    PYTHONPATH=src python benchmarks/soak.py --seed 0 --cells 6 \
        --budget-s 240 --out-dir soak-out
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import sys
import time

os.environ.setdefault("REPRO_SANITIZE", "1")

from repro import JobSpec, run_experiment  # noqa: E402
from repro.cluster import paper_spec  # noqa: E402
from repro.core.config import DualParConfig  # noqa: E402
from repro.faults import FaultEvent, FaultPlan, RetryPolicy  # noqa: E402
from repro.guard import GuardConfig  # noqa: E402
from repro.obs import Observability, write_metrics  # noqa: E402
from repro.workloads import Demo, DependentReads, MpiIoTest  # noqa: E402

#: Watchdog window for the soak; every generated fault window stays
#: shorter, so only a genuine deadlock can ever report as one.
STALL_WINDOW_S = 8.0
MAX_FAULT_WINDOW_S = 3.0
LIMIT_S = 600.0

WORKLOADS = [
    ("mpi-io-test", lambda mb: MpiIoTest(file_size=mb << 20), "dualpar"),
    ("demo", lambda mb: Demo(file_size=mb << 20, nprocs_hint=8), "dualpar-forced"),
    ("dependent", lambda mb: DependentReads(file_size=mb << 20), "dualpar-forced"),
]


def random_plan(rng: random.Random, n_servers: int, n_compute: int) -> FaultPlan:
    """A small randomized fault schedule with soak-safe windows."""
    events = []
    for _ in range(rng.randint(1, 4)):
        at = rng.uniform(0.05, 6.0)
        window = rng.uniform(0.5, MAX_FAULT_WINDOW_S)
        kind = rng.choice(
            ["disk_failslow", "server_crash", "net_degrade", "cache_evict"]
        )
        if kind == "disk_failslow":
            events.append(
                FaultEvent(
                    kind=kind,
                    at_s=at,
                    until_s=at + window,
                    target=rng.randrange(n_servers),
                    transfer_factor=rng.uniform(2.0, 8.0),
                    extra_seek_s=rng.uniform(0.0, 0.003),
                )
            )
        elif kind == "server_crash":
            events.append(
                FaultEvent(
                    kind=kind,
                    at_s=at,
                    until_s=at + window,
                    target=rng.randrange(n_servers),
                )
            )
        elif kind == "net_degrade":
            events.append(
                FaultEvent(
                    kind=kind,
                    at_s=at,
                    until_s=at + window,
                    extra_latency_s=rng.uniform(1e-4, 2e-3),
                    jitter_s=rng.uniform(0.0, 1e-3),
                )
            )
        else:  # cache_evict
            events.append(
                FaultEvent(
                    kind=kind,
                    at_s=at,
                    until_s=at + window,
                    target=rng.randrange(n_compute),
                )
            )
    events.sort(key=lambda ev: ev.at_s)
    return FaultPlan(
        seed=rng.randrange(1 << 30),
        events=tuple(events),
        retry=RetryPolicy(backoff_jitter="full"),
    )


def run_cell(index: int, rng: random.Random, out_dir: pathlib.Path) -> list[str]:
    """Run one soak cell; return a list of failure descriptions."""
    name, build, strategy = WORKLOADS[index % len(WORKLOADS)]
    size_mb = rng.choice([8, 16, 32])
    nprocs = rng.choice([4, 8])
    spec = paper_spec(n_compute_nodes=8, n_data_servers=4)
    plan = random_plan(rng, n_servers=4, n_compute=8)
    observe = Observability()
    result = run_experiment(
        [JobSpec(name, nprocs, build(size_mb), strategy=strategy)],
        cluster_spec=spec,
        dualpar_config=DualParConfig(quota_bytes=256 * 1024),
        observe=observe,
        fault_plan=plan,
        guard=GuardConfig(stall_window_s=STALL_WINDOW_S),
        limit_s=LIMIT_S,
    )
    failures = []
    job = result.mpi_jobs[0]
    if not job.done.triggered:
        failures.append(f"cell {index}: job did not finish within {LIMIT_S}s sim time")
    watchdog = result.guard.watchdog
    for report in watchdog.deadlocks:
        failures.append(f"cell {index}: watchdog deadlock\n{report.render()}")
    artifact = {
        "cell": index,
        "workload": name,
        "strategy": strategy,
        "nprocs": nprocs,
        "size_mb": size_mb,
        "fault_plan": plan.to_dict(),
        "makespan_s": result.makespan_s,
        "guard": result.guard.summary(),
        "guard_transitions": result.guard.transitions,
        "watchdog_reports": [
            {"time": r.time, "kind": r.kind, "table": r.render()}
            for r in watchdog.reports
        ],
    }
    (out_dir / f"cell{index}.json").write_text(json.dumps(artifact, indent=2) + "\n")
    write_metrics(out_dir / f"cell{index}-metrics.json", result.metrics)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="randomized-chaos soak run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cells", type=int, default=6)
    parser.add_argument(
        "--budget-s",
        type=float,
        default=240.0,
        help="wall-clock budget; stops launching new cells once exceeded",
    )
    parser.add_argument("--out-dir", default="soak-out")
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    rng = random.Random(args.seed)
    started = time.monotonic()
    failures: list[str] = []
    ran = 0
    for i in range(args.cells):
        if time.monotonic() - started > args.budget_s:
            print(f"soak: wall budget reached after {ran} cells; stopping early")
            break
        cell_failures = run_cell(i, rng, out_dir)
        failures.extend(cell_failures)
        ran += 1
        status = "FAIL" if cell_failures else "ok"
        print(f"soak: cell {i} {status} ({time.monotonic() - started:.1f}s elapsed)")
    summary = {
        "seed": args.seed,
        "cells_planned": args.cells,
        "cells_ran": ran,
        "failures": failures,
    }
    (out_dir / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"soak: {len(failures)} failure(s) across {ran} cells", file=sys.stderr)
        return 1
    print(f"soak: {ran} cells clean (seed {args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
