"""Figure 5: three concurrent S3asim instances, I/O time vs query count.

Sequence-similarity search with 16 database fragments; load scales with
the number of queries.  S3asim's requests are much larger than BTIO's,
so the paper's DualPar margin is smaller here: total I/O times lower
than vanilla/collective by up to ~25%, ~17% on average.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro import JobSpec, S3asim, format_table, run_experiment
from repro.cluster import paper_spec

N_INSTANCES = 3
NPROCS = 32
SCHEMES = ["vanilla", "collective", "dualpar-forced"]
QUERY_SWEEP = [16, 24, 32]


def make_specs(n_queries: int, scheme: str):
    return [
        JobSpec(
            f"s3asim{i}",
            NPROCS,
            S3asim(
                db_file=f"s3adb{i}.dat",
                out_file=f"s3aout{i}.dat",
                n_fragments=16,
                n_queries=n_queries,
                db_bytes=48 * 1024 * 1024,
                min_seq_bytes=64 * 1024,
                max_seq_bytes=384 * 1024,
                result_bytes=32 * 1024,
                compute_per_query=0.002,
                out_region_bytes=2 * 1024 * 1024,
                seed=11 + i,
            ),
            strategy=scheme,
        )
        for i in range(N_INSTANCES)
    ]


def test_fig5_s3asim_io_times(benchmark, report):
    def run():
        rows = []
        for nq in QUERY_SWEEP:
            row = [nq]
            for scheme in SCHEMES:
                res = run_experiment(make_specs(nq, scheme), cluster_spec=paper_spec())
                # The paper reports the programs' total I/O times.
                row.append(res.makespan_s)
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report(
        "fig5_s3asim_io_times",
        format_table(
            ["# queries", "vanilla MPI-IO (s)", "collective I/O (s)", "DualPar (s)"],
            rows,
            title="Fig 5: execution time, 3 concurrent S3asim instances",
            float_fmt="{:.2f}",
        ),
    )
    # DualPar is fastest at every query count, by a modest margin
    # (paper: <=25%, average ~17% -- requests are large here).
    for nq, van, coll, dp in rows:
        best_other = min(van, coll)
        assert dp < best_other, f"q={nq}: DualPar should lead"
        assert dp > best_other * 0.5, f"q={nq}: margin should be modest"
    # Time grows with query count for every scheme.
    for col in (1, 2, 3):
        assert rows[-1][col] > rows[0][col]
