PYTHON ?= python
NPROC ?= $(shell nproc 2>/dev/null || echo 1)

.PHONY: install test test-fast test-heap test-pdes coverage lint lint-fast own own-map sanitize chaos soak serve-smoke bench bench-fast bench-kernel bench-gate bench-pdes pdes-gate ci-local examples results clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Tier-1 tests fanned out with pytest-xdist when available (dev extra);
# falls back to the serial run otherwise.
test-fast:
	@$(PYTHON) -c "import xdist" 2>/dev/null \
		&& $(PYTHON) -m pytest tests/ -n $(NPROC) -q \
		|| { echo "pytest-xdist not installed; running serially"; \
		     $(PYTHON) -m pytest tests/ -q; }

# Tier-1 suite on the reference binary-heap event queue (the CI matrix
# runs the same leg; the default discipline is the calendar queue).
test-heap:
	REPRO_EVENT_QUEUE=heap $(PYTHON) -m pytest tests/ -q

# Determinism lint (simlint, stdlib-only, always runs) plus ruff and mypy
# when the dev extra is installed; absent tools are skipped, not failures.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src tests benchmarks \
		|| echo "ruff not installed; skipping"
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy \
		|| echo "mypy not installed; skipping"

# Lint only the files changed vs the git merge-base (full tree outside
# a repository) -- the pre-push inner loop.
lint-fast:
	PYTHONPATH=src $(PYTHON) -m repro lint --changed

# simown state-ownership gate: fails on unannotated shared-hazard
# findings (see docs/static_analysis.md).
own:
	PYTHONPATH=src $(PYTHON) -m repro ownership --check

own-map:
	PYTHONPATH=src $(PYTHON) -m repro ownership --out docs/partition_map.json

# Tier-1 tests under coverage (pytest-cov, dev extra); CI fails below
# 80% line coverage of the repro package.  Skipped when uninstalled.
coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null \
		&& $(PYTHON) -m pytest tests/ -q --cov=repro --cov-report=term \
		   --cov-report=xml --cov-fail-under=80 \
		|| echo "pytest-cov not installed; skipping"

# Tier-1 determinism suite with the runtime sim-sanitizer armed.
sanitize:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest tests/test_determinism.py tests/test_sanitizer.py -q

# Fault-injection unit + chaos/property suites with a pinned Hypothesis
# seed (same invocation as the CI chaos job).
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -q --hypothesis-seed=0 \
		tests/test_faults.py tests/test_chaos_scenarios.py tests/test_sanitizer.py

# Long randomized-chaos soak at a pinned seed: guard + watchdog +
# sanitizer armed; fails on watchdog deadlock or sanitizer finding.
soak:
	PYTHONPATH=src $(PYTHON) benchmarks/soak.py --seed 0 --cells 12 \
		--budget-s 240 --out-dir soak-out

# Service smoke: real `repro serve` subprocess, 8 submissions (2 dups)
# from 2 client processes, 6 catalog entries + dedup hits + bit-identity
# vs direct runs, SIGTERM drain (same invocation as the CI service job).
serve-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/serve_smoke.py \
		--out-dir serve-smoke-out

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Benchmark grids with process fan-out across all CPUs and the on-disk
# result cache enabled: a warm re-run only recomputes changed cells.
# The kernel-micro table includes the heap-vs-calendar queue A/B rows.
bench-fast:
	BENCH_JOBS=$(NPROC) $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Standalone kernel microbench; prints both event-queue variants and
# rewrites benchmarks/results/BENCH_kernel.json.
bench-kernel:
	$(PYTHON) benchmarks/bench_kernel_micro.py

# Kernel-bench regression gate: fails when events/sec drops more than
# 25% below benchmarks/results/BENCH_kernel.baseline.json.
bench-gate:
	$(PYTHON) benchmarks/check_regression.py

# PDES unit/property/determinism suite (conservative parallel DES).
test-pdes:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_pdes.py -q

# PDES speedup bench: sharded cell at 1/2/4/8 workers vs serial;
# writes benchmarks/out/BENCH_pdes.json (PROFILE=ci for the small cell).
PROFILE ?= full
bench-pdes:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pdes.py --profile $(PROFILE)

# PDES regression gate: runs the ci-profile bench and fails when the
# serial rate or any worker leg's speedup drops >25% vs
# benchmarks/results/BENCH_pdes.baseline.json.
pdes-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/check_pdes.py

# Replay the CI gates locally: lint legs, tier-1 tests, the determinism
# jobs' suites, the pdes worker-count matrix, and both bench gates.
ci-local: lint own
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_determinism.py tests/test_parallel_runner.py
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_determinism.py tests/test_sanitizer.py
	REPRO_SANITIZE_OWNERSHIP=1 PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_determinism.py tests/test_ownership.py
	for w in 1 2 4 8; do \
		REPRO_SIM_WORKERS=$$w PYTHONPATH=src $(PYTHON) -m repro pdes --verify || exit 1; \
	done
	REPRO_SANITIZE_OWNERSHIP=1 REPRO_SIM_WORKERS=2 PYTHONPATH=src $(PYTHON) -m repro pdes --verify
	$(PYTHON) benchmarks/check_regression.py
	PYTHONPATH=src $(PYTHON) benchmarks/check_pdes.py

# Regenerate the archived outputs referenced by EXPERIMENTS.md.
results:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .pytest_cache .benchmarks .bench_cache soak-out serve-smoke-out \
		.service_catalog src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
