PYTHON ?= python

.PHONY: install test bench examples results clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate the archived outputs referenced by EXPERIMENTS.md.
results:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
