"""Mechanical hard-disk model.

The paper's entire effect rests on one hardware property: a 7200-RPM disk
serves sequential requests more than an order of magnitude faster than
random ones, and the ratio is governed by *where* the head must move between
consecutively-serviced requests.  This package models exactly that:

- :class:`DiskGeometry` -- maps logical block numbers (LBNs, 512-byte
  sectors) to cylinders and rotational positions.
- :class:`SeekModel` -- seek time as a function of cylinder distance,
  calibrated by (track-to-track, average, full-stroke) times.
- :class:`DiskDrive` -- serves one request at a time: seek + rotational
  latency + media transfer; tracks head position and per-request seek
  distance in sectors (the paper's ``SeekDist`` metric).
- :class:`RaidArray` -- RAID-0/1 of member drives (the Darwin nodes used a
  two-drive hardware RAID).
- :class:`DriveStats` -- seek-distance and utilisation accounting used by
  DualPar's data-server locality daemon.
"""

from repro.disk.drive import BlockDevice, DiskDrive, DiskParams
from repro.disk.geometry import DiskGeometry
from repro.disk.raid import RaidArray
from repro.disk.seek import SeekModel
from repro.disk.stats import DriveStats

__all__ = [
    "BlockDevice",
    "DiskDrive",
    "DiskGeometry",
    "DiskParams",
    "DriveStats",
    "RaidArray",
    "SeekModel",
]
