"""Seek-time model.

Seek time as a function of cylinder distance ``d`` follows the standard
two-regime curve used by disk simulators: acceleration-limited (~sqrt(d))
for short seeks, coast-limited (~linear in d) for long seeks.  We fit

    seek(d) = t_track + alpha * sqrt(d - 1) + beta * (d - 1),   d >= 1
    seek(0) = 0

to three published datasheet numbers: track-to-track time, average seek
time (which for uniformly random request pairs occurs at distance ~C/3),
and full-stroke time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SeekModel"]


@dataclass(frozen=True)
class SeekModel:
    """Seek time curve calibrated from datasheet timings (seconds)."""

    n_cylinders: int
    track_to_track_s: float = 0.0008
    average_s: float = 0.008
    full_stroke_s: float = 0.016

    def __post_init__(self) -> None:
        if self.n_cylinders < 2:
            raise ValueError("need at least 2 cylinders for a seek model")
        if not (0 < self.track_to_track_s <= self.average_s <= self.full_stroke_s):
            raise ValueError(
                "expected 0 < track_to_track <= average <= full_stroke, got "
                f"{self.track_to_track_s}, {self.average_s}, {self.full_stroke_s}"
            )
        # Solve t_track + a*sqrt(x) + b*x = target at the two anchor points
        # x_avg = C/3 - 1 and x_max = C - 1 (x = d - 1).
        c = float(self.n_cylinders)
        x_avg = max(c / 3.0 - 1.0, 1.0)
        x_max = max(c - 1.0, 2.0)
        y_avg = self.average_s - self.track_to_track_s
        y_max = self.full_stroke_s - self.track_to_track_s
        s_avg, s_max = math.sqrt(x_avg), math.sqrt(x_max)
        det = s_avg * x_max - s_max * x_avg
        alpha = (y_avg * x_max - y_max * x_avg) / det
        beta = (s_avg * y_max - s_max * y_avg) / det
        object.__setattr__(self, "_alpha", alpha)
        object.__setattr__(self, "_beta", beta)

    def seek_time(self, distance_cylinders: int) -> float:
        """Seconds to move the head ``distance_cylinders`` cylinders."""
        d = abs(int(distance_cylinders))
        if d == 0:
            return 0.0
        x = d - 1
        t = self.track_to_track_s + self._alpha * math.sqrt(x) + self._beta * x
        # The fitted quadratic-in-sqrt can dip slightly below the
        # track-to-track floor for tiny distances; clamp.
        return max(t, self.track_to_track_s)
