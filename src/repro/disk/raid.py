"""RAID array of member drives (the Darwin nodes had 2-drive hardware RAID).

- RAID-0: chunks striped round-robin across members; a request touching
  several members is serviced by them in parallel, completing when the
  slowest member finishes.
- RAID-1: reads go to one member (chosen by chunk for determinism and
  spindle balance); writes go to all members in parallel.

The array exposes the :class:`~repro.disk.drive.BlockDevice` protocol so
the block layer is agnostic to whether it drives a single spindle or an
array.  Array stats aggregate bytes/requests at the array level; per-member
mechanical stats remain on the members.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.disk.drive import DiskDrive
from repro.disk.stats import DriveStats, SeekSample
from repro.sim import Simulator, all_of

__all__ = ["RaidArray"]


class RaidArray:
    """RAID-0 or RAID-1 over identical member drives."""

    def __init__(
        self,
        sim: Simulator,
        members: Sequence[DiskDrive],
        level: int = 0,
        chunk_sectors: int = 128,
        name: str = "raid0",
    ):
        if not members:
            raise ValueError("RAID needs at least one member drive")
        if level not in (0, 1):
            raise ValueError(f"unsupported RAID level {level}")
        if chunk_sectors <= 0:
            raise ValueError("chunk_sectors must be positive")
        sizes = {m.total_sectors for m in members}
        if len(sizes) > 1:
            raise ValueError("RAID members must be identical in size")
        self.sim = sim
        self.members = list(members)
        self.level = level
        self.chunk_sectors = chunk_sectors
        self.name = name
        self.stats = DriveStats()
        # One service process per member at a time.
        self._member_busy = [False] * len(members)

    @property
    def total_sectors(self) -> int:
        per = self.members[0].total_sectors
        return per * len(self.members) if self.level == 0 else per

    # ------------------------------------------------------------------

    def _split(self, lbn: int, nsectors: int) -> list[tuple[int, int, int]]:
        """Map an array request to (member, member_lbn, nsectors) pieces.

        Contiguous pieces landing on the same member are coalesced so each
        member sees at most a few large requests, mirroring what a real
        RAID controller issues.
        """
        n_mem = len(self.members)
        if self.level == 1:
            member = (lbn // self.chunk_sectors) % n_mem
            return [(member, lbn, nsectors)]
        pieces: dict[int, list[tuple[int, int]]] = {}
        pos = lbn
        remaining = nsectors
        while remaining > 0:
            chunk_idx = pos // self.chunk_sectors
            member = chunk_idx % n_mem
            member_chunk = chunk_idx // n_mem
            offset_in_chunk = pos % self.chunk_sectors
            take = min(self.chunk_sectors - offset_in_chunk, remaining)
            member_lbn = member_chunk * self.chunk_sectors + offset_in_chunk
            runs = pieces.setdefault(member, [])
            if runs and runs[-1][0] + runs[-1][1] == member_lbn:
                runs[-1] = (runs[-1][0], runs[-1][1] + take)
            else:
                runs.append((member_lbn, take))
            pos += take
            remaining -= take
        return [(m, mlbn, n) for m, runs in sorted(pieces.items()) for mlbn, n in runs]

    def _member_service(self, member: int, mlbn: int, n: int, op: str) -> Generator:
        if self._member_busy[member]:
            raise RuntimeError(f"{self.name}: member {member} already busy")
        self._member_busy[member] = True
        try:
            yield from self.members[member].service(mlbn, n, op)
        finally:
            self._member_busy[member] = False

    def service(self, lbn: int, nsectors: int, op: str = "R") -> Generator:
        """Serve one array request, fanning out to members in parallel."""
        if lbn + nsectors > self.total_sectors:
            raise ValueError("request beyond array end")
        start = self.sim.now
        if self.level == 1 and op == "W":
            procs = [
                self.sim.process(self._member_service(m, lbn, nsectors, op))
                for m in range(len(self.members))
            ]
        else:
            pieces = self._split(lbn, nsectors)
            procs = [
                self.sim.process(self._member_service(m, mlbn, n, op))
                for m, mlbn, n in pieces
            ]
        yield all_of(self.sim, procs)
        self.stats.record(
            SeekSample(
                time=start,
                lbn=lbn,
                nsectors=nsectors,
                seek_sectors=0,
                service_time=self.sim.now - start,
                op=op,
            )
        )
