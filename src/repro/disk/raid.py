"""RAID array of member drives (the Darwin nodes had 2-drive hardware RAID).

- RAID-0: chunks striped round-robin across members; a request touching
  several members is serviced by them in parallel, completing when the
  slowest member finishes.
- RAID-1: reads go to one member (chosen by chunk for determinism and
  spindle balance); writes go to all members in parallel.

The array exposes the :class:`~repro.disk.drive.BlockDevice` protocol so
the block layer is agnostic to whether it drives a single spindle or an
array.  Array stats aggregate bytes/requests at the array level; per-member
mechanical stats remain on the members.

RAID-1 degradation (driven by the fault injector): a failed member takes
no traffic; reads fail over to the next in-sync mirror; writes fan out to
the surviving members only.  On repair the member returns for *writes*
immediately but stays read-stale until a paced rebuild daemon has copied
it back from a surviving mirror -- rebuild traffic contends with
foreground service on the member spindles, which is precisely the
degraded-mode cost the fault suite measures.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.disk.drive import DiskDrive
from repro.disk.stats import DriveStats, SeekSample
from repro.sim import Process, Simulator, all_of

__all__ = ["RaidArray"]

#: Sectors copied per rebuild step (1 MiB): large enough to stream,
#: small enough that pacing and foreground interleave are visible.
_REBUILD_STEP_SECTORS = 2048


class RaidArray:
    """RAID-0 or RAID-1 over identical member drives."""

    def __init__(
        self,
        sim: Simulator,
        members: Sequence[DiskDrive],
        level: int = 0,
        chunk_sectors: int = 128,
        name: str = "raid0",
    ):
        if not members:
            raise ValueError("RAID needs at least one member drive")
        if level not in (0, 1):
            raise ValueError(f"unsupported RAID level {level}")
        if chunk_sectors <= 0:
            raise ValueError("chunk_sectors must be positive")
        sizes = {m.total_sectors for m in members}
        if len(sizes) > 1:
            raise ValueError("RAID members must be identical in size")
        self.sim = sim
        self.members = list(members)
        self.level = level
        self.chunk_sectors = chunk_sectors
        self.name = name
        self.stats = DriveStats()
        # One service process per member at a time.
        self._member_busy = [False] * len(members)
        # Mirror degradation state (RAID-1 only; all-False nominally).
        self._member_failed = [False] * len(members)
        # Repaired but not yet resynced: takes writes, serves no reads.
        self._member_stale = [False] * len(members)
        self._n_rebuilding = 0
        self.n_member_failures = 0
        self.n_rebuilds = 0
        self.n_degraded_reads = 0
        self.rebuilt_bytes = 0
        #: When set (tests), every RAID-1 read appends (lbn, member).
        self.read_targets: Optional[list[tuple[int, int]]] = None

    @property
    def total_sectors(self) -> int:
        per = self.members[0].total_sectors
        return per * len(self.members) if self.level == 0 else per

    # ------------------------------------------------------------------

    def _split(self, lbn: int, nsectors: int) -> list[tuple[int, int, int]]:
        """Map an array request to (member, member_lbn, nsectors) pieces.

        Contiguous pieces landing on the same member are coalesced so each
        member sees at most a few large requests, mirroring what a real
        RAID controller issues.
        """
        n_mem = len(self.members)
        if self.level == 1:
            member = self._read_member(lbn)
            return [(member, lbn, nsectors)]
        pieces: dict[int, list[tuple[int, int]]] = {}
        pos = lbn
        remaining = nsectors
        while remaining > 0:
            chunk_idx = pos // self.chunk_sectors
            member = chunk_idx % n_mem
            member_chunk = chunk_idx // n_mem
            offset_in_chunk = pos % self.chunk_sectors
            take = min(self.chunk_sectors - offset_in_chunk, remaining)
            member_lbn = member_chunk * self.chunk_sectors + offset_in_chunk
            runs = pieces.setdefault(member, [])
            if runs and runs[-1][0] + runs[-1][1] == member_lbn:
                runs[-1] = (runs[-1][0], runs[-1][1] + take)
            else:
                runs.append((member_lbn, take))
            pos += take
            remaining -= take
        return [(m, mlbn, n) for m, runs in sorted(pieces.items()) for mlbn, n in runs]

    def _read_member(self, lbn: int) -> int:
        """Preferred mirror for a RAID-1 read, failing over past members
        that are failed or still stale from an unfinished rebuild."""
        n_mem = len(self.members)
        preferred = (lbn // self.chunk_sectors) % n_mem
        for k in range(n_mem):
            m = (preferred + k) % n_mem
            if not self._member_failed[m] and not self._member_stale[m]:
                if k > 0:
                    self.n_degraded_reads += 1
                return m
        raise RuntimeError(f"{self.name}: no in-sync mirror left to read from")

    def _member_service(self, member: int, mlbn: int, n: int, op: str) -> Generator:
        if self._member_busy[member]:
            if self._n_rebuilding == 0:
                # Nominally the block layer serializes per device, so a
                # busy member is a caller bug.
                raise RuntimeError(f"{self.name}: member {member} already busy")
            # Rebuild traffic legitimately contends with foreground
            # service; poll at half-revolution granularity (deterministic,
            # and coarse enough not to flood the schedule).
            while self._member_busy[member]:
                yield self.sim.timeout(self.members[member].params.revolution_s / 2)
        self._member_busy[member] = True
        try:
            yield from self.members[member].service(mlbn, n, op)
        finally:
            self._member_busy[member] = False

    def service(self, lbn: int, nsectors: int, op: str = "R") -> Generator:
        """Serve one array request, fanning out to members in parallel."""
        if lbn + nsectors > self.total_sectors:
            raise ValueError("request beyond array end")
        start = self.sim.now
        if self.level == 1 and op == "W":
            procs = [
                self.sim.process(self._member_service(m, lbn, nsectors, op))
                for m in range(len(self.members))
                if not self._member_failed[m]
            ]
        else:
            pieces = self._split(lbn, nsectors)
            if self.level == 1 and self.read_targets is not None:
                for m, _mlbn, _n in pieces:
                    self.read_targets.append((lbn, m))
            procs = [
                self.sim.process(self._member_service(m, mlbn, n, op))
                for m, mlbn, n in pieces
            ]
        yield all_of(self.sim, procs)
        self.stats.record(
            SeekSample(
                time=start,
                lbn=lbn,
                nsectors=nsectors,
                seek_sectors=0,
                service_time=self.sim.now - start,
                op=op,
            )
        )

    # -- mirror faults (RAID-1) -----------------------------------------

    def fail_member(self, member: int) -> None:
        """Drop one mirror out of the array (fault-injector entry point)."""
        if self.level != 1:
            raise ValueError(f"{self.name}: member faults need RAID-1")
        if self._member_failed[member]:
            raise ValueError(f"{self.name}: member {member} already failed")
        survivors = [
            i
            for i in range(len(self.members))
            if i != member and not self._member_failed[i] and not self._member_stale[i]
        ]
        if not survivors:
            raise ValueError(f"{self.name}: cannot fail the last in-sync mirror")
        self._member_failed[member] = True
        # Whatever happens on the array while it is out, it misses.
        self._member_stale[member] = True
        self.n_member_failures += 1

    def repair_member(
        self,
        member: int,
        rebuild_rate_bytes_s: float = 40e6,
        rebuild_bytes: Optional[int] = None,
    ) -> Process:
        """Return a failed member to service and start its rebuild.

        The member accepts writes immediately (so it does not fall further
        behind) but stays read-stale until the rebuild daemon has copied
        it back from an in-sync mirror.  ``rebuild_rate_bytes_s`` paces
        the copy (md's ``speed_limit_max``); ``rebuild_bytes`` caps the
        resynced region (bitmap-style partial resync), defaulting to the
        whole member.
        """
        if not self._member_failed[member]:
            raise ValueError(f"{self.name}: member {member} is not failed")
        if rebuild_rate_bytes_s <= 0:
            raise ValueError("rebuild_rate_bytes_s must be > 0")
        self._member_failed[member] = False
        self._n_rebuilding += 1
        return self.sim.process(
            self._rebuild(member, rebuild_rate_bytes_s, rebuild_bytes),
            name=f"{self.name}-rebuild{member}",
            daemon=True,
        )

    def _rebuild_source(self, member: int) -> int:
        for i in range(len(self.members)):
            if i != member and not self._member_failed[i] and not self._member_stale[i]:
                return i
        raise RuntimeError(f"{self.name}: no in-sync mirror to rebuild from")

    def _rebuild(
        self, member: int, rate_bytes_s: float, limit_bytes: Optional[int]
    ) -> Generator:
        total = self.members[member].total_sectors
        if limit_bytes is not None:
            total = min(total, -(-int(limit_bytes) // 512))
        pos = 0
        while pos < total:
            n = min(_REBUILD_STEP_SECTORS, total - pos)
            src = self._rebuild_source(member)
            yield from self._member_service(src, pos, n, "R")
            yield from self._member_service(member, pos, n, "W")
            self.rebuilt_bytes += n * 512
            # Pace to the configured rebuild rate on top of the media time.
            yield self.sim.timeout(n * 512 / rate_bytes_s)
            pos += n
        self._member_stale[member] = False
        self._n_rebuilding -= 1
        self.n_rebuilds += 1
