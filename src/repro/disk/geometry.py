"""Disk geometry: LBN to cylinder / rotational-position mapping.

The default model is fixed-geometry (every track holds the same number of
sectors): none of the paper's effects depend on zoning, and a fixed
geometry keeps the model analytically checkable.  An optional *zoned*
geometry (``n_zones > 1``) models ZBR: outer zones hold more sectors per
track, so the sustained transfer rate falls from the outer diameter to
the inner one (typically ~2x), and LBN-to-cylinder mapping becomes
piecewise.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = ["DiskGeometry", "SECTOR_BYTES"]

#: Bytes per sector, the unit LBNs address.
SECTOR_BYTES = 512


@dataclass(frozen=True)
class DiskGeometry:
    """Disk geometry, fixed or zoned.

    Parameters
    ----------
    total_sectors:
        Capacity of the drive in 512-byte sectors.
    sectors_per_track:
        Sectors per revolution in the OUTERMOST zone (cylinder 0 side).
    heads:
        Tracks per cylinder (number of platter surfaces).
    n_zones:
        Number of recording zones.  1 (default) = fixed geometry.
    inner_track_ratio:
        sectors-per-track of the innermost zone relative to the
        outermost (ZBR drives: ~0.5).
    """

    total_sectors: int
    sectors_per_track: int = 1200
    heads: int = 4
    n_zones: int = 1
    inner_track_ratio: float = 0.5
    sectors_per_cylinder: int = field(init=False)
    n_cylinders: int = field(init=False)
    #: Per zone: (first_lbn, first_cylinder, sectors_per_track, n_cylinders)
    _zones: tuple = field(init=False)
    _zone_starts: tuple = field(init=False)

    def __post_init__(self) -> None:
        if self.total_sectors <= 0:
            raise ValueError("total_sectors must be positive")
        if self.sectors_per_track <= 0 or self.heads <= 0:
            raise ValueError("sectors_per_track and heads must be positive")
        if self.n_zones < 1:
            raise ValueError("n_zones must be >= 1")
        if not 0 < self.inner_track_ratio <= 1:
            raise ValueError("inner_track_ratio must be in (0, 1]")
        # Zone sectors-per-track interpolate linearly outer -> inner.
        spts = []
        for z in range(self.n_zones):
            frac = z / max(self.n_zones - 1, 1)
            spt = round(
                self.sectors_per_track
                * (1.0 - frac * (1.0 - self.inner_track_ratio))
            )
            spts.append(max(spt, 1))
        # Capacity split evenly by sectors across zones; cylinders follow.
        per_zone = self.total_sectors // self.n_zones
        zones = []
        lbn = 0
        cyl = 0
        for z, spt in enumerate(spts):
            zone_sectors = (
                self.total_sectors - lbn if z == self.n_zones - 1 else per_zone
            )
            spc = spt * self.heads
            n_cyl = -(-zone_sectors // spc)
            zones.append((lbn, cyl, spt, n_cyl))
            lbn += zone_sectors
            cyl += n_cyl
        object.__setattr__(self, "_zones", tuple(zones))
        object.__setattr__(self, "_zone_starts", tuple(z[0] for z in zones))
        object.__setattr__(
            self, "sectors_per_cylinder", self.sectors_per_track * self.heads
        )
        object.__setattr__(self, "n_cylinders", cyl)

    @classmethod
    def from_capacity(
        cls,
        capacity_bytes: int,
        sectors_per_track: int = 1200,
        heads: int = 4,
        n_zones: int = 1,
        inner_track_ratio: float = 0.5,
    ) -> "DiskGeometry":
        """Build a geometry holding at least ``capacity_bytes``."""
        return cls(
            total_sectors=-(-capacity_bytes // SECTOR_BYTES),
            sectors_per_track=sectors_per_track,
            heads=heads,
            n_zones=n_zones,
            inner_track_ratio=inner_track_ratio,
        )

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * SECTOR_BYTES

    def _zone_of(self, lbn: int) -> tuple:
        idx = bisect.bisect_right(self._zone_starts, lbn) - 1
        return self._zones[idx]

    def sectors_per_track_at(self, lbn: int) -> int:
        """Track capacity at ``lbn`` (varies across zones)."""
        self._check(lbn)
        return self._zone_of(lbn)[2]

    def cylinder_of(self, lbn: int) -> int:
        """Cylinder containing ``lbn``."""
        self._check(lbn)
        if self.n_zones == 1:
            return lbn // self.sectors_per_cylinder
        z_lbn, z_cyl, spt, _ = self._zone_of(lbn)
        return z_cyl + (lbn - z_lbn) // (spt * self.heads)

    def angle_of(self, lbn: int) -> float:
        """Rotational position of ``lbn`` on its track, in [0, 1)."""
        self._check(lbn)
        if self.n_zones == 1:
            return (lbn % self.sectors_per_track) / self.sectors_per_track
        z_lbn, _, spt, _ = self._zone_of(lbn)
        return ((lbn - z_lbn) % spt) / spt

    def _check(self, lbn: int) -> None:
        if not 0 <= lbn < self.total_sectors:
            raise ValueError(f"LBN {lbn} outside disk [0, {self.total_sectors})")
