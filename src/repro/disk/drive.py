"""The disk drive service model.

A :class:`DiskDrive` services one request at a time (the owning block layer
is responsible for queueing and ordering -- that is the I/O scheduler's
job).  Service time decomposes into:

``seek``
    From the current head cylinder to the target cylinder
    (:class:`~repro.disk.seek.SeekModel`).
``rotational latency``
    The head arrives at the target track at a deterministic angular
    position (angles advance continuously with time at the platter's
    rotation rate); it must wait for the target sector to come around.
    Sequential continuation (request starts exactly where the last one
    ended) incurs neither seek nor rotation.
``transfer``
    ``nsectors`` at the media rate (one track per revolution).

This yields the two regimes the paper depends on: streaming at the media
rate for in-order contiguous service, and ~(seek + half revolution) per
request for scattered service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Protocol

from repro.disk.geometry import SECTOR_BYTES, DiskGeometry
from repro.disk.seek import SeekModel
from repro.disk.stats import DriveStats, SeekSample
from repro.sim import Simulator

__all__ = ["BlockDevice", "DiskDrive", "DiskParams"]


class _DiskMetrics:
    """Registry instruments for one drive (allocated only when observed)."""

    __slots__ = ("accesses", "seeks", "seek_s", "rotation_s", "transfer_s",
                 "sectors", "sequential_hits", "seek_sectors")

    def __init__(self, registry, name: str):
        pre = f"disk.{name}"
        self.accesses = registry.counter(f"{pre}.accesses")
        self.seeks = registry.counter(f"{pre}.seeks")
        self.seek_s = registry.counter(f"{pre}.seek_s")
        self.rotation_s = registry.counter(f"{pre}.rotation_s")
        self.transfer_s = registry.counter(f"{pre}.transfer_s")
        self.sectors = registry.counter(f"{pre}.sectors")
        self.sequential_hits = registry.counter(f"{pre}.sequential_hits")
        # Seek distance per request, in sectors (Fig 7(b)'s quantity).
        self.seek_sectors = registry.histogram(
            f"{pre}.seek_sectors", bounds=[2**i for i in range(8, 31, 2)]
        )


@dataclass(frozen=True)
class DiskParams:
    """Datasheet-style drive parameters (defaults: a 7200-RPM SATA drive)."""

    capacity_bytes: int = 500 * 10**9
    rpm: float = 7200.0
    sectors_per_track: int = 1200
    heads: int = 4
    track_to_track_s: float = 0.0008
    average_seek_s: float = 0.008
    full_stroke_s: float = 0.016
    #: Recording zones (1 = fixed geometry); with >1, inner zones hold
    #: inner_track_ratio x the outer zone's sectors per track (ZBR).
    n_zones: int = 1
    inner_track_ratio: float = 0.5

    @property
    def revolution_s(self) -> float:
        return 60.0 / self.rpm

    @property
    def media_rate_bytes_s(self) -> float:
        """Sustained transfer rate streaming an OUTER-zone track."""
        return self.sectors_per_track * SECTOR_BYTES / self.revolution_s


class BlockDevice(Protocol):
    """Anything that can service block requests serially."""

    stats: DriveStats

    @property
    def total_sectors(self) -> int: ...

    def service(self, lbn: int, nsectors: int, op: str = "R") -> Generator: ...


class DiskDrive:
    """A single mechanical drive.

    Parameters
    ----------
    sim:
        The simulator supplying the clock.
    params:
        Mechanical parameters.
    name:
        Label for traces.
    on_access:
        Optional callback ``(time, lbn, nsectors, op)`` invoked at the start
        of each media transfer -- the hook :mod:`repro.trace.blktrace` uses.
    """

    def __init__(
        self,
        sim: Simulator,
        params: Optional[DiskParams] = None,
        name: str = "disk0",
        on_access: Optional[Callable[[float, int, int, str], None]] = None,
    ):
        self.sim = sim
        self.params = params or DiskParams()
        self.name = name
        self.geometry = DiskGeometry.from_capacity(
            self.params.capacity_bytes,
            sectors_per_track=self.params.sectors_per_track,
            heads=self.params.heads,
            n_zones=self.params.n_zones,
            inner_track_ratio=self.params.inner_track_ratio,
        )
        self.seek_model = SeekModel(
            n_cylinders=self.geometry.n_cylinders,
            track_to_track_s=self.params.track_to_track_s,
            average_s=self.params.average_seek_s,
            full_stroke_s=self.params.full_stroke_s,
        )
        self.stats = DriveStats()
        self.on_access = on_access
        #: Head state: current cylinder and the LBN one past the last
        #: serviced request (for sequential-continuation detection).
        self.head_cylinder = 0
        self._next_sequential_lbn: Optional[int] = None
        self._busy = False
        #: Fail-slow state set by the fault injector: None nominally,
        #: anything with ``transfer_factor`` / ``extra_seek_s`` when
        #: degraded (duck-typed, see repro.faults.plan.DiskFault).
        self.fault: Optional[object] = None
        #: None when unobserved so the hot path pays one identity check.
        self._metrics: Optional[_DiskMetrics] = (
            _DiskMetrics(sim.obs.registry, name) if sim.obs.enabled else None
        )

    @property
    def total_sectors(self) -> int:
        return self.geometry.total_sectors

    # ------------------------------------------------------------------

    def _decompose(self, lbn: int, nsectors: int) -> tuple[float, float, float]:
        """``(seek, rotation, transfer)`` seconds for a request, given the
        current head state and clock.  Pure: does not mutate state."""
        if nsectors <= 0:
            raise ValueError("nsectors must be positive")
        geo = self.geometry
        if lbn + nsectors > geo.total_sectors:
            raise ValueError(
                f"request [{lbn}, {lbn + nsectors}) beyond disk end {geo.total_sectors}"
            )
        rev = self.params.revolution_s
        # Media rate depends on the zone: a track passes under the head
        # once per revolution regardless of how many sectors it holds.
        spt_here = geo.sectors_per_track_at(lbn)
        transfer = nsectors / spt_here * rev
        fault = self.fault
        if fault is not None:
            # Fail-slow: the media streams slower (retried sector reads).
            transfer *= fault.transfer_factor

        if self._next_sequential_lbn is not None and lbn == self._next_sequential_lbn:
            # Streaming continuation: head is already in position.
            return 0.0, 0.0, transfer

        target_cyl = geo.cylinder_of(lbn)
        seek = self.seek_model.seek_time(target_cyl - self.head_cylinder)
        if fault is not None:
            # A sick actuator re-calibrates: flat penalty per positioning.
            seek += fault.extra_seek_s
        # Angular position of the head when the seek completes, measured in
        # fractions of a revolution.  The platter spins continuously.
        t_arrive = self.sim.now + seek
        head_angle = (t_arrive / rev) % 1.0
        target_angle = geo.angle_of(lbn)
        rotation = ((target_angle - head_angle) % 1.0) * rev
        return seek, rotation, transfer

    def service_time(self, lbn: int, nsectors: int) -> float:
        """Pure function of (head state, clock): seconds to serve a request.

        Does not mutate state; ``service`` uses it then commits.
        """
        seek, rotation, transfer = self._decompose(lbn, nsectors)
        return seek + rotation + transfer

    def service(self, lbn: int, nsectors: int, op: str = "R") -> Generator:
        """Serve one request; yields until the simulated service completes.

        The drive is strictly serial: concurrent calls are a caller bug and
        raise immediately.
        """
        if self._busy:
            raise RuntimeError(f"{self.name}: concurrent service() calls")
        self._busy = True
        try:
            start = self.sim.now
            seek, rotation, transfer = self._decompose(lbn, nsectors)
            duration = seek + rotation + transfer
            prev_end = self._next_sequential_lbn
            seek_sectors = 0 if prev_end is None else abs(lbn - prev_end)
            if self.on_access is not None:
                self.on_access(start, lbn, nsectors, op)
            m = self._metrics
            if m is not None:
                m.accesses.inc()
                m.sectors.inc(nsectors)
                m.seek_s.inc(seek)
                m.rotation_s.inc(rotation)
                m.transfer_s.inc(transfer)
                if seek == 0.0 and rotation == 0.0:
                    m.sequential_hits.inc()
                else:
                    m.seeks.inc()
                m.seek_sectors.observe(seek_sectors)
            yield self.sim.timeout(duration)
            # Commit head state.
            last = lbn + nsectors - 1
            self.head_cylinder = self.geometry.cylinder_of(last)
            self._next_sequential_lbn = lbn + nsectors
            self.stats.record(
                SeekSample(
                    time=start,
                    lbn=lbn,
                    nsectors=nsectors,
                    seek_sectors=seek_sectors,
                    service_time=duration,
                    op=op,
                )
            )
        finally:
            self._busy = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiskDrive {self.name} cyl={self.head_cylinder}>"
