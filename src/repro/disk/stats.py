"""Per-drive statistics: the data DualPar's locality daemon consumes.

``SeekDist`` in the paper is the head seek distance maintained by the Linux
kernel for I/O request scheduling, in sectors.  The locality daemon on each
data server samples the recent average; EMC compares the cluster-wide
average against the request-level distance achievable by sorting
(``ReqDist``) to estimate potential I/O-efficiency improvement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["DriveStats", "SeekSample"]


@dataclass(frozen=True)
class SeekSample:
    """One serviced request's positional record."""

    time: float
    lbn: int
    nsectors: int
    seek_sectors: int
    service_time: float
    op: str


@dataclass
class DriveStats:
    """Rolling statistics for one drive.

    A bounded deque of recent seek samples supports windowed queries
    (the locality daemon reports averages over constant time slots), while
    scalar totals support end-of-run summaries.
    """

    window: int = 4096
    n_requests: int = 0
    total_bytes: int = 0
    total_busy_s: float = 0.0
    total_seek_sectors: int = 0
    total_seek_s: float = 0.0
    recent: deque = field(default_factory=deque)

    def record(self, sample: SeekSample) -> None:
        self.n_requests += 1
        self.total_bytes += sample.nsectors * 512
        self.total_busy_s += sample.service_time
        self.total_seek_sectors += sample.seek_sectors
        self.recent.append(sample)
        while len(self.recent) > self.window:
            self.recent.popleft()

    def mean_seek_sectors(self, since: float = 0.0) -> float:
        """Average per-request seek distance over samples newer than ``since``."""
        picked = [s.seek_sectors for s in self.recent if s.time >= since]
        if not picked:
            return 0.0
        return sum(picked) / len(picked)

    def mean_service_time(self, since: float = 0.0) -> float:
        picked = [s.service_time for s in self.recent if s.time >= since]
        if not picked:
            return 0.0
        return sum(picked) / len(picked)

    def throughput_mb_s(self, elapsed_s: float) -> float:
        """End-to-end MB/s given total elapsed (not busy) seconds."""
        if elapsed_s <= 0:
            return 0.0
        return self.total_bytes / 1e6 / elapsed_s
