"""Per-process cache quotas (1 MB per process by default, paper SV)."""

from __future__ import annotations

__all__ = ["QuotaTracker"]

DEFAULT_QUOTA_BYTES = 1024 * 1024


class QuotaTracker:
    """Tracks one process's cache-space consumption within a cycle.

    Two pools share the quota: planned prefetch bytes (accumulated by the
    ghost) and dirty write bytes (accumulated by the normal process).
    """

    def __init__(self, quota_bytes: int = DEFAULT_QUOTA_BYTES):
        if quota_bytes < 0:
            raise ValueError("quota must be non-negative")
        self.quota_bytes = quota_bytes
        self.prefetch_bytes = 0
        self.dirty_bytes = 0

    @property
    def used_bytes(self) -> int:
        return self.prefetch_bytes + self.dirty_bytes

    @property
    def remaining_bytes(self) -> int:
        return max(self.quota_bytes - self.used_bytes, 0)

    @property
    def full(self) -> bool:
        return self.used_bytes >= self.quota_bytes

    def add_prefetch(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.prefetch_bytes += nbytes

    def add_dirty(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.dirty_bytes += nbytes

    def reset_prefetch(self) -> None:
        self.prefetch_bytes = 0

    def reset_dirty(self) -> None:
        self.dirty_bytes = 0
