"""Chunk math: file byte ranges to cache chunk keys.

Every chunk is indexed by a unique key generated from the file name and
the chunk's address in the file (paper SIV-D).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

__all__ = ["ChunkKey", "chunk_range", "chunks_of", "DEFAULT_CHUNK_BYTES"]

#: Chunk size = PVFS2 stripe unit, "so that a chunk can be efficiently
#: accessed by touching only one server".
DEFAULT_CHUNK_BYTES = 64 * 1024


class ChunkKey(NamedTuple):
    file_name: str
    index: int

    def byte_range(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> tuple[int, int]:
        return self.index * chunk_bytes, (self.index + 1) * chunk_bytes


def chunk_range(offset: int, length: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> range:
    """Chunk indices overlapping the byte range [offset, offset+length)."""
    if offset < 0 or length < 0:
        raise ValueError("offset/length must be non-negative")
    if length == 0:
        return range(0, 0)
    first = offset // chunk_bytes
    last = (offset + length - 1) // chunk_bytes
    return range(first, last + 1)


def chunks_of(
    file_name: str, offset: int, length: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> Iterator[ChunkKey]:
    """Keys of all chunks overlapping the byte range."""
    for idx in chunk_range(offset, length, chunk_bytes):
        yield ChunkKey(file_name, idx)
