"""The global chunked cache (Memcached stand-in).

Chunk metadata lives in one registry (the simulation does not move real
bytes); *access costs* are charged as network transfers between the
requesting compute node and the chunk's owner node, plus a small
per-operation CPU cost -- which is what Memcached costs in practice.

Accounting supported:

- time tags (``last_used``) with TTL-based eviction;
- dirty chunks with byte-exact dirty extents for writeback;
- per-prefetch-cycle ``used`` flags feeding the mis-prefetch ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional

from repro.cache.chunk import DEFAULT_CHUNK_BYTES, ChunkKey
from repro.net.ethernet import Network
from repro.sim import Simulator

__all__ = ["CachedChunk", "GlobalCache"]

#: CPU cost of one memcached get/set.
CACHE_OP_CPU_S = 5e-6


class _CacheMetrics:
    """Registry instruments for the global cache (allocated when observed)."""

    __slots__ = ("gets", "hits", "puts", "evictions")

    def __init__(self, registry):
        self.gets = registry.counter("cache.gets")
        self.hits = registry.counter("cache.hits")
        self.puts = registry.counter("cache.puts")
        self.evictions = registry.counter("cache.evictions")


@dataclass
class CachedChunk:
    key: ChunkKey
    owner_node: int
    stored_at: float
    last_used: float
    cycle_id: int
    used: bool = False
    dirty: bool = False
    #: Dirty byte ranges within the chunk, merged, as (start, end) file offsets.
    dirty_ranges: list[tuple[int, int]] = field(default_factory=list)
    job_id: Optional[int] = None


class GlobalCache:
    """One instance per cluster; shared by all DualPar jobs."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        compute_node_ids: list[int],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        ttl_s: float = 30.0,
    ):
        if not compute_node_ids:
            raise ValueError("need at least one compute node")
        self.sim = sim
        self.network = network
        self.compute_node_ids = list(compute_node_ids)
        self.chunk_bytes = chunk_bytes
        self.ttl_s = ttl_s
        #: Live placement ring: compute_node_ids minus evicted nodes.
        self._ring = list(compute_node_ids)
        self._failed_nodes: set[int] = set()
        self.n_node_failures = 0
        self._chunks: dict[ChunkKey, CachedChunk] = {}
        #: Guard memory budget (repro.guard.MemoryBudget) when a safety
        #: governor is attached; None nominally.  Every resident chunk is
        #: charged against its job and owner node; prefetched chunks that
        #: would breach a cap are shed at the insert point.
        self.budget = None
        self.n_gets = 0
        self.n_hits = 0
        self.n_puts = 0
        self.n_evictions = 0
        self._metrics: Optional[_CacheMetrics] = (
            _CacheMetrics(sim.obs.registry) if sim.obs.enabled else None
        )

    # ------------------------------------------------------------- placement

    def owner_of(self, key: ChunkKey) -> int:
        """Round-robin chunk placement across the live cache nodes."""
        return self._ring[key.index % len(self._ring)]

    def fail_node(self, node: int) -> tuple[int, int]:
        """Evict a cache node from the ring (fault-injector entry point).

        Clean chunks the node owned are simply lost (a Memcached restart
        forgets everything).  Dirty chunks must not be lost -- that would
        silently drop committed application writes -- so their *metadata*
        migrates to the chunk's new ring owner, modelling the replicated
        dirty-set a production deployment keeps.  Returns
        ``(evicted_chunks, migrated_chunks)``.
        """
        if node not in self.compute_node_ids:
            raise ValueError(f"node {node} is not a cache node")
        if node in self._failed_nodes:
            raise ValueError(f"node {node} already evicted")
        ring = [n for n in self._ring if n != node]
        if not ring:
            raise ValueError("cannot evict the last cache node")
        self._failed_nodes.add(node)
        self._ring = ring
        self.n_node_failures += 1
        victims = [
            k for k, c in self._chunks.items() if c.owner_node == node and not c.dirty
        ]
        for k in victims:
            self._drop(k)
        self.n_evictions += len(victims)
        if self._metrics is not None:
            self._metrics.evictions.inc(len(victims))
        migrated = 0
        for c in self._chunks.values():
            if c.owner_node == node:
                c.owner_node = self.owner_of(c.key)
                if self.budget is not None:
                    self.budget.transfer_node(self.chunk_bytes, node, c.owner_node)
                migrated += 1
        return len(victims), migrated

    def restore_node(self, node: int) -> None:
        """Return an evicted node to the ring (empty, like a restart)."""
        if node not in self._failed_nodes:
            raise ValueError(f"node {node} is not evicted")
        self._failed_nodes.discard(node)
        self._ring = [n for n in self.compute_node_ids if n not in self._failed_nodes]

    # ------------------------------------------------------------- queries

    def peek(self, key: ChunkKey) -> Optional[CachedChunk]:
        """Metadata lookup without cost or use-marking (internal/tests)."""
        c = self._chunks.get(key)
        if c is not None and self.sim.now - c.last_used > self.ttl_s:
            # Lazy TTL expiry.
            self._drop(key)
            self.n_evictions += 1
            if self._metrics is not None:
                self._metrics.evictions.inc()
            return None
        return c

    def contains(self, key: ChunkKey) -> bool:
        return self.peek(key) is not None

    def resident_bytes(self, job_id: Optional[int] = None) -> int:
        return sum(
            self.chunk_bytes
            for c in self._chunks.values()
            if job_id is None or c.job_id == job_id
        )

    # ------------------------------------------------------------- costed ops

    def get(self, key: ChunkKey, from_node: int, nbytes: Optional[int] = None) -> Generator:
        """Fetch (part of) a chunk to ``from_node``.

        Yields until the transfer completes; the generator returns True on
        hit, False on miss (a miss costs one small lookup round-trip).
        """
        self.n_gets += 1
        m = self._metrics
        if m is not None:
            m.gets.inc()
        yield self.sim.timeout(CACHE_OP_CPU_S)
        chunk = self.peek(key)
        if chunk is None:
            yield from self.network.transfer(from_node, self.owner_of(key), 64)
            return False
        self.n_hits += 1
        if m is not None:
            m.hits.inc()
        chunk.last_used = self.sim.now
        chunk.used = True
        size = self.chunk_bytes if nbytes is None else min(nbytes, self.chunk_bytes)
        yield from self.network.transfer(chunk.owner_node, from_node, size)
        return True

    def put(
        self,
        key: ChunkKey,
        from_node: int,
        cycle_id: int = 0,
        job_id: Optional[int] = None,
        dirty_range: Optional[tuple[int, int]] = None,
    ) -> Generator:
        """Store a chunk (prefetched data or dirty write data).

        ``dirty_range`` is an absolute (start, end) file-byte range being
        written; passing it marks the chunk dirty and records the extent.
        Yields until the payload lands on the owner node.
        """
        self.n_puts += 1
        if self._metrics is not None:
            self._metrics.puts.inc()
        yield self.sim.timeout(CACHE_OP_CPU_S)
        owner = self.owner_of(key)
        size = (
            self.chunk_bytes
            if dirty_range is None
            else max(dirty_range[1] - dirty_range[0], 1)
        )
        yield from self.network.transfer(from_node, owner, size)
        self._store(key, cycle_id, job_id, dirty_range)

    # ------------------------------------------------------ batched ops

    def multiget(
        self, wants: list[tuple[ChunkKey, int]], from_node: int
    ) -> Generator:
        """Batched get (memcached multi-get): one message per owner node.

        ``wants`` is [(key, bytes_needed), ...].  Yields until all owner
        replies land; the generator returns {key: hit_bool}.
        """
        self.n_gets += len(wants)
        m = self._metrics
        if m is not None:
            m.gets.inc(len(wants))
        yield self.sim.timeout(CACHE_OP_CPU_S + 1e-6 * len(wants))
        result: dict[ChunkKey, bool] = {}
        by_owner: dict[int, int] = {}
        for key, nbytes in wants:
            chunk = self.peek(key)
            if chunk is None:
                result[key] = False
                by_owner.setdefault(self.owner_of(key), 0)
                by_owner[self.owner_of(key)] += 8  # miss flag bytes
                continue
            self.n_hits += 1
            if m is not None:
                m.hits.inc()
            chunk.last_used = self.sim.now
            chunk.used = True
            result[key] = True
            size = min(nbytes, self.chunk_bytes)
            by_owner.setdefault(chunk.owner_node, 0)
            by_owner[chunk.owner_node] += size
        moves = [
            self.sim.process(
                self.network.transfer(owner, from_node, 64 + nbytes), name="mc-get"
            )
            for owner, nbytes in sorted(by_owner.items())
        ]
        if moves:
            from repro.sim import all_of

            yield all_of(self.sim, moves)
        return result

    def multiput(
        self,
        puts: list[tuple[ChunkKey, Optional[tuple[int, int]]]],
        from_node: int,
        cycle_id: int = 0,
        job_id: Optional[int] = None,
    ) -> Generator:
        """Batched put: one payload message per owner node.

        ``puts`` is [(key, dirty_range_or_None), ...]; a None range means
        a full prefetched chunk.
        """
        self.n_puts += len(puts)
        if self._metrics is not None:
            self._metrics.puts.inc(len(puts))
        yield self.sim.timeout(CACHE_OP_CPU_S + 1e-6 * len(puts))
        by_owner: dict[int, int] = {}
        for key, dirty_range in puts:
            owner = self.owner_of(key)
            size = (
                self.chunk_bytes
                if dirty_range is None
                else max(dirty_range[1] - dirty_range[0], 1)
            )
            by_owner[owner] = by_owner.get(owner, 0) + size
        moves = [
            self.sim.process(
                self.network.transfer(from_node, owner, 64 + nbytes), name="mc-put"
            )
            for owner, nbytes in sorted(by_owner.items())
        ]
        if moves:
            from repro.sim import all_of

            yield all_of(self.sim, moves)
        for key, dirty_range in puts:
            self._store(key, cycle_id, job_id, dirty_range)

    def _drop(self, key: ChunkKey) -> Optional[CachedChunk]:
        """Remove a chunk, releasing its budget charge; None if absent."""
        chunk = self._chunks.pop(key, None)
        if chunk is not None and self.budget is not None:
            self.budget.release(
                self.chunk_bytes, job_id=chunk.job_id, node=chunk.owner_node
            )
        return chunk

    def _store(
        self,
        key: ChunkKey,
        cycle_id: int,
        job_id: Optional[int],
        dirty_range: Optional[tuple[int, int]],
    ) -> None:
        chunk = self._chunks.get(key)
        if chunk is None:
            if self.budget is not None:
                owner = self.owner_of(key)
                if dirty_range is None:
                    # Speculative prefetch: shed at the cap rather than
                    # growing without bound.
                    if not self.budget.try_charge(
                        self.chunk_bytes, job_id=job_id, node=owner
                    ):
                        return
                else:
                    # Dirty data is never refused -- dropping it would
                    # silently lose committed application writes.
                    self.budget.charge(self.chunk_bytes, job_id=job_id, node=owner)
            chunk = CachedChunk(
                key=key,
                owner_node=self.owner_of(key),
                stored_at=self.sim.now,
                last_used=self.sim.now,
                cycle_id=cycle_id,
                job_id=job_id,
            )
            self._chunks[key] = chunk
        chunk.last_used = self.sim.now
        chunk.cycle_id = cycle_id
        if job_id is not None:
            if (
                self.budget is not None
                and chunk.job_id is not None
                and chunk.job_id != job_id
            ):
                # Ownership handover: move the charge between job ledgers.
                self.budget.release(self.chunk_bytes, job_id=chunk.job_id)
                self.budget.charge(self.chunk_bytes, job_id=job_id)
            chunk.job_id = job_id
        if dirty_range is not None:
            chunk.dirty = True
            self._merge_dirty(chunk, dirty_range)

    @staticmethod
    def _merge_dirty(chunk: CachedChunk, new: tuple[int, int]) -> None:
        # Append is O(1); BTIO-style programs write thousands of tiny
        # ranges per chunk, so full merging on every insert would go
        # quadratic.  Compact periodically; writeback coalesces anyway.
        chunk.dirty_ranges.append(new)  # simlint: ignore[SL007] cache-owned payload
        if len(chunk.dirty_ranges) >= 512:
            chunk.dirty_ranges = GlobalCache._compact(chunk.dirty_ranges)

    @staticmethod
    def _compact(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Sort and merge overlapping/adjacent (start, end) ranges."""
        ranges = sorted(ranges)
        merged = [ranges[0]]
        for s, e in ranges[1:]:
            if s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        return merged

    # ------------------------------------------------------------- lifecycle

    def dirty_chunks(self, job_id: Optional[int] = None) -> list[CachedChunk]:
        return [
            c
            for c in self._chunks.values()
            if c.dirty and (job_id is None or c.job_id == job_id)
        ]

    def clean(self, key: ChunkKey) -> None:
        c = self._chunks.get(key)
        if c is not None:
            c.dirty = False
            c.dirty_ranges = []

    def evict(self, key: ChunkKey) -> None:
        if self._drop(key) is not None:
            self.n_evictions += 1
            if self._metrics is not None:
                self._metrics.evictions.inc()

    def misprefetch_stats(self, job_id: int, cycle_id: int) -> tuple[int, int]:
        """(unused, total) prefetched chunks of a given job cycle."""
        total = 0
        unused = 0
        for c in self._chunks.values():
            if c.job_id == job_id and c.cycle_id == cycle_id and not c.dirty:
                total += 1
                if not c.used:
                    unused += 1
        return unused, total

    def purge_unused(self, job_id: int, cycle_id: int) -> int:
        """Evict unused prefetched chunks of a finished cycle; returns count."""
        victims = [
            k
            for k, c in self._chunks.items()
            if c.job_id == job_id and c.cycle_id == cycle_id and not c.used and not c.dirty
        ]
        for k in victims:
            self._drop(k)
        self.n_evictions += len(victims)
        if self._metrics is not None:
            self._metrics.evictions.inc(len(victims))
        return len(victims)

    def purge_job(self, job_id: int) -> int:
        victims = [k for k, c in self._chunks.items() if c.job_id == job_id]
        for k in victims:
            self._drop(k)
        return len(victims)

    @property
    def hit_ratio(self) -> float:
        return self.n_hits / self.n_gets if self.n_gets else 0.0
