"""Memcached-like distributed client-side cache.

DualPar gives every process of a data-driven program a cache quota (1 MB
by default); the caches of all processes form one global, chunked,
key-value store managed across compute nodes (the paper uses Memcached
v1.4.7).  A file is partitioned into chunks equal to the PVFS2 stripe unit
(64 KB) so a chunk touches exactly one data server; chunks are placed on
compute nodes round-robin.

- :class:`GlobalCache` -- chunk get/put with network-costed access,
  time-tag eviction, dirty tracking for writeback, and per-cycle
  used/unused accounting (the mis-prefetch ratio input to EMC).
- :class:`QuotaTracker` -- per-process byte quotas.
"""

from repro.cache.chunk import ChunkKey, chunk_range, chunks_of
from repro.cache.memcache import CachedChunk, GlobalCache
from repro.cache.quota import QuotaTracker

__all__ = [
    "CachedChunk",
    "ChunkKey",
    "GlobalCache",
    "QuotaTracker",
    "chunk_range",
    "chunks_of",
]
