"""DualPar reproduction: opportunistic data-driven execution of parallel
programs for efficient I/O services (Zhang, Davis, Jiang -- IPDPS 2012).

The package layers, bottom up:

- :mod:`repro.sim` -- discrete-event simulation kernel;
- :mod:`repro.disk`, :mod:`repro.iosched`, :mod:`repro.net` -- hardware
  substrates (mechanical disks, Linux-style elevators, GigE);
- :mod:`repro.pfs` -- PVFS2-like striped parallel file system;
- :mod:`repro.cache` -- Memcached-like global client-side cache;
- :mod:`repro.mpi`, :mod:`repro.mpiio` -- MPI runtime and the ADIO I/O
  engines (vanilla, collective two-phase, speculative prefetch);
- :mod:`repro.core` -- **DualPar** itself (EMC / PEC / CRM);
- :mod:`repro.workloads` -- the paper's benchmarks as access patterns;
- :mod:`repro.cluster`, :mod:`repro.runner` -- testbed assembly and the
  experiment harness.

Quick start::

    from repro import JobSpec, MpiIoTest, run_experiment

    res = run_experiment([
        JobSpec("app", nprocs=16, workload=MpiIoTest(), strategy="dualpar-forced"),
    ])
    print(res.system_throughput_mb_s)
"""

from repro.cluster import ClusterSpec, build_cluster
from repro.core import DualParConfig, DualParSystem
from repro.mpi import MpiRuntime
from repro.runner import (
    ExperimentSpec,
    JobResult,
    JobSpec,
    SlimExperimentResult,
    calibrate_compute_for_ratio,
    format_table,
    run_experiment,
    run_experiments,
)
from repro.workloads import (
    Btio,
    Demo,
    DependentReads,
    Hpio,
    IorMpiIo,
    MpiIoTest,
    Noncontig,
    S3asim,
    SyntheticPattern,
)

__version__ = "0.1.0"

__all__ = [
    "Btio",
    "ClusterSpec",
    "Demo",
    "DependentReads",
    "DualParConfig",
    "DualParSystem",
    "ExperimentSpec",
    "Hpio",
    "IorMpiIo",
    "JobResult",
    "JobSpec",
    "SlimExperimentResult",
    "MpiIoTest",
    "MpiRuntime",
    "Noncontig",
    "S3asim",
    "SyntheticPattern",
    "build_cluster",
    "calibrate_compute_for_ratio",
    "format_table",
    "run_experiment",
    "run_experiments",
    "__version__",
]
