"""Operation types emitted by workload rank streams.

``IoOp.segments`` is the flattened (offset, length) list an MPI derived
datatype (contig / vector / indexed) resolves to -- the form the ADIO
layer actually services.  ``predicted_segments`` models data-dependent
access: it is what a *pre-execution* would predict.  For ordinary
workloads it equals ``segments``; for data-dependent programs (the
paper's Table III adversary) it differs, producing mis-prefetches without
affecting the correctness of normal execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Union

__all__ = ["BarrierOp", "ComputeOp", "IoOp", "Op", "Segment"]


class Segment(NamedTuple):
    """One contiguous byte range of a file."""

    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class ComputeOp:
    """CPU burn between I/O calls."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("compute time must be non-negative")


@dataclass(frozen=True)
class BarrierOp:
    """MPI_Barrier across the job."""


@dataclass(frozen=True)
class IoOp:
    """One MPI-IO call: a set of segments of one file, read or write.

    ``collective`` marks calls the program makes through the collective
    API (MPI_File_read_all etc.); engines that do not implement collective
    I/O treat them as independent strided calls, mirroring how the paper
    runs each benchmark "with or without collective I/O".
    """

    file_name: str
    op: str  # 'R' | 'W'
    segments: tuple[Segment, ...]
    collective: bool = False
    predicted_segments: Optional[tuple[Segment, ...]] = None

    def __post_init__(self) -> None:
        if self.op not in ("R", "W"):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")
        if not self.segments:
            raise ValueError("IoOp needs at least one segment")
        for s in self.segments:
            if s.offset < 0 or s.length <= 0:
                raise ValueError(f"bad segment {s}")

    @property
    def total_bytes(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def prediction(self) -> tuple[Segment, ...]:
        """Segments a pre-execution would record for this call."""
        return self.predicted_segments if self.predicted_segments is not None else self.segments

    @property
    def predictable(self) -> bool:
        return self.predicted_segments is None or self.predicted_segments == self.segments


Op = Union[ComputeOp, BarrierOp, IoOp]
