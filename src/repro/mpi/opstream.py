"""Op streams with a normal-execution cursor and a pre-execution view.

The normal process consumes ops destructively with :meth:`next_for_run`.
A ghost (pre-execution) iterates :meth:`peek` starting at the normal
cursor's current position; peeked ops are buffered so the normal process
replays them afterwards -- the simulated equivalent of forking the
process: both start from identical state, only one has effects.

Positions are tracked absolutely so a ghost iterator stays coherent even
while the normal cursor advances concurrently (a rank whose ghost was
forked before the rank itself blocked keeps executing for a while).  If
the normal cursor overtakes the ghost, the ghost snaps forward to it --
predicting ops the program already executed would be useless.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.mpi.ops import Op

__all__ = ["OpStream"]


class OpStream:
    """A rank's op sequence with a destructive run cursor and
    non-destructive peek iterators (ghost pre-execution)."""

    def __init__(self, it: Iterator[Op]):
        self._it = iter(it)
        self._buf: deque[Op] = deque()
        #: Absolute position of the first buffered op == ops consumed by
        #: the normal cursor so far.
        self._base = 0
        self._exhausted = False

    @property
    def n_consumed(self) -> int:
        return self._base

    def next_for_run(self) -> Optional[Op]:
        """Advance the normal-execution cursor; None at end of program."""
        if self._buf:
            self._base += 1
            return self._buf.popleft()
        op = next(self._it, None)
        if op is None:
            self._exhausted = True
            return None
        self._base += 1
        return op

    def _fill_to(self, abs_pos: int) -> bool:
        """Ensure the op at absolute position ``abs_pos`` is buffered."""
        while self._base + len(self._buf) <= abs_pos:
            if self._exhausted:
                return False
            op = next(self._it, None)
            if op is None:
                self._exhausted = True
                return False
            self._buf.append(op)
        return True

    def peek(self) -> Iterator[Op]:
        """Iterate ahead from the normal cursor without consuming."""
        pos = self._base
        while True:
            pos = max(pos, self._base)  # never predict the past
            if not self._fill_to(pos):
                return
            yield self._buf[pos - self._base]
            pos += 1

    @property
    def lookahead_len(self) -> int:
        """Ops buffered ahead of the normal cursor (peeked, not yet run)."""
        return len(self._buf)

    @property
    def finished(self) -> bool:
        """True when the normal cursor has consumed every op."""
        return self._exhausted and not self._buf
