"""Simulated MPI runtime.

An MPI *program* is described by a :class:`~repro.workloads.base.Workload`
that emits a per-rank stream of operations (compute, read, write,
barrier).  The runtime interprets each rank's stream as a simulation
process, charging compute time directly and delegating I/O operations to
the job's :class:`~repro.mpiio.engine.IoEngine` (vanilla / collective /
prefetch / DualPar).

The op-stream design is what makes pre-execution implementable exactly as
the paper describes: a ghost process replays the *same* stream ahead of
the normal cursor (computation retained), recording the requests it would
issue, without requiring the program to be modified -- see
:class:`OpStream`.
"""

from repro.mpi.ops import BarrierOp, ComputeOp, IoOp, Op, Segment
from repro.mpi.opstream import OpStream
from repro.mpi.runtime import MpiJob, MpiProcess, MpiRuntime, ProcMetrics

__all__ = [
    "BarrierOp",
    "ComputeOp",
    "IoOp",
    "MpiJob",
    "MpiProcess",
    "MpiRuntime",
    "Op",
    "OpStream",
    "ProcMetrics",
    "Segment",
]
