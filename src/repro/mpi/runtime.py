"""The MPI job runtime: ranks as simulation processes.

Each rank interprets its op stream:

- ``ComputeOp`` -- advance the clock; accrue compute time.
- ``BarrierOp`` -- synchronise on the job barrier, then charge the
  dissemination cost ``2*ceil(log2 P))*latency`` (paper: "each barrier
  operation takes a relatively long time with a large number of
  processes").  Barrier time counts as computation, matching the paper's
  instrumentation ("time between any two consecutive I/O-related function
  calls" is computation).
- ``IoOp`` -- delegate to the job's I/O engine; accrue I/O time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.builder import Cluster
from repro.mpi.ops import BarrierOp, ComputeOp, IoOp
from repro.mpi.opstream import OpStream
from repro.sim import Event, Process, SimBarrier, Simulator, all_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpiio.engine import IoEngine
    from repro.workloads.base import Workload

__all__ = ["MpiJob", "MpiProcess", "MpiRuntime", "ProcMetrics"]


@dataclass
class ProcMetrics:
    """Cumulative per-rank instrumentation (the paper's ADIO counters)."""

    io_time_s: float = 0.0
    compute_time_s: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    n_io_calls: int = 0

    @property
    def io_ratio(self) -> float:
        total = self.io_time_s + self.compute_time_s
        return self.io_time_s / total if total > 0 else 0.0


class MpiProcess:
    """One MPI rank."""

    def __init__(self, job: "MpiJob", rank: int, node_id: int, stream_id: int):
        self.job = job
        self.rank = rank
        self.node_id = node_id
        self.stream_id = stream_id
        self.stream: Optional[OpStream] = None
        self.metrics = ProcMetrics()
        self.proc: Optional[Process] = None
        #: Ops (absolute stream positions) already attempted through a
        #: prefetch cycle -- prevents a fully-mis-predicted op from
        #: re-triggering cycles forever.
        self.cycle_attempted_at: int = -1

    @property
    def sim(self) -> Simulator:
        return self.job.runtime.sim

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MpiProcess {self.job.name}:{self.rank}>"


class MpiJob:
    """One parallel program instance."""

    _next_id = 0

    def __init__(
        self,
        runtime: "MpiRuntime",
        name: str,
        nprocs: int,
        workload: "Workload",
        engine_factory: Callable[["MpiRuntime", "MpiJob"], "IoEngine"],
    ):
        if nprocs < 1:
            raise ValueError("job needs at least one process")
        self.runtime = runtime
        self.name = name
        self.nprocs = nprocs
        self.workload = workload
        self.job_id = MpiJob._next_id
        MpiJob._next_id += 1
        self.barrier = SimBarrier(runtime.sim, nprocs)
        self.procs: list[MpiProcess] = []
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.done: Event = runtime.sim.event()
        #: 'normal' (computation-driven) or 'datadriven'; EMC flips this.
        self.mode = "normal"
        self.engine: "IoEngine" = engine_factory(runtime, self)

    # ------------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self.runtime.sim

    @property
    def elapsed_s(self) -> float:
        if self.start_time is None:
            return 0.0
        end = self.end_time if self.end_time is not None else self.sim.now
        return end - self.start_time

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    def total_io_bytes(self) -> int:
        return sum(p.metrics.bytes_read + p.metrics.bytes_written for p in self.procs)

    def throughput_mb_s(self) -> float:
        el = self.elapsed_s
        return self.total_io_bytes() / 1e6 / el if el > 0 else 0.0

    def mean_io_ratio(self) -> float:
        ratios = [p.metrics.io_ratio for p in self.procs]
        return sum(ratios) / len(ratios) if ratios else 0.0

    # ------------------------------------------------------------------

    #: Per-hop software cost of an MPI message over TCP/GigE (stack
    #: traversal, progress-engine wakeups) -- dominates the wire latency
    #: and is what makes a 64-rank barrier cost milliseconds, as the
    #: paper observes for mpi-io-test.
    MPI_HOP_OVERHEAD_S = 60e-6

    def _barrier_cost_s(self) -> float:
        lat = self.runtime.cluster.spec.network.latency_s
        per_hop = lat + self.MPI_HOP_OVERHEAD_S
        return 2 * math.ceil(math.log2(max(self.nprocs, 2))) * per_hop

    def _rank_body(self, proc: MpiProcess):
        sim = self.sim
        stream = proc.stream
        engine = self.engine
        tracer = sim.obs.tracer if sim.obs.enabled else None
        while True:
            op = stream.next_for_run()
            if op is None:
                break
            if isinstance(op, ComputeOp):
                if op.seconds > 0:
                    yield sim.timeout(op.seconds)
                proc.metrics.compute_time_s += op.seconds
            elif isinstance(op, BarrierOp):
                t0 = sim.now
                yield self.barrier.arrive()
                cost = self._barrier_cost_s()
                yield sim.timeout(cost)
                proc.metrics.compute_time_s += sim.now - t0
            elif isinstance(op, IoOp):
                t0 = sim.now
                if tracer is not None:
                    # Root span of the trace: everything this operation
                    # causes downstream (pfs, iosched, disk) carries the
                    # trace id minted here.
                    trace_id = tracer.new_trace()
                    tracer.bind_stream(proc.stream_id, trace_id)
                    with tracer.span(
                        "mpi.io",
                        track=f"{self.name}:rank{proc.rank}",
                        cat="mpi",
                        trace=trace_id,
                        op=op.op,
                        file=op.file_name,
                        bytes=op.total_bytes,
                        lp=f"client:node{proc.node_id}",
                    ):
                        yield from engine.do_io(proc, op)
                else:
                    yield from engine.do_io(proc, op)
                dt = sim.now - t0
                proc.metrics.io_time_s += dt
                proc.metrics.n_io_calls += 1
                if op.op == "R":
                    proc.metrics.bytes_read += op.total_bytes
                else:
                    proc.metrics.bytes_written += op.total_bytes
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown op {op!r}")
        yield from engine.finalize_rank(proc)

    def start(self) -> None:
        if self.procs:
            raise RuntimeError("job already started")
        self.start_time = self.sim.now
        spec = self.runtime.cluster.spec
        for rank in range(self.nprocs):
            node = spec.compute_node_id(rank % spec.n_compute_nodes)
            proc = MpiProcess(self, rank, node, self.runtime._next_stream_id())
            proc.stream = OpStream(self.workload.ops(rank, self.nprocs))
            self.procs.append(proc)
        self.engine.on_job_start()
        san = self.sim._sanitizer
        owncheck = san.ownership if san is not None else None
        bodies = []
        for p in self.procs:
            body = self.sim.process(self._rank_body(p), name=f"{self.name}:{p.rank}")
            if owncheck is not None:
                # Each rank runs in its compute node's client LP; server
                # access must flow through a Network.transfer grant.
                owncheck.adopt(body, f"client:node{p.node_id}")
            bodies.append(body)

        def waiter():
            yield all_of(self.sim, bodies)
            self.end_time = self.sim.now
            self.engine.on_job_end()
            self.done.succeed(self.sim.now)

        self.sim.process(waiter(), name=f"{self.name}:join")


class MpiRuntime:
    """Launches jobs against one cluster; owns the shared stream-id space
    and the cluster-wide global cache (the Memcached infrastructure)."""

    def __init__(self, cluster: Cluster, cache_ttl_s: float = 30.0):
        from repro.cache.memcache import GlobalCache

        self.cluster = cluster
        self.sim = cluster.sim
        self.jobs: list[MpiJob] = []
        self._stream_counter = 0
        compute_nodes = [
            cluster.spec.compute_node_id(i)
            for i in range(cluster.spec.n_compute_nodes)
        ]
        self.global_cache = GlobalCache(
            cluster.sim,
            cluster.network,
            compute_nodes,
            chunk_bytes=cluster.spec.stripe_unit,
            ttl_s=cache_ttl_s,
        )

    def _next_stream_id(self) -> int:
        self._stream_counter += 1
        return self._stream_counter

    def launch(
        self,
        name: str,
        nprocs: int,
        workload: "Workload",
        engine_factory: Callable[["MpiRuntime", "MpiJob"], "IoEngine"],
        start: bool = True,
    ) -> MpiJob:
        job = MpiJob(self, name, nprocs, workload, engine_factory)
        self.jobs.append(job)
        if start:
            job.start()
        return job

    def run_to_completion(self, limit_s: float = 1e6) -> float:
        """Run until every launched job finishes; returns final sim time."""
        for job in self.jobs:
            self.sim.run_until_event(job.done, limit=limit_s)
        return self.sim.now
