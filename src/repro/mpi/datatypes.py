"""MPI derived datatypes, flattened to (offset, length) segment lists.

The ADIO layer ultimately services flattened offset/length lists; these
classes reproduce the datatype algebra the benchmarks use to describe
noncontiguous access (the demo program's "derived Vector datatype",
noncontig's vector of MPI_INT columns, BTIO's nested views).

A datatype has an *extent* (the span one instance covers, including
trailing holes) and a *size* (bytes of actual data).  ``flatten(offset,
count)`` produces the contiguous pieces ``count`` consecutive instances
occupy starting at ``offset``; adjacent pieces are merged.

:class:`FileView` models ``MPI_File_set_view``: a displacement plus a
tiling filetype, mapping a logical (linear) byte range of the view onto
physical file segments -- what ``ADIOI_*_ReadStrided`` actually computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mpi.ops import Segment

__all__ = ["ContigType", "VectorType", "IndexedType", "FileView"]


class Datatype:
    """Base: any type reducible to a template of (offset, length) pieces."""

    #: bytes of real data per instance
    size: int
    #: span of one instance (stride to the next instance)
    extent: int

    def _template(self) -> list[Segment]:
        """Pieces of ONE instance, relative to its origin."""
        raise NotImplementedError

    def flatten(self, offset: int = 0, count: int = 1) -> list[Segment]:
        """Pieces covered by ``count`` instances starting at ``offset``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        out: list[Segment] = []
        template = self._template()
        for i in range(count):
            base = offset + i * self.extent
            for seg in template:
                s = Segment(base + seg.offset, seg.length)
                if out and out[-1].end == s.offset:
                    out[-1] = Segment(out[-1].offset, out[-1].length + s.length)
                else:
                    out.append(s)
        return out


@dataclass(frozen=True)
class ContigType(Datatype):
    """``count`` contiguous bytes (MPI_Type_contiguous over bytes)."""

    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.length

    @property
    def extent(self) -> int:  # type: ignore[override]
        return self.length

    def _template(self) -> list[Segment]:
        return [Segment(0, self.length)]


@dataclass(frozen=True)
class VectorType(Datatype):
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` bytes spaced
    ``stride`` bytes apart."""

    count: int
    blocklength: int
    stride: int

    def __post_init__(self) -> None:
        if self.count <= 0 or self.blocklength <= 0:
            raise ValueError("count and blocklength must be positive")
        if self.stride < self.blocklength:
            raise ValueError("stride must be >= blocklength")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.count * self.blocklength

    @property
    def extent(self) -> int:  # type: ignore[override]
        # MPI extent: from the first byte to the last byte of the last
        # block (no trailing hole), per MPI_Type_vector semantics.
        return (self.count - 1) * self.stride + self.blocklength

    def _template(self) -> list[Segment]:
        return [Segment(i * self.stride, self.blocklength) for i in range(self.count)]


@dataclass(frozen=True)
class IndexedType(Datatype):
    """MPI_Type_indexed: explicit (displacement, blocklength) pairs."""

    blocks: tuple  # of (displacement, blocklength)

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("need at least one block")
        for disp, length in self.blocks:
            if disp < 0 or length <= 0:
                raise ValueError(f"bad block ({disp}, {length})")
        ordered = sorted(self.blocks)
        for (d1, l1), (d2, _l2) in zip(ordered, ordered[1:]):
            if d1 + l1 > d2:
                raise ValueError("blocks overlap")

    @property
    def size(self) -> int:  # type: ignore[override]
        return sum(length for _, length in self.blocks)

    @property
    def extent(self) -> int:  # type: ignore[override]
        return max(d + l for d, l in self.blocks)

    def _template(self) -> list[Segment]:
        return [Segment(d, l) for d, l in sorted(self.blocks)]


@dataclass(frozen=True)
class FileView:
    """MPI_File_set_view(disp, etype=byte, filetype=...).

    The view exposes only the filetype's data bytes, tiled repeatedly
    from ``disp``; :meth:`segments` converts a (logical_offset, length)
    access within the view into physical file segments.
    """

    filetype: Datatype
    disp: int = 0

    def __post_init__(self) -> None:
        if self.disp < 0:
            raise ValueError("displacement must be non-negative")

    def segments(self, logical_offset: int, length: int) -> list[Segment]:
        """Physical file pieces for view bytes [logical_offset, +length)."""
        if logical_offset < 0 or length < 0:
            raise ValueError("offset/length must be non-negative")
        out: list[Segment] = []
        tsize = self.filetype.size
        textent = self.filetype.extent
        template = self.filetype._template()
        tile = logical_offset // tsize
        pos_in_tile = logical_offset % tsize
        remaining = length
        while remaining > 0:
            base = self.disp + tile * textent
            consumed = 0
            for seg in template:
                if pos_in_tile >= consumed + seg.length:
                    consumed += seg.length
                    continue
                skip = pos_in_tile - consumed
                take = min(seg.length - skip, remaining)
                s = Segment(base + seg.offset + skip, take)
                if out and out[-1].end == s.offset:
                    out[-1] = Segment(out[-1].offset, out[-1].length + take)
                else:
                    out.append(s)
                remaining -= take
                pos_in_tile += take
                consumed += seg.length
                if remaining == 0:
                    break
            tile += 1
            pos_in_tile = 0
        return out
