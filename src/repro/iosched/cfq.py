"""CFQ (Completely Fair Queueing) elevator -- the paper's default.

Structure follows the Linux CFQ of the 2.6.3x era at the fidelity the
paper's effects require:

- one LBN-sorted queue per issuing *stream* (process / server I/O
  thread) for synchronous requests;
- one shared background queue for asynchronous requests (readahead,
  background writeback), served only when no sync work is queued and
  never idled on -- Linux CFQ's sync-over-async priority;
- sync streams are served round-robin, each receiving a time slice
  (``slice_sync``, default 100 ms), dispatching in C-LOOK order;
- when the active sync stream's queue runs dry mid-slice, CFQ *idles*
  the disk for ``slice_idle`` (default 8 ms) hoping the stream issues a
  nearby request -- but only for streams whose measured *think time*
  (gap from a request's completion to the stream's next submission) is
  short, reproducing ``cfq_update_idle_window``: idling on a process
  that historically takes long to issue its next request only wastes
  the disk.

Both properties the paper leans on emerge: (1) a stream that trickles
synchronous requests one at a time gets FIFO-quality service, and (2)
two interleaved streams reading different file regions force a long
seek at every slice boundary.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.iosched.base import DEFAULT_MAX_SECTORS, IoScheduler, SchedDecision
from repro.iosched.request import BlockRequest, IoUnit
from repro.iosched.squeue import SortedUnitQueue

__all__ = ["CfqScheduler"]


class _StreamState:
    __slots__ = ("queue", "last_completion", "ttime_mean", "n_inflight")

    def __init__(self, max_sectors: int):
        self.queue = SortedUnitQueue(max_sectors)
        self.last_completion: float | None = None
        #: EMA of think time (completion -> next submission), seconds.
        self.ttime_mean = 0.0
        self.n_inflight = 0


class CfqScheduler(IoScheduler):
    """Linux CFQ: per-stream sorted queues served round-robin in time
    slices, think-time-gated idling, background class for async I/O."""

    def __init__(
        self,
        max_sectors: int = DEFAULT_MAX_SECTORS,
        slice_sync_s: float = 0.100,
        slice_idle_s: float = 0.008,
    ):
        super().__init__(max_sectors)
        self.slice_sync_s = slice_sync_s
        self.slice_idle_s = slice_idle_s
        #: stream_id -> sync state; OrderedDict gives stable round-robin.
        self._streams: "OrderedDict[int, _StreamState]" = OrderedDict()
        self._async = SortedUnitQueue(max_sectors)
        self._active: int | None = None
        self._slice_start = 0.0
        self._idle_deadline: float | None = None
        self._n_sync_queued = 0

    # ------------------------------------------------------------------

    def _state(self, stream_id: int) -> _StreamState:
        st = self._streams.get(stream_id)
        if st is None:
            st = _StreamState(self.max_sectors)
            self._streams[stream_id] = st
        return st

    def add(self, req: BlockRequest, now: float) -> None:
        if req.is_async:
            self._async.add(req)
        else:
            st = self._state(req.stream_id)
            # Think-time sample: completion of the stream's previous
            # request to this submission, when the stream had gone idle.
            if st.last_completion is not None and st.n_inflight == 0 and len(st.queue) == 0:
                sample = max(now - st.last_completion, 0.0)
                st.ttime_mean = 0.7 * st.ttime_mean + 0.3 * sample
            before = len(st.queue)
            st.queue.add(req)
            self._n_sync_queued += len(st.queue) - before
            st.n_inflight += 0  # inflight counted at dispatch
        self.n_merges = self._async.n_merges + sum(
            s.queue.n_merges for s in self._streams.values()
        )

    def on_complete(self, unit: IoUnit, now: float) -> None:
        for part in unit.parts:
            if part.is_async:
                continue
            st = self._streams.get(part.stream_id)
            if st is not None:
                st.last_completion = now
                st.n_inflight = max(st.n_inflight - 1, 0)

    def __len__(self) -> int:
        return self._n_sync_queued + len(self._async)

    # ------------------------------------------------------------------

    def _idle_worthwhile(self, stream_id: int) -> bool:
        st = self._streams.get(stream_id)
        if st is None:
            return False
        return st.ttime_mean <= self.slice_idle_s

    def _rotate_active(self) -> None:
        if self._active is not None and self._active in self._streams:
            self._streams.move_to_end(self._active)
        self._active = None
        self._idle_deadline = None

    def _elect(self, now: float) -> int | None:
        for sid, st in self._streams.items():
            if len(st.queue) > 0:
                self._active = sid
                self._slice_start = now
                self._idle_deadline = None
                return sid
        return None

    def _serve_sync(self, sid: int, head_lbn: int) -> SchedDecision:
        st = self._streams[sid]
        unit = st.queue.pop_next(head_lbn)
        self._n_sync_queued -= 1
        st.n_inflight += 1
        self._idle_deadline = None
        return SchedDecision.serve(unit)

    def decide(self, now: float, head_lbn: int) -> SchedDecision:
        if self._n_sync_queued == 0:
            # Honour an armed idle window for the active stream before
            # surrendering the disk to background work.
            if (
                self._active is not None
                and self._idle_deadline is not None
                and now < self._idle_deadline
            ):
                return SchedDecision.idle(self._idle_deadline - now)
            if len(self._async) > 0:
                return SchedDecision.serve(self._async.pop_next(head_lbn))
            self._rotate_active()
            return SchedDecision.empty()

        if self._active is not None:
            st = self._streams.get(self._active)
            slice_expired = now - self._slice_start >= self.slice_sync_s
            if st is not None and len(st.queue) > 0 and not slice_expired:
                return self._serve_sync(self._active, head_lbn)
            if (
                st is not None
                and len(st.queue) == 0
                and not slice_expired
                and self._idle_worthwhile(self._active)
            ):
                if self._idle_deadline is None:
                    self._idle_deadline = now + self.slice_idle_s
                if now < self._idle_deadline:
                    return SchedDecision.idle(self._idle_deadline - now)
            self._rotate_active()

        sid = self._elect(now)
        if sid is None:  # pragma: no cover - guarded by _n_sync_queued
            return SchedDecision.empty()
        return self._serve_sync(sid, head_lbn)
