"""Scheduler interface and the decision protocol with the block layer.

A scheduler owns the queue of pending :class:`IoUnit` objects.  The block
layer's dispatch loop repeatedly asks ``decide(now, head_lbn)``:

- ``SchedDecision.serve(unit)`` -- service this unit now;
- ``SchedDecision.idle(seconds)`` -- the scheduler *chooses* to keep the
  disk idle briefly (CFQ/anticipatory idling), hoping a better request
  arrives; the loop re-asks after the window or on a new arrival;
- ``SchedDecision.empty()`` -- nothing queued; sleep until an arrival.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.iosched.request import BlockRequest, IoUnit

__all__ = ["IoScheduler", "SchedDecision"]

#: Default cap on merged unit size: 1024 sectors = 512 KB, the common
#: Linux ``max_sectors_kb`` default of the era.
DEFAULT_MAX_SECTORS = 1024


@dataclass(frozen=True)
class SchedDecision:
    kind: str  # 'serve' | 'idle' | 'empty'
    unit: Optional[IoUnit] = None
    idle_s: float = 0.0

    @classmethod
    def serve(cls, unit: IoUnit) -> "SchedDecision":
        return cls(kind="serve", unit=unit)

    @classmethod
    def idle(cls, seconds: float) -> "SchedDecision":
        return cls(kind="idle", idle_s=seconds)

    @classmethod
    def empty(cls) -> "SchedDecision":
        return cls(kind="empty")


class IoScheduler(ABC):
    """Base class for elevator algorithms."""

    def __init__(self, max_sectors: int = DEFAULT_MAX_SECTORS):
        if max_sectors <= 0:
            raise ValueError("max_sectors must be positive")
        self.max_sectors = max_sectors
        self.n_merges = 0

    @abstractmethod
    def add(self, req: BlockRequest, now: float) -> None:
        """Queue a new request (merging it if possible)."""

    @abstractmethod
    def decide(self, now: float, head_lbn: int) -> SchedDecision:
        """Choose the next action for the dispatch loop."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued units (not yet dispatched)."""

    def on_complete(self, unit: IoUnit, now: float) -> None:
        """Completion notification (think-time heuristics hook)."""

    # -- shared helpers -------------------------------------------------

    @staticmethod
    def _try_merge_sorted(units: list[IoUnit], req: BlockRequest, max_sectors: int) -> bool:
        """Attempt back/front merge of ``req`` into a LBN-sorted unit list.

        Returns True when merged.  Keeps the list sorted.
        """
        import bisect

        idx = bisect.bisect_left([u.lbn for u in units], req.lbn)
        # Predecessor may back-merge; successor may front-merge.
        if idx > 0 and units[idx - 1].can_back_merge(req, max_sectors):
            units[idx - 1].back_merge(req)
            return True
        if idx < len(units) and units[idx].can_front_merge(req, max_sectors):
            units[idx].front_merge(req)
            return True
        return False
