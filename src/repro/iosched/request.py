"""Block request and merged I/O unit types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim import Event

__all__ = ["BlockRequest", "IoUnit"]


@dataclass
class BlockRequest:
    """One request as submitted to the block layer.

    ``stream_id`` identifies the issuing context (a PFS client / MPI
    process); CFQ uses it for per-process queueing and the stats use it to
    attribute service.
    """

    lbn: int
    nsectors: int
    op: str  # 'R' or 'W'
    stream_id: int
    submit_time: float
    completion: Event
    tag: Optional[object] = None  # opaque caller payload
    #: Readahead / writeback requests nobody synchronously waits on.
    #: CFQ gives them background treatment: no idling, yield to sync.
    is_async: bool = False
    #: Observability trace-context id (0 = untraced).  Propagated from the
    #: originating MPI I/O operation so a span at the disk can be tied back
    #: to the collective read that caused it.
    trace_id: int = 0

    @property
    def end(self) -> int:
        return self.lbn + self.nsectors

    def __post_init__(self) -> None:
        if self.nsectors <= 0:
            raise ValueError("nsectors must be positive")
        if self.op not in ("R", "W"):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")


@dataclass
class IoUnit:
    """A queued unit: one or more contiguous same-op requests merged.

    The disk services the unit as a single transfer; completion fires every
    constituent request's event.
    """

    lbn: int
    nsectors: int
    op: str
    parts: list[BlockRequest] = field(default_factory=list)
    #: True while the unit sits in a scheduler queue; cleared when it is
    #: dispatched or absorbed into a neighbour.  Lets FIFO side-lists detect
    #: stale entries in O(1).
    queued: bool = True

    @property
    def end(self) -> int:
        return self.lbn + self.nsectors

    def can_back_merge(self, req: BlockRequest, max_sectors: int) -> bool:
        """Can ``req`` be appended directly after this unit?"""
        return (
            req.op == self.op
            and req.lbn == self.end
            and self.nsectors + req.nsectors <= max_sectors
        )

    def can_front_merge(self, req: BlockRequest, max_sectors: int) -> bool:
        """Can ``req`` be prepended directly before this unit?"""
        return (
            req.op == self.op
            and req.end == self.lbn
            and self.nsectors + req.nsectors <= max_sectors
        )

    def back_merge(self, req: BlockRequest) -> None:
        self.nsectors += req.nsectors
        self.parts.append(req)

    def front_merge(self, req: BlockRequest) -> None:
        self.lbn = req.lbn
        self.nsectors += req.nsectors
        self.parts.insert(0, req)

    @classmethod
    def from_request(cls, req: BlockRequest) -> "IoUnit":
        return cls(lbn=req.lbn, nsectors=req.nsectors, op=req.op, parts=[req])
