"""Kernel block layer: request queueing, merging, and I/O scheduling.

The paper's observation is that the *kernel* disk scheduler (CFQ on the
Darwin data servers) can only create an efficient service order out of the
requests it can actually see queued -- and synchronous MPI-IO trickles
requests in one or two at a time, defeating it.  This package reproduces
that machinery:

- :class:`BlockRequest` / :class:`IoUnit` -- submitted requests and the
  (possibly merged) units the disk actually services.
- :class:`BlockLayer` -- the dispatch loop: accepts submissions, lets the
  elected scheduler merge/sort/batch them, and feeds the
  :class:`~repro.disk.drive.BlockDevice` one unit at a time.
- Schedulers: :class:`NoopScheduler`, :class:`DeadlineScheduler`,
  :class:`CfqScheduler` (the default, as on the paper's servers), and
  :class:`AnticipatoryScheduler`.
"""

from types import MappingProxyType
from typing import Mapping

from repro.iosched.base import IoScheduler, SchedDecision
from repro.iosched.blocklayer import BlockLayer, BlockLayerStats
from repro.iosched.cfq import CfqScheduler
from repro.iosched.deadline import DeadlineScheduler
from repro.iosched.anticipatory import AnticipatoryScheduler
from repro.iosched.noop import NoopScheduler
from repro.iosched.request import BlockRequest, IoUnit

__all__ = [
    "AnticipatoryScheduler",
    "BlockLayer",
    "BlockLayerStats",
    "BlockRequest",
    "CfqScheduler",
    "DeadlineScheduler",
    "IoScheduler",
    "IoUnit",
    "NoopScheduler",
    "SchedDecision",
]

SCHEDULERS: Mapping[str, type[IoScheduler]] = MappingProxyType(
    {
        "noop": NoopScheduler,
        "deadline": DeadlineScheduler,
        "cfq": CfqScheduler,
        "anticipatory": AnticipatoryScheduler,
    }
)


def make_scheduler(name: str, **kwargs) -> IoScheduler:
    """Instantiate a scheduler by its Linux elevator name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}") from None
    return cls(**kwargs)
