"""The block layer: submission queue, dispatch loop, completion delivery.

``submit()`` hands a request to the elected scheduler and returns an event
that fires when the disk has serviced it.  A single dispatch process owns
the device: it repeatedly asks the scheduler to decide, honours idle
windows (re-deciding early when a new request arrives), and serves chosen
units.  Queue-depth statistics are sampled at every dispatch -- they are
the observable the paper uses to explain CFQ's failure under synchronous
trickle ("the disk scheduler sees a limited number of outstanding
requests").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.disk.drive import BlockDevice
from repro.iosched.base import IoScheduler
from repro.iosched.request import BlockRequest
from repro.sim import Event, Simulator, any_of

__all__ = ["BlockLayer", "BlockLayerStats"]


class _BlkMetrics:
    """Registry instruments for one block layer (allocated when observed)."""

    __slots__ = ("submitted", "units", "merged", "queue_depth", "unit_sectors",
                 "start_delay_s")

    def __init__(self, registry, name: str):
        pre = f"blk.{name}"
        self.submitted = registry.counter(f"{pre}.submitted")
        self.units = registry.counter(f"{pre}.units_served")
        #: Requests absorbed into another unit by front/back merging.
        self.merged = registry.counter(f"{pre}.merged")
        self.queue_depth = registry.histogram(
            f"{pre}.queue_depth", bounds=[1, 2, 4, 8, 16, 32, 64, 128, 256]
        )
        self.unit_sectors = registry.histogram(
            f"{pre}.unit_sectors", bounds=[8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        )
        self.start_delay_s = registry.histogram(
            f"{pre}.start_delay_s",
            bounds=[1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0],
        )


@dataclass
class BlockLayerStats:
    n_submitted: int = 0
    n_units_served: int = 0
    depth_samples: list = field(default_factory=list)
    service_start_delays: list = field(default_factory=list)

    @property
    def mean_queue_depth(self) -> float:
        if not self.depth_samples:
            return 0.0
        return sum(self.depth_samples) / len(self.depth_samples)

    @property
    def mean_unit_sectors(self) -> float:
        return self._mean_unit_sectors

    _mean_unit_sectors: float = 0.0
    _total_unit_sectors: int = 0

    def record_unit(self, nsectors: int) -> None:
        self.n_units_served += 1
        self._total_unit_sectors += nsectors
        self._mean_unit_sectors = self._total_unit_sectors / self.n_units_served


class BlockLayer:
    """Owns one block device and schedules requests onto it.

    ``nr_requests`` mirrors the Linux queue-depth cap (default 128): when
    the queue is congested, submitters that can block should ``yield
    from throttle()`` before calling :meth:`submit` -- exactly what a
    server thread sleeping in ``get_request_wait`` does.
    """

    def __init__(
        self,
        sim: Simulator,
        device: BlockDevice,
        scheduler: IoScheduler,
        name: str = "blk0",
        nr_requests: int = 128,
    ):
        if nr_requests < 1:
            raise ValueError("nr_requests must be >= 1")
        self.sim = sim
        self.device = device
        self.scheduler = scheduler
        self.name = name
        self.nr_requests = nr_requests
        self.stats = BlockLayerStats()
        self._head_lbn = 0
        self._arrival: Optional[Event] = None
        self._congestion_waiters: list[Event] = []  # simlint: ignore[SL006] one event per inflight submitter; drained every un-congest
        self._metrics: Optional[_BlkMetrics] = (
            _BlkMetrics(sim.obs.registry, name) if sim.obs.enabled else None
        )
        self._tracer = sim.obs.tracer if sim.obs.enabled else None
        #: Dynamic simown checker (None unless armed); the owning data
        #: server tags this layer with its LP at construction.
        self._ownership = (
            sim._sanitizer.ownership if sim._sanitizer is not None else None
        )
        self._dispatcher = sim.process(
            self._dispatch_loop(), name=f"{name}-dispatch", daemon=True
        )

    # ------------------------------------------------------------------

    def submit(
        self,
        lbn: int,
        nsectors: int,
        op: str = "R",
        stream_id: int = 0,
        tag: object = None,
        is_async: bool = False,
        trace_id: int = 0,
    ) -> Event:
        """Queue a request; returns its completion event."""
        if self._ownership is not None:
            # The block layer is strictly server-LP-internal: submissions
            # must come from this server's own service processes, never
            # directly from a client or the metadata side.
            self._ownership.check(self, "submit")
        completion = self.sim.event()
        req = BlockRequest(
            lbn=lbn,
            nsectors=nsectors,
            op=op,
            stream_id=stream_id,
            submit_time=self.sim.now,
            completion=completion,
            tag=tag,
            is_async=is_async,
            trace_id=trace_id,
        )
        self.scheduler.add(req, self.sim.now)
        self.stats.n_submitted += 1
        if self._metrics is not None:
            self._metrics.submitted.inc()
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()
        return completion

    @property
    def queue_depth(self) -> int:
        return len(self.scheduler)

    @property
    def congested(self) -> bool:
        return len(self.scheduler) >= self.nr_requests

    def throttle(self):
        """Generator: wait while the queue is over ``nr_requests``."""
        while self.congested:
            ev = self.sim.event()
            self._congestion_waiters.append(ev)
            yield ev

    # ------------------------------------------------------------------

    def _wait_arrival(self):
        self._arrival = self.sim.event()
        yield self._arrival
        self._arrival = None

    def _dispatch_loop(self):
        sim = self.sim
        while True:
            decision = self.scheduler.decide(sim.now, self._head_lbn)
            if decision.kind == "empty":
                yield from self._wait_arrival()
                continue
            if decision.kind == "idle":
                # Idle until the window ends or a new request arrives.
                self._arrival = sim.event()
                yield any_of(sim, [self._arrival, sim.timeout(decision.idle_s)])
                # Whether the timer or an arrival won, drop the arrival
                # event; an untriggered orphan is harmless garbage.
                self._arrival = None
                continue
            unit = decision.unit
            stats = self.stats
            stats.depth_samples.append(len(self.scheduler) + 1)
            for part in unit.parts:
                stats.service_start_delays.append(sim.now - part.submit_time)
            m = self._metrics
            if m is not None:
                m.queue_depth.observe(len(self.scheduler) + 1)
                m.unit_sectors.observe(unit.nsectors)
                m.units.inc()
                if len(unit.parts) > 1:
                    m.merged.inc(len(unit.parts) - 1)
                for part in unit.parts:
                    m.start_delay_s.observe(sim.now - part.submit_time)
            if self._tracer is not None:
                with self._tracer.span(
                    "disk.service",
                    track=self.name,
                    cat="iosched",
                    trace=unit.parts[0].trace_id if unit.parts else 0,
                    lbn=unit.lbn,
                    nsectors=unit.nsectors,
                    op=unit.op,
                    parts=len(unit.parts),
                ):
                    yield from self.device.service(unit.lbn, unit.nsectors, unit.op)
            else:
                yield from self.device.service(unit.lbn, unit.nsectors, unit.op)
            self._head_lbn = unit.end
            self.stats.record_unit(unit.nsectors)
            done_at = sim.now
            self.scheduler.on_complete(unit, done_at)
            for part in unit.parts:
                part.completion.succeed(done_at)
            if self._congestion_waiters and not self.congested:
                waiters, self._congestion_waiters = self._congestion_waiters, []
                for ev in waiters:
                    ev.succeed()
