"""Deadline elevator: sector-sorted batches with per-op expiry FIFOs.

Follows the Linux deadline scheduler's structure: two sorted queues (reads
and writes), two FIFO queues carrying deadlines (reads 500 ms, writes 5 s),
batched dispatch from the sorted order (``fifo_batch`` units per batch),
jumping to the FIFO head when its deadline has expired, and a bias toward
reads (writes are serviced after ``writes_starved`` read batches).
"""

from __future__ import annotations

from collections import deque

from repro.iosched.base import DEFAULT_MAX_SECTORS, IoScheduler, SchedDecision
from repro.iosched.request import BlockRequest, IoUnit
from repro.iosched.squeue import SortedUnitQueue

__all__ = ["DeadlineScheduler"]


class DeadlineScheduler(IoScheduler):
    """Linux deadline elevator: sector-sorted batches, per-op expiry
    FIFOs, reads preferred with bounded write starvation."""

    def __init__(
        self,
        max_sectors: int = DEFAULT_MAX_SECTORS,
        read_expire_s: float = 0.5,
        write_expire_s: float = 5.0,
        fifo_batch: int = 16,
        writes_starved: int = 2,
    ):
        super().__init__(max_sectors)
        self.read_expire_s = read_expire_s
        self.write_expire_s = write_expire_s
        self.fifo_batch = fifo_batch
        self.writes_starved = writes_starved
        self._sorted = {"R": SortedUnitQueue(max_sectors), "W": SortedUnitQueue(max_sectors)}
        # FIFO of (deadline, unit).  Entries whose unit is no longer queued
        # (dispatched, or absorbed by a merge) are skipped lazily.
        self._fifo: dict[str, deque[tuple[float, IoUnit]]] = {"R": deque(), "W": deque()}  # simlint: ignore[SL006] bounded by queued units (nr_requests analogue upstream)
        self._batch_left = 0
        self._batch_op = "R"
        self._starved = 0

    def add(self, req: BlockRequest, now: float) -> None:
        q = self._sorted[req.op]
        n_before = len(q)
        merges_before = q.n_merges
        q.add(req)
        if q.n_merges == merges_before and len(q) == n_before + 1:
            # Genuinely new unit: give it a deadline entry.
            unit = self._unit_containing(q, req.lbn)
            expire = self.read_expire_s if req.op == "R" else self.write_expire_s
            self._fifo[req.op].append((now + expire, unit))
        self.n_merges = self._sorted["R"].n_merges + self._sorted["W"].n_merges

    @staticmethod
    def _unit_containing(q: SortedUnitQueue, lbn: int) -> IoUnit:
        import bisect

        idx = bisect.bisect_right(q._keys, lbn) - 1
        return q.units[idx]

    def _remove_sorted(self, op: str, unit: IoUnit) -> None:
        q = self._sorted[op]
        import bisect

        idx = bisect.bisect_left(q._keys, unit.lbn)
        while idx < len(q.units) and q.units[idx] is not unit:
            idx += 1
        if idx < len(q.units):
            del q.units[idx]
            del q._keys[idx]
        unit.queued = False

    def decide(self, now: float, head_lbn: int) -> SchedDecision:
        nr, nw = len(self._sorted["R"]), len(self._sorted["W"])
        if nr == 0 and nw == 0:
            return SchedDecision.empty()

        # Continue the current batch while quota and requests remain.
        if self._batch_left > 0 and len(self._sorted[self._batch_op]) > 0:
            unit = self._sorted[self._batch_op].pop_next(head_lbn)
            self._batch_left -= 1
            return SchedDecision.serve(unit)

        # Pick the op for the next batch: reads preferred unless writes starve.
        if nr > 0 and (nw == 0 or self._starved < self.writes_starved):
            op = "R"
            if nw > 0:
                self._starved += 1
        else:
            op = "W"
            self._starved = 0
        if len(self._sorted[op]) == 0:
            op = "R" if op == "W" else "W"

        # Drop stale FIFO heads; an expired live head pre-empts sorted order.
        fifo = self._fifo[op]
        while fifo and not fifo[0][1].queued:
            fifo.popleft()
        self._batch_op = op
        self._batch_left = self.fifo_batch - 1
        if fifo and fifo[0][0] <= now:
            _deadline, unit = fifo.popleft()
            self._remove_sorted(op, unit)
            return SchedDecision.serve(unit)

        return SchedDecision.serve(self._sorted[op].pop_next(head_lbn))

    def __len__(self) -> int:
        return len(self._sorted["R"]) + len(self._sorted["W"])
