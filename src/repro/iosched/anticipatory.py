"""Anticipatory elevator (simplified Linux AS).

One global sorted queue served in C-LOOK order, plus the anticipation
heuristic: after completing a read for stream S, if S has no further
request queued, hold the disk idle for ``antic_expire`` before moving to
another stream's (possibly distant) request -- synchronous readers almost
always issue a nearby follow-up just after their previous read completes
("deceptive idleness", Iyer & Druschel SOSP'01, cited by the paper).
"""

from __future__ import annotations

from repro.iosched.base import DEFAULT_MAX_SECTORS, IoScheduler, SchedDecision
from repro.iosched.request import BlockRequest
from repro.iosched.squeue import SortedUnitQueue

__all__ = ["AnticipatoryScheduler"]


class AnticipatoryScheduler(IoScheduler):
    """Simplified Linux AS: C-LOOK over one queue plus a short
    anticipation window after each read for the same stream's follow-up."""

    def __init__(self, max_sectors: int = DEFAULT_MAX_SECTORS, antic_expire_s: float = 0.006):
        super().__init__(max_sectors)
        self.antic_expire_s = antic_expire_s
        self._queue = SortedUnitQueue(max_sectors)
        self._last_stream: int | None = None
        self._antic_deadline: float | None = None

    def add(self, req: BlockRequest, now: float) -> None:
        self._queue.add(req)
        self.n_merges = self._queue.n_merges
        if req.stream_id == self._last_stream:
            # The anticipated request arrived; cancel the wait.
            self._antic_deadline = None

    def _stream_has_request(self, stream_id: int | None) -> bool:
        if stream_id is None:
            return False
        return any(
            any(p.stream_id == stream_id for p in unit.parts) for unit in self._queue.units
        )

    def decide(self, now: float, head_lbn: int) -> SchedDecision:
        if len(self._queue) == 0:
            if self._antic_deadline is not None and now < self._antic_deadline:
                return SchedDecision.idle(self._antic_deadline - now)
            self._antic_deadline = None
            return SchedDecision.empty()

        if (
            self._last_stream is not None
            and not self._stream_has_request(self._last_stream)
        ):
            # Anticipate a follow-up from the last-served reader.
            if self._antic_deadline is None:
                self._antic_deadline = now + self.antic_expire_s
            if now < self._antic_deadline:
                return SchedDecision.idle(self._antic_deadline - now)
        self._antic_deadline = None

        unit = self._queue.pop_next(head_lbn)
        if unit.op == "R" and unit.parts:
            self._last_stream = unit.parts[-1].stream_id
        else:
            self._last_stream = None
        return SchedDecision.serve(unit)

    def __len__(self) -> int:
        return len(self._queue)
