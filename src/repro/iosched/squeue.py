"""A sorted queue of IoUnits with O(log n) insertion and C-LOOK dispatch.

Maintains a parallel key list so ``bisect`` never has to rebuild keys --
DualPar floods servers with thousands of queued requests and the block
layer must stay out of the profile.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.iosched.request import BlockRequest, IoUnit

__all__ = ["SortedUnitQueue"]


class SortedUnitQueue:
    """LBN-sorted unit queue with adjacent-merge on insert."""

    def __init__(self, max_sectors: int):
        self.max_sectors = max_sectors
        self._units: list[IoUnit] = []
        self._keys: list[int] = []
        self.n_merges = 0

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self):
        return iter(self._units)

    @property
    def units(self) -> list[IoUnit]:
        return self._units

    def add(self, req: BlockRequest) -> None:
        """Insert, back/front-merging into a neighbour when contiguous."""
        idx = bisect.bisect_left(self._keys, req.lbn)
        if idx > 0 and self._units[idx - 1].can_back_merge(req, self.max_sectors):
            self._units[idx - 1].back_merge(req)
            self.n_merges += 1
            self._coalesce_at(idx - 1)
            return
        if idx < len(self._units) and self._units[idx].can_front_merge(req, self.max_sectors):
            unit = self._units[idx]
            unit.front_merge(req)
            self._keys[idx] = unit.lbn
            self.n_merges += 1
            self._coalesce_at(idx)
            return
        unit = IoUnit.from_request(req)
        self._units.insert(idx, unit)
        self._keys.insert(idx, unit.lbn)

    def _coalesce_at(self, idx: int) -> None:
        """After a merge grew unit ``idx``, it may now abut its successor."""
        if idx + 1 >= len(self._units):
            return
        a, b = self._units[idx], self._units[idx + 1]
        if a.op == b.op and a.end == b.lbn and a.nsectors + b.nsectors <= self.max_sectors:
            a.nsectors += b.nsectors
            a.parts.extend(b.parts)
            b.queued = False
            del self._units[idx + 1]
            del self._keys[idx + 1]
            self.n_merges += 1

    def pop_next(self, head_lbn: int) -> Optional[IoUnit]:
        """C-LOOK: next unit at or beyond the head, wrapping to the start."""
        if not self._units:
            return None
        idx = bisect.bisect_left(self._keys, head_lbn)
        if idx >= len(self._units):
            idx = 0
        unit = self._units.pop(idx)
        self._keys.pop(idx)
        unit.queued = False
        return unit

    def pop_front(self) -> Optional[IoUnit]:
        """Lowest-LBN unit (one-way elevator restart)."""
        if not self._units:
            return None
        self._keys.pop(0)
        unit = self._units.pop(0)
        unit.queued = False
        return unit
