"""NOOP elevator: FIFO dispatch with last-unit back merging only."""

from __future__ import annotations

from collections import deque

from repro.iosched.base import DEFAULT_MAX_SECTORS, IoScheduler, SchedDecision
from repro.iosched.request import BlockRequest, IoUnit

__all__ = ["NoopScheduler"]


class NoopScheduler(IoScheduler):
    """Service in arrival order; merge only into the most recent unit.

    This is the floor for service quality: it preserves whatever order the
    upper layers produced -- which is exactly why DualPar-style pre-sorted
    issuance still performs well even under NOOP, while unsorted trickle
    arrival performs terribly.
    """

    def __init__(self, max_sectors: int = DEFAULT_MAX_SECTORS):
        super().__init__(max_sectors)
        self._fifo: deque[IoUnit] = deque()  # simlint: ignore[SL006] bounded by queued units (nr_requests analogue upstream)

    def add(self, req: BlockRequest, now: float) -> None:
        if self._fifo:
            last = self._fifo[-1]
            if last.can_back_merge(req, self.max_sectors):
                last.back_merge(req)
                self.n_merges += 1
                return
            if last.can_front_merge(req, self.max_sectors):
                last.front_merge(req)
                self.n_merges += 1
                return
        self._fifo.append(IoUnit.from_request(req))

    def decide(self, now: float, head_lbn: int) -> SchedDecision:
        if not self._fifo:
            return SchedDecision.empty()
        return SchedDecision.serve(self._fifo.popleft())

    def __len__(self) -> int:
        return len(self._fifo)
