"""PVFS2-like parallel file system.

Files are striped over data servers in fixed units (64 KB by default, the
paper's PVFS2 configuration).  Each data server stores its portion of a
file in a contiguous on-disk extent, preserving the paper's observation
that "there is a good correspondence between file-level addresses and
disk-level addresses".  There is no client-side cache (PVFS2 semantics) --
DualPar's Memcached-backed global cache in :mod:`repro.cache` is the only
client-side buffering in the system.

Components:

- :class:`StripeLayout` -- offset <-> (server, object offset) math.
- :class:`FileSystem` + :class:`PfsFile` -- namespace and per-server
  extent allocation.
- :class:`DataServer` -- receives requests over the network, translates to
  LBNs, and drives its block layer; hosts the locality daemon that feeds
  DualPar's EMC.
- :class:`MetadataServer` -- namespace RPCs (open/create/stat).
- :class:`PfsClient` -- the compute-node side: splits file requests into
  striped server requests.
"""

from repro.pfs.layout import StripePiece, StripeLayout
from repro.pfs.filesystem import ExtentAllocator, FileSystem, PfsFile
from repro.pfs.dataserver import DataServer, LocalityDaemon
from repro.pfs.metaserver import MetadataServer
from repro.pfs.client import PfsClient

__all__ = [
    "DataServer",
    "ExtentAllocator",
    "FileSystem",
    "LocalityDaemon",
    "MetadataServer",
    "PfsClient",
    "PfsFile",
    "StripeLayout",
    "StripePiece",
]
