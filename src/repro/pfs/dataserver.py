"""Data server: network-facing I/O service over a block layer.

Each incoming request names a file, a byte range *within the server's
object* for that file, and the issuing stream.  The server translates to
LBNs using the file's extent, splits into <= ``max_io_bytes`` block
requests, submits them all at once (so the elevator sees the full batch),
and replies when the last completes.

The :class:`LocalityDaemon` is DualPar's per-server agent: every
``interval`` it snapshots the mean head seek distance over the elapsed
slot, building the ``SeekDist`` series EMC consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.disk.drive import BlockDevice
from repro.iosched.blocklayer import BlockLayer
from repro.net.ethernet import Network
from repro.pfs.filesystem import FileSystem
from repro.sim import Event, Interrupt, Simulator, all_of

__all__ = ["DataServer", "LocalityDaemon", "ServerRequest"]

#: Largest single block-layer submission; matches the 512 KB kernel cap.
DEFAULT_MAX_IO_BYTES = 512 * 1024

#: Fixed CPU cost to parse/dispatch one request at the server.
REQUEST_CPU_S = 20e-6

#: Incremental CPU cost per piece of a list-I/O request.
LIST_PIECE_CPU_S = 2e-6

#: Memory-copy bandwidth charged when a write lands in the server's RAM.
MEMCPY_BYTES_S = 3e9


def _absorb_interrupt(gen):
    """Run a service generator, ending quietly if the server crashes
    under it.  Ending via StopIteration (not a failure) matters: the
    client side may hold this process inside ``any_of``/``all_of``
    combinators, which propagate constituent *failures*."""
    try:
        yield from gen
    except Interrupt:
        return


@dataclass
class ServerRequest:
    """One object-range request as received from a client."""

    file_name: str
    object_offset: int
    length: int
    op: str  # 'R' | 'W'
    stream_id: int
    #: Observability trace-context id (0 = untraced); carried through to
    #: the block requests this server request fans out into.
    trace_id: int = 0
    #: Client-assigned id under fault injection (None nominally): a
    #: retried write re-sends the same id, and the server's commit log
    #: records each id at most once (exactly-once accounting).
    req_id: Optional[int] = None


class _DsMetrics:
    """Registry instruments for one data server (allocated when observed)."""

    __slots__ = ("requests", "bytes_read", "bytes_written")

    def __init__(self, registry, server_index: int):
        pre = f"pfs.ds{server_index}"
        self.requests = registry.counter(f"{pre}.requests")
        self.bytes_read = registry.counter(f"{pre}.bytes_read")
        self.bytes_written = registry.counter(f"{pre}.bytes_written")


class DataServer:
    """One PVFS2 data server."""

    def __init__(
        self,
        sim: Simulator,
        server_index: int,
        node_id: int,
        network: Network,
        fs: FileSystem,
        device: BlockDevice,
        block_layer: BlockLayer,
        max_io_bytes: int = DEFAULT_MAX_IO_BYTES,
        n_io_threads: int = 4,
        page_cache: Optional["ServerPageCache"] = None,
        writeback_interval_s: Optional[float] = None,
    ):
        from repro.pfs.pagecache import ServerPageCache

        self.sim = sim
        self.server_index = server_index
        self.node_id = node_id
        self.network = network
        self.fs = fs
        self.device = device
        self.block_layer = block_layer
        self.max_io_bytes = max_io_bytes
        self.page_cache = page_cache if page_cache is not None else ServerPageCache()
        #: Optional kernel-flusher-style write-back buffer (the paper's
        #: servers force dirty writeback every second).
        if writeback_interval_s is not None:
            from repro.pfs.writeback import WritebackBuffer

            self.writeback: Optional["WritebackBuffer"] = WritebackBuffer(
                sim, self, flush_interval_s=writeback_interval_s
            )
        else:
            self.writeback = None
        #: In-flight reads per file: (start, end, completion event).
        self._inflight: dict[str, list] = {}
        #: The PVFS2 server performs disk I/O from a small pool of worker
        #: threads; the kernel elevator sees THOSE contexts, not the remote
        #: MPI ranks.  Client streams are folded onto the pool.
        self.n_io_threads = n_io_threads
        self.n_requests = 0
        self.bytes_served = 0
        # Fault state (inert until enable_fault_tracking()).
        self.crashed = False
        self.n_dropped_requests = 0
        self.n_crashes = 0
        self.n_recoveries = 0
        self.lost_dirty_bytes = 0
        #: Live service processes (insertion-ordered), tracked only under
        #: fault injection so a crash can interrupt in-flight work.
        self._service_procs: Optional[dict] = None
        #: Committed write req_ids in commit order, tracked only under
        #: fault injection (the exactly-once property's observable).
        self.commit_log: Optional[list[int]] = None
        self._committed_ids: set[int] = set()
        self._metrics: Optional[_DsMetrics] = (
            _DsMetrics(sim.obs.registry, server_index) if sim.obs.enabled else None
        )
        self._tracer = sim.obs.tracer if sim.obs.enabled else None
        if sim._sanitizer is not None:
            sim._sanitizer.on_component_registered(f"ds{server_index}")
        #: Dynamic simown checker (None unless REPRO_SANITIZE_OWNERSHIP=1):
        #: this server, its block layer, device, and write-back buffer all
        #: live in one logical process; the daemons adopt it.
        self._ownership = (
            sim._sanitizer.ownership if sim._sanitizer is not None else None
        )
        if self._ownership is not None:
            own = self._ownership
            lp = f"server:ds{server_index}"
            own.tag(self, lp)
            own.tag(block_layer, lp)
            own.tag(device, lp)
            own.tag(self.page_cache, lp)
            own.map_node(node_id, lp)
            own.adopt(block_layer._dispatcher, lp)
            if self.writeback is not None:
                own.tag(self.writeback, lp)
                own.adopt(self.writeback._proc, lp)

    def _io_context(self, client_stream: int) -> int:
        return client_stream % self.n_io_threads

    # -- fault lifecycle -------------------------------------------------

    def enable_fault_tracking(self) -> None:
        """Arm crash support: track service processes and committed write
        ids.  Called by the fault injector at install time; nominal runs
        never pay for either."""
        if self._service_procs is None:
            self._service_procs = {}
        if self.commit_log is None:
            self.commit_log = []

    def crash(self) -> None:
        """Power-fail the server: in-flight services stop, queued client
        requests are black-holed, and volatile state (page cache, dirty
        write-back data) is lost."""
        from repro.sim import SimulationError

        if self.crashed:
            raise SimulationError(f"ds{self.server_index} is already crashed")
        self.crashed = True
        self.n_crashes += 1
        san = self.sim._sanitizer
        if san is not None:
            san.on_component_unregistered(f"ds{self.server_index}")
        procs = self._service_procs
        if procs is not None:
            for proc in list(procs):
                if proc.is_alive:
                    proc.interrupt("server-crash")
            procs.clear()
        if self.writeback is not None:
            self.lost_dirty_bytes += self.writeback.drop_all()
        # RAM is gone: post-recovery reads go back to the platters.
        from repro.pfs.pagecache import ServerPageCache

        old = self.page_cache
        self.page_cache = ServerPageCache()
        self.page_cache.n_hits = old.n_hits
        self.page_cache.n_misses = old.n_misses
        self._inflight = {}

    def recover(self) -> None:
        """Restart after :meth:`crash`: accept requests again (cold)."""
        from repro.sim import SimulationError

        san = self.sim._sanitizer
        if san is not None:
            # A double recover() must not double-register the component.
            san.on_component_registered(f"ds{self.server_index}")
        if not self.crashed:
            raise SimulationError(f"ds{self.server_index} is not crashed")
        self.crashed = False
        self.n_recoveries += 1

    def _spawn(self, gen, name: str):
        """Service-process spawn point: tracked (and interrupt-absorbing)
        under fault injection, a plain process nominally."""
        procs = self._service_procs
        if procs is None:
            proc = self.sim.process(gen, name=name)
        else:
            proc = self.sim.process(_absorb_interrupt(gen), name=name)
            procs[proc] = None
            proc.callbacks.append(self._untrack)
        if self._ownership is not None:
            # Service work runs in the *server's* LP even though the
            # spawning call arrives in a client-LP process.
            self._ownership.adopt(proc, f"server:ds{self.server_index}")
        return proc

    def _untrack(self, event) -> None:
        procs = self._service_procs
        if procs is not None:
            procs.pop(event, None)

    def _commit(self, req: ServerRequest) -> None:
        """Record a durably serviced write exactly once per req_id.

        Runs atomically (no yields) with the ``done`` notification, so a
        request is committed iff its client observes success.
        """
        log = self.commit_log
        if log is not None and req.op == "W" and req.req_id is not None:
            if req.req_id not in self._committed_ids:
                self._committed_ids.add(req.req_id)
                log.append(req.req_id)

    # ------------------------------------------------------------------

    def handle(self, req: ServerRequest) -> Event:
        """Start servicing a request; returns an event firing when the
        data is on disk (write) or read off the platters (read).

        Network transfer of the payload is the *client's* side of the
        conversation -- see :class:`~repro.pfs.client.PfsClient`.

        A crashed server black-holes the request: the event never fires
        and the fault-aware client's timeout/retry path takes over.
        """
        if self._ownership is not None:
            self._ownership.check(self, "handle")
        done = self.sim.event()
        if self.crashed:
            self.n_dropped_requests += 1
            return done
        self._spawn(self._service(req, done), name=f"ds{self.server_index}-svc")
        return done

    def _submit_blocks(self, req: ServerRequest, is_async: bool = False) -> list[Event]:
        """Translate one object range to block requests; submit them all.

        Does NOT honour queue congestion -- use :meth:`_submit_blocks_throttled`
        from generator contexts that may flood the elevator.
        """
        san = self.sim._sanitizer
        if san is not None:
            san.on_server_dispatch(self)
        # simown: shared[namespace read; layout immutable after create]
        f = self.fs.lookup(req.file_name)
        lbn = f.lbn_of(self.server_index, req.object_offset)
        nsectors_total = -(-req.length // 512)
        max_sectors = self.max_io_bytes // 512
        completions = []
        pos = 0
        while pos < nsectors_total:
            take = min(max_sectors, nsectors_total - pos)
            completions.append(
                self.block_layer.submit(
                    lbn + pos,
                    take,
                    op=req.op,
                    stream_id=self._io_context(req.stream_id),
                    is_async=is_async,
                    trace_id=req.trace_id,
                )
            )
            pos += take
        return completions

    def _submit_blocks_throttled(self, req: ServerRequest, is_async: bool = False):
        """Like :meth:`_submit_blocks`, but a server thread sleeping in
        ``get_request_wait`` when the elevator queue is congested
        (nr_requests).  Generator; returns the completion-event list."""
        san = self.sim._sanitizer
        if san is not None:
            san.on_server_dispatch(self)
        # simown: shared[namespace read; layout immutable after create]
        f = self.fs.lookup(req.file_name)
        lbn = f.lbn_of(self.server_index, req.object_offset)
        nsectors_total = -(-req.length // 512)
        max_sectors = self.max_io_bytes // 512
        completions = []
        pos = 0
        while pos < nsectors_total:
            yield from self.block_layer.throttle()
            if self.crashed:
                # The server died while this thread slept in the throttle
                # gate (e.g. the writeback flusher): abandon the rest.
                return completions
            take = min(max_sectors, nsectors_total - pos)
            completions.append(
                self.block_layer.submit(
                    lbn + pos,
                    take,
                    op=req.op,
                    stream_id=self._io_context(req.stream_id),
                    is_async=is_async,
                    trace_id=req.trace_id,
                )
            )
            pos += take
        return completions

    def _object_bytes(self, file_name: str) -> int:
        # simown: shared[namespace read; layout immutable after create]
        f = self.fs.lookup(file_name)
        return f.layout.object_size(f.size, self.server_index)

    def _overlapping_inflight(self, file_name: str, start: int, end: int) -> list[Event]:
        return [
            ev
            for s, e, ev in self._inflight.get(file_name, [])
            if s < end and e > start
        ]

    def _perform_io(self, req: ServerRequest):
        """Page-cache-aware disk access for one object range."""
        sim = self.sim
        pc = self.page_cache
        if req.op == "W":
            pc.invalidate(req.file_name, req.object_offset, req.length)
            if self.writeback is not None and not self.writeback.over_limit:
                # Write-back: dirty the range in RAM and return; the
                # flusher daemon writes it to disk within its interval.
                self.writeback.add(req.file_name, req.object_offset, req.length)
                yield sim.timeout(req.length / MEMCPY_BYTES_S)
                return
            completions = yield from self._submit_blocks_throttled(req)
            yield all_of(sim, completions)
            return
        start, end = req.object_offset, req.object_offset + req.length
        if self.writeback is not None and self.writeback.covers(
            req.file_name, start, req.length
        ):
            # Read of dirty not-yet-flushed data: served from RAM.
            yield sim.timeout(req.length / MEMCPY_BYTES_S)
            return
        if pc.contains(req.file_name, start, req.length):
            pc.n_hits += 1
            trigger = pc.on_hit(req.file_name, start, req.length, self._io_context(req.stream_id))
            if trigger is not None:
                ra_start, ra_len = trigger
                obj_end = self._object_bytes(req.file_name)
                ra_end = min(ra_start + ra_len, obj_end)
                if (
                    ra_end > ra_start
                    and not self.block_layer.congested
                    and not pc.contains(req.file_name, ra_start, ra_end - ra_start)
                ):
                    pc.insert(req.file_name, ra_start, ra_end - ra_start)
                    ra_req = ServerRequest(
                        file_name=req.file_name,
                        object_offset=ra_start,
                        length=ra_end - ra_start,
                        op="R",
                        stream_id=req.stream_id,
                        trace_id=req.trace_id,
                    )
                    self._spawn(
                        self._disk_read_tracked(ra_req, ra_start, ra_end, is_async=True),
                        name=f"ds{self.server_index}-ra",
                    )
            waits = self._overlapping_inflight(req.file_name, start, end)
            if waits:
                yield all_of(sim, waits)
            return
        pc.n_misses += 1
        extra = pc.record_access(req.file_name, start, req.length, self._io_context(req.stream_id))
        read_end = min(end + extra, self._object_bytes(req.file_name))
        read_end = max(read_end, end)
        # Mark resident immediately so concurrent overlapping reads wait on
        # the in-flight event instead of re-reading (page-lock semantics).
        pc.insert(req.file_name, start, read_end - start)
        yield from self._disk_read_tracked(req, start, end, is_async=False)
        if read_end > end:
            # Asynchronous readahead: the extension proceeds in the
            # background while the caller's reply departs -- and it keeps
            # the elevator queue busy, exactly as kernel readahead does.
            ra_req = ServerRequest(
                file_name=req.file_name,
                object_offset=end,
                length=read_end - end,
                op="R",
                stream_id=req.stream_id,
                trace_id=req.trace_id,
            )
            self._spawn(
                self._disk_read_tracked(ra_req, end, read_end, is_async=True),
                name=f"ds{self.server_index}-ra",
            )

    def _disk_read_tracked(self, req: ServerRequest, start: int, end: int, is_async: bool = False):
        sim = self.sim
        inflight_ev = sim.event()
        entry = (start, end, inflight_ev)
        self._inflight.setdefault(req.file_name, []).append(entry)
        try:
            disk_req = ServerRequest(
                file_name=req.file_name,
                object_offset=start,
                length=end - start,
                op="R",
                stream_id=req.stream_id,
                trace_id=req.trace_id,
            )
            completions = yield from self._submit_blocks_throttled(
                disk_req, is_async=is_async
            )
            yield all_of(sim, completions)
        finally:
            # A crash interrupt can unwind this frame after crash() has
            # replaced the inflight map; only remove what is still there.
            entries = self._inflight.get(req.file_name)
            if entries is not None and entry in entries:
                entries.remove(entry)
            inflight_ev.succeed()

    def _service(self, req: ServerRequest, done: Event):
        sim = self.sim
        tr = self._tracer
        if tr is not None:
            # Async span: many server requests overlap on one server track.
            with tr.span(
                "pfs.server",
                track=f"ds{self.server_index}",
                cat="pfs",
                trace=req.trace_id,
                async_=True,
                op=req.op,
                length=req.length,
                file=req.file_name,
                lp=f"server:ds{self.server_index}",
            ):
                yield sim.timeout(REQUEST_CPU_S)
                yield from self._perform_io(req)
        else:
            yield sim.timeout(REQUEST_CPU_S)
            yield from self._perform_io(req)
        self._commit(req)
        self.n_requests += 1
        self.bytes_served += req.length
        m = self._metrics
        if m is not None:
            m.requests.inc()
            (m.bytes_read if req.op == "R" else m.bytes_written).inc(req.length)
        done.succeed(sim.now)

    # ------------------------------------------------------------------

    def handle_list(self, reqs: list[ServerRequest]) -> Event:
        """List I/O: many object ranges delivered in ONE request message.

        All pieces hit the block layer together, so the elevator sees the
        whole batch at once -- the mechanism DualPar's CRM and collective
        aggregators rely on for deep, sortable queues.
        """
        if self._ownership is not None:
            self._ownership.check(self, "handle_list")
        done = self.sim.event()
        if self.crashed:
            self.n_dropped_requests += len(reqs)
            return done
        self._spawn(self._service_list(reqs, done), name=f"ds{self.server_index}-list")
        return done

    def _service_list(self, reqs: list[ServerRequest], done: Event):
        sim = self.sim
        tr = self._tracer
        if tr is not None:
            with tr.span(
                "pfs.server_list",
                track=f"ds{self.server_index}",
                cat="pfs",
                trace=reqs[0].trace_id if reqs else 0,
                async_=True,
                pieces=len(reqs),
                bytes=sum(r.length for r in reqs),
                lp=f"server:ds{self.server_index}",
            ):
                yield from self._service_list_body(reqs)
        else:
            yield from self._service_list_body(reqs)
        for r in reqs:
            self._commit(r)
        self.n_requests += len(reqs)
        total = sum(r.length for r in reqs)
        self.bytes_served += total
        m = self._metrics
        if m is not None:
            m.requests.inc(len(reqs))
            for r in reqs:
                (m.bytes_read if r.op == "R" else m.bytes_written).inc(r.length)
        done.succeed(sim.now)

    def _service_list_body(self, reqs: list[ServerRequest]):
        sim = self.sim
        yield sim.timeout(REQUEST_CPU_S + LIST_PIECE_CPU_S * len(reqs))
        pieces = [
            self._spawn(self._perform_io(req), name=f"ds{self.server_index}-piece")
            for req in reqs
        ]
        yield all_of(sim, pieces)


class LocalityDaemon:
    """Samples per-slot mean seek distance on one data server.

    The paper: "we set up a locality daemon at each data server, which
    tracks disk head seek distance, SeekDist ... and use it as a metric
    for quantifying I/O efficiency".
    """

    def __init__(
        self,
        sim: Simulator,
        device: BlockDevice,
        interval_s: float = 1.0,
        name: str = "locality",
    ):
        from repro.obs.sampling import PeriodicSampler

        self.sim = sim
        self.device = device
        self.interval_s = interval_s
        self.name = name
        #: (slot_end_time, mean seek sectors, n requests in slot)
        self.samples: list[tuple[float, float, int]] = []
        self._last_n = 0
        self._last_seek = 0
        #: When observed, the SeekDist series is also published.
        self._series = (
            sim.obs.registry.timeseries(f"locality.{name}.seekdist")
            if sim.obs.enabled
            else None
        )
        self._sampler = PeriodicSampler(sim, interval_s, self._probe, name=name)
        self._proc = self._sampler._proc

    def _probe(self, now: float) -> None:
        stats = self.device.stats
        dn = stats.n_requests - self._last_n
        dseek = stats.total_seek_sectors - self._last_seek
        mean = (dseek / dn) if dn > 0 else 0.0
        self.samples.append((now, mean, dn))
        if self._series is not None:
            self._series.record(now, mean)
        self._last_n = stats.n_requests
        self._last_seek = stats.total_seek_sectors

    def recent_seek_dist(self, n_slots: int = 3) -> Optional[float]:
        """Average SeekDist over the last ``n_slots`` active slots."""
        active = [(t, m, n) for t, m, n in self.samples[-8 * n_slots :] if n > 0]
        if not active:
            return None
        tail = active[-n_slots:]
        total_req = sum(n for _, _, n in tail)
        if total_req == 0:
            return None
        return sum(m * n for _, m, n in tail) / total_req
