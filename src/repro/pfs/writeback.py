"""Server-side write-back caching with a periodic flusher.

The paper's testbed note: "For write tests, we force dirty pages being
written back every one second on each data server."  With write-back
enabled, a write request completes once the data is in the server's
memory; a flusher daemon wakes every ``flush_interval_s``, collects the
dirty ranges, sorts them, and submits them to the block layer as one
async batch -- the kernel's own little request scheduler.

Disabled by default (`ClusterSpec.server_writeback=False`): write-through
matches the calibration in DESIGN.md §5, and the ablation bench
quantifies what the kernel flusher changes.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING

from repro.sim import Simulator, all_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.dataserver import DataServer

__all__ = ["WritebackBuffer"]


class WritebackBuffer:
    """Per-server dirty-range buffer plus the flusher daemon."""

    def __init__(
        self,
        sim: Simulator,
        server: "DataServer",
        flush_interval_s: float = 1.0,
        max_dirty_bytes: int = 64 * 1024 * 1024,
    ):
        if flush_interval_s <= 0:
            raise ValueError("flush interval must be positive")
        if max_dirty_bytes <= 0:
            raise ValueError("max_dirty_bytes must be positive")
        self.sim = sim
        self.server = server
        self.flush_interval_s = flush_interval_s
        self.max_dirty_bytes = max_dirty_bytes
        #: file -> sorted disjoint dirty [start, end) object ranges
        self._dirty: dict[str, list[tuple[int, int]]] = {}
        self.dirty_bytes = 0
        self.n_flushes = 0
        self.flushed_bytes = 0
        #: Guard memory budget (repro.guard.MemoryBudget) when a safety
        #: governor is attached; None nominally.  The dirty backlog is
        #: charged against this server's node, and reaching the node cap
        #: paces the flusher early (backpressure instead of growth).
        self.budget = None
        self._flush_gate = None
        self._proc = sim.process(
            self._flusher(), name=f"wb-{server.server_index}", daemon=True
        )

    # ------------------------------------------------------------------

    def add(self, file_name: str, offset: int, length: int) -> None:
        """Record a dirty object range (the write has landed in RAM)."""
        if length <= 0:
            return
        ivs = self._dirty.setdefault(file_name, [])
        s, e = offset, offset + length
        idx = bisect.bisect_left(ivs, (s, s))
        lo = idx
        while lo > 0 and ivs[lo - 1][1] >= s:
            lo -= 1
        hi = idx
        while hi < len(ivs) and ivs[hi][0] <= e:
            hi += 1
        removed = 0
        for i in range(lo, hi):
            removed += ivs[i][1] - ivs[i][0]
            s = min(s, ivs[i][0])
            e = max(e, ivs[i][1])
        ivs[lo:hi] = [(s, e)]
        delta = (e - s) - removed
        self.dirty_bytes += delta
        budget = self.budget
        if budget is not None and delta > 0:
            budget.charge(delta, node=self.server.node_id)
        kick = self.dirty_bytes >= self.max_dirty_bytes
        if not kick and budget is not None and budget.node_over(self.server.node_id):
            # Node-level cap reached: pace the writeback ahead of schedule.
            kick = True
            budget.record_paced()
        if kick and self._flush_gate is not None:
            # Memory pressure: kick the flusher early.
            gate, self._flush_gate = self._flush_gate, None
            if not gate.triggered:
                gate.succeed()

    @property
    def over_limit(self) -> bool:
        return self.dirty_bytes >= self.max_dirty_bytes

    def drop_all(self) -> int:
        """Discard every dirty range (server crash: RAM contents are
        gone).  Returns the number of bytes lost."""
        lost = self.dirty_bytes
        self._dirty = {}
        self.dirty_bytes = 0
        if self.budget is not None and lost:
            self.budget.release(lost, node=self.server.node_id)
        return lost

    def covers(self, file_name: str, offset: int, length: int) -> bool:
        """Is [offset, offset+length) fully dirty (servable from RAM)?"""
        if length <= 0:
            return True
        ivs = self._dirty.get(file_name)
        if not ivs:
            return False
        idx = bisect.bisect_right(ivs, (offset, float("inf"))) - 1
        if idx < 0:
            return False
        s, e = ivs[idx]
        return s <= offset and offset + length <= e

    # ------------------------------------------------------------------

    def _flusher(self):
        sim = self.sim
        from repro.sim import any_of

        while True:
            self._flush_gate = sim.event()
            yield any_of(sim, [sim.timeout(self.flush_interval_s), self._flush_gate])
            self._flush_gate = None
            yield from self.flush()

    def flush(self):
        """Write every dirty range back, sorted, as one async batch."""
        if not self._dirty:
            return
        batch, self._dirty = self._dirty, {}
        flushed = self.dirty_bytes
        self.dirty_bytes = 0
        if self.budget is not None and flushed:
            self.budget.release(flushed, node=self.server.node_id)
        from repro.pfs.dataserver import ServerRequest

        completions = []
        for file_name in sorted(batch):
            for s, e in batch[file_name]:
                if self.server.crashed:
                    # The server died mid-flush: the rest of the batch is
                    # lost with the RAM it lived in.
                    return
                req = ServerRequest(
                    file_name=file_name,
                    object_offset=s,
                    length=e - s,
                    op="W",
                    stream_id=0,
                )
                reqs = yield from self.server._submit_blocks_throttled(
                    req, is_async=True
                )
                completions.extend(reqs)
        self.n_flushes += 1
        self.flushed_bytes += flushed
        if completions:
            yield all_of(self.sim, completions)
