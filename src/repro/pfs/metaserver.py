"""Metadata server: namespace RPCs.

Open/create/stat are round-trips to the metadata node (costed over the
network); data transfers never touch it.  DualPar's EMC daemon is *hosted*
on this node (see :mod:`repro.core.emc`) because mode decisions are made
per program, not per process -- the paper places the decision maker here
for the same reason.
"""

from __future__ import annotations

from typing import Generator

from repro.net.ethernet import Network
from repro.pfs.filesystem import FileSystem, PfsFile
from repro.sim import Simulator

__all__ = ["MetadataServer"]

#: CPU cost of one metadata operation.
METADATA_OP_CPU_S = 50e-6
#: Size of a metadata RPC message.
METADATA_MSG_BYTES = 256


class MetadataServer:
    """The PVFS2 metadata server: namespace RPCs over the network; the
    node that hosts DualPar's EMC daemon."""

    def __init__(self, sim: Simulator, node_id: int, network: Network, fs: FileSystem):
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self.fs = fs
        self.n_ops = 0
        #: Data-server health map, installed by the fault injector (None
        #: nominally).  Clients learn server liveness through metadata,
        #: exactly as they learn the server list.
        self.health = None
        #: Dynamic simown checker (None unless REPRO_SANITIZE_OWNERSHIP=1):
        #: the namespace lives in the "meta" LP; clients reach it only
        #: through these RPCs, whose inbound transfer grants access.
        self._ownership = (
            sim._sanitizer.ownership if sim._sanitizer is not None else None
        )
        if self._ownership is not None:
            self._ownership.tag(self, "meta")
            self._ownership.map_node(node_id, "meta")

    def rpc_create(self, client_node: int, name: str, size: int) -> Generator:
        """Create a file; yields until the RPC round-trip completes."""
        yield from self.network.transfer(client_node, self.node_id, METADATA_MSG_BYTES)
        if self._ownership is not None:
            self._ownership.check(self, "rpc_create")
        yield self.sim.timeout(METADATA_OP_CPU_S)
        f = self.fs.create(name, size)
        self.n_ops += 1
        yield from self.network.transfer(self.node_id, client_node, METADATA_MSG_BYTES)
        return f

    def rpc_open(self, client_node: int, name: str) -> Generator:
        """Look up a file; yields until the RPC round-trip completes."""
        yield from self.network.transfer(client_node, self.node_id, METADATA_MSG_BYTES)
        if self._ownership is not None:
            self._ownership.check(self, "rpc_open")
        yield self.sim.timeout(METADATA_OP_CPU_S)
        f = self.fs.lookup(name)
        self.n_ops += 1
        yield from self.network.transfer(self.node_id, client_node, METADATA_MSG_BYTES)
        return f
