"""Server-side page cache with Linux-style sequential readahead.

The paper's baseline relies on it implicitly: "Without system-level
prefetching triggered by fully sequential data access, a process issues
its synchronous read requests one at a time" -- i.e. when accesses ARE
sequential at a data server, the kernel's readahead turns them into large
disk reads and absorbs rotational latency.  Without this mechanism every
16 KB request would pay ~half a revolution and vanilla MPI-IO would be
absurdly slow, which it is not (115 MB/s in Fig 3).

Model (per served file object):

- a *readahead state*: the end offset of the last read and the current
  window; a read starting within ``slack`` of the last end is sequential
  and doubles the window (``ra_start`` up to ``ra_max``), anything else
  resets it;
- a *cached-extent* map: byte intervals already resident; fully-cached
  reads skip the disk.

Capacity is a FIFO over inserted extents (real page reclaim is LRU over
pages; at our granularity FIFO-over-extents is equivalent in effect).
"""

from __future__ import annotations

import bisect
from collections import OrderedDict, deque
from dataclasses import dataclass, field

__all__ = ["ServerPageCache"]


@dataclass
class _RaState:
    last_end: int = -1
    window: int = 0


class ServerPageCache:
    """Per-server page cache: resident-extent map plus per-(file, context)
    readahead state with hit-triggered async windows."""

    def __init__(
        self,
        capacity_bytes: int = 256 * 1024 * 1024,
        ra_start: int = 32 * 1024,
        ra_max: int = 128 * 1024,
        slack: int = 48 * 1024,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.ra_start = ra_start
        self.ra_max = ra_max
        self.slack = slack
        #: file -> sorted, disjoint [start, end) extents
        self._extents: dict[str, list[tuple[int, int]]] = {}
        #: readahead state is per (file, io context) -- the kernel keeps it
        #: per struct file, i.e. per server I/O thread, so interleaved
        #: access from many contexts thrashes detection exactly as it does
        #: on a real data server.
        self._ra: dict[tuple[str, int], _RaState] = {}
        self._fifo: deque[tuple[str, int, int]] = deque()  # simlint: ignore[SL006] eviction order over resident pages; bounded by capacity_bytes
        self.resident_bytes = 0
        self.n_hits = 0
        self.n_misses = 0

    # --------------------------------------------------------------- lookup

    def contains(self, file_name: str, offset: int, length: int) -> bool:
        """Is [offset, offset+length) fully resident?"""
        if length <= 0:
            return True
        ivs = self._extents.get(file_name)
        if not ivs:
            return False
        idx = bisect.bisect_right(ivs, (offset, float("inf"))) - 1
        if idx < 0:
            return False
        s, e = ivs[idx]
        return s <= offset and offset + length <= e

    def record_access(
        self, file_name: str, offset: int, length: int, context: int = 0
    ) -> int:
        """Update readahead state; return extra bytes to read ahead.

        Call on a cache MISS before issuing the disk read.  The caller
        should read ``[offset, offset+length+extra)`` (clipped to the
        object) and then :meth:`insert` what it read.
        """
        ra_key = (file_name, context)
        st = self._ra.get(ra_key)
        if st is None:
            st = _RaState()
            self._ra[ra_key] = st
        gap = offset - st.last_end if st.last_end >= 0 else None
        if gap is not None and -self.slack <= gap <= self.slack:
            st.window = min(max(st.window * 2, self.ra_start), self.ra_max)
        else:
            st.window = 0
        st.last_end = offset + length + st.window
        return st.window

    def on_hit(self, file_name: str, offset: int, length: int, context: int = 0):
        """Hit-path readahead trigger (Linux's PG_readahead marker).

        When a sequential reader consumes into the trailing part of the
        scheduled window, schedule the next window asynchronously so the
        stream never stalls on a miss.  Returns (start, length) of the
        region to read in the background, or None.
        """
        st = self._ra.get((file_name, context))
        if st is None or st.window <= 0 or st.last_end < 0:
            return None
        end = offset + length
        if end < st.last_end - st.window:
            # Not yet into the final scheduled window (the PG_readahead
            # marker page sits at the start of the last window).
            return None
        if end > st.last_end + self.slack:
            return None  # not this stream (random far access)
        st.window = min(max(st.window * 2, self.ra_start), self.ra_max)
        start = st.last_end
        st.last_end = start + st.window
        return (start, st.window)

    # --------------------------------------------------------------- insert

    def insert(self, file_name: str, offset: int, length: int) -> None:
        if length <= 0:
            return
        ivs = self._extents.setdefault(file_name, [])
        s, e = offset, offset + length
        # Merge with overlapping/adjacent neighbours.
        idx = bisect.bisect_left(ivs, (s, s))
        lo = idx
        while lo > 0 and ivs[lo - 1][1] >= s:
            lo -= 1
        hi = idx
        while hi < len(ivs) and ivs[hi][0] <= e:
            hi += 1
        removed = 0
        for i in range(lo, hi):
            removed += ivs[i][1] - ivs[i][0]
            s = min(s, ivs[i][0])
            e = max(e, ivs[i][1])
        ivs[lo:hi] = [(s, e)]
        self.resident_bytes += (e - s) - removed
        self._fifo.append((file_name, s, e))
        self._evict()

    def invalidate(self, file_name: str, offset: int, length: int) -> None:
        """Drop any cached bytes overlapping a written range."""
        ivs = self._extents.get(file_name)
        if not ivs or length <= 0:
            return
        s, e = offset, offset + length
        out = []
        for a, b in ivs:
            if b <= s or a >= e:
                out.append((a, b))
                continue
            self.resident_bytes -= min(b, e) - max(a, s)
            if a < s:
                out.append((a, s))
            if b > e:
                out.append((e, b))
        self._extents[file_name] = out

    def _evict(self) -> None:
        while self.resident_bytes > self.capacity_bytes and self._fifo:
            fname, s, e = self._fifo.popleft()
            ivs = self._extents.get(fname)
            if not ivs:
                continue
            # The recorded extent may have been merged/split since; drop
            # whatever of it is still resident.
            before = self.resident_bytes
            self.invalidate(fname, s, e - s)
            if self.resident_bytes == before:
                continue  # already gone; keep evicting
