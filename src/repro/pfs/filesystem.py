"""Namespace and on-disk extent allocation.

Each file's per-server object occupies one contiguous LBN extent on that
server's disk.  The allocator can place extents two ways:

``spread`` (default)
    Files rotate across allocation groups spanning the whole disk, as
    general-purpose filesystems do.  Two concurrently-accessed files are
    then typically far apart, producing the long inter-file seeks of
    Fig 6.
``packed``
    Extents allocated back-to-back (plus a configurable gap) from the
    start of the disk -- useful for controlled unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disk.geometry import SECTOR_BYTES
from repro.pfs.layout import StripeLayout

__all__ = ["ExtentAllocator", "FileSystem", "PfsFile"]


@dataclass(frozen=True)
class Extent:
    """A contiguous sector run on one server's disk."""

    start_lbn: int
    n_sectors: int

    @property
    def end_lbn(self) -> int:
        return self.start_lbn + self.n_sectors


class ExtentAllocator:
    """Allocates per-file extents on one server's disk."""

    def __init__(
        self,
        total_sectors: int,
        placement: str = "spread",
        n_groups: int = 16,
        gap_sectors: int = 2048,
    ):
        if placement not in ("spread", "packed"):
            raise ValueError(f"unknown placement {placement!r}")
        self.total_sectors = total_sectors
        self.placement = placement
        self.n_groups = n_groups
        self.gap_sectors = gap_sectors
        self._next_group = 0
        self._group_cursor = [
            (total_sectors // n_groups) * g for g in range(n_groups)
        ]
        self._packed_cursor = 0

    def allocate(self, n_sectors: int) -> Extent:
        if n_sectors <= 0:
            n_sectors = 1
        if self.placement == "packed":
            start = self._packed_cursor
            if start + n_sectors > self.total_sectors:
                raise RuntimeError("server disk full (packed)")
            self._packed_cursor = start + n_sectors + self.gap_sectors
            return Extent(start, n_sectors)
        # spread: round-robin across allocation groups
        for _ in range(self.n_groups):
            g = self._next_group
            self._next_group = (self._next_group + 1) % self.n_groups
            start = self._group_cursor[g]
            limit = (
                self.total_sectors
                if g == self.n_groups - 1
                else (self.total_sectors // self.n_groups) * (g + 1)
            )
            if start + n_sectors <= limit:
                self._group_cursor[g] = start + n_sectors + self.gap_sectors
                return Extent(start, n_sectors)
        raise RuntimeError("server disk full (spread)")


@dataclass
class PfsFile:
    """A striped file: layout plus one extent per data server."""

    name: str
    size: int
    layout: StripeLayout
    extents: dict[int, Extent] = field(default_factory=dict)

    def lbn_of(self, server: int, object_offset: int) -> int:
        """Disk LBN of a byte offset within this file's object on ``server``."""
        ext = self.extents[server]
        sector = object_offset // SECTOR_BYTES
        if sector >= ext.n_sectors:
            raise ValueError(
                f"object offset {object_offset} beyond extent of {self.name} on server {server}"
            )
        return ext.start_lbn + sector


class FileSystem:
    """The PVFS2 namespace: file creation and lookup.

    One instance is shared by the metadata server (which answers RPCs
    about it) and the data servers (which consult extents directly --
    modelling their local Berkeley-DB object maps).
    """

    def __init__(self, layout: StripeLayout, allocators: list[ExtentAllocator]):
        if len(allocators) != layout.n_servers:
            raise ValueError("need one allocator per data server")
        self.layout = layout
        self.allocators = allocators
        self.files: dict[str, PfsFile] = {}

    def create(self, name: str, size: int) -> PfsFile:
        if name in self.files:
            raise FileExistsError(name)
        if size <= 0:
            raise ValueError("file size must be positive")
        f = PfsFile(name=name, size=size, layout=self.layout)
        for server in range(self.layout.n_servers):
            obj_bytes = self.layout.object_size(size, server)
            n_sectors = max(-(-obj_bytes // SECTOR_BYTES), 1)
            f.extents[server] = self.allocators[server].allocate(n_sectors)
        self.files[name] = f
        return f

    def lookup(self, name: str) -> PfsFile:
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def exists(self, name: str) -> bool:
        return name in self.files
