"""Striping math: file offsets to per-server object offsets.

PVFS2 ``simple_stripe``: stripe unit ``u``, servers ``0..n-1``; byte range
``[k*u, (k+1)*u)`` of the file lives on server ``k % n`` at object offset
``(k // n) * u + (off % u)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StripeLayout", "StripePiece"]

#: PVFS2's default stripe unit, also DualPar's cache chunk size.
DEFAULT_STRIPE_UNIT = 64 * 1024


@dataclass(frozen=True)
class StripePiece:
    """One contiguous piece of a file request on a single server."""

    server: int
    object_offset: int  # offset within the server's object for this file
    file_offset: int
    length: int


@dataclass(frozen=True)
class StripeLayout:
    n_servers: int
    stripe_unit: int = DEFAULT_STRIPE_UNIT

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one server")
        if self.stripe_unit < 1:
            raise ValueError("stripe unit must be positive")

    def server_of(self, offset: int) -> int:
        return (offset // self.stripe_unit) % self.n_servers

    def object_offset_of(self, offset: int) -> int:
        stripe = offset // self.stripe_unit
        return (stripe // self.n_servers) * self.stripe_unit + offset % self.stripe_unit

    def object_size(self, file_size: int, server: int) -> int:
        """Bytes of a ``file_size``-byte file stored on ``server``."""
        if file_size <= 0:
            return 0
        full_stripes = file_size // self.stripe_unit
        base = (full_stripes // self.n_servers) * self.stripe_unit
        rem_stripes = full_stripes % self.n_servers
        if server < rem_stripes:
            base += self.stripe_unit
        elif server == rem_stripes:
            base += file_size % self.stripe_unit
        return base

    def split(self, offset: int, length: int) -> list[StripePiece]:
        """Decompose a byte range into per-server pieces.

        Contiguous object ranges on the same server are NOT coalesced --
        each piece is within one stripe unit, matching what the PVFS2
        client actually sends (the server-side block layer does the
        merging).
        """
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be non-negative")
        pieces: list[StripePiece] = []
        pos = offset
        remaining = length
        u = self.stripe_unit
        while remaining > 0:
            in_unit = pos % u
            take = min(u - in_unit, remaining)
            pieces.append(
                StripePiece(
                    server=self.server_of(pos),
                    object_offset=self.object_offset_of(pos),
                    file_offset=pos,
                    length=take,
                )
            )
            pos += take
            remaining -= take
        return pieces

    def split_coalesced(self, offset: int, length: int) -> list[StripePiece]:
        """Like :meth:`split` but merges object-contiguous pieces per server.

        Used by batched issuers (DualPar's CRM, collective aggregators)
        that present large sorted requests.
        """
        pieces = self.split(offset, length)
        by_server: dict[int, list[StripePiece]] = {}
        for p in pieces:
            runs = by_server.setdefault(p.server, [])
            if runs and runs[-1].object_offset + runs[-1].length == p.object_offset:
                last = runs[-1]
                runs[-1] = StripePiece(
                    server=last.server,
                    object_offset=last.object_offset,
                    file_offset=last.file_offset,
                    length=last.length + p.length,
                )
            else:
                runs.append(p)
        out = [p for runs in by_server.values() for p in runs]
        out.sort(key=lambda p: p.file_offset)
        return out
