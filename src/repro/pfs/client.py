"""Client-side PFS operations: striping, request fan-out, payload moves.

A read: for every stripe piece, a small request message travels to the
owning data server, the server performs the disk I/O, and the payload
returns.  A write moves the payload with the request.  Pieces proceed in
parallel; the call completes when the last piece does -- exactly the
synchronous MPI-IO semantics DualPar's vanilla baseline exhibits.

Under fault injection (``client.faults`` set by the installer) every
piece runs through :meth:`PfsClient.robust_call`: requests to servers
the metadata server reports down park on the recovery event; live
requests race a size-aware timeout and retry with exponential backoff,
re-sending the same ``req_id`` so the server can commit a write exactly
once.  Nominally ``faults`` is None and none of this code runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.pfs.dataserver import DataServer, ServerRequest
from repro.pfs.filesystem import PfsFile
from repro.pfs.layout import StripeLayout, StripePiece
from repro.net.ethernet import Network
from repro.sim import Interrupt, Process, Simulator, all_of, any_of

__all__ = ["PfsClient"]

#: Size of a request/acknowledge control message.
CONTROL_MSG_BYTES = 128


def _absorb_interrupt(gen: Generator) -> Generator:
    """Wrap an attempt so a timeout interrupt ends it via StopIteration.

    The kernel's ``any_of`` does not defuse a constituent that *fails*
    after the combinator already fired, so an abandoned attempt must end
    normally, never by raising out of its process.
    """
    try:
        yield from gen
    except Interrupt:
        return


class PfsClient:
    """The PFS library linked into one compute node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        network: Network,
        servers: list[DataServer],
        layout: StripeLayout,
    ):
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self.servers = servers
        self.layout = layout
        self.bytes_read = 0
        self.bytes_written = 0
        #: FaultInjector when a plan is installed, None nominally.
        self.faults = None
        self.n_timeouts = 0
        self.n_retries = 0
        self.n_failovers = 0
        self._tracer = sim.obs.tracer if sim.obs.enabled else None

    # -- fault-aware retry loop ------------------------------------------

    def robust_call(self, make_attempt, server_index: int, nbytes: int = 0) -> Generator:
        """Run ``make_attempt()`` (a fresh generator per call) against one
        server with health-gated dispatch, timeout, and backoff."""
        faults = self.faults
        sim = self.sim
        policy = faults.retry
        health = faults.health
        timeout_s = policy.timeout_for(nbytes)
        attempt = 0
        while True:
            if not health.is_up(server_index):
                # Down per metadata: don't burn the retry budget against
                # a black hole -- park until the server returns.
                self.n_failovers += 1
                yield health.recovery_event(server_index)
            proc = sim.process(_absorb_interrupt(make_attempt()), name="pfs-attempt")
            gate = sim.timeout(timeout_s)
            yield any_of(sim, [proc, gate])
            if proc.triggered:
                return
            proc.interrupt("request-timeout")
            self.n_timeouts += 1
            faults.record_timeout(server_index)
            attempt += 1
            if attempt > policy.max_retries:
                from repro.faults.injector import RequestTimeout

                raise RequestTimeout(
                    f"client {self.node_id} -> ds{server_index}: request dead "
                    f"after {attempt} attempts ({nbytes} bytes, "
                    f"timeout {timeout_s:.3f}s)"
                )
            self.n_retries += 1
            yield sim.timeout(policy.backoff_s(attempt, rng=faults.rng))

    # ------------------------------------------------------------------

    def _do_piece(
        self,
        f: PfsFile,
        piece: StripePiece,
        op: str,
        stream_id: int,
        trace_id: int = 0,
        req_id: Optional[int] = None,
    ) -> Generator:
        server = self.servers[piece.server]
        net = self.network
        if op == "W":
            # Request + payload travel together.
            yield from net.transfer(
                self.node_id, server.node_id, CONTROL_MSG_BYTES + piece.length
            )
        else:
            yield from net.transfer(self.node_id, server.node_id, CONTROL_MSG_BYTES)
        done = server.handle(
            ServerRequest(
                file_name=f.name,
                object_offset=piece.object_offset,
                length=piece.length,
                op=op,
                stream_id=stream_id,
                trace_id=trace_id,
                req_id=req_id,
            )
        )
        yield done
        if op == "R":
            yield from net.transfer(
                server.node_id, self.node_id, CONTROL_MSG_BYTES + piece.length
            )
        else:
            yield from net.transfer(server.node_id, self.node_id, CONTROL_MSG_BYTES)

    def io(
        self,
        f: PfsFile,
        offset: int,
        length: int,
        op: str,
        stream_id: int,
        coalesce: bool = False,
    ) -> Generator:
        """Perform one contiguous file read/write; yield until complete.

        ``coalesce=True`` merges object-contiguous stripe pieces into large
        per-server requests -- the batched-issuer path used by collective
        aggregators and DualPar's CRM.
        """
        if op not in ("R", "W"):
            raise ValueError(f"op must be 'R' or 'W', got {op!r}")
        if offset < 0 or offset + length > f.size:
            raise ValueError(
                f"range [{offset}, {offset + length}) outside file {f.name} of {f.size} bytes"
            )
        if length == 0:
            return
        split = self.layout.split_coalesced if coalesce else self.layout.split
        pieces = split(offset, length)
        tr = self._tracer
        trace_id = tr.trace_of_stream(stream_id) if tr is not None else 0
        faults = self.faults
        if faults is None:
            procs = [
                self.sim.process(
                    self._do_piece(f, p, op, stream_id, trace_id), name="pfs-piece"
                )
                for p in pieces
            ]
        else:
            # Write ids are assigned once per piece, before any attempt,
            # so every retry re-sends the same id (exactly-once commit).
            with_ids = [
                (p, faults.next_request_id() if op == "W" else None) for p in pieces
            ]
            procs = [
                self.sim.process(
                    self.robust_call(
                        lambda p=p, rid=rid: self._do_piece(
                            f, p, op, stream_id, trace_id, req_id=rid
                        ),
                        p.server,
                        nbytes=p.length,
                    ),
                    name="pfs-piece",
                )
                for p, rid in with_ids
            ]
        if tr is not None:
            # Async span: one client node can have overlapping I/O calls.
            with tr.span(
                "pfs.io",
                track=f"client{self.node_id}",
                cat="pfs",
                trace=trace_id,
                async_=True,
                file=f.name,
                op=op,
                offset=offset,
                length=length,
                pieces=len(pieces),
                lp=f"client:node{self.node_id}",
            ):
                yield all_of(self.sim, procs)
        else:
            yield all_of(self.sim, procs)
        if op == "R":
            self.bytes_read += length
        else:
            self.bytes_written += length

    def io_async(
        self,
        f: PfsFile,
        offset: int,
        length: int,
        op: str,
        stream_id: int,
        coalesce: bool = False,
    ) -> Process:
        """Fire-and-track variant returning the in-flight process."""
        return self.sim.process(
            self.io(f, offset, length, op, stream_id, coalesce), name="pfs-io"
        )

    def read(self, f: PfsFile, offset: int, length: int, stream_id: int, **kw) -> Generator:
        yield from self.io(f, offset, length, "R", stream_id, **kw)

    def write(self, f: PfsFile, offset: int, length: int, stream_id: int, **kw) -> Generator:
        yield from self.io(f, offset, length, "W", stream_id, **kw)
