"""Stall watchdog: a sim-kernel-level deadlock and no-progress detector.

A daemon ticks every ``watchdog_interval_s`` of simulated time and looks
at every tracked process's *wait target* (the event its generator is
currently suspended on).  A process is **stalled** when it has been
waiting on the *same* untriggered, non-time-driven event for at least
``stall_window_s``; timeouts and time-bounded combinators never stall
(time always delivers them).  Two report kinds:

- ``deadlock`` -- every live non-daemon tracked process is stalled: no
  event in the system can ever resume them (classic circular resource
  wait, a lost wakeup, an event nobody will succeed);
- ``stall`` -- some but not all processes are stalled: suspicious, but
  the rest of the system is still making progress.

The watchdog is purely observational: it never intervenes, it only
appends :class:`WatchdogReport` objects (with a rendered diagnostic
table naming blocked processes, the events they wait on, and the
resources they hold) to :attr:`StallWatchdog.reports`.

Process and resource tracking piggybacks on the same hook points the
sanitizer uses (``Process.__init__``, resource request/acquire/release),
all gated on ``sim._watchdog is not None`` so unguarded runs pay one
attribute load.  Only processes created *after* installation are
tracked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.sim import Process, Simulator, Timeout

__all__ = ["BlockedProcess", "StallWatchdog", "WatchdogReport"]


@dataclass(frozen=True)
class BlockedProcess:
    """One stalled process's row in the diagnostic table."""

    name: str
    daemon: bool
    #: Description of the event the process is waiting on.
    waiting_on: str
    #: Simulated time at which the wait was first observed.
    since: float
    #: Descriptions of the resources the process currently holds.
    held: tuple[str, ...] = ()


@dataclass(frozen=True)
class WatchdogReport:
    """One firing of the watchdog."""

    time: float
    kind: str  # 'deadlock' | 'stall'
    blocked: tuple[BlockedProcess, ...] = field(default_factory=tuple)

    def render(self) -> str:
        """The human-readable diagnostic table."""
        lines = [
            f"watchdog {self.kind} at t={self.time:.3f}s: "
            f"{len(self.blocked)} process(es) blocked"
        ]
        name_w = max([len(b.name) for b in self.blocked] + [7])
        wait_w = max([len(b.waiting_on) for b in self.blocked] + [10])
        lines.append(
            f"  {'process':<{name_w}}  {'waiting on':<{wait_w}}  "
            f"{'since':>9}  holds"
        )
        for b in self.blocked:
            held = ", ".join(b.held) if b.held else "-"
            tag = " (daemon)" if b.daemon else ""
            lines.append(
                f"  {b.name:<{name_w}}  {b.waiting_on:<{wait_w}}  "
                f"{b.since:>9.3f}  {held}{tag}"
            )
        return "\n".join(lines)


class StallWatchdog:
    """The detector daemon; installs itself as ``sim._watchdog``."""

    def __init__(
        self,
        sim: Simulator,
        interval_s: float = 1.0,
        stall_window_s: float = 5.0,
        registry: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        if interval_s <= 0 or stall_window_s <= 0:
            raise ValueError("watchdog windows must be positive")
        if sim._watchdog is not None:
            raise ValueError("simulator already has a watchdog")
        self.sim = sim
        self.interval_s = interval_s
        self.stall_window_s = stall_window_s
        self.reports: list[WatchdogReport] = []
        self.n_ticks = 0
        self._procs: list[Process] = []
        #: id(proc) -> (target event, first time it was seen as target)
        self._since: dict[int, tuple[Any, float]] = {}
        #: id(request) -> (resource, requesting process, request) while queued
        self._requested: dict[int, tuple[Any, Optional[Process], Any]] = {}
        #: id(request) -> (resource, owning process, request) while granted
        self._granted: dict[int, tuple[Any, Optional[Process], Any]] = {}
        #: id(resource) -> (stable index, resource) for naming
        self._res_index: dict[int, tuple[int, Any]] = {}
        #: Signature of the last report, to avoid re-reporting each tick.
        self._last_sig: Optional[tuple] = None
        self._tracer = tracer
        if registry is not None:
            self._c_reports = registry.counter("guard.watchdog.reports")
            self._c_deadlocks = registry.counter("guard.watchdog.deadlocks")
        else:
            self._c_reports = None
            self._c_deadlocks = None
        sim._watchdog = self
        self._proc = sim.process(self._run(), name="guard-watchdog", daemon=True)

    # -- kernel hooks ----------------------------------------------------

    def on_process_created(self, proc: Process) -> None:
        self._procs.append(proc)

    def on_request(self, resource: Any, request: Any) -> None:
        self._requested[id(request)] = (resource, self.sim.active_process, request)

    def on_acquire(self, resource: Any, request: Any) -> None:
        entry = self._requested.pop(id(request), None)
        owner = entry[1] if entry is not None else self.sim.active_process
        self._granted[id(request)] = (resource, owner, request)

    def on_release(self, resource: Any, request: Any) -> None:
        self._requested.pop(id(request), None)
        self._granted.pop(id(request), None)

    # -- description helpers ---------------------------------------------

    def _resource_name(self, resource: Any) -> str:
        entry = self._res_index.get(id(resource))
        if entry is None:
            entry = (len(self._res_index), resource)
            self._res_index[id(resource)] = entry
        return f"{type(resource).__name__}#{entry[0]}"

    def _describe_target(self, ev: Any) -> str:
        res = getattr(ev, "resource", None)
        if res is not None:
            return f"request({self._resource_name(res)})"
        return type(ev).__name__

    def _held_by(self, proc: Process) -> tuple[str, ...]:
        held = []
        for _rid, (resource, owner, _req) in self._granted.items():
            if owner is proc:
                held.append(self._resource_name(resource))
        return tuple(held)

    # -- the detector -----------------------------------------------------

    def _run(self) -> Iterator[Any]:
        sim = self.sim
        while True:
            yield sim.timeout(self.interval_s)
            self._tick()

    def _tick(self) -> None:
        now = self.sim.now
        self.n_ticks += 1
        alive = []
        for p in self._procs:
            if p.is_alive:
                alive.append(p)
            else:
                self._since.pop(id(p), None)
        self._procs = alive
        stalled: list[tuple[Process, Any, float]] = []
        for p in alive:
            if p is self._proc:
                continue
            tgt = p._target
            if tgt is None or isinstance(tgt, Timeout) or tgt.triggered:
                self._since.pop(id(p), None)
                continue
            prev = self._since.get(id(p))
            if prev is None or prev[0] is not tgt:
                self._since[id(p)] = (tgt, now)
                continue
            if now - prev[1] >= self.stall_window_s:
                stalled.append((p, tgt, prev[1]))
        if not stalled:
            self._last_sig = None
            return
        live_foreground = [p for p in alive if not p.daemon and p is not self._proc]
        stalled_foreground = [s for s in stalled if not s[0].daemon]
        # Deadlock: every foreground process waits on an event that only
        # another waiter could ever trigger -- nothing time-driven remains
        # that can resume any of them.
        kind = (
            "deadlock"
            if live_foreground and len(stalled_foreground) == len(live_foreground)
            else "stall"
        )
        sig = (kind, tuple(s[0].name for s in stalled))
        if sig == self._last_sig:
            return
        self._last_sig = sig
        blocked = tuple(
            BlockedProcess(
                name=p.name,
                daemon=p.daemon,
                waiting_on=self._describe_target(tgt),
                since=since,
                held=self._held_by(p),
            )
            for p, tgt, since in stalled
        )
        report = WatchdogReport(time=now, kind=kind, blocked=blocked)
        self.reports.append(report)
        if self._c_reports is not None:
            self._c_reports.inc()
            if kind == "deadlock":
                self._c_deadlocks.inc()
        if self._tracer is not None:
            self._tracer.instant(
                "guard.watchdog",
                track="guard",
                cat="guard",
                kind=kind,
                blocked=len(blocked),
            )

    # ------------------------------------------------------------------

    @property
    def deadlocks(self) -> list[WatchdogReport]:
        return [r for r in self.reports if r.kind == "deadlock"]

    def summary(self) -> dict:
        return {
            "n_ticks": self.n_ticks,
            "n_reports": len(self.reports),
            "n_deadlocks": len(self.deadlocks),
        }
