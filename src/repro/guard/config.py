"""Safety-governor configuration: one frozen knob set for all four parts.

Defaults are deliberately conservative: the nominal experiments in
``benchmarks/`` fit comfortably inside the memory caps and never trip the
breaker, so turning the guard on changes nothing unless something is
actually going wrong (see ``docs/degradation.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GuardConfig"]


@dataclass(frozen=True)
class GuardConfig:
    """Every threshold of the safety governor, one knob each."""

    # -- resource budgets (MemoryBudget) --------------------------------
    #: Hard cap on bytes one job may hold in prefetch/cache residency.
    job_cap_bytes: int = 256 * 1024 * 1024
    #: Hard cap on bytes accounted against one node (cache chunks it
    #: owns, or a data server's dirty writeback backlog).
    node_cap_bytes: int = 128 * 1024 * 1024

    # -- benefit governor (hysteresis state machine) --------------------
    #: EWMA smoothing factor for hit-rate / misprefetch / throughput.
    ewma_alpha: float = 0.4
    #: Realized cache hit-rate below which data-driven benefit is judged
    #: negative (a well-predicted workload sits far above this).
    min_hit_rate: float = 0.30
    #: Observed datadriven/normal throughput ratio below which benefit is
    #: judged negative (1.0 = parity; a little slack for noise).
    min_speedup: float = 0.75
    #: How long a probe runs before it may be promoted to ``datadriven``.
    probe_window_s: float = 1.0
    #: Cooldown after a degrade before re-probing; doubles per degrade.
    cooldown_s: float = 2.0
    cooldown_factor: float = 2.0
    cooldown_max_s: float = 60.0

    # -- circuit breaker (memcache ring) --------------------------------
    #: Consecutive failed/slow cache batches that trip the breaker.
    breaker_failures: int = 3
    #: A cache multi-get slower than this counts as a failure.
    breaker_latency_s: float = 0.5
    #: Open-state hold time before a half-open probe is allowed.
    breaker_reset_s: float = 2.0

    # -- stall watchdog --------------------------------------------------
    #: Run the watchdog daemon at all (pure detector; never intervenes).
    watchdog: bool = True
    #: Evaluation period of the watchdog daemon.
    watchdog_interval_s: float = 1.0
    #: A process waiting on the same untriggered event for this long is
    #: considered stalled.  Must exceed the longest *legitimate* blocking
    #: interval in the run (e.g. a fault plan's partition windows).
    stall_window_s: float = 5.0

    #: Master switch: ``enabled=False`` constructs the governor but wires
    #: nothing, so a run behaves exactly as with no guard at all.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.job_cap_bytes <= 0 or self.node_cap_bytes <= 0:
            raise ValueError("budget caps must be positive")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0 <= self.min_hit_rate <= 1:
            raise ValueError("min_hit_rate must be in [0, 1]")
        if self.min_speedup <= 0:
            raise ValueError("min_speedup must be positive")
        if self.probe_window_s <= 0 or self.cooldown_s <= 0:
            raise ValueError("probe/cooldown windows must be positive")
        if self.cooldown_factor < 1:
            raise ValueError("cooldown_factor must be >= 1")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_latency_s <= 0 or self.breaker_reset_s <= 0:
            raise ValueError("breaker thresholds must be positive")
        if self.watchdog_interval_s <= 0 or self.stall_window_s <= 0:
            raise ValueError("watchdog windows must be positive")
