"""Circuit breaker over the memcache ring.

The classic three-state breaker, on simulated time:

- **closed** -- cache traffic flows; each batched multi-get's latency is
  scored, and ``breaker_failures`` consecutive slow batches (or external
  failure signals such as a cache-node eviction) trip the breaker;
- **open** -- :meth:`allow` returns False, so the engine's ``do_io``
  bypasses the cache entirely (degraded vanilla path) for
  ``breaker_reset_s`` simulated seconds;
- **half-open** -- exactly one probe operation is let through; a fast
  probe closes the breaker, a slow one re-opens it.

The breaker never schedules events; all state changes happen inside the
calls the engine already makes, so guard-off runs are untouched.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.guard.config import GuardConfig
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_LEVEL: Mapping[str, int] = MappingProxyType({CLOSED: 0, HALF_OPEN: 1, OPEN: 2})


class CircuitBreaker:
    """Latency/failure breaker guarding the global cache."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[GuardConfig] = None,
        registry: Optional["MetricsRegistry"] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        cfg = config or GuardConfig()
        self.sim = sim
        self.failure_threshold = cfg.breaker_failures
        self.latency_threshold_s = cfg.breaker_latency_s
        self.reset_s = cfg.breaker_reset_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.n_failures = 0
        self.n_trips = 0
        self.n_probes = 0
        self.opened_at = 0.0
        self._probe_inflight = False
        #: (time, new state) history.
        self.transitions: list[tuple[float, str]] = []
        self._tracer = tracer
        if registry is not None:
            self._c_trips = registry.counter("guard.breaker.trips")
            self._g_state = registry.gauge("guard.breaker.state")
        else:
            self._c_trips = None
            self._g_state = None

    # ------------------------------------------------------------------

    def _to(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append((self.sim.now, state))
        if self._g_state is not None:
            self._g_state.set(_STATE_LEVEL[state])
        if self._tracer is not None:
            self._tracer.instant(
                "guard.breaker", track="guard", cat="guard", state=state
            )

    def _trip(self) -> None:
        self.n_trips += 1
        if self._c_trips is not None:
            self._c_trips.inc()
        self.opened_at = self.sim.now
        self.consecutive_failures = 0
        self._probe_inflight = False
        self._to(OPEN)

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May a cache operation proceed right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.sim.now - self.opened_at < self.reset_s:
                return False
            self._to(HALF_OPEN)
        # Half-open: admit exactly one in-flight probe.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        self.n_probes += 1
        return True

    def record(self, latency_s: float) -> None:
        """Score one completed cache batch by its observed latency."""
        ok = latency_s <= self.latency_threshold_s
        if self.state == HALF_OPEN:
            self._probe_inflight = False
            if ok:
                self.consecutive_failures = 0
                self._to(CLOSED)
            else:
                self.n_failures += 1
                self._trip()
            return
        if ok:
            self.consecutive_failures = 0
            return
        self.n_failures += 1
        self.consecutive_failures += 1
        if self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def record_failure(self) -> None:
        """External failure signal (e.g. a cache node was evicted)."""
        self.record(float("inf"))

    def summary(self) -> dict:
        return {
            "state": self.state,
            "n_trips": self.n_trips,
            "n_failures": self.n_failures,
            "n_probes": self.n_probes,
        }
