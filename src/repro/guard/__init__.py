"""repro.guard: the safety governor.

Resource budgets with backpressure, a benefit-tracking hysteresis
governor with a memcache circuit breaker, and a kernel-level stall
watchdog -- the runtime that keeps DualPar *never worse than vanilla*
when predictions go wrong or the cluster degrades.  See
``docs/degradation.md``.
"""

from repro.guard.breaker import CircuitBreaker
from repro.guard.budget import MemoryBudget
from repro.guard.config import GuardConfig
from repro.guard.governor import JobGovernor, SafetyGovernor
from repro.guard.watchdog import BlockedProcess, StallWatchdog, WatchdogReport

__all__ = [
    "BlockedProcess",
    "CircuitBreaker",
    "GuardConfig",
    "JobGovernor",
    "MemoryBudget",
    "SafetyGovernor",
    "StallWatchdog",
    "WatchdogReport",
]
