"""The benefit governor: hysteresis state machine + umbrella object.

Per governed job a :class:`JobGovernor` runs the state machine

    normal -> probing -> datadriven -> degraded -> (cooldown) -> normal

replacing EMC's single-threshold decision when a guard is installed:

- **normal**: delegate everything to the baseline engine.  Enter
  ``probing`` when EMC's enter conditions hold (or the job's config
  forces data-driven mode) and no cooldown is pending.
- **probing**: data-driven mode is on trial.  Realized cache hit-rate,
  per-cycle mis-prefetch ratio, and per-mode I/O throughput are tracked
  as EWMAs; negative benefit degrades immediately, surviving
  ``probe_window_s`` promotes to ``datadriven``.
- **datadriven**: stay while benefit holds; EMC's exit threshold still
  applies for unforced jobs.
- **degraded**: data-driven mode is off and re-probing is blocked for an
  escalating cooldown (doubling per degrade, capped), *even for jobs
  with* ``force_mode="datadriven"`` -- the guard outranks the pin, which
  is exactly what keeps a forced misbehaving job within reach of the
  vanilla baseline.  Unlike EMC's ``misprefetch_lockout`` the degrade is
  never permanent: after the cooldown the job may probe again.

:class:`SafetyGovernor` owns the per-job governors plus the three other
guard parts (:class:`~repro.guard.budget.MemoryBudget`,
:class:`~repro.guard.breaker.CircuitBreaker`,
:class:`~repro.guard.watchdog.StallWatchdog`) and is the single object
the rest of the stack sees (``system.guard``, ``cache.budget``, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.guard.breaker import CircuitBreaker
from repro.guard.budget import MemoryBudget
from repro.guard.config import GuardConfig
from repro.guard.watchdog import StallWatchdog
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import DualParEngine

__all__ = ["JobGovernor", "SafetyGovernor"]

NORMAL = "normal"
PROBING = "probing"
DATADRIVEN = "datadriven"
DEGRADED = "degraded"


class JobGovernor:
    """Hysteresis state machine governing one job's execution mode."""

    def __init__(self, guard: "SafetyGovernor", engine: "DualParEngine") -> None:
        self.guard = guard
        self.engine = engine
        self.sim = guard.sim
        self.config = guard.config
        self.state = NORMAL
        self.n_degrades = 0
        self.cooldown_until = 0.0
        self._probe_started = 0.0
        self.hit_rate_ewma: Optional[float] = None
        self.misprefetch_ewma: Optional[float] = None
        #: Throughput EWMAs per engine mode, for the speedup estimate.
        self._tp = {"normal": None, "datadriven": None}
        self._last_hits = engine.n_cache_hits
        self._last_misses = engine.n_cache_misses
        self._last_bytes = self._job_bytes()
        self._last_io_s = self._job_io_s()
        if registry := guard.registry:
            name = engine.job.name
            self._ts_hit_rate = registry.timeseries(f"guard.{name}.hit_rate")
            self._ts_speedup = registry.timeseries(f"guard.{name}.speedup")
        else:
            self._ts_hit_rate = None
            self._ts_speedup = None
        # A job pinned into data-driven mode starts on trial, not trusted:
        # the guard can (temporarily) overrule force_mode.
        if engine.job.mode == "datadriven":
            self.state = PROBING
            self._probe_started = self.sim.now
            guard.log_state(engine.job.name, PROBING, "initial")

    # -- measurement -----------------------------------------------------

    def _job_bytes(self) -> int:
        return sum(
            p.metrics.bytes_read + p.metrics.bytes_written
            for p in self.engine.job.procs
        )

    def _job_io_s(self) -> float:
        return sum(p.metrics.io_time_s for p in self.engine.job.procs)

    def _ewma(self, prev: Optional[float], sample: float) -> float:
        a = self.config.ewma_alpha
        return sample if prev is None else prev + a * (sample - prev)

    def _update_ewmas(self) -> None:
        eng = self.engine
        dh = eng.n_cache_hits - self._last_hits
        dm = eng.n_cache_misses - self._last_misses
        self._last_hits = eng.n_cache_hits
        self._last_misses = eng.n_cache_misses
        if dh + dm > 0:
            self.hit_rate_ewma = self._ewma(self.hit_rate_ewma, dh / (dh + dm))
            if self._ts_hit_rate is not None:
                self._ts_hit_rate.record(self.sim.now, self.hit_rate_ewma)
        b = self._job_bytes()
        t = self._job_io_s()
        db, dt = b - self._last_bytes, t - self._last_io_s
        if dt > 1e-3 and db > 0:
            self._last_bytes, self._last_io_s = b, t
            bucket = "datadriven" if eng.job.mode == "datadriven" else "normal"
            self._tp[bucket] = self._ewma(self._tp[bucket], db / dt)
            sp = self.speedup()
            if sp is not None and self._ts_speedup is not None:
                self._ts_speedup.record(self.sim.now, sp)

    def speedup(self) -> Optional[float]:
        """Observed datadriven/normal throughput ratio, when both exist."""
        dd, base = self._tp["datadriven"], self._tp["normal"]
        if dd is None or base is None or base <= 0:
            return None
        return dd / base

    def _benefit_negative(self) -> Optional[str]:
        cfg = self.config
        if (
            self.misprefetch_ewma is not None
            and self.misprefetch_ewma > self.engine.config.misprefetch_threshold
        ):
            return "misprefetch"
        if self.hit_rate_ewma is not None and self.hit_rate_ewma < cfg.min_hit_rate:
            return "hit-rate"
        sp = self.speedup()
        if sp is not None and sp < cfg.min_speedup:
            return "speedup"
        return None

    # -- transitions -----------------------------------------------------

    def _to(self, state: str, reason: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.guard.log_state(self.engine.job.name, state, reason)

    def _start_probe(self, reason: str) -> None:
        # Fresh trial: stale negative EWMAs from the last attempt must not
        # instantly re-degrade a workload that may have changed phase.
        self.hit_rate_ewma = None
        self.misprefetch_ewma = None
        self._tp["datadriven"] = None
        self._probe_started = self.sim.now
        self._to(PROBING, reason)
        if self.engine.job.mode != "datadriven":
            self.engine.set_mode("datadriven")

    def degrade(self, reason: str) -> None:
        """Benefit went negative (or a fault hit): back to vanilla."""
        if self.state == DEGRADED:
            return
        cfg = self.config
        self.n_degrades += 1
        self.guard.n_degrades += 1
        cooldown = min(
            cfg.cooldown_s * cfg.cooldown_factor ** (self.n_degrades - 1),
            cfg.cooldown_max_s,
        )
        self.cooldown_until = self.sim.now + cooldown
        self._to(DEGRADED, reason)
        if self.engine.job.mode != "normal":
            self.engine.set_mode("normal")

    # -- inputs ----------------------------------------------------------

    def report_misprefetch(self, ratio: float) -> None:
        """Per-cycle mis-prefetch ratio from PEC accounting."""
        self.misprefetch_ewma = self._ewma(self.misprefetch_ewma, ratio)
        if ratio > self.engine.config.misprefetch_threshold and self.state in (
            PROBING,
            DATADRIVEN,
        ):
            self.degrade("misprefetch")

    def evaluate(self, io_ratio: Optional[float], improvement: Optional[float]) -> None:
        """One EMC tick's decision for this job."""
        now = self.sim.now
        self._update_ewmas()
        eng = self.engine
        dcfg = eng.config
        if self.state == DEGRADED:
            if now >= self.cooldown_until:
                self._to(NORMAL, "cooldown-over")
            return
        if self.state == NORMAL:
            if now < self.cooldown_until or dcfg.force_mode == "normal":
                return
            want = dcfg.force_mode == "datadriven" or (
                io_ratio is not None
                and io_ratio > dcfg.io_ratio_enter
                and improvement is not None
                and improvement > dcfg.t_improvement
            )
            if want:
                self._start_probe("enter")
            return
        # probing / datadriven: benefit checks first.
        reason = self._benefit_negative()
        if reason is not None:
            self.degrade(reason)
            return
        if self.state == PROBING:
            if now - self._probe_started >= self.config.probe_window_s:
                self._to(DATADRIVEN, "probe-ok")
            return
        # datadriven: EMC's exit threshold still applies to unforced jobs.
        if (
            dcfg.force_mode is None
            and io_ratio is not None
            and io_ratio < dcfg.io_ratio_exit
        ):
            self._to(NORMAL, "io-ratio-exit")
            if eng.job.mode != "normal":
                eng.set_mode("normal")


class SafetyGovernor:
    """Umbrella over budget, breaker, watchdog, and per-job governors."""

    def __init__(self, sim: Simulator, config: Optional[GuardConfig] = None) -> None:
        self.sim = sim
        self.config = config or GuardConfig()
        obs = sim.obs
        self.registry = obs.registry if obs.enabled else None
        self._tracer = obs.tracer if obs.enabled else None
        self.budget = MemoryBudget(self.config, registry=self.registry)
        self.breaker = CircuitBreaker(
            sim, self.config, registry=self.registry, tracer=self._tracer
        )
        self.watchdog: Optional[StallWatchdog] = (
            StallWatchdog(
                sim,
                interval_s=self.config.watchdog_interval_s,
                stall_window_s=self.config.stall_window_s,
                registry=self.registry,
                tracer=self._tracer,
            )
            if self.config.watchdog
            else None
        )
        self._governors: dict[int, JobGovernor] = {}
        self._job_names: dict[str, int] = {}
        #: (time, job name, new governor state, reason) history.
        self.transitions: list[tuple[float, str, str, str]] = []
        self.n_degrades = 0
        if self.registry is not None:
            self._c_transitions = self.registry.counter("guard.transitions")
            self._log = self.registry.event_log(
                "guard.log", fields=("t", "job", "state", "reason")
            )
        else:
            self._c_transitions = None
            self._log = None

    # -- wiring ----------------------------------------------------------

    def attach(
        self,
        dualpar: Optional[Any] = None,
        runtime: Optional[Any] = None,
        cluster: Optional[Any] = None,
    ) -> None:
        """Install the guard's hooks into an experiment's components.

        Every hook defaults to None in its host object, so anything not
        attached here simply keeps running unguarded.
        """
        if dualpar is not None:
            dualpar.guard = self
        cache = getattr(runtime, "global_cache", None) if runtime is not None else None
        if cache is not None:
            cache.budget = self.budget
        if cluster is not None:
            for server in cluster.data_servers:
                wb = getattr(server, "writeback", None)
                if wb is not None:
                    wb.budget = self.budget

    # -- per-job state machines ------------------------------------------

    def governor_for(self, engine: "DualParEngine") -> JobGovernor:
        job_id = engine.job.job_id
        gov = self._governors.get(job_id)
        if gov is None:
            gov = JobGovernor(self, engine)
            self._governors[job_id] = gov
            self._job_names[engine.job.name] = job_id
        return gov

    def state_of(self, job_name: str) -> Optional[str]:
        job_id = self._job_names.get(job_name)
        if job_id is None:
            return None
        return self._governors[job_id].state

    def states(self) -> dict[str, str]:
        return {
            name: self._governors[job_id].state
            for name, job_id in sorted(self._job_names.items())
        }

    def log_state(self, job_name: str, state: str, reason: str) -> None:
        now = self.sim.now
        self.transitions.append((now, job_name, state, reason))
        if self._c_transitions is not None:
            self._c_transitions.inc()
            self._log.append((now, job_name, state, reason))
        if self._tracer is not None:
            self._tracer.instant(
                "guard.transition",
                track="guard",
                cat="guard",
                job=job_name,
                state=state,
                reason=reason,
            )

    # -- breaker facade ---------------------------------------------------

    def cache_allowed(self) -> bool:
        """May the engine route reads through the memcache ring now?"""
        return self.breaker.allow()

    def record_cache_op(self, latency_s: float) -> None:
        self.breaker.record(latency_s)

    # -- fault reactions --------------------------------------------------

    def on_fault(self, kind: str, phase: str, target: Optional[int] = None) -> None:
        """Fault-injector notification: react before the damage spreads.

        A crashed server or a network partition makes every open prefetch
        plan stale and every cache round-trip suspect: degrade active
        jobs now rather than waiting for the EWMAs to notice.  A fail-
        slow disk is the opposite case -- it is exactly where data-driven
        batching helps most (deep sorted queues amortize the slowness) --
        so it never degrades anything.  A cache-node eviction is scored
        as one breaker failure.
        """
        if phase != "apply":
            return
        if kind == "cache_evict":
            self.breaker.record_failure()
            return
        if kind in ("server_crash", "net_partition"):
            for job_id in sorted(self._governors):
                gov = self._governors[job_id]
                if gov.state in (PROBING, DATADRIVEN):
                    gov.degrade(f"fault:{kind}")

    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Picklable end-of-run digest (carried by SlimExperimentResult)."""
        return {
            "states": self.states(),
            "n_transitions": len(self.transitions),
            "n_degrades": self.n_degrades,
            "budget": self.budget.summary(),
            "breaker": self.breaker.summary(),
            "watchdog": self.watchdog.summary() if self.watchdog is not None else None,
        }
