"""Memory budget accounting: per-job and per-node residency caps.

One :class:`MemoryBudget` per governed run, charged from three places:

- ``cache/memcache.py`` charges each newly resident chunk against the
  chunk's job and its owner node, releasing on every eviction path;
- ``core/crm.py`` and ``core/pec.py`` consult the remaining job headroom
  *before* prefetching, shedding the tail of a plan (lowest priority:
  the furthest-ahead predictions) rather than overfilling;
- ``pfs/writeback.py`` charges a server's dirty backlog against its node
  and paces the flusher early when the node cap is reached.

Dirty data is **always** accepted (``charge``): refusing it would drop
committed application writes.  Only speculative prefetch goes through
``try_charge`` and can be shed.  The cap is therefore a firm bound on
speculative residency and a backpressure signal for everything else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.guard.config import GuardConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry

__all__ = ["MemoryBudget"]


class MemoryBudget:
    """Byte accountant with per-job and per-node hard caps."""

    def __init__(
        self,
        config: Optional[GuardConfig] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        cfg = config or GuardConfig()
        self.job_cap_bytes = cfg.job_cap_bytes
        self.node_cap_bytes = cfg.node_cap_bytes
        self._by_job: dict[int, int] = {}
        self._by_node: dict[int, int] = {}
        self._job_peak: dict[int, int] = {}
        self.total_bytes = 0
        self.peak_bytes = 0
        #: Prefetched chunks dropped at the cache insert point (cap hit).
        self.n_shed_store = 0
        #: Chunks cut from CRM prefetch plans before any I/O was issued.
        self.n_shed_plan = 0
        #: Ghost pre-executions whose recording depth was clamped.
        self.n_blocked = 0
        #: Early writeback flushes forced by the node cap.
        self.n_paced = 0
        if registry is not None:
            self._g_bytes = registry.gauge("guard.budget.bytes")
            self._g_peak = registry.gauge("guard.budget.peak_bytes")
            self._c_shed_store = registry.counter("guard.budget.shed_store")
            self._c_shed_plan = registry.counter("guard.budget.shed_plan")
            self._c_blocked = registry.counter("guard.budget.blocked")
            self._c_paced = registry.counter("guard.budget.paced")
        else:
            self._g_bytes = None
            self._g_peak = None
            self._c_shed_store = None
            self._c_shed_plan = None
            self._c_blocked = None
            self._c_paced = None

    # -- queries ---------------------------------------------------------

    def job_used(self, job_id: int) -> int:
        return self._by_job.get(job_id, 0)

    def node_used(self, node: int) -> int:
        return self._by_node.get(node, 0)

    def job_peak(self, job_id: int) -> int:
        return self._job_peak.get(job_id, 0)

    def job_headroom(self, job_id: int) -> int:
        return max(self.job_cap_bytes - self.job_used(job_id), 0)

    def node_headroom(self, node: int) -> int:
        return max(self.node_cap_bytes - self.node_used(node), 0)

    def node_over(self, node: int) -> bool:
        return self.node_used(node) >= self.node_cap_bytes

    # -- accounting ------------------------------------------------------

    def _apply(self, nbytes: int, job_id: Optional[int], node: Optional[int]) -> None:
        self.total_bytes += nbytes
        if self.total_bytes > self.peak_bytes:
            self.peak_bytes = self.total_bytes
        if job_id is not None:
            used = self._by_job.get(job_id, 0) + nbytes
            self._by_job[job_id] = used
            if used > self._job_peak.get(job_id, 0):
                self._job_peak[job_id] = used
        if node is not None:
            self._by_node[node] = self._by_node.get(node, 0) + nbytes
        if self._g_bytes is not None:
            self._g_bytes.set(self.total_bytes)
            self._g_peak.set(self.peak_bytes)

    def charge(
        self, nbytes: int, job_id: Optional[int] = None, node: Optional[int] = None
    ) -> None:
        """Unconditional charge (dirty data: must never be refused)."""
        if nbytes <= 0:
            return
        self._apply(nbytes, job_id, node)

    def try_charge(
        self, nbytes: int, job_id: Optional[int] = None, node: Optional[int] = None
    ) -> bool:
        """Charge speculative residency; False (and no charge) at a cap."""
        if nbytes <= 0:
            return True
        if job_id is not None and self.job_used(job_id) + nbytes > self.job_cap_bytes:
            self.record_shed_store()
            return False
        if node is not None and self.node_used(node) + nbytes > self.node_cap_bytes:
            self.record_shed_store()
            return False
        self._apply(nbytes, job_id, node)
        return True

    def release(
        self, nbytes: int, job_id: Optional[int] = None, node: Optional[int] = None
    ) -> None:
        if nbytes <= 0:
            return
        self._apply(-nbytes, job_id, node)

    def transfer_node(self, nbytes: int, src: int, dst: int) -> None:
        """Move accounted bytes between nodes (cache chunk migration)."""
        if nbytes <= 0 or src == dst:
            return
        self._by_node[src] = self._by_node.get(src, 0) - nbytes
        self._by_node[dst] = self._by_node.get(dst, 0) + nbytes

    # -- backpressure counters ------------------------------------------

    def record_shed_store(self, n: int = 1) -> None:
        self.n_shed_store += n
        if self._c_shed_store is not None:
            self._c_shed_store.inc(n)

    def record_shed_plan(self, n: int = 1) -> None:
        self.n_shed_plan += n
        if self._c_shed_plan is not None:
            self._c_shed_plan.inc(n)

    def record_blocked(self, n: int = 1) -> None:
        self.n_blocked += n
        if self._c_blocked is not None:
            self._c_blocked.inc(n)

    def record_paced(self, n: int = 1) -> None:
        self.n_paced += n
        if self._c_paced is not None:
            self._c_paced.inc(n)

    def summary(self) -> dict:
        return {
            "peak_bytes": self.peak_bytes,
            "total_bytes": self.total_bytes,
            "n_shed_store": self.n_shed_store,
            "n_shed_plan": self.n_shed_plan,
            "n_blocked": self.n_blocked,
            "n_paced": self.n_paced,
        }
