"""Post-experiment analysis: efficiency and utilisation reports.

Turns an :class:`~repro.runner.experiment.ExperimentResult` into the
numbers an operator (or the paper's authors) would look at: per-server
disk efficiency, elevator behaviour, network load, cache effectiveness,
and DualPar cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.runner.results import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.runner.experiment import ExperimentResult

__all__ = [
    "DiskReport",
    "CacheReport",
    "analyze_disks",
    "analyze_cache",
    "analyze_network",
    "summarize",
]


@dataclass(frozen=True)
class DiskReport:
    """Per-server disk service summary."""

    server: int
    n_requests: int
    bytes_served: int
    busy_s: float
    utilization: float
    mean_unit_kb: float
    mean_queue_depth: float
    mean_seek_sectors: float
    effective_mb_s: float

    @property
    def efficiency(self) -> float:
        """Fraction of the streaming rate achieved while busy."""
        if self.busy_s <= 0:
            return 0.0
        return self.bytes_served / self.busy_s / 1e6 / 75.0  # vs ~75 MB/s media


@dataclass(frozen=True)
class CacheReport:
    n_gets: int
    hit_ratio: float
    n_puts: int
    n_evictions: int
    resident_mb: float


def analyze_disks(result: "ExperimentResult") -> list[DiskReport]:
    """Per-server disk service summaries for one experiment."""

    out = []
    makespan = max(result.makespan_s, 1e-12)
    for ds in result.cluster.data_servers:
        d = ds.device.stats
        blk = ds.block_layer.stats
        out.append(
            DiskReport(
                server=ds.server_index,
                n_requests=d.n_requests,
                bytes_served=d.total_bytes,
                busy_s=d.total_busy_s,
                utilization=min(d.total_busy_s / makespan, 1.0),
                mean_unit_kb=blk.mean_unit_sectors * 512 / 1024,
                mean_queue_depth=blk.mean_queue_depth,
                mean_seek_sectors=(
                    d.total_seek_sectors / d.n_requests if d.n_requests else 0.0
                ),
                effective_mb_s=(
                    d.total_bytes / 1e6 / d.total_busy_s if d.total_busy_s > 0 else 0.0
                ),
            )
        )
    return out


def analyze_cache(result: "ExperimentResult") -> Optional[CacheReport]:
    """Global-cache usage summary, or None when the cache saw no traffic."""

    cache = result.runtime.global_cache
    if cache.n_gets == 0 and cache.n_puts == 0:
        return None
    return CacheReport(
        n_gets=cache.n_gets,
        hit_ratio=cache.hit_ratio,
        n_puts=cache.n_puts,
        n_evictions=cache.n_evictions,
        resident_mb=cache.resident_bytes() / 1e6,
    )


def analyze_network(result: "ExperimentResult") -> dict:
    """Aggregate network counters: messages, bytes moved, busiest node."""

    net = result.cluster.network
    sent = sum(n.bytes_sent for n in net.nics)
    busiest = max(net.nics, key=lambda n: n.bytes_sent + n.bytes_received)
    return {
        "messages": net.messages_delivered,
        "total_mb_moved": sent / 1e6,
        "busiest_node": busiest.node_id,
        "busiest_node_mb": (busiest.bytes_sent + busiest.bytes_received) / 1e6,
    }


def summarize(result: "ExperimentResult") -> str:
    """A complete plain-text report for one experiment."""
    parts = []
    parts.append(
        format_table(
            ["job", "strategy", "ranks", "time (s)", "MB/s", "I/O ratio"],
            [
                [j.name, j.strategy, j.nprocs, j.elapsed_s, j.throughput_mb_s,
                 f"{j.io_ratio:.0%}"]
                for j in result.jobs
            ],
            title="jobs",
            float_fmt="{:.2f}",
        )
    )
    disks = analyze_disks(result)
    parts.append(
        format_table(
            ["server", "requests", "MB", "busy (s)", "util", "unit KB",
             "queue", "seek (sect)", "busy MB/s"],
            [
                [r.server, r.n_requests, r.bytes_served / 1e6, r.busy_s,
                 f"{r.utilization:.0%}", r.mean_unit_kb, r.mean_queue_depth,
                 r.mean_seek_sectors, r.effective_mb_s]
                for r in disks
            ],
            title="data servers",
            float_fmt="{:.1f}",
        )
    )
    cache = analyze_cache(result)
    if cache is not None:
        parts.append(
            f"global cache: {cache.n_gets} gets ({cache.hit_ratio:.0%} hits), "
            f"{cache.n_puts} puts, {cache.n_evictions} evictions, "
            f"{cache.resident_mb:.1f} MB resident"
        )
    net = analyze_network(result)
    parts.append(
        f"network: {net['messages']} messages, {net['total_mb_moved']:.1f} MB moved, "
        f"busiest node {net['busiest_node']} "
        f"({net['busiest_node_mb']:.1f} MB in+out)"
    )
    for mj in result.mpi_jobs:
        eng = mj.engine
        if hasattr(eng, "pec"):
            parts.append(
                f"DualPar[{mj.name}]: mode={mj.mode}, "
                f"{eng.pec.n_cycles} cycles "
                f"({eng.pec.n_deadline_stops} deadline stops), "
                f"prefetched {eng.crm.prefetched_bytes / 1e6:.1f} MB, "
                f"wrote back {eng.crm.writeback_bytes / 1e6:.1f} MB, "
                f"cache hits/misses {eng.n_cache_hits}/{eng.n_cache_misses}, "
                f"direct fallback {eng.n_direct_fallback_bytes / 1e6:.2f} MB"
            )
    return "\n\n".join(parts)
