"""Tracing: blktrace-style disk access records and throughput timelines.

The paper uses Blktrace to show *where* the disk head travelled under each
strategy (Figs 1(c,d) and 6) and windowed throughput to show mode switching
(Fig 7).  These recorders regenerate both.
"""

from repro.trace.blktrace import AccessRecord, BlkTrace
from repro.trace.timeline import ThroughputTimeline

__all__ = ["AccessRecord", "BlkTrace", "ThroughputTimeline"]
