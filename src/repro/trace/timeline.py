"""Windowed throughput timelines (Fig 7(a)).

Samples live in a :class:`repro.obs.registry.TimeSeries` (``(time,
nbytes)`` completion events), so a timeline can be registered into a
:class:`~repro.obs.registry.MetricsRegistry` as ``timeline.<name>``
rather than keeping private parallel lists.
"""

from __future__ import annotations

import numpy as np

from repro.obs.registry import TimeSeries

__all__ = ["ThroughputTimeline"]


class ThroughputTimeline:
    """Accumulates (time, bytes) completion samples; reports MB/s series."""

    def __init__(self, name: str = "throughput", registry=None):
        self.name = name
        self._series = TimeSeries(f"timeline.{name}")
        if registry is not None and registry.enabled:
            registry.attach(self._series.name, self._series)

    def record(self, time: float, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._series.record(time, nbytes)

    @property
    def total_bytes(self) -> int:
        return int(sum(v for _, v in self._series.samples))

    def series(self, window_s: float = 1.0, t_end: float | None = None) -> list[tuple[float, float]]:
        """[(window_start, MB/s), ...] over fixed windows from t=0.

        ``t_end`` extends the series with trailing zero-throughput windows
        (the paper's Fig 7(a) shows the full execution span).
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        samples = self._series.samples
        if not samples and t_end is None:
            return []
        times = np.array([t for t, _ in samples], dtype=float)
        sizes = np.array([v for _, v in samples], dtype=float)
        last = max(times.max() if len(times) else 0.0, t_end or 0.0)
        n_windows = int(np.floor(last / window_s)) + 1
        out = []
        idx = np.minimum((times / window_s).astype(int), n_windows - 1) if len(times) else None
        sums = np.zeros(n_windows)
        if idx is not None:
            np.add.at(sums, idx, sizes)
        for w in range(n_windows):
            out.append((w * window_s, sums[w] / 1e6 / window_s))
        return out

    def mean_mb_s(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Average MB/s between t0 and t1."""
        samples = self._series.samples
        if not samples:
            return 0.0
        times = np.array([t for t, _ in samples])
        sizes = np.array([v for _, v in samples], dtype=float)
        mask = (times >= t0) & (times < t1)
        span = min(t1, times.max()) - t0
        if span <= 0:
            return 0.0
        return float(sizes[mask].sum() / 1e6 / span)
