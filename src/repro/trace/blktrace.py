"""Blktrace-style per-disk access recording.

Storage is a :class:`repro.obs.registry.EventLog` -- the same structure
the observability layer snapshots -- so a trace can be registered into a
:class:`~repro.obs.registry.MetricsRegistry` (as ``blktrace.<name>``)
instead of keeping a private list nobody else can discover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.registry import EventLog

__all__ = ["AccessRecord", "BlkTrace"]


@dataclass(frozen=True)
class AccessRecord:
    time: float
    lbn: int
    nsectors: int
    op: str


class BlkTrace:
    """Records every media access of one drive.

    Attach by passing :meth:`hook` as the drive's ``on_access`` callback
    (or pass the trace to the cluster builder, which wires it up).  Pass
    a :class:`~repro.obs.registry.MetricsRegistry` to publish the access
    log as the ``blktrace.<name>`` event log.
    """

    def __init__(self, name: str = "blktrace", registry=None):
        self.name = name
        self._log = EventLog(
            f"blktrace.{name}", fields=("time", "lbn", "nsectors", "op")
        )
        if registry is not None and registry.enabled:
            registry.attach(self._log.name, self._log)

    @property
    def records(self) -> list[AccessRecord]:
        return self._log.rows

    def hook(self, time: float, lbn: int, nsectors: int, op: str) -> None:
        self._log.append(AccessRecord(time, lbn, nsectors, op))

    def __len__(self) -> int:
        return len(self._log)

    def window(self, t0: float, t1: float) -> list[AccessRecord]:
        """Records with t0 <= time < t1 (the paper samples 0.2-1 s windows)."""
        return [r for r in self.records if t0 <= r.time < t1]

    def to_arrays(
        self, t0: float = 0.0, t1: float = float("inf")
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, lbns) arrays for plotting an LBN-vs-time figure."""
        recs = self.window(t0, t1)
        return (
            np.array([r.time for r in recs], dtype=float),
            np.array([r.lbn for r in recs], dtype=np.int64),
        )

    def mean_seek_distance(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Mean |gap| in sectors between consecutively-serviced accesses.

        This is the quantity Fig 7(b) plots: average disk-head seek
        distance per request over a sampling window.
        """
        recs = self.window(t0, t1)
        if len(recs) < 2:
            return 0.0
        gaps = [
            abs(b.lbn - (a.lbn + a.nsectors)) for a, b in zip(recs, recs[1:])
        ]
        return float(np.mean(gaps))

    def monotonicity(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Fraction of consecutive access pairs moving forward on disk.

        Near 1.0 means the head sweeps one way (Fig 1(d)); near 0.5 means
        back-and-forth ping-pong (Fig 1(c)).
        """
        recs = self.window(t0, t1)
        if len(recs) < 2:
            return 1.0
        fwd = sum(1 for a, b in zip(recs, recs[1:]) if b.lbn >= a.lbn)
        return fwd / (len(recs) - 1)

    def ascii_plot(
        self, t0: float, t1: float, width: int = 72, height: int = 20
    ) -> str:
        """Render the LBN-vs-time scatter as ASCII art (for bench output)."""
        times, lbns = self.to_arrays(t0, t1)
        if len(times) == 0:
            return "(no accesses in window)"
        tmin, tmax = float(times.min()), float(times.max())
        lmin, lmax = int(lbns.min()), int(lbns.max())
        tspan = max(tmax - tmin, 1e-12)
        lspan = max(lmax - lmin, 1)
        grid = [[" "] * width for _ in range(height)]
        for t, l in zip(times, lbns):
            x = min(int((t - tmin) / tspan * (width - 1)), width - 1)
            y = min(int((l - lmin) / lspan * (height - 1)), height - 1)
            grid[height - 1 - y][x] = "*"
        lines = ["".join(row) for row in grid]
        header = f"LBN {lmin}..{lmax} over t={t0:.3f}..{t1:.3f}s ({len(times)} accesses)"
        return "\n".join([header] + lines)
