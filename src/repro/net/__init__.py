"""Cluster interconnect model (switched Gigabit Ethernet).

A star topology: every node owns a full-duplex NIC; the switch fabric is
non-blocking (as the Darwin cluster's GigE switch effectively was at 9
data servers).  A message therefore contends at exactly two points: the
sender's transmit side and the receiver's receive side -- which is what
makes a data server's NIC the natural serialisation point when 64 clients
push requests at it.
"""

from repro.net.ethernet import Network, NetworkParams, Nic

__all__ = ["Network", "NetworkParams", "Nic"]
