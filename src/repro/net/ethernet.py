"""Bandwidth/latency network with per-NIC serialisation.

Transfer model (cut-through): a message of ``n`` bytes from A to B

1. waits for A's TX side, holding it for ``overhead + n / bandwidth``;
2. propagates for ``latency``;
3. waits for B's RX side, holding it for ``n / bandwidth``.

TX is released before the RX hold, so a fast sender can pipeline messages
to distinct receivers while a busy receiver back-pressures its own queue.
This keeps end-to-end time = ``overhead + latency + n/bw`` when idle and
produces fan-in queueing when many clients target one server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim import Resource, Simulator

__all__ = ["Network", "NetworkParams", "Nic"]


@dataclass(frozen=True)
class NetworkParams:
    """Defaults model the Darwin cluster's switched GigE."""

    bandwidth_bytes_s: float = 117e6  # ~GigE after protocol overheads
    latency_s: float = 50e-6
    per_message_overhead_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0 or self.per_message_overhead_s < 0:
            raise ValueError("latency/overhead must be non-negative")


class Nic:
    """Full-duplex NIC: independent TX and RX serialisation points."""

    def __init__(self, sim: Simulator, node_id: int):
        self.node_id = node_id
        self.tx = Resource(sim, capacity=1)
        self.rx = Resource(sim, capacity=1)
        self.bytes_sent = 0
        self.bytes_received = 0


class Network:
    """A switch connecting ``n_nodes`` NICs."""

    def __init__(self, sim: Simulator, n_nodes: int, params: NetworkParams | None = None):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.params = params or NetworkParams()
        self.nics = [Nic(sim, i) for i in range(n_nodes)]
        self.messages_delivered = 0
        #: Degradation state installed by the fault injector (None
        #: nominally; see repro.faults.injector.NetFault).
        self.fault = None

    def n_nodes(self) -> int:
        return len(self.nics)

    def transfer(self, src: int, dst: int, nbytes: int) -> Generator:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        A generator to ``yield from`` inside the caller's process; returns
        when the last byte lands.  Loopback (src == dst) costs only the
        per-message overhead (shared memory).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        sim = self.sim
        p = self.params
        san = sim._sanitizer
        owncheck = san.ownership if san is not None else None
        if src == dst:
            yield sim.timeout(p.per_message_overhead_s)
            self.messages_delivered += 1
            if owncheck is not None:
                owncheck.on_transfer(src, dst)
            return
        src_nic, dst_nic = self.nics[src], self.nics[dst]
        wire_time = nbytes / p.bandwidth_bytes_s

        fault = self.fault
        if fault is not None:
            # Partition wait + injected latency/jitter, before any NIC is
            # held so a cut never pins resources.
            yield from fault.gate(src, dst)

        # Hold TX and RX simultaneously over a single wire occupation so
        # transfer time is charged once while both endpoints serialise.
        # Acquisition order (own TX, then destination RX) is cycle-free.
        tx_req = src_nic.tx.request()
        yield tx_req
        rx_req = dst_nic.rx.request()
        yield rx_req
        try:
            yield sim.timeout(p.per_message_overhead_s + p.latency_s + wire_time)
            src_nic.bytes_sent += nbytes
            dst_nic.bytes_received += nbytes
        finally:
            dst_nic.rx.release(rx_req)
            src_nic.tx.release(tx_req)
        self.messages_delivered += 1
        if owncheck is not None:
            owncheck.on_transfer(src, dst)
