"""Content-addressed experiment result catalog with full provenance.

One :class:`CatalogRecord` per experiment fingerprint (the bench-cache
sha256 of the lowered spec, code version included), stored as one JSON
file under ``<root>/records/<fingerprint>.json``.  Records are committed
atomically -- written to a temp file, fsynced, then renamed into place,
exactly like the bench cache -- so a reader can never observe a torn
entry: a record either exists whole or not at all, and any corruption
found on disk reads as a miss, never an error.

A record carries everything needed to audit or reproduce the run:

- ``code_version``   -- hash of the whole ``repro`` package source;
- ``submission``     -- the canonical schema-v1 submission dict
  (including any fault plan and guard config verbatim);
- ``result``         -- the JSON-canonical measurement surface of the
  run (per-job measurements, makespan, DualPar transitions, fault log,
  guard transitions/summary, obs metrics snapshot when observed);
- ``provenance``     -- who computed it and how: worker id, attempt
  count, wall time, coordinator host/pid, submit tenant, timestamps.

``result_to_dict`` defines the *one* canonical JSON form of a
:class:`~repro.runner.SlimExperimentResult`; the service-level tests
compare a catalog record against a direct ``run_experiment`` of the same
spec through this function, bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

from repro.runner.parallel import SlimExperimentResult

__all__ = [
    "RECORD_VERSION",
    "CatalogRecord",
    "ResultCatalog",
    "canonical_json",
    "default_catalog_dir",
    "result_to_dict",
]

#: On-disk record format version; anything else is rejected on load.
RECORD_VERSION = 1


def default_catalog_dir() -> Path:
    """Catalog root: ``$REPRO_SERVICE_CATALOG`` or ``.service_catalog``."""
    return Path(os.environ.get("REPRO_SERVICE_CATALOG", ".service_catalog"))


def canonical_json(obj: Any) -> str:
    """The one canonical JSON rendering used for bit-identity checks."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def result_to_dict(result: SlimExperimentResult) -> dict:
    """The canonical JSON-able measurement surface of one slim result.

    The payload is round-tripped through the JSON codec so that what a
    coordinator stores and what a direct in-process run produces are
    structurally identical (tuples become lists, mapping keys become
    strings) -- JSON floats round-trip exactly (shortest-repr), so this
    normalisation never changes a measured value.
    """
    payload = {
        "jobs": [dataclasses.asdict(j) for j in result.jobs],
        "makespan_s": result.makespan_s,
        "total_bytes_served": result.total_bytes_served,
        "dualpar_transitions": [list(t) for t in result.dualpar_transitions],
        "fault_log": [list(ev) for ev in result.fault_log],
        "guard_transitions": [list(t) for t in result.guard_transitions],
        "guard_summary": result.guard_summary,
        "metrics": result.metrics,
    }
    return json.loads(canonical_json(payload))


@dataclass(frozen=True)
class CatalogRecord:
    """One catalogued experiment: content address, payloads, provenance."""

    fingerprint: str
    code_version: str
    submission: dict
    result: dict
    provenance: dict
    record_version: int = RECORD_VERSION

    def __post_init__(self) -> None:
        if self.record_version != RECORD_VERSION:
            raise ValueError(
                f"unsupported record_version {self.record_version!r} "
                f"(this catalog speaks version {RECORD_VERSION})"
            )
        if not self.fingerprint:
            raise ValueError("fingerprint must be non-empty")

    def to_dict(self) -> dict:
        return {
            "record_version": self.record_version,
            "fingerprint": self.fingerprint,
            "code_version": self.code_version,
            "submission": self.submission,
            "result": self.result,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CatalogRecord":
        if "record_version" not in d:
            raise ValueError("catalog record is missing record_version")
        unknown = set(d) - _RECORD_FIELDS
        if unknown:
            raise ValueError(f"unknown CatalogRecord fields: {sorted(unknown)}")
        return cls(**d)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "CatalogRecord":
        return cls.from_dict(json.loads(text))


_RECORD_FIELDS = frozenset(f.name for f in fields(CatalogRecord))


class ResultCatalog:
    """Directory of catalog records, keyed by experiment fingerprint."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_catalog_dir()
        self.records_dir = self.root / "records"

    def path_for(self, fingerprint: str) -> Path:
        return self.records_dir / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[CatalogRecord]:
        """Load one record; missing or corrupt entries read as a miss."""
        try:
            text = self.path_for(fingerprint).read_text(encoding="utf-8")
            record = CatalogRecord.from_json(text)
        except (OSError, ValueError, TypeError):
            return None
        return record if record.fingerprint == fingerprint else None

    def put(self, record: CatalogRecord) -> bool:
        """Commit one record atomically (fsync before rename).

        Returns False -- leaving the existing entry untouched -- when the
        fingerprint is already catalogued: content-addressed entries are
        immutable, so first write wins and replays are no-ops.
        """
        path = self.path_for(record.fingerprint)
        if path.exists():
            return False
        self.records_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.records_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(record.to_json())
                f.write("\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return True

    def fingerprints(self) -> list[str]:
        if not self.records_dir.is_dir():
            return []
        return sorted(p.stem for p in self.records_dir.glob("*.json"))

    def records(self) -> Iterator[CatalogRecord]:
        for fp in self.fingerprints():
            record = self.get(fp)
            if record is not None:
                yield record

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).is_file()
