"""Async experiment coordinator: submissions in, catalog records out.

The coordinator is the long-running front of the DualPar harness
(ROADMAP item 3): tenants submit :class:`~repro.service.schemas
.ExperimentSubmission` JSON over a line-delimited TCP API, the
coordinator validates each against the versioned schema, dedupes by the
bench-cache sha256 fingerprint (code version included), applies
per-tenant quotas and global backpressure charged against a
:class:`repro.guard.MemoryBudget`, fans the remaining work out to a
:class:`~repro.service.worker.WorkerPool`, and commits each result to
the content-addressed :class:`~repro.service.catalog.ResultCatalog`
with full provenance.

Dedup ladder, applied in order at submit time:

1. **catalogued** -- the fingerprint already has a record: served
   immediately, nothing runs (``status: "cached"``);
2. **in flight**  -- the fingerprint is queued or running: the
   submission joins the existing job (``status: "joined"``) and, with
   ``wait``, is answered by the same record when it lands;
3. **admitted**   -- quota and backpressure permitting, the submission
   is enqueued (``status: "queued"``).

Backpressure: every admitted submission charges its declared data
volume against the guard budget -- per-tenant (``job_cap_bytes``-style
cap -> ``status: "rejected", reason: "quota"``) and coordinator-wide
(``node_cap_bytes``-style cap, plus a queued-job count ceiling ->
``reason: "backpressure"``).  Charges release when the job leaves the
system, so a throttled tenant only has to wait, not resubmit blindly.

Shutdown: ``request_shutdown(drain=True)`` (wired to SIGTERM/SIGINT by
``repro serve``) stops accepting submissions, lets queued and in-flight
jobs finish, commits their records, then stops the pool -- no catalog
entry is lost or duplicated by a drain (content-addressed commits are
first-write-wins and idempotent).

Wire protocol: one JSON object per line, one JSON reply per line.
Operations: ``submit`` (optionally ``wait``), ``status``, ``result``,
``list``, ``ping``, ``shutdown``.  See ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time
from typing import Any, Optional

from repro import __version__
from repro.guard import GuardConfig, MemoryBudget
from repro.runner.parallel import _code_fingerprint
from repro.service.catalog import CatalogRecord, ResultCatalog, result_to_dict
from repro.service.schemas import SCHEMA_VERSION, ExperimentSubmission
from repro.service.worker import WorkerPool

__all__ = ["Coordinator", "ServiceHandle", "start_in_thread"]

#: Default per-tenant cap on declared bytes queued + running (4 GiB).
DEFAULT_TENANT_CAP_BYTES = 4 * 1024**3
#: Default coordinator-wide cap on declared bytes in the system (16 GiB).
DEFAULT_QUEUE_CAP_BYTES = 16 * 1024**3
#: Default ceiling on jobs queued or running, regardless of size.
DEFAULT_MAX_JOBS = 256

#: The single "node" every admission charge lands on: the coordinator
#: itself is the shared resource the global cap protects.
_COORD_NODE = 0


class _PendingJob:
    __slots__ = (
        "fingerprint",
        "submission",
        "payload",
        "tenant",
        "charged_bytes",
        "n_joined",
        "waiters",
        "submitted_unix",
    )

    def __init__(
        self, fingerprint: str, submission: ExperimentSubmission, payload: dict
    ) -> None:
        self.fingerprint = fingerprint
        self.submission = submission
        self.payload = payload
        self.tenant = submission.tenant
        self.charged_bytes = submission.declared_bytes
        self.n_joined = 0
        self.waiters: list[asyncio.Future] = []
        self.submitted_unix = time.time()


class Coordinator:
    """The experiment service: schema gate, dedup, quotas, fan-out,
    catalog commit.  One instance per process; start on a running loop."""

    def __init__(
        self,
        catalog_dir: Optional[Any] = None,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant_cap_bytes: int = DEFAULT_TENANT_CAP_BYTES,
        queue_cap_bytes: int = DEFAULT_QUEUE_CAP_BYTES,
        max_jobs: int = DEFAULT_MAX_JOBS,
        max_attempts: int = 3,
        allow_chaos: bool = False,
    ) -> None:
        self.catalog = ResultCatalog(catalog_dir)
        self.host = host
        self.port = port  # rebound to the real port once the server binds
        self.n_workers = workers
        self.max_jobs = max_jobs
        #: Accept protocol-level chaos flags (crash-a-worker); test rigs
        #: and the smoke harness only -- never a production default.
        self.allow_chaos = allow_chaos
        # Tenant quotas and global backpressure ride the guard's budget
        # accountant: tenants are "jobs", the coordinator is the "node".
        self._budget = MemoryBudget(
            GuardConfig(job_cap_bytes=tenant_cap_bytes, node_cap_bytes=queue_cap_bytes)
        )
        self._tenant_ids: dict[str, int] = {}
        self._max_attempts = max_attempts
        self._jobs: dict[str, _PendingJob] = {}
        self._failures: dict[str, str] = {}
        self._pool: Optional[WorkerPool] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._started_unix = 0.0
        # -- counters ------------------------------------------------------
        self.n_submissions = 0
        self.n_cached = 0
        self.n_joined = 0
        self.n_queued = 0
        self.n_completed = 0
        self.n_failed = 0
        self.n_rejected_quota = 0
        self.n_rejected_backpressure = 0
        self.n_rejected_invalid = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._started_unix = time.time()
        loop = self._loop
        self._pool = WorkerPool(
            self.n_workers,
            deliver=lambda event: loop.call_soon_threadsafe(self._on_pool_event, event),
            max_attempts=self._max_attempts,
        )
        self._pool.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self, drain: bool = True) -> None:
        """Begin shutdown; safe to call from signal handlers and tasks."""
        assert self._loop is not None
        self._loop.create_task(self.shutdown(drain=drain))

    async def shutdown(self, drain: bool = True) -> None:
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            while self._jobs:
                await asyncio.sleep(0.02)
        if self._pool is not None:
            pool = self._pool
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.stop(drain=drain)
            )
        assert self._stopped is not None
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    # -- wire protocol ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    response = await self._handle_request(request)
                except ValueError as exc:
                    response = {"ok": False, "error": str(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _handle_request(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "schema_version": SCHEMA_VERSION}
        if op == "submit":
            return await self._handle_submit(request)
        if op == "status":
            return {"ok": True, "status": self.status()}
        if op == "result":
            return self._handle_result(request)
        if op == "list":
            return {"ok": True, "fingerprints": self.catalog.fingerprints()}
        if op == "shutdown":
            self.request_shutdown(drain=bool(request.get("drain", True)))
            return {"ok": True, "draining": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- submission ------------------------------------------------------

    def _tenant_id(self, tenant: str) -> int:
        return self._tenant_ids.setdefault(tenant, len(self._tenant_ids))

    async def _handle_submit(self, request: dict) -> dict:
        self.n_submissions += 1
        raw = request.get("submission")
        if not isinstance(raw, dict):
            self.n_rejected_invalid += 1
            return {"ok": False, "status": "rejected", "reason": "invalid",
                    "error": "submit needs a 'submission' object"}
        try:
            submission = ExperimentSubmission.from_dict(raw)
            fingerprint = submission.fingerprint()
        except (ValueError, TypeError) as exc:
            self.n_rejected_invalid += 1
            return {"ok": False, "status": "rejected", "reason": "invalid",
                    "error": str(exc)}
        wait = bool(request.get("wait", False))
        chaos_crash = bool(request.get("chaos_crash_worker", False))
        if chaos_crash and not self.allow_chaos:
            self.n_rejected_invalid += 1
            return {"ok": False, "status": "rejected", "reason": "invalid",
                    "error": "chaos_crash_worker requires --allow-chaos"}

        # 1. Already catalogued: content-addressed hit, nothing to run.
        record = self.catalog.get(fingerprint)
        if record is not None:
            self.n_cached += 1
            response = {"ok": True, "status": "cached", "fingerprint": fingerprint}
            if wait:
                response["record"] = record.to_dict()
            return response

        # 2. In flight: join the existing job.
        job = self._jobs.get(fingerprint)
        if job is not None:
            self.n_joined += 1
            job.n_joined += 1
            if wait:
                return await self._wait_for(job, status="joined")
            return {"ok": True, "status": "joined", "fingerprint": fingerprint}

        if self._draining:
            return {"ok": False, "status": "rejected", "reason": "draining",
                    "fingerprint": fingerprint}

        # 3. Admission control: job-count ceiling, then the guard budget
        # (per-tenant cap first so the reason is attributable).
        if len(self._jobs) >= self.max_jobs:
            self.n_rejected_backpressure += 1
            return {"ok": False, "status": "rejected", "reason": "backpressure",
                    "fingerprint": fingerprint}
        tenant_id = self._tenant_id(submission.tenant)
        declared = submission.declared_bytes
        if self._budget.job_headroom(tenant_id) < declared:
            self.n_rejected_quota += 1
            return {"ok": False, "status": "rejected", "reason": "quota",
                    "fingerprint": fingerprint, "tenant": submission.tenant}
        if not self._budget.try_charge(declared, job_id=tenant_id, node=_COORD_NODE):
            self.n_rejected_backpressure += 1
            return {"ok": False, "status": "rejected", "reason": "backpressure",
                    "fingerprint": fingerprint}

        payload = submission.to_dict()
        job = _PendingJob(fingerprint, submission, payload)
        self._jobs[fingerprint] = job
        self.n_queued += 1
        assert self._pool is not None
        self._pool.submit(fingerprint, payload, chaos_crash=chaos_crash)
        if wait:
            return await self._wait_for(job, status="queued")
        return {"ok": True, "status": "queued", "fingerprint": fingerprint}

    async def _wait_for(self, job: _PendingJob, status: str) -> dict:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        job.waiters.append(future)
        response = dict(await future)
        response["submit_status"] = status
        return response

    def _handle_result(self, request: dict) -> dict:
        fingerprint = request.get("fingerprint")
        if not isinstance(fingerprint, str):
            return {"ok": False, "error": "result needs a 'fingerprint' string"}
        record = self.catalog.get(fingerprint)
        if record is not None:
            return {"ok": True, "status": "done", "record": record.to_dict()}
        if fingerprint in self._jobs:
            return {"ok": True, "status": "pending", "fingerprint": fingerprint}
        if fingerprint in self._failures:
            return {"ok": False, "status": "failed",
                    "error": self._failures[fingerprint]}
        return {"ok": True, "status": "unknown", "fingerprint": fingerprint}

    # -- pool events -----------------------------------------------------

    def _on_pool_event(self, event: tuple) -> None:
        kind = event[0]
        if kind == "done":
            _, fingerprint, slim, worker_id, wall_s, attempts = event
            job = self._jobs.get(fingerprint)
            if job is None:  # pragma: no cover - defensive
                return
            record = CatalogRecord(
                fingerprint=fingerprint,
                code_version=_code_fingerprint(),
                submission=job.payload,
                result=result_to_dict(slim),
                provenance={
                    "repro_version": __version__,
                    "tenant": job.tenant,
                    "worker_id": worker_id,
                    "attempts": attempts,
                    "wall_time_s": wall_s,
                    "submitted_unix": job.submitted_unix,
                    "committed_unix": time.time(),
                    "coordinator_host": socket.gethostname(),
                    "coordinator_pid": os.getpid(),
                    "n_joined": job.n_joined,
                },
            )
            self.catalog.put(record)
            self.n_completed += 1
            self._finish(job, {"ok": True, "status": "done",
                               "fingerprint": fingerprint,
                               "record": record.to_dict()})
        elif kind == "failed":
            _, fingerprint, tb_text, _worker_id, _attempts = event
            job = self._jobs.get(fingerprint)
            if job is None:  # pragma: no cover - defensive
                return
            self.n_failed += 1
            self._failures[fingerprint] = tb_text
            self._finish(job, {"ok": False, "status": "failed",
                               "fingerprint": fingerprint, "error": tb_text})
        # "requeue" events are informational; the pool already counts them.

    def _finish(self, job: _PendingJob, response: dict) -> None:
        del self._jobs[job.fingerprint]
        tenant_id = self._tenant_id(job.tenant)
        self._budget.release(job.charged_bytes, job_id=tenant_id, node=_COORD_NODE)
        for future in job.waiters:
            if not future.done():
                future.set_result(response)
        job.waiters.clear()

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        pool = self._pool.snapshot() if self._pool is not None else {}
        tenants = {
            tenant: {
                "active_bytes": self._budget.job_used(tenant_id),
                "headroom_bytes": self._budget.job_headroom(tenant_id),
            }
            for tenant, tenant_id in sorted(self._tenant_ids.items())
        }
        return {
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "uptime_s": time.time() - self._started_unix,
            "draining": self._draining,
            "schema_version": SCHEMA_VERSION,
            "catalog_dir": str(self.catalog.root),
            "catalog_entries": len(self.catalog),
            "in_flight": len(self._jobs),
            "queued_bytes": self._budget.node_used(_COORD_NODE),
            "tenants": tenants,
            "counters": {
                "submissions": self.n_submissions,
                "cached": self.n_cached,
                "joined": self.n_joined,
                "queued": self.n_queued,
                "completed": self.n_completed,
                "failed": self.n_failed,
                "rejected_quota": self.n_rejected_quota,
                "rejected_backpressure": self.n_rejected_backpressure,
                "rejected_invalid": self.n_rejected_invalid,
            },
            "pool": pool,
        }


# ---------------------------------------------------------------------------
# in-thread embedding (tests, smoke harness)
# ---------------------------------------------------------------------------


class ServiceHandle:
    """A coordinator running on its own loop in a background thread."""

    def __init__(self) -> None:
        self.coordinator: Optional[Coordinator] = None
        self.host = ""
        self.port = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if self._loop is not None and self.coordinator is not None:
            self._loop.call_soon_threadsafe(
                self.coordinator.request_shutdown, drain
            )
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()


def start_in_thread(timeout: float = 60.0, **kwargs: Any) -> ServiceHandle:
    """Start a coordinator on a dedicated thread; returns once it is
    listening.  The in-process fixture the service tests build on."""
    handle = ServiceHandle()

    def runner() -> None:
        async def main() -> None:
            coordinator = Coordinator(**kwargs)
            await coordinator.start()
            handle.coordinator = coordinator
            handle.host = coordinator.host
            handle.port = coordinator.port
            handle._loop = asyncio.get_running_loop()
            handle._ready.set()
            await coordinator.wait_stopped()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced on start
            handle._error = exc
            handle._ready.set()

    handle._thread = threading.Thread(
        target=runner, name="repro-coordinator", daemon=True
    )
    handle._thread.start()
    if not handle._ready.wait(timeout) or handle.coordinator is None:
        raise RuntimeError(f"coordinator failed to start: {handle._error!r}")
    return handle
