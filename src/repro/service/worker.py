"""Local worker pool: experiment cells in child processes, crash-safe.

The coordinator fans submissions out to a pool of long-lived worker
processes.  This reuses the cell-execution machinery of
:mod:`repro.runner.parallel` (a worker evaluates exactly the cell
``_run_spec`` would), but unlike a ``ProcessPoolExecutor`` the pool

- knows *which* job each worker holds, so when a worker dies mid-job
  (OOM-killed, segfaulted, chaos-tested) the assignment is requeued to a
  fresh worker instead of poisoning the whole pool;
- caps requeues per job (``max_attempts``) so a cell that reliably
  kills its worker eventually fails loudly instead of cycling forever;
- reports Python exceptions raised *inside* a cell with the child's full
  traceback text (they are not requeued: the simulation is
  deterministic, so a failing cell would fail again).

Transport: one job pipe (parent -> child) and one result pipe (child ->
parent) per worker, plus the process sentinel; a single monitor thread
multiplexes all of them with :func:`multiprocessing.connection.wait`.
Pool events are delivered to the owner through the ``deliver`` callback
*on the monitor thread* -- the coordinator bridges them onto its asyncio
loop with ``call_soon_threadsafe``.

Event tuples delivered::

    ("done",    job_id, slim_result, worker_id, wall_s, attempts)
    ("failed",  job_id, traceback_text, worker_id, attempts)
    ("requeue", job_id, dead_worker_id, attempts)   # informational
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from collections import deque
from multiprocessing.connection import Connection, wait as mp_wait
from typing import Any, Callable, Optional

# Pre-import everything a worker touches so a forked child never has to
# take the import lock (the pool may be started from a non-main thread).
from repro.runner.parallel import _run_spec  # noqa: F401  (worker entry)

__all__ = ["WorkerPool"]

#: Exit code a chaos-crashed worker dies with (tests assert on requeue,
#: not the code; it just keeps post-mortems readable).
CHAOS_EXIT_CODE = 13


def _execute_submission(payload: dict) -> Any:
    """Child-side cell evaluation: parse, lower, run, slim."""
    from repro.service.schemas import ExperimentSubmission

    submission = ExperimentSubmission.from_dict(payload)
    return _run_spec(submission.to_experiment_spec())


def _worker_main(worker_id: int, job_conn: Connection, result_conn: Connection) -> None:
    """Worker loop: receive ("job", id, payload, chaos_crash) until "stop"."""
    while True:
        try:
            msg = job_conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, job_id, payload, chaos_crash = msg
        if chaos_crash:
            # Deterministic crash-mid-job used by the requeue tests: the
            # job was assigned (the coordinator is counting on us) and we
            # die without a word, exactly like an OOM kill.
            os._exit(CHAOS_EXIT_CODE)
        t0 = time.perf_counter()
        try:
            result = _execute_submission(payload)
        except Exception:
            result_conn.send(("error", job_id, traceback.format_exc()))
        else:
            result_conn.send(("done", job_id, result, time.perf_counter() - t0))


class _Assignment:
    __slots__ = ("job_id", "payload", "attempts", "chaos_crash")

    def __init__(self, job_id: str, payload: dict, chaos_crash: bool = False) -> None:
        self.job_id = job_id
        self.payload = payload
        self.attempts = 0
        self.chaos_crash = chaos_crash


class _Worker:
    __slots__ = ("id", "process", "job_conn", "result_conn", "current")

    def __init__(
        self,
        worker_id: int,
        process: multiprocessing.process.BaseProcess,
        job_conn: Connection,
        result_conn: Connection,
    ) -> None:
        self.id = worker_id
        self.process = process
        self.job_conn = job_conn
        self.result_conn = result_conn
        self.current: Optional[_Assignment] = None


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform has it (cheap, everything pre-imported);
    the platform default otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class WorkerPool:
    """A fixed-size pool of experiment workers with crash requeue."""

    def __init__(
        self,
        n_workers: int,
        deliver: Callable[[tuple], None],
        max_attempts: int = 3,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.n_workers = n_workers
        self.max_attempts = max_attempts
        self._deliver = deliver
        self._ctx = _mp_context()
        self._lock = threading.Lock()
        self._pending: deque[_Assignment] = deque()  # simlint: ignore[SL006]
        self._workers: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        self._idle = threading.Event()
        self._idle.set()
        # -- counters (read via snapshot()) -------------------------------
        self.n_done = 0
        self.n_errors = 0
        self.n_requeues = 0
        self.n_respawns = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            for _ in range(self.n_workers):
                self._spawn_locked()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="workerpool-monitor", daemon=True
        )
        self._monitor.start()

    def _spawn_locked(self) -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        job_r, job_w = self._ctx.Pipe(duplex=False)
        res_r, res_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, job_r, res_w),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # Parent keeps the send side of jobs and the receive side of
        # results; the child's copies stay open in the child only.
        job_r.close()
        res_w.close()
        worker = _Worker(worker_id, process, job_w, res_r)
        self._workers[worker_id] = worker
        return worker

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop the pool; with ``drain`` wait for queued + in-flight work.

        Returns True when everything drained (or immediately for
        ``drain=False``, which abandons queued work and terminates
        workers)."""
        drained = True
        if drain:
            drained = self.wait_idle(timeout)
        with self._lock:
            self._stopping = True
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.job_conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.job_conn.close()
            worker.result_conn.close()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        return drained

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no work is queued or in flight."""
        return self._idle.wait(timeout)

    # -- submission ------------------------------------------------------

    def submit(self, job_id: str, payload: dict, chaos_crash: bool = False) -> None:
        """Queue one job; it is assigned to the first idle worker."""
        with self._lock:
            if self._stopping:
                raise RuntimeError("pool is stopping")
            self._pending.append(_Assignment(job_id, payload, chaos_crash))
            self._idle.clear()
            self._dispatch_locked()

    def _dispatch_locked(self) -> None:
        for worker in self._workers.values():
            if not self._pending:
                break
            if worker.current is not None or not worker.process.is_alive():
                continue
            assignment = self._pending.popleft()
            assignment.attempts += 1
            try:
                worker.job_conn.send(
                    (
                        "job",
                        assignment.job_id,
                        assignment.payload,
                        assignment.chaos_crash and assignment.attempts == 1,
                    )
                )
            except (OSError, BrokenPipeError):
                # Dying worker: put the job back; the monitor will reap
                # the corpse, respawn, and redispatch.
                assignment.attempts -= 1
                self._pending.appendleft(assignment)
                continue
            worker.current = assignment

    def _maybe_idle_locked(self) -> None:
        if not self._pending and all(w.current is None for w in self._workers.values()):
            self._idle.set()

    # -- monitoring ------------------------------------------------------

    def _monitor_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
                conn_of = {w.result_conn: w for w in self._workers.values()}
                sentinel_of = {w.process.sentinel: w for w in self._workers.values()}
            try:
                ready = mp_wait(
                    list(conn_of) + list(sentinel_of), timeout=0.1
                )
            except OSError:  # pragma: no cover - teardown race
                continue
            # Results first: a worker that answered and then exited
            # cleanly must not look like a mid-job crash.
            for conn in ready:
                worker = conn_of.get(conn)  # type: ignore[call-overload]
                if worker is None:
                    continue
                try:
                    msg = worker.result_conn.recv()
                except (EOFError, OSError):
                    continue  # death: handled via the sentinel below
                self._on_result(worker, msg)
            for sentinel in ready:
                worker = sentinel_of.get(sentinel)  # type: ignore[call-overload]
                if worker is not None:
                    self._on_death(worker)

    def _on_result(self, worker: _Worker, msg: tuple) -> None:
        with self._lock:
            assignment = worker.current
            worker.current = None
            self._dispatch_locked()
            self._maybe_idle_locked()
        attempts = assignment.attempts if assignment is not None else 1
        if msg[0] == "done":
            _, job_id, result, wall_s = msg
            self.n_done += 1
            self._deliver(("done", job_id, result, worker.id, wall_s, attempts))
        else:
            _, job_id, tb_text = msg
            self.n_errors += 1
            self._deliver(("failed", job_id, tb_text, worker.id, attempts))

    def _on_death(self, worker: _Worker) -> None:
        with self._lock:
            if worker.id not in self._workers:
                return
            del self._workers[worker.id]
            worker.job_conn.close()
            worker.result_conn.close()
            assignment = worker.current
            worker.current = None
            events: list[tuple] = []
            if assignment is not None:
                if assignment.attempts >= self.max_attempts:
                    self.n_errors += 1
                    events.append(
                        (
                            "failed",
                            assignment.job_id,
                            f"worker {worker.id} died "
                            f"(attempt {assignment.attempts}/{self.max_attempts}, "
                            "giving up)",
                            worker.id,
                            assignment.attempts,
                        )
                    )
                else:
                    self.n_requeues += 1
                    self._pending.appendleft(assignment)
                    events.append(
                        ("requeue", assignment.job_id, worker.id, assignment.attempts)
                    )
            if not self._stopping:
                self.n_respawns += 1
                self._spawn_locked()
                self._dispatch_locked()
            self._maybe_idle_locked()
        for event in events:
            self._deliver(event)

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable pool state for the status endpoint."""
        with self._lock:
            workers = [
                {
                    "id": w.id,
                    "pid": w.process.pid,
                    "alive": w.process.is_alive(),
                    "job": w.current.job_id if w.current is not None else None,
                }
                for w in self._workers.values()
            ]
            return {
                "workers": workers,
                "queued": len(self._pending),
                "done": self.n_done,
                "errors": self.n_errors,
                "requeues": self.n_requeues,
                "respawns": self.n_respawns,
            }
