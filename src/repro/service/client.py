"""Blocking stdlib client for the coordinator's line-JSON API.

Used by the ``repro submit`` / ``repro status`` CLI, the service-level
tests, and the CI smoke harness.  One TCP connection per request keeps
the client trivially correct; a ``submit(wait=True)`` call holds its
connection open until the coordinator answers with the final record.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Optional, Union

from repro.service.schemas import ExperimentSubmission

__all__ = ["ServiceClient", "ServiceError", "wait_until_ready"]


class ServiceError(RuntimeError):
    """The coordinator was unreachable or answered garbage."""


class ServiceClient:
    """Talk line-JSON to a running coordinator."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, payload: dict, timeout: Optional[float] = None) -> dict:
        """Send one request object, return the one reply object."""
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=timeout or self.timeout
            ) as conn:
                conn.sendall(json.dumps(payload).encode() + b"\n")
                with conn.makefile("rb") as reader:
                    line = reader.readline()
        except OSError as exc:
            raise ServiceError(
                f"coordinator at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        if not line:
            raise ServiceError("coordinator closed the connection mid-request")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"malformed coordinator reply: {line!r}") from exc
        if not isinstance(response, dict):
            raise ServiceError(f"malformed coordinator reply: {response!r}")
        return response

    # -- operations ------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def submit(
        self,
        submission: Union[ExperimentSubmission, dict],
        wait: bool = False,
        chaos_crash_worker: bool = False,
        timeout: Optional[float] = None,
    ) -> dict:
        raw = (
            submission.to_dict()
            if isinstance(submission, ExperimentSubmission)
            else submission
        )
        request: dict[str, Any] = {"op": "submit", "submission": raw, "wait": wait}
        if chaos_crash_worker:
            request["chaos_crash_worker"] = True
        return self.request(request, timeout=timeout)

    def status(self) -> dict:
        response = self.request({"op": "status"})
        if not response.get("ok"):
            raise ServiceError(f"status failed: {response}")
        return response["status"]

    def result(self, fingerprint: str) -> dict:
        return self.request({"op": "result", "fingerprint": fingerprint})

    def fingerprints(self) -> list[str]:
        response = self.request({"op": "list"})
        if not response.get("ok"):
            raise ServiceError(f"list failed: {response}")
        return response["fingerprints"]

    def shutdown(self, drain: bool = True) -> dict:
        return self.request({"op": "shutdown", "drain": drain})


def wait_until_ready(
    host: str, port: int, deadline_s: float = 30.0, poll_s: float = 0.05
) -> ServiceClient:
    """Poll until a coordinator answers ``ping``; returns a client."""
    client = ServiceClient(host, port)
    deadline = time.monotonic() + deadline_s
    last: Optional[BaseException] = None
    while time.monotonic() < deadline:
        try:
            client.ping()
            return client
        except ServiceError as exc:
            last = exc
            time.sleep(poll_s)
    raise ServiceError(
        f"coordinator at {host}:{port} not ready after {deadline_s}s: {last}"
    )
