"""DualPar-as-a-service: coordinator/worker experiment queue + catalog.

The service layer turns the one-shot experiment harness
(:mod:`repro.runner`) into a long-running, multi-tenant system
(ROADMAP item 3):

- :mod:`repro.service.schemas`     -- versioned JSON submission schema
  (unknown fields and foreign schema versions rejected outright);
- :mod:`repro.service.catalog`     -- content-addressed result catalog:
  one atomically-committed record per experiment fingerprint, with full
  provenance (code version, submission, fault plan, guard config, obs
  snapshot, worker id, wall time);
- :mod:`repro.service.worker`      -- local worker pool with crash
  detection and bounded requeue;
- :mod:`repro.service.coordinator` -- the asyncio coordinator: schema
  gate, sha256 dedup, guard-budget tenant quotas/backpressure, fan-out,
  drain-on-SIGTERM;
- :mod:`repro.service.client`      -- blocking line-JSON client (CLI,
  tests, smoke harness).

CLI: ``repro serve`` / ``repro submit`` / ``repro status`` /
``repro catalog``.  See ``docs/service.md``.
"""

from repro.service.catalog import (
    RECORD_VERSION,
    CatalogRecord,
    ResultCatalog,
    canonical_json,
    result_to_dict,
)
from repro.service.client import ServiceClient, ServiceError, wait_until_ready
from repro.service.coordinator import Coordinator, ServiceHandle, start_in_thread
from repro.service.schemas import (
    SCHEMA_VERSION,
    ClusterSubmission,
    ExperimentSubmission,
    JobSubmission,
)
from repro.service.worker import WorkerPool

__all__ = [
    "RECORD_VERSION",
    "SCHEMA_VERSION",
    "CatalogRecord",
    "ClusterSubmission",
    "Coordinator",
    "ExperimentSubmission",
    "JobSubmission",
    "ResultCatalog",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "WorkerPool",
    "canonical_json",
    "result_to_dict",
    "start_in_thread",
    "wait_until_ready",
]
