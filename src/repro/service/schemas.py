"""Versioned submission schema for the experiment service.

An :class:`ExperimentSubmission` is the JSON shape a tenant sends to the
coordinator: the experiment described in *catalogued* terms (workload by
name, cluster knobs, strategy, optional fault plan / guard config)
rather than as live Python objects, so every submission round-trips
through JSON, rejects unknown fields (like :class:`repro.faults.FaultPlan`
does), and fingerprints deterministically.

``to_experiment_spec()`` lowers a submission onto the existing harness:
the same workload builders the CLI uses, :func:`repro.cluster.paper_spec`,
and :class:`repro.runner.ExperimentSpec` -- so a catalogued service run
is, by construction, the same simulation a direct
:func:`repro.runner.run_experiment` call would perform, and the service
reuses :func:`repro.runner.parallel.experiment_fingerprint` (code version
included) as its content address.

Versioning: ``schema_version`` is required on the wire; a submission
carrying any other version is rejected outright (a coordinator must
never guess at half-understood fields).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping, Optional

from repro.faults import FaultPlan
from repro.guard import GuardConfig
from repro.workloads.base import normalize_op

__all__ = [
    "SCHEMA_VERSION",
    "ClusterSubmission",
    "ExperimentSubmission",
    "JobSubmission",
    "guard_from_dict",
    "guard_to_dict",
]

#: The one submission shape this coordinator understands.
SCHEMA_VERSION = 1

_IO_SCHEDULERS = ("cfq", "deadline", "noop", "anticipatory")


def _reject_unknown(raw: Mapping[str, Any], known: frozenset, what: str) -> None:
    unknown = set(raw) - known
    if unknown:
        raise ValueError(f"unknown {what} fields: {sorted(unknown)}")


def guard_to_dict(guard: GuardConfig) -> dict:
    """A :class:`~repro.guard.GuardConfig` as a plain JSON-able dict."""
    return asdict(guard)


def guard_from_dict(raw: Mapping[str, Any]) -> GuardConfig:
    """Parse a guard config, rejecting unknown fields."""
    _reject_unknown(raw, _GUARD_FIELDS, "GuardConfig")
    return GuardConfig(**raw)


_GUARD_FIELDS = frozenset(f.name for f in fields(GuardConfig))


@dataclass(frozen=True)
class JobSubmission:
    """One MPI job of a submitted experiment, in catalogued terms."""

    name: str
    workload: str
    nprocs: int = 64
    size_mb: int = 64
    op: str = "R"
    strategy: str = "vanilla"
    #: Launch this many simulated seconds after the experiment starts.
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        from repro.runner.strategies import STRATEGY_NAMES

        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if self.size_mb <= 0:
            raise ValueError("size_mb must be positive")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.strategy not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown strategy {self.strategy!r} (know {STRATEGY_NAMES})"
            )
        # Canonicalise the direction at the edge so "read"/"r"/"R" all
        # fingerprint (and round-trip) identically.
        object.__setattr__(self, "op", normalize_op(self.op))
        # Validate the workload name eagerly: a queued submission must
        # never explode in a worker over a typo the coordinator could
        # have rejected at submit time.  (Late import: repro.cli owns
        # the builder table and itself imports the runner.)
        from repro.cli import WORKLOADS

        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r} "
                f"(know {sorted(WORKLOADS)})"
            )


@dataclass(frozen=True)
class ClusterSubmission:
    """The cluster shape of a submitted experiment (paper_spec knobs)."""

    compute_nodes: int = 32
    data_servers: int = 9
    io_scheduler: str = "cfq"
    stripe_unit: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.compute_nodes <= 0 or self.data_servers <= 0:
            raise ValueError("compute_nodes/data_servers must be positive")
        if self.io_scheduler not in _IO_SCHEDULERS:
            raise ValueError(
                f"unknown io_scheduler {self.io_scheduler!r} (know {_IO_SCHEDULERS})"
            )
        if self.stripe_unit <= 0:
            raise ValueError("stripe_unit must be positive")


@dataclass(frozen=True)
class ExperimentSubmission:
    """A complete, validated experiment submission (wire schema v1)."""

    jobs: tuple[JobSubmission, ...]
    schema_version: int = SCHEMA_VERSION
    tenant: str = "default"
    label: str = ""
    cluster: ClusterSubmission = field(default_factory=ClusterSubmission)
    #: DualPar per-process cache quota (KB) -> DualParConfig, or None.
    quota_kb: Optional[int] = None
    limit_s: float = 1e6
    #: Attach the observability layer; the catalog record then carries
    #: the end-of-run metrics snapshot.
    observe: bool = False
    fault_plan: Optional[FaultPlan] = None
    guard: Optional[GuardConfig] = None

    def __post_init__(self) -> None:
        if self.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema_version {self.schema_version!r} "
                f"(this coordinator speaks version {SCHEMA_VERSION})"
            )
        if not isinstance(self.jobs, tuple):
            object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.jobs:
            raise ValueError("a submission needs at least one job")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.quota_kb is not None and self.quota_kb <= 0:
            raise ValueError("quota_kb must be positive")
        if self.limit_s <= 0:
            raise ValueError("limit_s must be positive")

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "schema_version": self.schema_version,
            "tenant": self.tenant,
            "label": self.label,
            "jobs": [asdict(j) for j in self.jobs],
            "cluster": asdict(self.cluster),
            "quota_kb": self.quota_kb,
            "limit_s": self.limit_s,
            "observe": self.observe,
            "fault_plan": self.fault_plan.to_dict() if self.fault_plan else None,
            "guard": guard_to_dict(self.guard) if self.guard else None,
        }
        # JSON-normal form (tuples become lists) so the dict a catalog
        # record stores compares equal whether it lived in memory or went
        # through the wire and the disk.
        return json.loads(json.dumps(payload))

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ExperimentSubmission":
        if "schema_version" not in d:
            raise ValueError("submission is missing schema_version")
        _reject_unknown(d, _SUBMISSION_FIELDS, "ExperimentSubmission")
        jobs = []
        for raw in d.get("jobs", ()):
            _reject_unknown(raw, _JOB_FIELDS, "JobSubmission")
            jobs.append(JobSubmission(**raw))
        raw_cluster = d.get("cluster") or {}
        _reject_unknown(raw_cluster, _CLUSTER_FIELDS, "ClusterSubmission")
        raw_plan = d.get("fault_plan")
        if raw_plan:
            # FaultPlan.from_dict polices event/retry fields but tolerates
            # stray top-level keys; the service wire schema does not.
            _reject_unknown(raw_plan, _PLAN_FIELDS, "FaultPlan")
        raw_guard = d.get("guard")
        return cls(
            schema_version=d["schema_version"],
            tenant=d.get("tenant", "default"),
            label=d.get("label", ""),
            jobs=tuple(jobs),
            cluster=ClusterSubmission(**raw_cluster),
            quota_kb=d.get("quota_kb"),
            limit_s=d.get("limit_s", 1e6),
            observe=bool(d.get("observe", False)),
            fault_plan=FaultPlan.from_dict(raw_plan) if raw_plan else None,
            guard=guard_from_dict(raw_guard) if raw_guard else None,
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSubmission":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Any) -> "ExperimentSubmission":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- lowering onto the harness ---------------------------------------

    @property
    def declared_bytes(self) -> int:
        """The data volume a submission announces; what tenant quotas and
        coordinator backpressure charge against the guard budget."""
        return sum(j.size_mb for j in self.jobs) * 1024 * 1024

    def to_experiment_spec(self) -> Any:
        """Lower to the :class:`repro.runner.ExperimentSpec` this
        submission denotes -- the exact cell a direct
        ``run_experiment`` call with the same knobs would execute."""
        from repro.cli import build_workload
        from repro.cluster import paper_spec
        from repro.core.config import DualParConfig
        from repro.runner import ExperimentSpec, JobSpec

        job_specs = [
            JobSpec(
                j.name,
                j.nprocs,
                build_workload(j.workload, j.size_mb, j.op, j.nprocs),
                strategy=j.strategy,
                delay_s=j.delay_s,
            )
            for j in self.jobs
        ]
        return ExperimentSpec(
            tuple(job_specs),
            cluster_spec=paper_spec(
                n_compute_nodes=self.cluster.compute_nodes,
                n_data_servers=self.cluster.data_servers,
                io_scheduler=self.cluster.io_scheduler,
                stripe_unit=self.cluster.stripe_unit,
            ),
            dualpar_config=(
                DualParConfig(quota_bytes=self.quota_kb * 1024)
                if self.quota_kb is not None
                else None
            ),
            limit_s=self.limit_s,
            observe=self.observe,
            fault_plan=self.fault_plan,
            guard=self.guard,
            label=self.label,
        )

    def fingerprint(self) -> str:
        """The submission's content address: the bench-cache fingerprint
        of the lowered cell (parameters + code version)."""
        from repro.runner.parallel import experiment_fingerprint

        return experiment_fingerprint(self.to_experiment_spec())


_SUBMISSION_FIELDS = frozenset(f.name for f in fields(ExperimentSubmission))
_PLAN_FIELDS = frozenset(f.name for f in fields(FaultPlan))
_JOB_FIELDS = frozenset(f.name for f in fields(JobSubmission))
_CLUSTER_FIELDS = frozenset(f.name for f in fields(ClusterSubmission))
