"""Build-on-first-use loader for the optional C event-kernel accelerator.

``load()`` returns the compiled :mod:`repro.sim._cq` extension module, or
``None`` when it cannot be provided -- no compiler, build failure, import
failure, or ``REPRO_SIM_ACCEL=0``.  Callers must treat ``None`` as "use
the pure-Python implementations"; nothing in the accelerator is required
for correctness.

The shared object is built next to this file (inside the package, where
it is importable as ``repro.sim._cq``) and is ignored by git.  The build
is cheap (~1s, a single translation unit), happens at most once per
source change (mtime staleness check), and is safe under concurrent
test workers: each builder compiles to a unique temporary name and
atomically ``os.replace``-s it into place.
"""

from __future__ import annotations

import importlib
import os
import subprocess
import sys
import sysconfig
from types import ModuleType
from typing import Optional

_API_VERSION = 1
_cached: Optional[ModuleType] = None
_attempted = False


def _so_path() -> str:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(os.path.dirname(__file__), "_cq" + suffix)


def _build(src: str, out: str) -> bool:
    cc = os.environ.get("CC", "cc")
    include = sysconfig.get_path("include")
    tmp = out + f".tmp.{os.getpid()}"
    cmd = [cc, "-O2", "-fPIC", "-shared", f"-I{include}", src, "-o", tmp]
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
            check=False,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp, out)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        if os.path.exists(tmp):  # pragma: no cover - failed-build cleanup
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load() -> Optional[ModuleType]:
    """Return the ``_cq`` extension module, building it if necessary."""
    global _cached, _attempted
    if _attempted:
        return _cached
    _attempted = True
    if os.environ.get("REPRO_SIM_ACCEL", "1") == "0":
        return None
    src = os.path.join(os.path.dirname(__file__), "_cq.c")
    out = _so_path()
    try:
        stale = not os.path.exists(out) or (
            os.path.exists(src) and os.path.getmtime(src) > os.path.getmtime(out)
        )
        if stale and (not os.path.exists(src) or not _build(src, out)):
            return None
        mod = importlib.import_module("repro.sim._cq")
        if getattr(mod, "API_VERSION", None) != _API_VERSION:
            # Stale binary from an older source revision: rebuild once.
            if not os.path.exists(src) or not _build(src, out):
                return None
            mod = importlib.reload(mod)
            if getattr(mod, "API_VERSION", None) != _API_VERSION:
                return None
        _cached = mod
        return mod
    except Exception:  # noqa: BLE001 - any failure means "no accelerator"
        return None


def _reset_for_tests() -> None:
    """Forget the cached module so tests can exercise load() again."""
    global _cached, _attempted
    _cached = None
    _attempted = False


if sys.platform == "win32":  # pragma: no cover - POSIX container target
    # MSVC needs a different driver invocation; not worth supporting here.
    def load() -> Optional[ModuleType]:  # noqa: F811
        return None
