"""Conservative parallel DES: shard one simulation across worker processes.

See :mod:`repro.sim.pdes.engine` for the synchronization protocol and
:mod:`repro.sim.pdes.cell` for the sharded PFS cell model the CI
determinism matrix and the PDES speedup bench drive.
"""

from repro.sim.pdes.cell import CellParams, CellResult, run_sharded_cell
from repro.sim.pdes.engine import (
    MSG_PRIO_BASE,
    Channel,
    LogicalProcess,
    Message,
    PdesDeadlock,
    PdesEngine,
    PdesError,
    PdesStats,
)

__all__ = [
    "CellParams",
    "CellResult",
    "Channel",
    "LogicalProcess",
    "MSG_PRIO_BASE",
    "Message",
    "PdesDeadlock",
    "PdesEngine",
    "PdesError",
    "PdesStats",
    "run_sharded_cell",
]
