"""Conservative parallel-DES engine: one model, many logical processes.

Shards one simulation into :class:`LogicalProcess` (LP) partitions -- the
domains committed by the simown pass in ``docs/partition_map.json`` --
and runs them under a conservative synchronization protocol (a
Chandy-Misra-Bryant null-message scheme batched into barrier windows, in
the family of YAWNS / bounded-lag).  Cross-LP interaction happens only
through timestamped :class:`Message` channels with a strictly positive
*lookahead* (the minimum latency a message needs to cross the edge,
derived from :class:`repro.net.ethernet.NetworkParams.latency_s`), so
each LP can always execute safely up to its *earliest input time* (EIT).

Execution modes (``PdesEngine(workers=...)``):

- ``workers=0`` -- **serial reference**: every LP shares one
  :class:`~repro.sim.core.Simulator`; a send schedules the delivery
  event directly.  This is "the serial calendar-queue run" the sharded
  modes must be bit-identical to.
- ``workers=1`` -- **inline windowed**: each LP owns a private
  simulator; the synchronization rounds run in-process.  Exercises the
  full protocol (horizons, message routing, null-message accounting)
  without forking.
- ``workers>=2`` -- **multiprocess**: LPs are assigned round-robin
  (``lp_id % workers``) to forked worker processes; a parent-side hub
  exchanges ``(next-event times, messages)`` per round over pipes and
  broadcasts EIT horizons back.

Determinism: results are identical in every mode and for every worker
count, by construction --

1. A delivery for a message from LP *s* is scheduled at priority
   ``MSG_PRIO_BASE + s``: above :data:`~repro.sim.core.NORMAL`, so at
   equal time it runs *after* the destination's local events in every
   mode, and distinct senders occupy distinct priority bands.
2. Within one ``(time, band)`` the queue is FIFO and messages are
   injected in ``(time, src, seq)`` order, where ``seq`` is the
   sender's local send order -- exactly the order serial mode pushes
   them.  The full merge key is therefore ``(t, prio(src), seq)``.
3. Window boundaries only *defer* execution, never reorder it, and EIT
   horizons are a pure function of global LP state -- never of worker
   placement -- so stats like round counts are also placement-invariant.

The protocol cannot deadlock: every lookahead is strictly positive, so
the LP holding the globally minimal next-event time always receives a
horizon strictly above it (``EIT >= min_nvt + min_lookahead``).  A
defensive :class:`PdesDeadlock` guards the invariant at run time.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple, Optional, Union

import numpy as np

from repro.sim.core import Event, SimulationError, Simulator

__all__ = [
    "Channel",
    "LogicalProcess",
    "MSG_PRIO_BASE",
    "Message",
    "PdesDeadlock",
    "PdesEngine",
    "PdesError",
    "PdesStats",
]

#: Priority band floor for cross-LP message deliveries.  Far above
#: NORMAL(=1): at equal time a delivery always runs after the
#: destination LP's local events, and each source LP gets its own band
#: (``MSG_PRIO_BASE + src_lp``) so the merge key ``(t, prio, seq)``
#: realises the deterministic ``(t, src_lp, seq)`` tie-break.
MSG_PRIO_BASE = 1 << 20


class PdesError(SimulationError):
    """Raised for misuse of the parallel-DES layer."""


class PdesDeadlock(PdesError):
    """The conservative protocol stopped making progress.

    Unreachable when every channel has positive lookahead; kept as a
    runtime guard for the no-deadlock invariant.
    """


class Message(NamedTuple):
    """A timestamped cross-LP message (picklable for worker transport)."""

    time: float
    dst: int
    src: int
    seq: int
    kind: str
    payload: tuple[Any, ...]

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """The deterministic injection order: ``(t, src_lp, seq)``."""
        return (self.time, self.src, self.seq)


@dataclass(frozen=True)
class Channel:
    """A directed cross-LP edge with strictly positive lookahead."""

    src: int
    dst: int
    lookahead: float


@dataclass
class PdesStats:
    """Protocol-level instrumentation for one engine run.

    ``rounds``/``null_messages``/``horizon_stalls`` are zero in serial
    mode (there is no protocol to account).  ``committed`` counts
    dispatched events -- all conservative, hence "rollback-free".
    These counters describe the *protocol*, not the model: digests over
    simulation results must not include them (windowed and serial modes
    legitimately differ here even though the model results are
    bit-identical).
    """

    mode: str = "serial"
    workers: int = 0
    rounds: int = 0
    null_messages: int = 0
    payload_messages: int = 0
    horizon_stalls: int = 0
    committed: int = 0
    end_time: float = 0.0
    per_lp_committed: dict[str, int] = field(default_factory=dict)
    per_lp_clock: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "rounds": self.rounds,
            "null_messages": self.null_messages,
            "payload_messages": self.payload_messages,
            "horizon_stalls": self.horizon_stalls,
            "committed": self.committed,
            "end_time": self.end_time,
            "per_lp_committed": dict(self.per_lp_committed),
            "per_lp_clock": dict(self.per_lp_clock),
        }


Handler = Callable[[Message], None]


class LogicalProcess:
    """One shard of the model: a named partition owning its simulator.

    In serial mode every LP's ``sim`` is the engine's shared simulator;
    in windowed modes each LP owns a private one.  Model code registers
    message handlers with :meth:`on` and communicates across LPs only
    via :meth:`send` -- never by touching another LP's components (the
    rule :class:`repro.devtools.sanitizer.OwnershipChecker` enforces).
    """

    def __init__(self, engine: "PdesEngine", lp_id: int, name: str, sim: Simulator) -> None:
        self.engine = engine
        self.lp_id = lp_id
        self.name = name
        self.sim = sim
        self.handlers: dict[str, Handler] = {}
        #: Optional extractor returning this LP's picklable result dict,
        #: called after the run completes (in the worker process that
        #: owns the LP when sharded).
        self.result_fn: Optional[Callable[[], Any]] = None
        self._seq = 0
        self.n_committed = 0

    def on(self, kind: str, handler: Handler) -> None:
        """Register the handler invoked when a ``kind`` message arrives."""
        if kind in self.handlers:
            raise PdesError(f"LP {self.name!r} already handles {kind!r}")
        self.handlers[kind] = handler

    def send(
        self,
        dst: Union[int, "LogicalProcess"],
        kind: str,
        payload: tuple[Any, ...] = (),
        extra_delay: float = 0.0,
    ) -> Message:
        """Send a message over the ``self -> dst`` channel.

        Delivery time is ``now + lookahead + extra_delay``: the channel
        lookahead is the *minimum* transit, and the sender may model any
        additional latency on top (``extra_delay >= 0``).
        """
        dst_id = dst.lp_id if isinstance(dst, LogicalProcess) else dst
        if extra_delay < 0:
            raise PdesError(f"extra_delay must be >= 0, got {extra_delay!r}")
        lookahead = self.engine._lookahead.get((self.lp_id, dst_id))
        if lookahead is None:
            raise PdesError(
                f"no channel {self.name!r} -> LP {dst_id}; declare it with "
                "engine.connect() before sending"
            )
        t = self.sim.now + lookahead + extra_delay
        msg = Message(t, dst_id, self.lp_id, self._seq, kind, payload)
        self._seq += 1
        self.engine._post(msg)
        return msg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LogicalProcess {self.lp_id}:{self.name}>"


class PdesEngine:
    """Builds an LP graph and runs it serial, windowed, or sharded."""

    def __init__(
        self,
        workers: int = 0,
        observe: Optional[Any] = None,
    ) -> None:
        if not isinstance(workers, int) or workers < 0:
            raise PdesError(f"workers must be an int >= 0, got {workers!r}")
        self.workers = workers
        self.lps: list[LogicalProcess] = []
        self._lookahead: dict[tuple[int, int], float] = {}
        self._outbox: list[Message] = []
        self._observe = observe if (observe is not None and observe.enabled) else None
        self.stats = PdesStats()
        self.lp_results: dict[str, Any] = {}
        self._ran = False
        #: Shared simulator in serial mode, else None.
        self.sim: Optional[Simulator] = None
        if workers == 0:
            self.sim = Simulator(observe=observe, workers=1)

    # -- graph construction --------------------------------------------

    def add_lp(self, name: str) -> LogicalProcess:
        """Create a logical process; in windowed modes it owns a fresh sim."""
        if any(lp.name == name for lp in self.lps):
            raise PdesError(f"duplicate LP name {name!r}")
        sim = self.sim if self.sim is not None else Simulator(workers=1)
        lp = LogicalProcess(self, len(self.lps), name, sim)
        self.lps.append(lp)
        return lp

    def connect(
        self,
        src: Union[int, LogicalProcess],
        dst: Union[int, LogicalProcess],
        lookahead: float,
    ) -> Channel:
        """Declare the directed channel ``src -> dst``.

        ``lookahead`` must be strictly positive: it is the guarantee the
        conservative protocol lives on (a zero-lookahead edge would
        collapse every window to nothing and deadlock the horizon
        computation; model such coupling inside one LP instead).
        """
        src_id = src.lp_id if isinstance(src, LogicalProcess) else src
        dst_id = dst.lp_id if isinstance(dst, LogicalProcess) else dst
        n = len(self.lps)
        if not (0 <= src_id < n and 0 <= dst_id < n):
            raise PdesError(f"channel {src_id}->{dst_id} references unknown LPs")
        if src_id == dst_id:
            raise PdesError("a channel must connect two distinct LPs")
        if not (lookahead > 0.0):
            raise PdesError(
                f"channel {src_id}->{dst_id} lookahead must be > 0, got {lookahead!r} "
                "(zero-lookahead coupling belongs inside one LP)"
            )
        prev = self._lookahead.get((src_id, dst_id))
        la = lookahead if prev is None else min(prev, lookahead)
        self._lookahead[(src_id, dst_id)] = la
        return Channel(src_id, dst_id, la)

    # -- message plumbing ----------------------------------------------

    def _post(self, msg: Message) -> None:
        if self.workers == 0:
            self._inject(msg)
        else:
            self._outbox.append(msg)
            self.stats.payload_messages += 1

    def _inject(self, msg: Message) -> None:
        """Schedule the delivery event on the destination LP's simulator."""
        lp = self.lps[msg.dst]
        handler = lp.handlers.get(msg.kind)
        if handler is None:
            raise PdesError(f"LP {lp.name!r} has no handler for message kind {msg.kind!r}")
        if self.workers == 0:
            self.stats.payload_messages += 1
        sim = lp.sim
        ev = Event(sim)
        ev._triggered = True
        obs = self._observe
        if obs is not None and self.workers == 0:
            tracer = obs.tracer
            src_name = self.lps[msg.src].name

            def _deliver_traced(_e: Event, m: Message = msg, h: Handler = handler) -> None:
                with tracer.span(
                    "pdes.deliver", track=lp.name, cat="pdes", kind=m.kind, src=src_name
                ):
                    h(m)

            assert ev.callbacks is not None
            ev.callbacks.append(_deliver_traced)
        else:

            def _deliver(_e: Event, m: Message = msg, h: Handler = handler) -> None:
                h(m)

            assert ev.callbacks is not None
            ev.callbacks.append(_deliver)
        sim._queue.push(msg.time, MSG_PRIO_BASE + msg.src, ev)

    def _drain_outbox(self) -> list[Message]:
        out = self._outbox
        self._outbox = []
        return out

    # -- horizon computation -------------------------------------------

    def _dist_matrix(self) -> Any:
        """All-pairs minimal lookahead distance (Floyd-Warshall).

        ``dist[i][i]`` is deliberately initialised to +inf, so after
        closure it holds the minimal *cycle* through other LPs -- an
        LP's own future input caused by its own output must bound its
        horizon too.
        """
        n = len(self.lps)
        dist = np.full((n, n), np.inf)
        for (s, d), la in self._lookahead.items():
            dist[s, d] = min(dist[s, d], la)
        for k in range(n):
            np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :], out=dist)
        return dist

    @staticmethod
    def _eits(nvt_eff: Any, dist: Any) -> Any:
        """EIT_i = min over j of (nvt_eff_j + dist[j][i]).

        The closed form of the chained-guarantee fixpoint
        ``EIT_i = min over in-edges j->i of (min(nvt_j, EIT_j) + L_ji)``;
        in-flight messages are covered because their timestamps are
        themselves bounded by ``nvt_src + dist`` (triangle inequality).
        """
        out: Any = np.min(nvt_eff[:, None] + dist, axis=0)
        return out

    # -- running --------------------------------------------------------

    def run(self, until: Optional[float] = None) -> PdesStats:
        """Run the model to quiescence (or ``until``); returns stats."""
        if self._ran:
            raise PdesError("a PdesEngine can only run once")
        self._ran = True
        if not self.lps:
            raise PdesError("no logical processes defined")
        if self.workers == 0:
            self._run_serial(until)
        elif self.workers == 1:
            self._run_windowed(until)
        else:
            self._run_sharded(until)
        if self._observe is not None:
            reg = self._observe.registry
            reg.counter("pdes.rounds").inc(self.stats.rounds)
            reg.counter("pdes.null_messages").inc(self.stats.null_messages)
            reg.counter("pdes.payload_messages").inc(self.stats.payload_messages)
            reg.counter("pdes.horizon_stalls").inc(self.stats.horizon_stalls)
            reg.counter("pdes.commits").inc(self.stats.committed)
        return self.stats

    def _collect_results(self, lps: list[LogicalProcess]) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for lp in lps:
            if lp.result_fn is not None:
                out[lp.name] = lp.result_fn()
        return out

    def _run_serial(self, until: Optional[float]) -> None:
        sim = self.sim
        assert sim is not None
        limit = float("inf") if until is None else until
        n = sim.run_below(limit)
        st = self.stats
        st.mode = "serial"
        st.workers = 0
        st.committed = n
        st.end_time = sim.now
        for lp in self.lps:
            st.per_lp_clock[lp.name] = sim.now
        self.lp_results = self._collect_results(self.lps)

    # The windowed round, shared verbatim by the inline and sharded
    # backends (the worker runs `_window_round` for its own LPs with
    # hub-provided horizons):
    #   1. capture nvt (next event time) per LP, drain the outbox
    #   2. stop iff every nvt is +inf and no message is in flight
    #   3. EITs from nvt_eff = min(nvt, earliest inbound delivery)
    #   4. inject inbound (sorted by (t, src, seq)), run each LP below
    #      its horizon
    # EITs are computed *before* injection in both backends so round
    # counts and stall counters are identical for every worker count.

    def _window_round(
        self,
        lps: list[LogicalProcess],
        eits: dict[int, float],
        inbound: list[Message],
    ) -> int:
        """Inject ``inbound`` then run each LP below its horizon."""
        for m in inbound:
            self._inject(m)
        committed = 0
        st = self.stats
        for lp in lps:
            h = eits[lp.lp_id]
            nvt = lp.sim.peek()
            if h > nvt:
                k = lp.sim.run_below(h)
                lp.n_committed += k
                committed += k
            elif nvt < float("inf"):
                st.horizon_stalls += 1
        return committed

    def _round_eits(
        self, nvt: Any, out: list[Message], dist: Any, until: Optional[float]
    ) -> dict[int, float]:
        nvt_eff = nvt.copy()
        for m in out:
            if m.time < nvt_eff[m.dst]:
                nvt_eff[m.dst] = m.time
        eit = self._eits(nvt_eff, dist)
        if until is not None:
            eit = np.minimum(eit, until)
        return {i: float(eit[i]) for i in range(len(self.lps))}

    def _account_nulls(self, out: list[Message]) -> None:
        """Null-message accounting: every directed edge that carried no
        payload this round still propagated a pure time guarantee."""
        carried = {(m.src, m.dst) for m in out}
        self.stats.null_messages += len(self._lookahead) - len(carried)

    def _run_windowed(self, until: Optional[float]) -> None:
        st = self.stats
        st.mode = "windowed"
        st.workers = 1
        dist = self._dist_matrix()
        while True:
            nvt = np.array([lp.sim.peek() for lp in self.lps])
            out = self._drain_outbox()
            if not out and bool(np.all(np.isinf(nvt))):
                break
            if until is not None and not out and bool(np.all(nvt >= until)):
                break
            eits = self._round_eits(nvt, out, dist, until)
            self._account_nulls(out)
            inbound = sorted(out, key=lambda m: m.sort_key)
            committed = self._window_round(self.lps, eits, inbound)
            st.rounds += 1
            if committed == 0 and not inbound:
                raise PdesDeadlock(
                    "no LP advanced and no message moved in a full round "
                    f"(round {st.rounds}, nvt={[lp.sim.peek() for lp in self.lps]})"
                )
        self._finish_windowed(self.lps)
        self.lp_results = self._collect_results(self.lps)

    def _finish_windowed(self, lps: list[LogicalProcess]) -> None:
        st = self.stats
        for lp in lps:
            st.per_lp_committed[lp.name] = lp.n_committed
            st.per_lp_clock[lp.name] = lp.sim.now
            st.committed += lp.n_committed
            st.end_time = max(st.end_time, lp.sim.now)

    # -- multiprocess backend ------------------------------------------

    def _run_sharded(self, until: Optional[float]) -> None:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise PdesError(
                "workers >= 2 requires the fork start method; "
                "use workers=1 (inline windowed) on this platform"
            ) from exc
        st = self.stats
        st.mode = "sharded"
        W = min(self.workers, len(self.lps))
        st.workers = W
        # The hub counts every routed message (including build-time sends
        # buffered before the fork); drop the parent-side send counts so
        # nothing is double-counted.
        st.payload_messages = 0
        dist = self._dist_matrix()
        owner = [lp.lp_id % W for lp in self.lps]
        pipes = [ctx.Pipe() for _ in range(W)]
        procs = []
        for w in range(W):
            p = ctx.Process(
                target=self._worker_main,
                args=(w, W, pipes[w][1]),
                daemon=True,
            )
            p.start()
            procs.append(p)
        conns = [pipes[w][0] for w in range(W)]
        inf = float("inf")
        try:
            while True:
                nvt = np.full(len(self.lps), inf)
                out: list[Message] = []
                for conn in conns:
                    tag, nvts_w, out_w = conn.recv()
                    if tag == "crash":  # pragma: no cover - crash path
                        raise PdesError(f"pdes worker crashed: {nvts_w}")
                    for lp_id, v in nvts_w:
                        nvt[lp_id] = v
                    out.extend(out_w)
                done = not out and bool(np.all(np.isinf(nvt)))
                if until is not None and not out and bool(np.all(nvt >= until)):
                    done = True
                if done:
                    for conn in conns:
                        conn.send(("stop",))
                    break
                st.payload_messages += len(out)
                eits = self._round_eits(nvt, out, dist, until)
                self._account_nulls(out)
                inbound: list[list[Message]] = [[] for _ in range(W)]
                for m in out:
                    inbound[owner[m.dst]].append(m)
                for w, conn in enumerate(conns):
                    conn.send(
                        (
                            "go",
                            {lp.lp_id: eits[lp.lp_id] for lp in self.lps if owner[lp.lp_id] == w},
                            sorted(inbound[w], key=lambda m: m.sort_key),
                        )
                    )
                st.rounds += 1
            for conn in conns:
                tag, results_w, stats_w = conn.recv()
                if tag != "result":  # pragma: no cover - crash path
                    raise PdesError(f"pdes worker crashed: {results_w}")
                self.lp_results.update(results_w)
                st.committed += stats_w["committed"]
                st.horizon_stalls += stats_w["stalls"]
                for name, k in stats_w["per_lp_committed"].items():
                    st.per_lp_committed[name] = k
                for name, clk in stats_w["per_lp_clock"].items():
                    st.per_lp_clock[name] = clk
                    st.end_time = max(st.end_time, clk)
            # Deterministic result ordering regardless of worker count.
            self.lp_results = {
                lp.name: self.lp_results[lp.name]
                for lp in self.lps
                if lp.name in self.lp_results
            }
        finally:
            for p in procs:
                p.join(timeout=30)
                if p.is_alive():  # pragma: no cover - defensive
                    p.terminate()

    def _worker_main(self, widx: int, nworkers: int, conn: Any) -> None:
        """Body of one forked worker: the owned shard of the round loop."""
        owned = [lp for lp in self.lps if lp.lp_id % nworkers == widx]
        # Build-time sends were buffered in the parent before the fork;
        # every worker inherited the full outbox, so keep only the
        # messages our own LPs sent (each is reported exactly once).
        self._outbox = [m for m in self._outbox if m.src % nworkers == widx]
        stalls_before = self.stats.horizon_stalls
        try:
            while True:
                nvts = [(lp.lp_id, lp.sim.peek()) for lp in owned]
                out = self._drain_outbox()
                conn.send(("round", nvts, out))
                cmd = conn.recv()
                if cmd[0] == "stop":
                    break
                _tag, eits, inbound = cmd
                self._window_round(owned, eits, inbound)
            results = self._collect_results(owned)
            stats_w = {
                "committed": sum(lp.n_committed for lp in owned),
                "stalls": self.stats.horizon_stalls - stalls_before,
                "per_lp_committed": {lp.name: lp.n_committed for lp in owned},
                "per_lp_clock": {lp.name: lp.sim.now for lp in owned},
            }
            # Catch unpicklable results in the worker, where the stack
            # still points at the offending LP.
            pickle.dumps(results)
            conn.send(("result", results, stats_w))
        except BaseException as exc:  # pragma: no cover - crash path
            try:
                conn.send(("crash", repr(exc), None))
            finally:
                raise
        finally:
            conn.close()
