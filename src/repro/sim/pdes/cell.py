"""The sharded PFS cell: a fig3-style workload partitioned into LPs.

A *cell* is one self-contained simulated cluster running one
mpi-io-test-shaped job -- the unit the CI determinism matrix and the
PDES speedup bench drive.  It reuses the real server-side stack
unmodified (:class:`~repro.pfs.dataserver.DataServer`,
:class:`~repro.iosched.blocklayer.BlockLayer`,
:class:`~repro.disk.drive.DiskDrive`, the server page cache) and
partitions the model along the domains of ``docs/partition_map.json``:

- ``server:ds{j}`` -- one LP per data server, owning its disk, block
  layer, and page cache;
- ``client:node{i}`` -- one LP per compute node, hosting the MPI ranks
  placed there (``rank % n_client_nodes``);
- ``meta`` -- the coordinator LP: metadata opens and the job barrier.

Cross-LP calls of the serial model (``PfsClient._do_piece`` ->
``DataServer.handle``, ``MetadataServer.rpc_*``) become timestamped
channel messages.  The network is re-expressed in *split-phase*
store-and-forward form so every resource hold is LP-local: the sender
holds its own NIC TX for ``overhead + n/bandwidth``, the message
propagates for ``latency_s`` (the lookahead derivation rule is
``lookahead(edge) = NetworkParams.latency_s``), and the receiver holds
its own NIC RX for ``n/bandwidth``.  End-to-end idle latency is
``overhead + 2*n/bandwidth + latency`` (the legacy
:meth:`~repro.net.ethernet.Network.transfer` charges the wire once
while holding both NICs -- a zero-lookahead coupling that cannot be
sharded -- so the cell model is its own reference: the serial
calendar-queue leg runs *this* model on one shared simulator).

Determinism: the cell's state is disjoint across LPs (the shared
:class:`~repro.pfs.filesystem.FileSystem` is immutable after build), so
the engine's ``(t, prio(src_lp), seq)`` merge makes every worker count
bit-identical to the serial leg; :func:`cell_digest` hashes the
canonical-JSON result (model observables only, never protocol stats).

Ownership: under ``REPRO_SANITIZE_OWNERSHIP=1`` the server-side request
handler is adopted into the *client's* LP and receives its grant from
``OwnershipChecker.on_transfer`` after the RX phase -- exactly the
happens-before edge the serial model gets from ``Network.transfer`` --
so ``DataServer.handle``'s guard proves message-mediated crossings stay
clean under sharding.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.disk.drive import DiskDrive, DiskParams
from repro.iosched import make_scheduler
from repro.iosched.blocklayer import BlockLayer
from repro.mpi.ops import BarrierOp, ComputeOp, IoOp
from repro.net.ethernet import Network, NetworkParams
from repro.pfs.client import CONTROL_MSG_BYTES
from repro.pfs.dataserver import DataServer, ServerRequest
from repro.pfs.filesystem import ExtentAllocator, FileSystem, PfsFile
from repro.pfs.layout import StripeLayout, StripePiece
from repro.pfs.metaserver import METADATA_MSG_BYTES, METADATA_OP_CPU_S
from repro.sim.core import Event, Simulator, all_of
from repro.sim.pdes.engine import LogicalProcess, Message, PdesEngine, PdesStats
from repro.workloads.mpi_io_test import MpiIoTest

__all__ = ["CellParams", "CellResult", "cell_digest", "run_sharded_cell"]

#: Per-hop software cost of an MPI message (mirrors MpiJob.MPI_HOP_OVERHEAD_S).
_MPI_HOP_OVERHEAD_S = 60e-6


@dataclass(frozen=True)
class CellParams:
    """Shape of one sharded cell (defaults: a small fig3-style read)."""

    n_servers: int = 4
    n_client_nodes: int = 2
    n_ranks: int = 4
    file_size: int = 8 * 1024 * 1024
    request_bytes: int = 64 * 1024
    op: str = "R"
    stripe_unit: int = 64 * 1024
    io_scheduler: str = "cfq"
    barrier_every: int = 1
    compute_per_call_s: float = 0.0
    disk_capacity_bytes: int = 10 * 10**9
    network: NetworkParams = field(default_factory=NetworkParams)

    def __post_init__(self) -> None:
        if self.n_servers < 1 or self.n_client_nodes < 1 or self.n_ranks < 1:
            raise ValueError("cell needs at least one server, client node, and rank")
        if self.file_size % self.request_bytes != 0:
            raise ValueError("file_size must be a multiple of request_bytes")

    # -- node-id layout (clients, then servers, then metadata) ----------

    @property
    def n_nodes(self) -> int:
        return self.n_client_nodes + self.n_servers + 1

    def client_node_id(self, i: int) -> int:
        return i

    def server_node_id(self, j: int) -> int:
        return self.n_client_nodes + j

    @property
    def metadata_node_id(self) -> int:
        return self.n_client_nodes + self.n_servers


@dataclass
class CellResult:
    """One cell run: the digest-able model result plus protocol stats."""

    digest: str
    results: dict[str, Any]
    stats: PdesStats
    elapsed_s: float
    wall_s: float
    events: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "elapsed_s": self.elapsed_s,
            "wall_s": self.wall_s,
            "events": self.events,
            "stats": self.stats.as_dict(),
            "results": self.results,
        }


def cell_digest(results: dict[str, Any]) -> str:
    """SHA-256 over the canonical-JSON model result.

    Model observables only: the engine's protocol stats (rounds, null
    messages, stalls) legitimately differ between serial and windowed
    modes and must never feed the digest.
    """
    blob = json.dumps(results, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class _ShardNet:
    """The split-phase network half living inside one LP.

    Wraps a :class:`~repro.net.ethernet.Network` purely as a bundle of
    per-node NIC resources on this LP's simulator; only this LP's own
    nodes' NICs are ever requested, so every hold stays LP-local.
    """

    def __init__(self, sim: Simulator, params: CellParams) -> None:
        self.params = params.network
        self.net = Network(sim, params.n_nodes, params.network)
        self.sim = sim

    def wire_s(self, nbytes: int) -> float:
        return nbytes / self.params.bandwidth_bytes_s

    def tx(self, node: int, nbytes: int) -> Generator[Event, Any, None]:
        """Sender-side hold: serialise on the local NIC TX."""
        nic = self.net.nics[node]
        req = nic.tx.request()
        yield req
        try:
            yield self.sim.timeout(self.params.per_message_overhead_s + self.wire_s(nbytes))
            nic.bytes_sent += nbytes
        finally:
            nic.tx.release(req)

    def rx(self, node: int, nbytes: int) -> Generator[Event, Any, None]:
        """Receiver-side hold: serialise on the local NIC RX."""
        nic = self.net.nics[node]
        req = nic.rx.request()
        yield req
        try:
            yield self.sim.timeout(self.wire_s(nbytes))
            nic.bytes_received += nbytes
        finally:
            nic.rx.release(req)


class _ServerShard:
    """One ``server:ds{j}`` LP: the real data-server stack plus the
    message-facing request handler."""

    def __init__(
        self,
        lp: LogicalProcess,
        params: CellParams,
        server_index: int,
        fs: FileSystem,
        device: DiskDrive,
    ) -> None:
        self.lp = lp
        self.params = params
        self.server_index = server_index
        self.node_id = params.server_node_id(server_index)
        sim = lp.sim
        self.shardnet = _ShardNet(sim, params)
        self.block_layer = BlockLayer(
            sim, device, make_scheduler(params.io_scheduler), name=f"blk{server_index}"
        )
        self.ds = DataServer(
            sim,
            server_index=server_index,
            node_id=self.node_id,
            network=self.shardnet.net,
            fs=fs,
            device=device,
            block_layer=self.block_layer,
        )
        self.device = device
        self._own = sim._sanitizer.ownership if sim._sanitizer is not None else None
        lp.on("req", self._on_req)
        lp.result_fn = self.result

    def _on_req(self, msg: Message) -> None:
        proc = self.lp.sim.process(
            self._serve(msg), name=f"cell-ds{self.server_index}-rx"
        )
        if self._own is not None:
            # The service conversation starts in the *client's* LP; the
            # RX completion below grants it entry to this server's LP,
            # the same happens-before edge Network.transfer records.
            src_node: int = msg.payload[7]
            self._own.adopt(proc, f"client:node{src_node}")

    def _serve(self, msg: Message) -> Generator[Event, Any, None]:
        (token, fname, obj_off, length, op, stream_id, req_nbytes, src_node) = msg.payload
        yield from self.shardnet.rx(self.node_id, req_nbytes)
        if self._own is not None:
            self._own.on_transfer(src_node, self.node_id)
        done = self.ds.handle(
            ServerRequest(
                file_name=fname,
                object_offset=obj_off,
                length=length,
                op=op,
                stream_id=stream_id,
            )
        )
        yield done
        resp_nbytes = CONTROL_MSG_BYTES + (length if op == "R" else 0)
        yield from self.shardnet.tx(self.node_id, resp_nbytes)
        self.lp.send(msg.src, "resp", (token, resp_nbytes))

    def result(self) -> dict[str, Any]:
        pc = self.ds.page_cache
        dstats = self.device.stats
        return {
            "n_requests": self.ds.n_requests,
            "bytes_served": self.ds.bytes_served,
            "pc_hits": pc.n_hits,
            "pc_misses": pc.n_misses,
            "disk_requests": dstats.n_requests,
            "seek_sectors": dstats.total_seek_sectors,
            "blk_submitted": self.block_layer.stats.n_submitted,
        }


class _MetaShard:
    """The ``meta`` LP: open RPCs plus the job-wide barrier service."""

    def __init__(self, lp: LogicalProcess, params: CellParams, fs: FileSystem) -> None:
        self.lp = lp
        self.params = params
        self.fs = fs
        self.node_id = params.metadata_node_id
        self.shardnet = _ShardNet(lp.sim, params)
        self.n_opens = 0
        self.n_barriers = 0
        #: barrier epoch -> arrival count
        self._arrivals: dict[int, int] = {}
        self._client_lp_ids: list[int] = []
        self._own = lp.sim._sanitizer.ownership if lp.sim._sanitizer is not None else None
        if self._own is not None:
            self._own.tag(self, "meta")
            self._own.map_node(self.node_id, "meta")
        lp.on("open", self._on_open)
        lp.on("barr", self._on_barrier_arrive)
        lp.result_fn = self.result

    def _on_open(self, msg: Message) -> None:
        proc = self.lp.sim.process(self._serve_open(msg), name="cell-meta-open")
        if self._own is not None:
            src_node: int = msg.payload[3]
            self._own.adopt(proc, f"client:node{src_node}")

    def _serve_open(self, msg: Message) -> Generator[Event, Any, None]:
        token, fname, req_nbytes, src_node = msg.payload
        yield from self.shardnet.rx(self.node_id, req_nbytes)
        if self._own is not None:
            self._own.on_transfer(src_node, self.node_id)
            self._own.check(self, "rpc_open")
        self.fs.lookup(fname)
        yield self.lp.sim.timeout(METADATA_OP_CPU_S)
        self.n_opens += 1
        yield from self.shardnet.tx(self.node_id, METADATA_MSG_BYTES)
        self.lp.send(msg.src, "resp", (token, METADATA_MSG_BYTES))

    def _on_barrier_arrive(self, msg: Message) -> None:
        (epoch,) = msg.payload
        n = self._arrivals.get(epoch, 0) + 1
        if n < self.params.n_ranks:
            self._arrivals[epoch] = n
            return
        self._arrivals.pop(epoch, None)
        self.n_barriers += 1
        # Release every client LP in LP-id order (deterministic seq).
        for lp_id in self._client_lp_ids:
            self.lp.send(lp_id, "brel", (epoch,))

    def result(self) -> dict[str, Any]:
        return {"n_opens": self.n_opens, "n_barriers": self.n_barriers}


class _ClientShard:
    """One ``client:node{i}`` LP hosting its share of the MPI ranks."""

    def __init__(
        self,
        lp: LogicalProcess,
        params: CellParams,
        node_index: int,
        fs: FileSystem,
        layout: StripeLayout,
        workload: MpiIoTest,
        meta_lp_id: int,
        server_lp_ids: list[int],
    ) -> None:
        self.lp = lp
        self.params = params
        self.node_id = params.client_node_id(node_index)
        self.fs = fs
        self.layout = layout
        self.workload = workload
        self.meta_lp_id = meta_lp_id
        self.server_lp_ids = server_lp_ids
        self.shardnet = _ShardNet(lp.sim, params)
        self._token = 0
        self._pending: dict[int, Event] = {}
        #: barrier epoch -> release event shared by this node's ranks
        self._barrier_release: dict[int, Event] = {}
        self._barrier_cost = (
            2
            * math.ceil(math.log2(max(params.n_ranks, 2)))
            * (params.network.latency_s + _MPI_HOP_OVERHEAD_S)
        )
        self.rank_metrics: dict[int, dict[str, Any]] = {}
        self._own = lp.sim._sanitizer.ownership if lp.sim._sanitizer is not None else None
        if self._own is not None:
            self._own.map_node(self.node_id, f"client:node{self.node_id}")
        lp.on("resp", self._on_resp)
        lp.on("brel", self._on_barrier_release)
        lp.result_fn = self.result
        self.ranks = [
            r for r in range(params.n_ranks) if r % params.n_client_nodes == node_index
        ]
        for rank in self.ranks:
            proc = lp.sim.process(self._rank_body(rank), name=f"cell-rank{rank}")
            if self._own is not None:
                self._own.adopt(proc, f"client:node{self.node_id}")

    # -- message handlers ----------------------------------------------

    def _on_resp(self, msg: Message) -> None:
        token: int = msg.payload[0]
        self._pending.pop(token).succeed(msg.payload)

    def _on_barrier_release(self, msg: Message) -> None:
        (epoch,) = msg.payload
        ev = self._barrier_release.pop(epoch, None)
        if ev is not None:
            ev.succeed()

    # -- rank-side plumbing --------------------------------------------

    def _call(
        self, dst_lp: int, kind: str, payload_head: tuple[Any, ...], req_nbytes: int
    ) -> Generator[Event, Any, tuple[Any, ...]]:
        """One request/response conversation: TX hold, send, await reply,
        RX hold for the reply's wire time.  Returns the reply payload."""
        yield from self.shardnet.tx(self.node_id, req_nbytes)
        token = self._token
        self._token += 1
        ev = self.lp.sim.event()
        self._pending[token] = ev
        self.lp.send(dst_lp, kind, (token,) + payload_head + (req_nbytes, self.node_id))
        reply: tuple[Any, ...] = yield ev
        resp_nbytes: int = reply[1]
        yield from self.shardnet.rx(self.node_id, resp_nbytes)
        return reply

    def _do_piece(
        self, f: PfsFile, piece: StripePiece, op: str, stream_id: int
    ) -> Generator[Event, Any, None]:
        req_nbytes = CONTROL_MSG_BYTES + (piece.length if op == "W" else 0)
        yield from self._call(
            self.server_lp_ids[piece.server],
            "req",
            (f.name, piece.object_offset, piece.length, op, stream_id),
            req_nbytes,
        )

    def _io(
        self, f: PfsFile, offset: int, length: int, op: str, stream_id: int
    ) -> Generator[Event, Any, None]:
        pieces = self.layout.split(offset, length)
        procs = [
            self.lp.sim.process(
                self._do_piece(f, p, op, stream_id), name="cell-piece"
            )
            for p in pieces
        ]
        yield all_of(self.lp.sim, procs)

    def _open(self, fname: str) -> Generator[Event, Any, None]:
        yield from self._call(self.meta_lp_id, "open", (fname,), METADATA_MSG_BYTES)

    def _barrier(self, epoch: int) -> Generator[Event, Any, None]:
        release = self._barrier_release.get(epoch)
        if release is None:
            release = self.lp.sim.event()
            self._barrier_release[epoch] = release
        self.lp.send(self.meta_lp_id, "barr", (epoch,))
        yield release
        yield self.lp.sim.timeout(self._barrier_cost)

    def _rank_body(self, rank: int) -> Generator[Event, Any, None]:
        sim = self.lp.sim
        params = self.params
        metrics: dict[str, Any] = {
            "io_time_s": 0.0,
            "compute_time_s": 0.0,
            "bytes_read": 0,
            "bytes_written": 0,
            "n_io_calls": 0,
            "finish_t": 0.0,
        }
        self.rank_metrics[rank] = metrics
        yield from self._open(self.workload.file_name)
        f = self.fs.lookup(self.workload.file_name)
        epoch = 0
        for op in self.workload.ops(rank, params.n_ranks):
            if isinstance(op, ComputeOp):
                if op.seconds > 0:
                    yield sim.timeout(op.seconds)
                metrics["compute_time_s"] += op.seconds
            elif isinstance(op, BarrierOp):
                t0 = sim.now
                yield from self._barrier(epoch)
                epoch += 1
                metrics["compute_time_s"] += sim.now - t0
            elif isinstance(op, IoOp):
                t0 = sim.now
                for seg in op.segments:
                    yield from self._io(f, seg.offset, seg.length, op.op, stream_id=rank)
                metrics["io_time_s"] += sim.now - t0
                metrics["n_io_calls"] += 1
                if op.op == "R":
                    metrics["bytes_read"] += op.total_bytes
                else:
                    metrics["bytes_written"] += op.total_bytes
        metrics["finish_t"] = sim.now

    def result(self) -> dict[str, Any]:
        return {
            "node": self.node_id,
            "ranks": {str(r): self.rank_metrics[r] for r in self.ranks},
        }


def _build(engine: PdesEngine, params: CellParams) -> None:
    """Construct the LP graph: meta, clients, servers, and all channels."""
    workload = MpiIoTest(
        file_size=params.file_size,
        request_bytes=params.request_bytes,
        op=params.op,
        barrier_every=params.barrier_every,
        compute_per_call=params.compute_per_call_s,
    )
    meta_lp = engine.add_lp("meta")
    client_lps = [
        engine.add_lp(f"client:node{params.client_node_id(i)}")
        for i in range(params.n_client_nodes)
    ]
    server_lps = [engine.add_lp(f"server:ds{j}") for j in range(params.n_servers)]

    layout = StripeLayout(params.n_servers, params.stripe_unit)
    disk_params = DiskParams(capacity_bytes=params.disk_capacity_bytes)
    devices = [
        DiskDrive(server_lps[j].sim, disk_params, name=f"disk{j}")
        for j in range(params.n_servers)
    ]
    allocators = [
        ExtentAllocator(devices[j].total_sectors, placement="spread")
        for j in range(params.n_servers)
    ]
    fs = FileSystem(layout, allocators)
    for fspec in workload.files():
        # The namespace is complete before the first event: immutable
        # shared state, safe to reference from every LP.
        fs.create(fspec.name, fspec.size)

    la = params.network.latency_s
    for c in client_lps:
        engine.connect(c, meta_lp, la)
        engine.connect(meta_lp, c, la)
        for s in server_lps:
            engine.connect(c, s, la)
            engine.connect(s, c, la)

    meta = _MetaShard(meta_lp, params, fs)
    meta._client_lp_ids = [c.lp_id for c in client_lps]
    for j in range(params.n_servers):
        _ServerShard(server_lps[j], params, j, fs, devices[j])
    for i in range(params.n_client_nodes):
        _ClientShard(
            client_lps[i],
            params,
            i,
            fs,
            layout,
            workload,
            meta_lp.lp_id,
            [s.lp_id for s in server_lps],
        )


def run_sharded_cell(
    params: Optional[CellParams] = None,
    workers: int = 0,
    observe: Optional[Any] = None,
) -> CellResult:
    """Build and run one cell; ``workers=0`` is the serial reference."""
    params = params or CellParams()
    engine = PdesEngine(workers=workers, observe=observe)
    _build(engine, params)
    # Wall-clock here measures the host (bench speedups), never feeds
    # back into simulated time -- digests stay bit-identical.
    t0 = time.perf_counter()  # simlint: ignore[SL002]
    stats = engine.run()
    wall = time.perf_counter() - t0  # simlint: ignore[SL002]
    results = engine.lp_results
    elapsed = max(
        (
            float(r["finish_t"])
            for name, lp_res in results.items()
            if name.startswith("client:")
            for r in lp_res["ranks"].values()
        ),
        default=0.0,
    )
    return CellResult(
        digest=cell_digest(results),
        results=results,
        stats=stats,
        elapsed_s=elapsed,
        wall_s=wall,
        events=stats.committed,
    )
