"""Core event loop, events, and coroutine processes.

The design follows the classic event-list DES structure: a pending-event
schedule ordered by ``(time, priority, arrival)``.  Events are one-shot:
once *triggered* they are placed on the schedule, and when *processed*
their callbacks run exactly once.  A :class:`Process` wraps a generator;
each value the generator yields must be an :class:`Event`, and the
process is resumed (via ``send`` or ``throw``) when that event is
processed.

Determinism: ties in time are broken first by an integer priority (lower
runs first) and then by arrival order, so a simulation is a pure
function of its inputs.

The schedule itself is pluggable (see :mod:`repro.sim.equeue`): the
default is a slotted calendar queue with O(1) amortized push/pop for the
short-timeout traffic that dominates the paper's workloads, with the
classic binary heap retained as a reference fallback.  Select with
``Simulator(queue="heap")`` / ``Simulator(queue="calendar")`` or the
``REPRO_EVENT_QUEUE`` environment variable; both orderings are
bit-identical.  Events are dispatched in *cohorts* -- all events sharing
one ``(time, priority)`` band are drained in a single inner loop so
per-event bookkeeping (until-check, sanitizer probe, clock write) is
amortized per band.

Performance: the inner loop is allocation-light.  :class:`Timeout` events
are recycled through a per-simulator free list (see
:meth:`Simulator.timeout`); recycling is guarded by a CPython refcount
check so an event that any other code still holds is never reused.  Set
``REPRO_NO_EVENT_POOL=1`` to disable the pool (simulators created while
the variable is set allocate a fresh ``Timeout`` per call; scheduling
order, and therefore every simulated result, is identical either way).
When a C compiler is available, a small extension module
(:mod:`repro.sim._accel`) additionally accelerates the calendar queue
and the Timeout dispatch fast path; set ``REPRO_SIM_ACCEL=0`` to force
pure Python.  The accelerator is engaged only when the sanitizer is off
and mirrors the Python semantics exactly, so results are identical.

Sanitizing: ``Simulator(sanitize=True)`` (or ``REPRO_SANITIZE=1``)
attaches a :class:`repro.devtools.sanitizer.SimSanitizer` that validates
dispatch-time invariants (clock monotonicity, strict schedule-key
ordering, no double dispatch) and tracks process/resource lifecycle.
Service loops that intentionally never finish must be spawned with
``daemon=True`` so the sanitizer's leak check skips them.

Observing: ``Simulator(observe=obs)`` attaches a
:class:`repro.obs.Observability` (metrics registry + span tracer) that
components publish into; the default is the process-wide no-op
:data:`repro.obs.NULL_OBS`, so an unobserved simulator pays nothing.
The kernel itself never consults the observability layer -- only
components (disks, schedulers, servers, caches) do -- and observation
never schedules events, so observed runs are bit-identical to plain
runs.
"""

from __future__ import annotations

import os
from collections.abc import Generator
from sys import getrefcount
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from repro.sim import _accel
from repro.sim.equeue import CalendarQueue, EventQueue, HeapQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.sanitizer import SimSanitizer
    from repro.obs import NullObservability, Observability

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "all_of",
    "any_of",
]

#: Default scheduling priority for ordinary events.
NORMAL = 1
#: Priority used for urgent bookkeeping events (interrupts, process resume).
URGENT = 0

#: Upper bound on recycled Timeout objects kept per simulator.
_POOL_MAX = 4096

#: The compiled repro.sim._cq extension module once it has been loaded,
#: set up, and self-tested (see the wiring at the bottom of this file);
#: None when unavailable or disabled via REPRO_SIM_ACCEL=0.
_CQ: Optional[Any] = None


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the victim was interrupted (e.g. a pre-execution deadline expiring).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot event that processes can wait on.

    Life cycle: *pending* -> *triggered* (``succeed``/``fail`` called, queued
    on the heap) -> *processed* (callbacks executed).  Waiting is expressed
    by appending a callback; :class:`Process` objects do this automatically
    when a generator yields the event.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when failed)."""
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        sim = self.sim
        sim._queue.push(sim._now, priority, self)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters get the exception thrown."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._queue.push(sim._now, priority, self)
        return self

    # -- internals -----------------------------------------------------

    def _process(self) -> None:
        """Run callbacks; called by the simulator when dequeued."""
        callbacks = self.callbacks
        assert callbacks is not None, "event processed twice"
        self.callbacks = None
        self._processed = True
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # An un-waited-for failure would otherwise vanish silently.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self._processed else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._queue.push(sim._now + delay, NORMAL, self)


class _Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        assert self.callbacks is not None
        self.callbacks.append(process._resume_cb)
        self._triggered = True
        self._ok = True
        self._value = None
        sim._enqueue(self, delay=0.0, priority=URGENT)


class Process(Event):
    """A running coroutine.  Completes (as an event) when its generator does.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event is processed, the process resumes with ``event.value`` sent in
    (or the exception thrown in, if the event failed).

    ``daemon=True`` marks a process as an intentional forever-running
    service loop (elevator dispatchers, samplers, flushers): the
    sanitizer's leak check ignores daemons still alive when the schedule
    drains.  The flag has no effect on scheduling.
    """

    __slots__ = ("gen", "name", "daemon", "_target", "_resume_cb", "_send", "_throw")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator,
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"process body must be a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.daemon = daemon
        #: The event this process is currently waiting on (None if running
        #: or finished).  Used by interrupt() to detach.
        self._target: Optional[Event] = None
        # Pre-bound hot-path callables: binding a method allocates, and
        # _resume is registered as a callback once per yield.
        self._resume_cb = self._resume
        self._send = gen.send
        self._throw = gen.throw
        if sim._sanitizer is not None:
            sim._sanitizer.on_process_created(self)
        if sim._watchdog is not None:
            sim._watchdog.on_process_created(self)
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must be alive and not currently executing.  The event it
        was waiting on stays pending; the process may re-wait on it.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.sim)
        interrupt_ev._defused = True
        assert interrupt_ev.callbacks is not None
        interrupt_ev.callbacks.append(self._resume_cb)
        interrupt_ev._triggered = True
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        # Detach from the current target so its eventual firing does not
        # resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self.sim._enqueue(interrupt_ev, delay=0.0, priority=URGENT)

    # -- internals -----------------------------------------------------

    def _resume(self, event: Event) -> None:
        sim = self.sim
        sim._active = self
        self._target = None
        try:
            if event._ok:
                result = self._send(event._value)
            else:
                event._defused = True
                result = self._throw(event._value)
        except StopIteration as exc:
            sim._active = None
            self.succeed(exc.value, priority=URGENT)
            return
        except BaseException as exc:
            sim._active = None
            self.fail(exc, priority=URGENT)
            return
        sim._active = None
        # Fast path for the dominant case: the generator yielded a fresh
        # Timeout (always ok, never failed, callbacks list untouched).
        if result.__class__ is Timeout and result.sim is sim:
            callbacks = result.callbacks
            if callbacks is not None:
                callbacks.append(self._resume_cb)
                self._target = result
                return
        self._resume_tail(result)

    def _resume_tail(self, result: Any) -> None:
        # Cold continuation of _resume, shared with the C dispatch pump
        # (which inlines everything above this point).
        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {result!r}"
            )
        if result.sim is not self.sim:
            raise SimulationError("yielded event belongs to a different simulator")
        if result.callbacks is None:
            # Already processed: resume immediately via a fresh wake event.
            wake = Event(self.sim)
            assert wake.callbacks is not None
            wake.callbacks.append(self._resume_cb)
            wake._triggered = True
            wake._ok = result._ok
            wake._value = result._value
            if not result._ok:
                wake._defused = True
            self.sim._enqueue(wake, delay=0.0, priority=URGENT)
        else:
            result.callbacks.append(self._resume_cb)
            self._target = result
            if not result._ok:
                result._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for all_of / any_of composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        for ev in self.events:
            if ev.sim is not self.sim:
                raise SimulationError("condition mixes events from different simulators")
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}


class _AllOf(_Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class _AnyOf(_Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


def all_of(sim: "Simulator", events: list[Event]) -> Event:
    """Event that fires when *all* of ``events`` have fired.

    Value is a dict mapping each constituent event to its value.
    """
    if not events:
        ev = Event(sim)
        ev.succeed({})
        return ev
    return _AllOf(sim, events)


def any_of(sim: "Simulator", events: list[Event]) -> Event:
    """Event that fires when *any* of ``events`` has fired."""
    if not events:
        raise SimulationError("any_of() requires at least one event")
    return _AnyOf(sim, events)


class Simulator:
    """The discrete-event loop: a clock plus a schedule of triggered events.

    ``sanitize=True`` attaches a :class:`SimSanitizer` performing runtime
    invariant checks (see :mod:`repro.devtools.sanitizer`); the default
    ``None`` defers to the ``REPRO_SANITIZE`` environment variable.
    ``observe=`` attaches a :class:`repro.obs.Observability` layer that
    components publish metrics and spans into; the default is the shared
    no-op :data:`repro.obs.NULL_OBS`.

    ``queue=`` selects the pending-event structure: ``"calendar"`` (the
    default, a slotted calendar queue), ``"heap"`` (the reference binary
    heap), or any object implementing the cohort contract documented in
    :mod:`repro.sim.equeue`.  ``None`` defers to ``REPRO_EVENT_QUEUE``.
    Dispatch order is bit-identical across queues.
    """

    def __init__(
        self,
        sanitize: Optional[bool] = None,
        observe: Optional["Observability"] = None,
        queue: Union[str, EventQueue, None] = None,
        workers: Optional[int] = None,
    ) -> None:
        self._now: float = 0.0
        # -- sharding degree -------------------------------------------
        # The kernel itself is strictly single-threaded; ``workers``
        # records the *intended* sharding degree for the conservative
        # parallel-DES layer (repro.sim.pdes), which partitions a model
        # into logical processes each owning a Simulator like this one.
        # None defers to REPRO_SIM_WORKERS (default 1 = serial).
        if workers is None:
            try:
                workers = int(os.environ.get("REPRO_SIM_WORKERS", "1") or "1")
            except ValueError:
                raise SimulationError(
                    f"REPRO_SIM_WORKERS={os.environ['REPRO_SIM_WORKERS']!r} "
                    "is not an integer"
                ) from None
        if not isinstance(workers, int) or workers < 1:
            raise SimulationError(f"workers must be a positive int, got {workers!r}")
        self.workers: int = workers
        self._active: Optional[Process] = None
        #: Monotone per-dispatch counter fed to the sanitizer's
        #: ``on_dispatch`` hook as the schedule sequence number.
        self._dispatch_seq = 0
        #: Free list of recycled Timeout objects (None = pooling disabled).
        self._pool: Optional[list[Timeout]] = (
            None if os.environ.get("REPRO_NO_EVENT_POOL") else []
        )
        if sanitize is None:
            # Arming the ownership checker implies sanitizing: the
            # checker rides the sanitizer's process-creation hooks.
            sanitize = bool(
                os.environ.get("REPRO_SANITIZE")
                or os.environ.get("REPRO_SANITIZE_OWNERSHIP")
            )
        self._sanitizer: Optional["SimSanitizer"]
        if sanitize:
            # Imported lazily: devtools depends on this module.
            from repro.devtools.sanitizer import SimSanitizer

            self._sanitizer = SimSanitizer(self)
        else:
            self._sanitizer = None
        #: Stall watchdog (repro.guard.watchdog) when one is installed;
        #: None nominally, so unguarded runs pay one attribute load.
        self._watchdog = None
        self.obs: "Union[Observability, NullObservability]"
        if observe is not None and observe.enabled:
            self.obs = observe
            observe.bind(self)
        else:
            # Imported lazily: obs depends on nothing in this module at
            # runtime, but the kernel should not import it eagerly.
            from repro.obs import NULL_OBS

            self.obs = NULL_OBS
        # -- pending-event schedule ------------------------------------
        if queue is None:
            queue = os.environ.get("REPRO_EVENT_QUEUE") or "calendar"
        #: C accelerator module when the schedule is a C CalQ, else None.
        self._accel: Optional[Any] = None
        self._queue: EventQueue
        if isinstance(queue, str):
            if queue == "heap":
                self._queue = HeapQueue()
            elif queue == "calendar":
                if _CQ is not None:
                    self._queue = _CQ.CalQ()
                    self._accel = _CQ
                else:
                    self._queue = CalendarQueue()
            else:
                raise SimulationError(
                    f"unknown event queue {queue!r} (expected 'heap' or 'calendar')"
                )
        else:
            self._queue = queue
            if _CQ is not None and isinstance(queue, _CQ.CalQ):
                self._accel = _CQ
        if self._accel is not None:
            # C fast path for sim.timeout(): pooled reset + push without
            # entering the interpreter.  Shadows the bound method; the
            # semantics (negative-delay check, pooled field reset) are
            # mirrored exactly in _cq.c.
            self.timeout = self._accel.make_timeout(  # type: ignore[method-assign]
                self, self._queue, self._pool
            )

    # -- clock & introspection ------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active

    @property
    def sanitizer(self) -> Optional["SimSanitizer"]:
        """The attached runtime sanitizer, or None when not sanitizing."""
        return self._sanitizer

    @property
    def watchdog(self):
        """The attached stall watchdog, or None when none is installed."""
        return self._watchdog

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek()

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now.

        Recycles a pooled ``Timeout`` when one is available: the run loop
        returns a processed timeout to the pool only when the refcount
        proves nothing else still references it, so reuse is invisible to
        simulation code.
        """
        pool = self._pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            ev = pool.pop()
            # A pooled Timeout keeps its invariant flags (_triggered=True,
            # _ok=True, _defused=False); only the per-use fields reset.
            ev.callbacks = []
            ev.delay = delay
            ev._value = value
            ev._processed = False
            self._queue.push(self._now + delay, NORMAL, ev)
            return ev
        return Timeout(self, delay, value)

    def process(
        self, gen: Generator, name: Optional[str] = None, daemon: bool = False
    ) -> Process:
        """Launch a generator as a simulation process.

        Pass ``daemon=True`` for intentional forever-running service
        loops so the sanitizer's leak check skips them.
        """
        return Process(self, gen, name=name, daemon=daemon)

    def all_of(self, events: list[Event]) -> Event:
        return all_of(self, events)

    def any_of(self, events: list[Event]) -> Event:
        return any_of(self, events)

    # -- running ----------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        q = self._queue
        band = q.pop_cohort()
        if band is None:
            raise SimulationError("step() on an empty schedule")
        t, prio, events = band
        event = events[0]
        events[0] = None
        san = self._sanitizer
        if san is not None:
            self._dispatch_seq += 1
            san.on_dispatch(t, prio, self._dispatch_seq, event)
        self._now = t
        if self._accel is not None:
            self._queue.now = t
        try:
            event._process()
        finally:
            # A preempting push mid-dispatch clears the cohort list; only
            # requeue the untouched remainder.
            if events:
                q.requeue_front(t, prio, events)
        pool = self._pool
        if (
            pool is not None
            and event.__class__ is Timeout
            and getrefcount(event) == 2
            and len(pool) < _POOL_MAX
        ):
            pool.append(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given, the
        clock is advanced exactly to it even if no event lands there.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        if self._accel is not None and self._sanitizer is None:
            drained = self._accel.run(
                self,
                self._queue,
                self._pool,
                float("inf") if until is None else until,
            )
        else:
            drained = self._run_py(until)
        if until is not None:
            self._now = max(self._now, until)
            if self._accel is not None:
                self._queue.now = self._now
        if drained and self._sanitizer is not None:
            # The schedule fully drained: anything still alive or held is
            # a leak (daemons excepted).
            self._sanitizer.on_quiescent(self._now)
        return self._now

    def _run_py(self, until: Optional[float]) -> bool:
        """Pure-Python cohort dispatch loop; True when the schedule drained."""
        q = self._queue
        pool = self._pool
        san = self._sanitizer
        accel = self._accel
        pop = q.pop_cohort
        while True:
            band = pop()
            if band is None:
                return True
            t, prio, events = band
            if until is not None and t > until:
                q.requeue_front(t, prio, events)
                return False
            self._now = t
            if accel is not None:
                q.now = t
            # Cohort inner loop: the size is re-read every iteration
            # because a preempting push clears the list in place, and
            # each slot is nulled *before* dispatch so the event's only
            # remaining references are local (pool recycling relies on
            # this, and a requeue after an exception skips it).
            i = 0
            while i < len(events):
                event = events[i]
                events[i] = None
                i += 1
                if san is not None:
                    self._dispatch_seq += 1
                    san.on_dispatch(t, prio, self._dispatch_seq, event)
                if event.__class__ is Timeout:
                    # Inlined Timeout._process: a timeout never fails, so
                    # the failure bookkeeping is skipped on the hot path.
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    try:
                        for cb in callbacks:  # type: ignore[union-attr]
                            cb(event)
                    except BaseException:
                        q.requeue_front(t, prio, events)
                        raise
                    if (
                        pool is not None
                        and getrefcount(event) == 2
                        and len(pool) < _POOL_MAX
                    ):
                        pool.append(event)
                else:
                    try:
                        event._process()
                    except BaseException:
                        q.requeue_front(t, prio, events)
                        raise

    def run_below(self, limit: float) -> int:
        """Dispatch every scheduled event with time strictly below ``limit``.

        The conservative parallel-DES horizon primitive (see
        :mod:`repro.sim.pdes`): a logical process may safely execute all
        local events earlier than its input horizon, but never an event
        *at* the horizon -- a message could still arrive there.  Events at
        ``t >= limit`` stay queued untouched.  Returns the number of
        events dispatched (the window's committed-event count).

        Unlike :meth:`run`, the clock is left at the last dispatched
        event and no quiescence check runs -- the caller owns the loop.
        """
        q = self._queue
        pool = self._pool
        san = self._sanitizer
        accel = self._accel
        pop = q.pop_cohort
        n_dispatched = 0
        while True:
            band = pop()
            if band is None:
                return n_dispatched
            t, prio, events = band
            if t >= limit:
                q.requeue_front(t, prio, events)
                return n_dispatched
            self._now = t
            if accel is not None:
                q.now = t
            i = 0
            while i < len(events):
                event = events[i]
                events[i] = None
                i += 1
                if san is not None:
                    self._dispatch_seq += 1
                    san.on_dispatch(t, prio, self._dispatch_seq, event)
                n_dispatched += 1
                if event.__class__ is Timeout:
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    try:
                        for cb in callbacks:  # type: ignore[union-attr]
                            cb(event)
                    except BaseException:
                        q.requeue_front(t, prio, events)
                        raise
                    if (
                        pool is not None
                        and getrefcount(event) == 2
                        and len(pool) < _POOL_MAX
                    ):
                        pool.append(event)
                else:
                    try:
                        event._process()
                    except BaseException:
                        q.requeue_front(t, prio, events)
                        raise

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the schedule drains or ``limit`` is
        reached first.
        """
        if self._accel is not None and self._sanitizer is None:
            self._accel.run_until(self, self._queue, self._pool, event, limit)
        else:
            self._run_until_py(event, limit)
        if not event._ok:
            raise event._value
        return event._value

    def _run_until_py(self, event: Event, limit: float) -> None:
        q = self._queue
        pool = self._pool
        san = self._sanitizer
        accel = self._accel
        pop = q.pop_cohort
        while not event._processed:
            band = pop()
            if band is None:
                raise SimulationError("schedule drained before event fired (deadlock?)")
            t, prio, events = band
            if t > limit:
                q.requeue_front(t, prio, events)
                raise SimulationError(f"time limit {limit} reached before event fired")
            self._now = t
            if accel is not None:
                q.now = t
            i = 0
            while i < len(events):
                ev = events[i]
                events[i] = None
                i += 1
                if san is not None:
                    self._dispatch_seq += 1
                    san.on_dispatch(t, prio, self._dispatch_seq, ev)
                if ev.__class__ is Timeout:
                    callbacks = ev.callbacks
                    ev.callbacks = None
                    ev._processed = True
                    try:
                        for cb in callbacks:  # type: ignore[union-attr]
                            cb(ev)
                    except BaseException:
                        q.requeue_front(t, prio, events)
                        raise
                    if (
                        pool is not None
                        and getrefcount(ev) == 2
                        and len(pool) < _POOL_MAX
                    ):
                        pool.append(ev)
                else:
                    try:
                        ev._process()
                    except BaseException:
                        q.requeue_front(t, prio, events)
                        raise
                if event._processed:
                    if events:
                        q.requeue_front(t, prio, events)
                    return

    # -- internals ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._queue.push(self._now + delay, priority, event)


# -- C accelerator wiring -------------------------------------------------


def _accel_selftest(mod: Any) -> bool:
    """End-to-end check of the C queue + dispatch pump before trusting it.

    Exercises ordering, join (StopIteration -> URGENT succeed, which
    preempts the draining NORMAL band), the pooled timeout callable, and
    the drained return.  Any mismatch or exception disables the
    accelerator for the process; the pure-Python kernel is always safe.
    """
    try:
        sim = Simulator(sanitize=False, queue=mod.CalQ())
        if sim._accel is not mod:
            return False
        out: list[tuple[float, Any]] = []

        def worker(tag: str, d: float) -> Generator:
            yield sim.timeout(d)
            out.append((sim.now, tag))

        def joiner() -> Generator:
            proc = sim.process(worker("x", 2.0))
            value = yield proc
            out.append((sim.now, ("join", value)))

        sim.process(worker("b", 3.0))
        sim.process(worker("a", 1.0))
        sim.process(joiner())
        end = sim.run()
        expected = [(1.0, "a"), (2.0, "x"), (2.0, ("join", None)), (3.0, "b")]
        return bool(out == expected and end == 3.0 and len(sim._queue) == 0)
    except Exception:  # noqa: BLE001 - any failure disables the accelerator
        return False


def _load_accel() -> Optional[Any]:
    mod = _accel.load()
    if mod is None:
        return None
    try:
        mod.setup(Event, Timeout, Process, SimulationError)
    except Exception:  # noqa: BLE001
        return None
    return mod


_CQ = _load_accel()
if _CQ is not None and not _accel_selftest(_CQ):
    _CQ = None
