"""Capacity-limited resources and producer/consumer stores.

These follow SimPy semantics closely enough to be familiar:

- :class:`Resource` -- ``n`` identical servers; ``request()`` returns an
  event that fires when a slot is granted; ``release()`` frees it.
- :class:`PriorityResource` -- like Resource but the wait queue is ordered
  by a caller-supplied priority (lower first), FIFO within a priority.
- :class:`Store` -- unbounded-or-bounded FIFO buffer of items with ``put``
  and ``get`` events.
- :class:`FilterStore` -- Store whose ``get`` takes a predicate.

When the owning simulator sanitizes (``REPRO_SANITIZE=1`` /
``Simulator(sanitize=True)``), every request/grant/release is reported
to the :class:`~repro.devtools.sanitizer.SimSanitizer`, which attributes
leaked and double-released slots to the process that acquired them.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["Resource", "PriorityResource", "Store", "FilterStore"]


class _Request(Event):
    """Event granted when the resource slot is acquired."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    # Support ``with`` blocks for symmetry with SimPy-style code in tests.
    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: list[_Request] = []
        self.queue: deque[_Request] = deque()  # simlint: ignore[SL006] one entry per waiting process

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> _Request:
        req = _Request(self)
        san = self.sim._sanitizer
        wd = self.sim._watchdog
        if san is not None:
            san.on_request(self, req)
        if wd is not None:
            wd.on_request(self, req)
        if len(self.users) < self.capacity:
            self.users.append(req)
            if san is not None:
                san.on_acquire(self, req)
            if wd is not None:
                wd.on_acquire(self, req)
            req.succeed(req)
        else:
            self.queue.append(req)
        return req

    def release(self, request: _Request) -> None:
        san = self.sim._sanitizer
        wd = self.sim._watchdog
        if san is not None:
            # Raises with owning-process attribution on a double release.
            san.on_release(self, request)
        if wd is not None:
            wd.on_release(self, request)
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing a queued (never-granted) request cancels it.
            try:
                self.queue.remove(request)
                return
            except ValueError:
                raise SimulationError("release() of unknown request") from None
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            if san is not None:
                san.on_acquire(self, nxt)
            if wd is not None:
                wd.on_acquire(self, nxt)
            nxt.succeed(nxt)


class _PriorityRequest(_Request):
    __slots__ = ("priority", "seq", "_queued", "_cancelled")

    def __init__(self, resource: "PriorityResource", priority: float, seq: int) -> None:
        super().__init__(resource)
        self.priority = priority
        self.seq = seq
        #: True while sitting in the wait heap (set False on grant/cancel).
        self._queued = False
        #: Lazy-deletion tombstone: cancelled entries stay in the heap and
        #: are discarded when they surface at dequeue time.
        self._cancelled = False

    def __lt__(self, other: "_PriorityRequest") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._pq: list[_PriorityRequest] = []
        self._seq = 0
        self._n_cancelled = 0

    def request(self, priority: float = 0.0) -> _PriorityRequest:  # type: ignore[override]
        self._seq += 1
        req = _PriorityRequest(self, priority, self._seq)
        san = self.sim._sanitizer
        wd = self.sim._watchdog
        if san is not None:
            san.on_request(self, req)
        if wd is not None:
            wd.on_request(self, req)
        if len(self.users) < self.capacity:
            self.users.append(req)
            if san is not None:
                san.on_acquire(self, req)
            if wd is not None:
                wd.on_acquire(self, req)
            req.succeed(req)
        else:
            req._queued = True
            heapq.heappush(self._pq, req)
        return req

    def release(self, request: _Request) -> None:  # type: ignore[override]
        san = self.sim._sanitizer
        wd = self.sim._watchdog
        if san is not None:
            san.on_release(self, request)
        if wd is not None:
            wd.on_release(self, request)
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing a queued (never-granted) request cancels it: O(1)
            # lazy tombstone deletion instead of remove()+heapify (O(n)).
            # The entry stays in the heap and is discarded at dequeue.
            if (
                isinstance(request, _PriorityRequest)
                and request._queued
                and not request._cancelled
            ):
                request._cancelled = True
                request._queued = False
                self._n_cancelled += 1
                # Keep the heap from filling with tombstones under heavy
                # cancel churn (e.g. deadline-based request retraction).
                if self._n_cancelled > 64 and self._n_cancelled * 2 > len(self._pq):
                    self._pq = [r for r in self._pq if not r._cancelled]
                    heapq.heapify(self._pq)
                    self._n_cancelled = 0
                return
            raise SimulationError("release() of unknown request") from None
        while self._pq and len(self.users) < self.capacity:
            nxt = heapq.heappop(self._pq)
            if nxt._cancelled:
                self._n_cancelled -= 1
                continue
            nxt._queued = False
            self.users.append(nxt)
            if san is not None:
                san.on_acquire(self, nxt)
            if wd is not None:
                wd.on_acquire(self, nxt)
            nxt.succeed(nxt)


class Store:
    """FIFO item buffer with optional capacity bound.

    ``put(item)`` returns an event that fires once the item is accepted;
    ``get()`` returns an event that fires with the oldest item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()  # simlint: ignore[SL006] bounded by Store capacity (put blocks at cap)
        self._getters: deque[Event] = deque()  # simlint: ignore[SL006] one entry per waiting process
        self._putters: deque[tuple[Event, Any]] = deque()  # simlint: ignore[SL006] one entry per waiting process

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        # Accept puts while there is room.
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()
        # Serve getters while items remain.
        while self._getters and self.items:
            ev = self._getters.popleft()
            ev.succeed(self.items.popleft())
            # A removal may unblock a putter.
            while self._putters and len(self.items) < self.capacity:
                pev, item = self._putters.popleft()
                self.items.append(item)
                pev.succeed()


class FilterStore(Store):
    """Store whose ``get`` may specify a predicate over items."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        super().__init__(sim, capacity)
        self._fgetters: deque[tuple[Event, Callable[[Any], bool]]] = deque()  # simlint: ignore[SL006] one entry per waiting process

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:  # type: ignore[override]
        pred = predicate or (lambda _item: True)
        ev = Event(self.sim)
        self._fgetters.append((ev, pred))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:  # type: ignore[override]
        while self._putters and len(self.items) < self.capacity:
            pev, item = self._putters.popleft()
            self.items.append(item)
            pev.succeed()
        served = True
        while served:
            served = False
            for gi, (ev, pred) in enumerate(self._fgetters):
                match_idx = None
                for ii, item in enumerate(self.items):
                    if pred(item):
                        match_idx = ii
                        break
                if match_idx is not None:
                    item = self.items[match_idx]
                    del self.items[match_idx]
                    del self._fgetters[gi]
                    ev.succeed(item)
                    served = True
                    while self._putters and len(self.items) < self.capacity:
                        pev, pitem = self._putters.popleft()
                        self.items.append(pitem)
                        pev.succeed()
                    break
