/* C accelerator for the repro.sim event kernel.
 *
 * Three pieces, all optional (repro.sim._accel builds this module on
 * first use when a C compiler is available and falls back to the pure
 * Python implementations in repro.sim.equeue / repro.sim.core
 * otherwise):
 *
 *   - CalQ: the calendar / timing-wheel event queue.  Same discipline
 *     and cohort contract as equeue.CalendarQueue, so the two are
 *     interchangeable and produce bit-identical dispatch order.
 *   - TimeoutFn: a callable installed as ``sim.timeout`` that performs
 *     the pooled-Timeout fast path without entering the interpreter.
 *   - run() / run_until(): dispatch drivers fusing the dominant case
 *     (a Timeout whose single callback is a bound Process._resume)
 *     into a C loop around ``generator.send``.
 *
 * All simulation *semantics* stay in the Python classes -- this file
 * only mirrors the exact hot-path steps of Simulator.run and
 * Process._resume, and calls back into Python (`_process`,
 * `_resume_tail`, `succeed`, `fail`) for every cold case.  Slot access
 * uses member-descriptor offsets resolved at setup() time, so the
 * Python class layout remains the single source of truth.
 *
 * The accelerated path is only engaged when the sanitizer is off (the
 * sanitizer needs a per-event Python hook); the Python cohort driver
 * in core.py drives this queue through its visible pop_cohort /
 * requeue_front methods in that case.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>

#define FAR_T 1e300
#define IDLE_PRIO (1L << 30)
#define POOL_MAX 4096
#define RESIZE_CHECK 64
#define N0 64

/* ------------------------------------------------------------------ state */

typedef struct {
    double t;
    long prio;
    PyObject *list; /* owned: PyList of events, push order */
} Band;

typedef struct {
    double t;
    long prio;
    long long seq; /* signed: requeued entries use negative "front" seqs */
    PyObject *ev;  /* owned */
} HeapEnt;

typedef struct {
    HeapEnt *e;
    Py_ssize_t len, cap;
} MiniHeap;

typedef struct {
    PyObject_HEAD
    Band **buckets; /* n growable band arrays */
    int *blen;
    int *bcap;
    long n;
    long mask;
    double width, inv_w;
    long long cur_k, far_k;
    Py_ssize_t count;     /* events in buckets (not overflow/past) */
    MiniHeap ov;          /* far-future entries, (t, prio, seq) order */
    MiniHeap past;        /* behind-the-cursor (erroneous) entries */
    long long oseq;       /* ascending for normal overflow pushes */
    long long front_seq;  /* descending for requeue_front */
    /* push-side band cache */
    double band_t;
    long band_prio;
    PyObject *band_list; /* borrowed (owned by its bucket) */
    /* active cohort */
    double active_t;
    long active_prio;
    PyObject *active_list; /* owned */
    double now; /* mirror of sim._now for TimeoutFn */
    /* resize policy */
    long pops;
    double gap_ewma;
    double last_t;
    long resizes;
} CalQ;

/* resolved at setup() */
static Py_ssize_t off_value, off_processed, off_callbacks, off_delay,
    off_send, off_target, off_resume_cb, off_sim;
static PyObject *TimeoutType = NULL, *ProcessType = NULL, *SimError = NULL;
static PyObject *resume_func = NULL; /* Process._resume (plain function) */
static PyObject *long_urgent = NULL; /* int(0) */
static PyObject *str_process, *str_resume_tail, *str_succeed, *str_fail,
    *str_now, *str_active;

#define SLOT(ob, off) (*(PyObject **)((char *)(ob) + (off)))

static void slot_set(PyObject *ob, Py_ssize_t off, PyObject *v) /* steals v */
{
    PyObject *old = SLOT(ob, off);
    SLOT(ob, off) = v;
    Py_XDECREF(old);
}

/* --------------------------------------------------------------- MiniHeap */

static int mh_less(const HeapEnt *a, const HeapEnt *b)
{
    if (a->t != b->t) return a->t < b->t;
    if (a->prio != b->prio) return a->prio < b->prio;
    return a->seq < b->seq;
}

static int mh_push(MiniHeap *h, double t, long prio, long long seq,
                   PyObject *ev /* steals */)
{
    if (h->len == h->cap) {
        Py_ssize_t nc = h->cap ? h->cap * 2 : 16;
        HeapEnt *nv = PyMem_Realloc(h->e, (size_t)nc * sizeof(HeapEnt));
        if (!nv) {
            Py_DECREF(ev);
            PyErr_NoMemory();
            return -1;
        }
        h->e = nv;
        h->cap = nc;
    }
    Py_ssize_t i = h->len++;
    HeapEnt ent = {t, prio, seq, ev};
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (!mh_less(&ent, &h->e[p])) break;
        h->e[i] = h->e[p];
        i = p;
    }
    h->e[i] = ent;
    return 0;
}

static HeapEnt mh_pop(MiniHeap *h)
{
    HeapEnt top = h->e[0];
    HeapEnt last = h->e[--h->len];
    Py_ssize_t i = 0, n = h->len;
    for (;;) {
        Py_ssize_t c = 2 * i + 1;
        if (c >= n) break;
        if (c + 1 < n && mh_less(&h->e[c + 1], &h->e[c])) c++;
        if (!mh_less(&h->e[c], &last)) break;
        h->e[i] = h->e[c];
        i = c;
    }
    if (n) h->e[i] = last;
    return top;
}

/* ----------------------------------------------------------------- CalQ */

static PyTypeObject CalQ_Type;

static PyObject *calq_alloc_tables(CalQ *q, long n)
{
    q->buckets = PyMem_Calloc((size_t)n, sizeof(Band *));
    q->blen = PyMem_Calloc((size_t)n, sizeof(int));
    q->bcap = PyMem_Calloc((size_t)n, sizeof(int));
    if (!q->buckets || !q->blen || !q->bcap) return PyErr_NoMemory();
    q->n = n;
    q->mask = n - 1;
    return Py_None; /* borrowed truthy sentinel */
}

static PyObject *CalQ_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CalQ *q = (CalQ *)type->tp_alloc(type, 0);
    if (!q) return NULL;
    q->width = 1.0;
    q->inv_w = 1.0;
    if (!calq_alloc_tables(q, N0)) {
        Py_DECREF(q);
        return NULL;
    }
    q->cur_k = 0;
    q->far_k = q->n;
    q->band_t = -1.0;
    q->band_prio = -1;
    q->active_t = -1.0;
    q->active_prio = IDLE_PRIO;
    q->gap_ewma = 1.0;
    /* tp_alloc (PyType_GenericAlloc) already GC-tracks the object */
    return (PyObject *)q;
}

static void calq_free_tables(CalQ *q)
{
    for (long i = 0; i < q->n; i++) {
        for (int j = 0; j < q->blen[i]; j++) Py_XDECREF(q->buckets[i][j].list);
        PyMem_Free(q->buckets[i]);
    }
    PyMem_Free(q->buckets);
    PyMem_Free(q->blen);
    PyMem_Free(q->bcap);
    q->buckets = NULL;
    q->blen = NULL;
    q->bcap = NULL;
    q->n = 0;
    q->mask = 0;
    q->count = 0;
}

static int CalQ_traverse(CalQ *q, visitproc visit, void *arg)
{
    for (long i = 0; i < q->n; i++)
        for (int j = 0; j < q->blen[i]; j++) Py_VISIT(q->buckets[i][j].list);
    for (Py_ssize_t i = 0; i < q->ov.len; i++) Py_VISIT(q->ov.e[i].ev);
    for (Py_ssize_t i = 0; i < q->past.len; i++) Py_VISIT(q->past.e[i].ev);
    Py_VISIT(q->active_list);
    return 0;
}

static int CalQ_clear(CalQ *q)
{
    calq_free_tables(q);
    for (Py_ssize_t i = 0; i < q->ov.len; i++) Py_XDECREF(q->ov.e[i].ev);
    for (Py_ssize_t i = 0; i < q->past.len; i++) Py_XDECREF(q->past.e[i].ev);
    q->ov.len = 0;
    q->past.len = 0;
    PyMem_Free(q->ov.e);
    PyMem_Free(q->past.e);
    q->ov.e = NULL;
    q->past.e = NULL;
    q->ov.cap = q->past.cap = 0;
    Py_CLEAR(q->active_list);
    q->band_list = NULL;
    return 0;
}

static void CalQ_dealloc(CalQ *q)
{
    PyObject_GC_UnTrack(q);
    CalQ_clear(q);
    Py_TYPE(q)->tp_free((PyObject *)q);
}

/* Slot index for t.  The raw double->long long cast is undefined once
 * t * inv_w exceeds LLONG_MAX (e.g. t = 5e299 with width 1.0 -- on x86
 * it yields LLONG_MIN, which would misfile the entry in the *past*
 * heap).  Clamp far below the limit: everything at or beyond the clamp
 * shares one distant slot, so it stays in the overflow heap until the
 * cursor gets there and degenerates gracefully (one shared bucket,
 * min-scan still picks the earliest band) if it ever does. */
#define SLOT_CLAMP 4.5e18
static inline long long slot_of(const CalQ *q, double t)
{
    double kd = t * q->inv_w;
    return kd >= SLOT_CLAMP ? (long long)SLOT_CLAMP : (long long)kd;
}

static PyObject *bucket_band(CalQ *q, long b, double t, long prio)
{
    Band *arr = q->buckets[b];
    int len = q->blen[b];
    for (int i = 0; i < len; i++)
        if (arr[i].t == t && arr[i].prio == prio) return arr[i].list;
    if (len == q->bcap[b]) {
        int nc = q->bcap[b] ? q->bcap[b] * 2 : 4;
        Band *na = PyMem_Realloc(arr, (size_t)nc * sizeof(Band));
        if (!na) return PyErr_NoMemory();
        q->buckets[b] = arr = na;
        q->bcap[b] = nc;
    }
    PyObject *list = PyList_New(0);
    if (!list) return NULL;
    arr[len].t = t;
    arr[len].prio = prio;
    arr[len].list = list;
    q->blen[b] = len + 1;
    return list;
}

static int calq_push_slow(CalQ *q, double t, long prio, PyObject *ev);

static int calq_requeue_band(CalQ *q, double t, long prio,
                             PyObject *events /* borrowed list, may hold None */)
{
    Py_ssize_t n = PyList_GET_SIZE(events);
    Py_ssize_t nrem = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        if (PyList_GET_ITEM(events, i) != Py_None) nrem++;
    if (!nrem) return 0;
    if (t < FAR_T) {
        long long k = slot_of(q, t);
        if (k >= q->cur_k && k < q->far_k) {
            long b = (long)(k & q->mask);
            PyObject *band = bucket_band(q, b, t, prio);
            if (!band) return -1;
            /* prepend, preserving order, ahead of newer same-band pushes */
            Py_ssize_t at = 0;
            for (Py_ssize_t i = 0; i < n; i++) {
                PyObject *e = PyList_GET_ITEM(events, i);
                if (e == Py_None) continue;
                if (PyList_Insert(band, at++, e) < 0) return -1;
            }
            q->count += nrem;
            return 0;
        }
    }
    /* past or overflow heap: negative front seqs keep these ahead */
    MiniHeap *h;
    if (t < FAR_T && slot_of(q, t) < q->cur_k)
        h = &q->past;
    else
        h = &q->ov;
    long long base = q->front_seq - (long long)nrem;
    long long s = base + 1;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *e = PyList_GET_ITEM(events, i);
        if (e == Py_None) continue;
        Py_INCREF(e);
        if (mh_push(h, t, prio, s++, e) < 0) return -1;
    }
    q->front_seq = base;
    return 0;
}

static int calq_preempt(CalQ *q, double t, long prio, PyObject *ev)
{
    PyObject *act = q->active_list;
    double at = q->active_t;
    long ap = q->active_prio;
    q->active_prio = IDLE_PRIO;
    q->active_list = NULL;
    q->band_t = -1.0;
    q->band_list = NULL;
    if (act != NULL) {
        /* own the sole reference that active_list held */
        if (calq_requeue_band(q, at, ap, act) < 0) {
            Py_DECREF(act);
            return -1;
        }
        /* clear in place: the driver's loop over this list terminates */
        if (PyList_SetSlice(act, 0, PyList_GET_SIZE(act), NULL) < 0) {
            Py_DECREF(act);
            return -1;
        }
        Py_DECREF(act);
    }
    return calq_push_slow(q, t, prio, ev);
}

static int calq_push_slow(CalQ *q, double t, long prio, PyObject *ev)
{
    if (t < FAR_T) {
        long long k = slot_of(q, t);
        if (k < q->far_k) {
            if (k < q->cur_k) {
                Py_INCREF(ev);
                return mh_push(&q->past, t, prio, ++q->oseq, ev);
            }
            long b = (long)(k & q->mask);
            PyObject *band = bucket_band(q, b, t, prio);
            if (!band) return -1;
            if (PyList_Append(band, ev) < 0) return -1;
            q->count++;
            q->band_t = t;
            q->band_prio = prio;
            q->band_list = band;
            return 0;
        }
    }
    Py_INCREF(ev);
    return mh_push(&q->ov, t, prio, ++q->oseq, ev);
}

static int calq_push(CalQ *q, double t, long prio, PyObject *ev /* borrowed */)
{
    if (t == q->band_t && prio == q->band_prio) {
        if (PyList_Append(q->band_list, ev) < 0) return -1;
        q->count++;
        return 0;
    }
    if (prio < q->active_prio && t == q->active_t)
        return calq_preempt(q, t, prio, ev);
    return calq_push_slow(q, t, prio, ev);
}

static int calq_migrate(CalQ *q)
{
    MiniHeap *ov = &q->ov;
    while (ov->len) {
        double t = ov->e[0].t;
        if (t >= FAR_T) break;
        long long k = slot_of(q, t);
        if (k >= q->far_k) break;
        HeapEnt e = mh_pop(ov);
        long b = (long)(k & q->mask);
        PyObject *band = bucket_band(q, b, e.t, e.prio);
        if (!band) {
            Py_DECREF(e.ev);
            return -1;
        }
        int rc = PyList_Append(band, e.ev);
        Py_DECREF(e.ev);
        if (rc < 0) return -1;
        q->count++;
    }
    return 0;
}

static int calq_rebuild(CalQ *q, long new_n, double new_w);

static int calq_maybe_resize(CalQ *q)
{
    long n = q->n;
    long new_n = n;
    if (q->count > 2 * (Py_ssize_t)n)
        new_n = n * 2;
    else if (q->count < (Py_ssize_t)(n / 8) && n > N0)
        new_n = n / 2;
    double gap = q->gap_ewma;
    double new_w = q->width;
    if (gap > 0.0 && (gap > q->width * 4.0 || gap < q->width * 0.25)) {
        double l = log2(gap);
        new_w = pow(2.0, (double)llround(l));
        if (new_w < 1e-9) new_w = 1e-9;
        if (new_w > 1e9) new_w = 1e9;
    }
    if (new_n != n || new_w != q->width) return calq_rebuild(q, new_n, new_w);
    return 0;
}

static int calq_rebuild(CalQ *q, long new_n, double new_w)
{
    Band *all = NULL;
    Py_ssize_t nb = 0, cap = 0;
    for (long i = 0; i < q->n; i++) {
        for (int j = 0; j < q->blen[i]; j++) {
            if (nb == cap) {
                cap = cap ? cap * 2 : 64;
                Band *na = PyMem_Realloc(all, (size_t)cap * sizeof(Band));
                if (!na) {
                    PyMem_Free(all);
                    PyErr_NoMemory();
                    return -1;
                }
                all = na;
            }
            all[nb++] = q->buckets[i][j]; /* list refs move to `all` */
        }
        q->blen[i] = 0;
    }
    calq_free_tables(q); /* band lists now owned solely by `all` */
    if (!calq_alloc_tables(q, new_n)) {
        for (Py_ssize_t i = 0; i < nb; i++) Py_XDECREF(all[i].list);
        PyMem_Free(all);
        return -1;
    }
    q->width = new_w;
    q->inv_w = 1.0 / new_w;
    q->band_t = -1.0;
    q->band_list = NULL;
    double min_t;
    if (nb) {
        min_t = all[0].t;
        for (Py_ssize_t i = 1; i < nb; i++)
            if (all[i].t < min_t) min_t = all[i].t;
    } else if (q->ov.len && q->ov.e[0].t < FAR_T) {
        min_t = q->ov.e[0].t;
    } else {
        min_t = q->last_t;
    }
    long long k0 = slot_of(q, min_t);
    q->cur_k = k0;
    q->far_k = k0 + new_n;
    for (Py_ssize_t i = 0; i < nb; i++) {
        double t = all[i].t;
        long long k = slot_of(q, t);
        if (k < q->far_k) {
            long b = (long)(k & q->mask);
            /* same t implies same k, so no existing band can collide */
            Band *arr = q->buckets[b];
            if (q->blen[b] == q->bcap[b]) {
                int nc = q->bcap[b] ? q->bcap[b] * 2 : 4;
                Band *na = PyMem_Realloc(arr, (size_t)nc * sizeof(Band));
                if (!na) {
                    for (Py_ssize_t j = i; j < nb; j++) Py_XDECREF(all[j].list);
                    PyMem_Free(all);
                    PyErr_NoMemory();
                    return -1;
                }
                q->buckets[b] = arr = na;
                q->bcap[b] = nc;
            }
            arr[q->blen[b]++] = all[i];
            q->count += PyList_GET_SIZE(all[i].list);
        } else {
            PyObject *lst = all[i].list;
            Py_ssize_t m = PyList_GET_SIZE(lst);
            for (Py_ssize_t j = 0; j < m; j++) {
                PyObject *e = PyList_GET_ITEM(lst, j);
                Py_INCREF(e);
                if (mh_push(&q->ov, all[i].t, all[i].prio, ++q->oseq, e) < 0) {
                    Py_DECREF(lst);
                    for (Py_ssize_t jj = i + 1; jj < nb; jj++)
                        Py_XDECREF(all[jj].list);
                    PyMem_Free(all);
                    return -1;
                }
            }
            Py_DECREF(lst);
        }
    }
    PyMem_Free(all);
    q->resizes++;
    if (q->ov.len) return calq_migrate(q);
    return 0;
}

/* Pop the earliest band from a MiniHeap as the active cohort. */
static int calq_pop_heap_band(CalQ *q, MiniHeap *h)
{
    HeapEnt e = mh_pop(h);
    PyObject *list = PyList_New(0);
    if (!list) {
        Py_DECREF(e.ev);
        return -1;
    }
    int rc = PyList_Append(list, e.ev);
    Py_DECREF(e.ev);
    if (rc < 0) {
        Py_DECREF(list);
        return -1;
    }
    while (h->len && h->e[0].t == e.t && h->e[0].prio == e.prio) {
        HeapEnt e2 = mh_pop(h);
        rc = PyList_Append(list, e2.ev);
        Py_DECREF(e2.ev);
        if (rc < 0) {
            Py_DECREF(list);
            return -1;
        }
    }
    q->active_t = e.t;
    q->active_prio = e.prio;
    Py_XSETREF(q->active_list, list);
    q->band_t = -1.0;
    q->band_list = NULL;
    return 1;
}

/* 1 = cohort ready (active_* filled), 0 = empty, -1 = error */
static int calq_pop_cohort(CalQ *q)
{
    if (q->past.len) return calq_pop_heap_band(q, &q->past);
    if (!q->count) {
        if (!q->ov.len) {
            q->active_prio = IDLE_PRIO;
            Py_CLEAR(q->active_list);
            return 0;
        }
        double t0 = q->ov.e[0].t;
        long long k = t0 < FAR_T ? slot_of(q, t0) : q->far_k;
        q->cur_k = k;
        q->far_k = k + q->n;
        if (calq_migrate(q) < 0) return -1;
        if (!q->count) return calq_pop_heap_band(q, &q->ov);
    }
    long long k = q->cur_k;
    long mask = q->mask;
    int bi;
    for (;;) {
        bi = (int)(k & mask);
        if (q->blen[bi]) break;
        k++;
    }
    q->cur_k = k;
    long long far_k = k + q->n;
    if (far_k > q->far_k) {
        q->far_k = far_k;
        if (q->ov.len && calq_migrate(q) < 0) return -1;
    }
    Band *arr = q->buckets[bi];
    int len = q->blen[bi], mi = 0;
    for (int i = 1; i < len; i++)
        if (arr[i].t < arr[mi].t ||
            (arr[i].t == arr[mi].t && arr[i].prio < arr[mi].prio))
            mi = i;
    Band band = arr[mi];
    arr[mi] = arr[len - 1];
    q->blen[bi] = len - 1;
    q->count -= PyList_GET_SIZE(band.list);
    q->active_t = band.t;
    q->active_prio = band.prio;
    Py_XSETREF(q->active_list, band.list); /* ownership moves */
    q->band_t = -1.0;
    q->band_list = NULL;
    q->pops++;
    if (band.t > q->last_t) {
        q->gap_ewma += (band.t - q->last_t - q->gap_ewma) * 0.125;
        q->last_t = band.t;
    }
    if (q->pops >= RESIZE_CHECK) {
        q->pops = 0;
        if (calq_maybe_resize(q) < 0) return -1;
    }
    return 1;
}

static double calq_peek(CalQ *q)
{
    if (q->past.len) return q->past.e[0].t;
    if (q->count) {
        long long k = q->cur_k;
        for (;;) {
            int bi = (int)(k & q->mask);
            int len = q->blen[bi];
            if (len) {
                Band *arr = q->buckets[bi];
                double best = arr[0].t;
                for (int i = 1; i < len; i++)
                    if (arr[i].t < best) best = arr[i].t;
                return best;
            }
            k++;
        }
    }
    if (q->ov.len) return q->ov.e[0].t;
    return Py_HUGE_VAL;
}

/* ------------------------------------------------ CalQ python methods */

static PyObject *CalQ_push_py(CalQ *q, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "push(t, priority, event)");
        return NULL;
    }
    double t = PyFloat_AsDouble(args[0]);
    if (t == -1.0 && PyErr_Occurred()) return NULL;
    long prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred()) return NULL;
    if (calq_push(q, t, prio, args[2]) < 0) return NULL;
    Py_RETURN_NONE;
}

static PyObject *CalQ_pop_cohort_py(CalQ *q, PyObject *noarg)
{
    int rc = calq_pop_cohort(q);
    if (rc < 0) return NULL;
    if (rc == 0) Py_RETURN_NONE;
    return Py_BuildValue("(dlO)", q->active_t, q->active_prio, q->active_list);
}

static PyObject *CalQ_requeue_front_py(CalQ *q, PyObject *const *args,
                                       Py_ssize_t nargs)
{
    if (nargs != 3 || !PyList_Check(args[2])) {
        PyErr_SetString(PyExc_TypeError, "requeue_front(t, priority, events)");
        return NULL;
    }
    double t = PyFloat_AsDouble(args[0]);
    if (t == -1.0 && PyErr_Occurred()) return NULL;
    long prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred()) return NULL;
    if (calq_requeue_band(q, t, prio, args[2]) < 0) return NULL;
    q->active_prio = IDLE_PRIO;
    q->band_t = -1.0;
    q->band_list = NULL;
    Py_CLEAR(q->active_list);
    Py_RETURN_NONE;
}

static PyObject *CalQ_peek_py(CalQ *q, PyObject *noarg)
{
    return PyFloat_FromDouble(calq_peek(q));
}

static PyObject *CalQ_info(CalQ *q, PyObject *noarg)
{
    return Py_BuildValue(
        "{s:l,s:d,s:n,s:n,s:n,s:l}", "n", q->n, "width", q->width, "count",
        q->count, "overflow", q->ov.len, "past", q->past.len, "resizes",
        q->resizes);
}

static Py_ssize_t CalQ_len(CalQ *q)
{
    return q->count + q->ov.len + q->past.len;
}

static PyMethodDef CalQ_methods[] = {
    {"push", (PyCFunction)CalQ_push_py, METH_FASTCALL,
     "push(t, priority, event)"},
    {"pop_cohort", (PyCFunction)CalQ_pop_cohort_py, METH_NOARGS,
     "pop the earliest (t, priority) band -> (t, priority, events) or None"},
    {"requeue_front", (PyCFunction)CalQ_requeue_front_py, METH_FASTCALL,
     "restore the non-None remainder of a cohort list"},
    {"peek", (PyCFunction)CalQ_peek_py, METH_NOARGS,
     "time of the next event, or inf"},
    {"info", (PyCFunction)CalQ_info, METH_NOARGS,
     "sizing/occupancy counters (dict)"},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods CalQ_as_seq = {.sq_length = (lenfunc)CalQ_len};

static PyMemberDef CalQ_members[] = {
    /* Python drivers (sanitized runs, step()) sync this clock mirror so
     * the C timeout fast path always sees the current sim._now. */
    {"now", T_DOUBLE, offsetof(CalQ, now), 0, "mirror of sim._now"},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CalQ_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.sim._cq.CalQ",
    .tp_basicsize = sizeof(CalQ),
    .tp_dealloc = (destructor)CalQ_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)CalQ_traverse,
    .tp_clear = (inquiry)CalQ_clear,
    .tp_methods = CalQ_methods,
    .tp_members = CalQ_members,
    .tp_as_sequence = &CalQ_as_seq,
    .tp_new = CalQ_new,
    .tp_doc = "Calendar-queue event schedule (C accelerated)",
};

/* ------------------------------------------------------------ TimeoutFn */

typedef struct {
    PyObject_HEAD
    PyObject *sim;  /* owned */
    CalQ *q;        /* owned */
    PyObject *pool; /* owned list, or NULL when pooling is disabled */
} TimeoutFn;

static int TimeoutFn_traverse(TimeoutFn *f, visitproc visit, void *arg)
{
    Py_VISIT(f->sim);
    Py_VISIT((PyObject *)f->q);
    Py_VISIT(f->pool);
    return 0;
}

static int TimeoutFn_clear(TimeoutFn *f)
{
    Py_CLEAR(f->sim);
    Py_CLEAR(f->q);
    Py_CLEAR(f->pool);
    return 0;
}

static void TimeoutFn_dealloc(TimeoutFn *f)
{
    PyObject_GC_UnTrack(f);
    TimeoutFn_clear(f);
    Py_TYPE(f)->tp_free((PyObject *)f);
}

static PyObject *TimeoutFn_call(TimeoutFn *f, PyObject *args, PyObject *kw)
{
    Py_ssize_t na = PyTuple_GET_SIZE(args);
    PyObject *delay_ob;
    PyObject *value = Py_None;
    if (kw != NULL && PyDict_GET_SIZE(kw) != 0) {
        static char *kwlist[] = {"delay", "value", NULL};
        if (!PyArg_ParseTupleAndKeywords(args, kw, "O|O", kwlist, &delay_ob,
                                         &value))
            return NULL;
    } else if (na == 1) {
        delay_ob = PyTuple_GET_ITEM(args, 0);
    } else if (na == 2) {
        delay_ob = PyTuple_GET_ITEM(args, 0);
        value = PyTuple_GET_ITEM(args, 1);
    } else {
        PyErr_SetString(PyExc_TypeError, "timeout(delay, value=None)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(delay_ob);
    if (delay == -1.0 && PyErr_Occurred()) return NULL;
    if (delay < 0.0) {
        PyErr_Format(SimError, "negative timeout delay %R", delay_ob);
        return NULL;
    }
    CalQ *q = f->q;
    PyObject *pool = f->pool;
    Py_ssize_t psz;
    if (pool == NULL || (psz = PyList_GET_SIZE(pool)) == 0) {
        PyObject *argv[3] = {f->sim, delay_ob, value};
        /* Timeout.__init__ enqueues via sim._queue.push */
        return PyObject_Vectorcall(TimeoutType, argv, 3, NULL);
    }
    PyObject *ev = PyList_GET_ITEM(pool, psz - 1);
    Py_INCREF(ev);
    if (PyList_SetSlice(pool, psz - 1, psz, NULL) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    /* mirror of Simulator.timeout's pooled reset */
    PyObject *cbs = PyList_New(0);
    if (!cbs) {
        Py_DECREF(ev);
        return NULL;
    }
    slot_set(ev, off_callbacks, cbs);
    Py_INCREF(delay_ob);
    slot_set(ev, off_delay, delay_ob);
    Py_INCREF(value);
    slot_set(ev, off_value, value);
    Py_INCREF(Py_False);
    slot_set(ev, off_processed, Py_False);
    double t = q->now + delay;
    if (t == q->band_t && q->band_prio == 1) {
        if (PyList_Append(q->band_list, ev) < 0) {
            Py_DECREF(ev);
            return NULL;
        }
        q->count++;
    } else if (calq_push(q, t, 1 /* NORMAL */, ev) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return ev;
}

static PyTypeObject TimeoutFn_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.sim._cq.TimeoutFn",
    .tp_basicsize = sizeof(TimeoutFn),
    .tp_dealloc = (destructor)TimeoutFn_dealloc,
    .tp_call = (ternaryfunc)TimeoutFn_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)TimeoutFn_traverse,
    .tp_clear = (inquiry)TimeoutFn_clear,
};

/* --------------------------------------------------------------- setup */

static Py_ssize_t member_offset(PyObject *type, const char *name)
{
    PyObject *d = PyObject_GetAttrString(type, name);
    if (!d) return -1;
    if (!PyObject_TypeCheck(d, &PyMemberDescr_Type)) {
        Py_DECREF(d);
        PyErr_Format(PyExc_TypeError, "%s is not a slot member", name);
        return -1;
    }
    Py_ssize_t off = ((PyMemberDescrObject *)d)->d_member->offset;
    Py_DECREF(d);
    return off;
}

static PyObject *mod_setup(PyObject *self, PyObject *args)
{
    PyObject *event_t, *timeout_t, *process_t, *sim_error;
    if (!PyArg_ParseTuple(args, "OOOO", &event_t, &timeout_t, &process_t,
                          &sim_error))
        return NULL;
    Py_XSETREF(TimeoutType, Py_NewRef(timeout_t));
    Py_XSETREF(ProcessType, Py_NewRef(process_t));
    Py_XSETREF(SimError, Py_NewRef(sim_error));
    off_value = member_offset(event_t, "_value");
    off_processed = member_offset(event_t, "_processed");
    off_callbacks = member_offset(event_t, "callbacks");
    off_sim = member_offset(event_t, "sim");
    off_delay = member_offset(timeout_t, "delay");
    off_send = member_offset(process_t, "_send");
    off_target = member_offset(process_t, "_target");
    off_resume_cb = member_offset(process_t, "_resume_cb");
    if (off_value < 0 || off_processed < 0 || off_callbacks < 0 ||
        off_sim < 0 || off_delay < 0 || off_send < 0 || off_target < 0 ||
        off_resume_cb < 0)
        return NULL;
    PyObject *rf = PyObject_GetAttrString(process_t, "_resume");
    if (!rf) return NULL;
    /* unwrap to the plain function for identity matching of bound methods */
    Py_XSETREF(resume_func, rf);
    Py_XSETREF(long_urgent, PyLong_FromLong(0));
    str_process = PyUnicode_InternFromString("_process");
    str_resume_tail = PyUnicode_InternFromString("_resume_tail");
    str_succeed = PyUnicode_InternFromString("succeed");
    str_fail = PyUnicode_InternFromString("fail");
    str_now = PyUnicode_InternFromString("_now");
    str_active = PyUnicode_InternFromString("_active");
    Py_RETURN_NONE;
}

static PyObject *mod_make_timeout(PyObject *self, PyObject *args)
{
    PyObject *sim, *q, *pool;
    if (!PyArg_ParseTuple(args, "OOO", &sim, &q, &pool)) return NULL;
    if (!PyObject_TypeCheck(q, &CalQ_Type)) {
        PyErr_SetString(PyExc_TypeError, "make_timeout() needs a CalQ");
        return NULL;
    }
    TimeoutFn *f = PyObject_GC_New(TimeoutFn, &TimeoutFn_Type);
    if (!f) return NULL;
    f->sim = Py_NewRef(sim);
    f->q = (CalQ *)Py_NewRef(q);
    f->pool = pool == Py_None ? NULL : Py_NewRef(pool);
    PyObject_GC_Track(f);
    return (PyObject *)f;
}

/* --------------------------------------------------------------- drivers */

/* Dispatch one event; mirrors the fused Timeout fast path of
 * Simulator.run / Process._resume.  Returns 0 ok, -1 error. */
static int dispatch_one(PyObject *sim, CalQ *q, PyObject *pool,
                        PyObject *event /* borrowed */)
{
    if (Py_TYPE(event) == (PyTypeObject *)TimeoutType) {
        PyObject *cbs = SLOT(event, off_callbacks);
        if (cbs != NULL && cbs != Py_None && PyList_CheckExact(cbs) &&
            PyList_GET_SIZE(cbs) == 1) {
            PyObject *cb = PyList_GET_ITEM(cbs, 0);
            if (PyMethod_Check(cb) && PyMethod_GET_FUNCTION(cb) == resume_func) {
                /* fused: Timeout waited on by exactly one process */
                PyObject *w = PyMethod_GET_SELF(cb);
                Py_INCREF(w);
                Py_INCREF(Py_None);
                slot_set(event, off_callbacks, Py_None);
                Py_INCREF(Py_True);
                slot_set(event, off_processed, Py_True);
                /* Process._resume, inlined */
                if (PyObject_SetAttr(sim, str_active, w) < 0) {
                    Py_DECREF(w);
                    return -1;
                }
                Py_INCREF(Py_None);
                slot_set(w, off_target, Py_None);
                PyObject *send = SLOT(w, off_send);
                PyObject *val = SLOT(event, off_value);
                Py_XINCREF(val);
                PyObject *result = PyObject_CallOneArg(send, val);
                Py_XDECREF(val);
                if (PyObject_SetAttr(sim, str_active, Py_None) < 0) {
                    Py_XDECREF(result);
                    Py_DECREF(w);
                    return -1;
                }
                if (result == NULL) {
                    if (!PyErr_ExceptionMatches(PyExc_StopIteration)) {
                        /* mirror `except BaseException: self.fail(exc)` */
                        PyObject *etype, *evalue, *etb;
                        PyErr_Fetch(&etype, &evalue, &etb);
                        PyErr_NormalizeException(&etype, &evalue, &etb);
                        if (etb != NULL)
                            PyException_SetTraceback(evalue, etb);
                        PyObject *r = PyObject_CallMethodObjArgs(
                            w, str_fail, evalue, long_urgent, NULL);
                        Py_XDECREF(etype);
                        Py_XDECREF(evalue);
                        Py_XDECREF(etb);
                        Py_DECREF(w);
                        if (!r) return -1;
                        Py_DECREF(r);
                    } else {
                        PyObject *etype, *evalue, *etb;
                        PyErr_Fetch(&etype, &evalue, &etb);
                        PyErr_NormalizeException(&etype, &evalue, &etb);
                        PyObject *retval =
                            evalue ? PyObject_GetAttrString(evalue, "value")
                                   : Py_NewRef(Py_None);
                        Py_XDECREF(etype);
                        Py_XDECREF(evalue);
                        Py_XDECREF(etb);
                        if (!retval) {
                            Py_DECREF(w);
                            return -1;
                        }
                        PyObject *r = PyObject_CallMethodObjArgs(
                            w, str_succeed, retval, long_urgent, NULL);
                        Py_DECREF(retval);
                        Py_DECREF(w);
                        if (!r) return -1;
                        Py_DECREF(r);
                    }
                } else {
                    if (Py_TYPE(result) == (PyTypeObject *)TimeoutType &&
                        SLOT(result, off_sim) == sim &&
                        SLOT(result, off_callbacks) != Py_None) {
                        PyObject *rcbs = SLOT(result, off_callbacks);
                        PyObject *rcb = SLOT(w, off_resume_cb);
                        if (PyList_Append(rcbs, rcb) < 0) {
                            Py_DECREF(result);
                            Py_DECREF(w);
                            return -1;
                        }
                        Py_INCREF(result);
                        slot_set(w, off_target, result);
                    } else {
                        PyObject *r = PyObject_CallMethodOneArg(
                            w, str_resume_tail, result);
                        if (!r) {
                            Py_DECREF(result);
                            Py_DECREF(w);
                            return -1;
                        }
                        Py_DECREF(r);
                    }
                    Py_DECREF(result);
                    Py_DECREF(w);
                }
                if (pool != NULL && Py_REFCNT(event) == 1 &&
                    PyList_GET_SIZE(pool) < POOL_MAX)
                    PyList_Append(pool, event);
                return 0;
            }
        }
        /* plain timeout (0 or many callbacks): generic _process, but
         * still eligible for the pool afterwards */
        PyObject *r = PyObject_CallMethodNoArgs(event, str_process);
        if (!r) return -1;
        Py_DECREF(r);
        if (pool != NULL && Py_REFCNT(event) == 1 &&
            PyList_GET_SIZE(pool) < POOL_MAX)
            PyList_Append(pool, event);
        return 0;
    }
    PyObject *r = PyObject_CallMethodNoArgs(event, str_process);
    if (!r) return -1;
    Py_DECREF(r);
    return 0;
}

/* Shared driver core.  target==NULL: run(until); target!=NULL:
 * run_until_event(target, limit=until).  Returns NULL on error,
 * Py_True if the target fired / the schedule drained, Py_False if the
 * until boundary stopped the run. */
static PyObject *drive(PyObject *sim, CalQ *q, PyObject *pool, double until,
                       PyObject *target)
{
    for (;;) {
        if (target != NULL && SLOT(target, off_processed) == Py_True)
            Py_RETURN_TRUE;
        int rc = calq_pop_cohort(q);
        if (rc < 0) return NULL;
        if (rc == 0) {
            if (target != NULL) {
                PyErr_SetString(
                    SimError,
                    "schedule drained before event fired (deadlock?)");
                return NULL;
            }
            Py_RETURN_TRUE;
        }
        double t = q->active_t;
        long prio = q->active_prio;
        PyObject *events = q->active_list;
        if (t > until) {
            Py_INCREF(events);
            int rq = calq_requeue_band(q, t, prio, events);
            if (rq == 0)
                rq = PyList_SetSlice(events, 0, PyList_GET_SIZE(events), NULL);
            q->active_prio = IDLE_PRIO;
            Py_CLEAR(q->active_list);
            Py_DECREF(events);
            if (rq < 0) return NULL;
            if (target != NULL) {
                PyObject *lf = PyFloat_FromDouble(until);
                if (lf) {
                    PyErr_Format(SimError,
                                 "time limit %S reached before event fired",
                                 lf);
                    Py_DECREF(lf);
                }
                return NULL;
            }
            Py_RETURN_FALSE;
        }
        q->now = t;
        PyObject *tf = PyFloat_FromDouble(t);
        if (!tf) return NULL;
        int sa = PyObject_SetAttr(sim, str_now, tf);
        Py_DECREF(tf);
        if (sa < 0) return NULL;
        Py_INCREF(events); /* hold across dispatch (preempt may drop q's ref) */
        Py_ssize_t i = 0;
        /* size re-read every iteration: a preempting push clears the list */
        while (i < PyList_GET_SIZE(events)) {
            PyObject *event = PyList_GET_ITEM(events, i);
            Py_INCREF(event);
            Py_INCREF(Py_None);
            PyList_SetItem(events, i, Py_None);
            i++;
            if (event == Py_None) {
                Py_DECREF(event);
                continue;
            }
            if (dispatch_one(sim, q, pool, event) < 0) {
                Py_DECREF(event);
                /* keep the queue consistent for a caller that catches */
                calq_requeue_band(q, t, prio, events);
                PyList_SetSlice(events, 0, PyList_GET_SIZE(events), NULL);
                q->active_prio = IDLE_PRIO;
                Py_DECREF(events);
                return NULL;
            }
            Py_DECREF(event);
            if (target != NULL && SLOT(target, off_processed) == Py_True) {
                int rq = calq_requeue_band(q, t, prio, events);
                if (rq == 0)
                    rq = PyList_SetSlice(events, 0, PyList_GET_SIZE(events),
                                         NULL);
                q->active_prio = IDLE_PRIO;
                Py_DECREF(events);
                if (rq < 0) return NULL;
                Py_RETURN_TRUE;
            }
        }
        Py_DECREF(events);
    }
}

static PyObject *mod_run(PyObject *self, PyObject *args)
{
    PyObject *sim, *qo, *pool;
    double until = Py_HUGE_VAL;
    if (!PyArg_ParseTuple(args, "OO!O|d", &sim, &CalQ_Type, &qo, &pool,
                          &until))
        return NULL;
    return drive(sim, (CalQ *)qo, pool == Py_None ? NULL : pool, until, NULL);
}

static PyObject *mod_run_until(PyObject *self, PyObject *args)
{
    PyObject *sim, *qo, *pool, *target;
    double limit = Py_HUGE_VAL;
    if (!PyArg_ParseTuple(args, "OO!OO|d", &sim, &CalQ_Type, &qo, &pool,
                          &target, &limit))
        return NULL;
    Py_INCREF(target);
    PyObject *r =
        drive(sim, (CalQ *)qo, pool == Py_None ? NULL : pool, limit, target);
    Py_DECREF(target);
    return r;
}

static PyMethodDef mod_methods[] = {
    {"setup", mod_setup, METH_VARARGS,
     "setup(Event, Timeout, Process, SimulationError): resolve slot offsets"},
    {"make_timeout", mod_make_timeout, METH_VARARGS,
     "make_timeout(sim, calq, pool_or_None) -> fast sim.timeout callable"},
    {"run", mod_run, METH_VARARGS, "run(sim, calq, pool_or_None[, until])"},
    {"run_until", mod_run_until, METH_VARARGS,
     "run_until(sim, calq, pool_or_None, event[, limit])"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef cq_module = {
    PyModuleDef_HEAD_INIT, "repro.sim._cq",
    "C accelerator for the repro.sim event kernel", -1, mod_methods,
};

PyMODINIT_FUNC PyInit__cq(void)
{
    PyObject *m = PyModule_Create(&cq_module);
    if (!m) return NULL;
    if (PyType_Ready(&CalQ_Type) < 0) return NULL;
    if (PyType_Ready(&TimeoutFn_Type) < 0) return NULL;
    Py_INCREF(&CalQ_Type);
    if (PyModule_AddObject(m, "CalQ", (PyObject *)&CalQ_Type) < 0) return NULL;
    if (PyModule_AddIntConstant(m, "API_VERSION", 1) < 0) return NULL;
    return m;
}
