"""Event-queue disciplines for the simulation kernel.

Two interchangeable implementations of one *cohort* contract:

- :class:`HeapQueue` -- the classic binary heap of ``(t, priority, seq,
  event)`` entries.  O(log n) per operation, zero tuning.  Retained as
  the pure reference discipline (``REPRO_EVENT_QUEUE=heap``).
- :class:`CalendarQueue` -- a slotted calendar / timing wheel: a
  power-of-two array of buckets indexed by ``int(t / width) & mask``.
  Amortized O(1) push and pop for the short-relative-delay traffic a
  DES kernel is dominated by, with a far-future overflow heap and lazy
  resize driven by the observed inter-cohort gap.

Both produce the *identical* total order ``(t, priority, arrival)``:
within one ``(t, priority)`` band, events dispatch in push order, which
is exactly the seq order the heap would use.  The property tests in
``tests/test_equeue.py`` verify the two disciplines stay bit-identical
over randomized schedules including cancels and re-arms.

The cohort contract
-------------------

``pop_cohort()`` removes and returns the entire earliest ``(t,
priority)`` band as ``(t, priority, events)``.  The caller (the
dispatch driver in :mod:`repro.sim.core`) walks ``events`` replacing
each entry with ``None`` *before* dispatching it.  Two re-entrant
situations are handled by the queue itself:

- **Preemption**: if, while a band is being dispatched, a push arrives
  for the *same* ``t`` with a *lower* (more urgent) priority -- e.g. a
  process completion scheduled URGENT while a NORMAL band is draining
  -- the queue reclaims the not-yet-dispatched (non-``None``) remainder
  of the active band, requeues it at the *front* of its band, and
  clears the active list in place so the driver's loop terminates.  The
  driver then simply pops the next cohort, which is the urgent band.
- **Early exit**: drivers that stop mid-band for their own reasons
  (``until`` reached, target event processed, one ``step()``, an
  exception propagating out of a callback) call
  ``requeue_front(t, priority, events)`` with the partially-``None``
  list; the queue restores the remainder exactly.

Same-band pushes *during* dispatch of that band go into a fresh band
(the old one has been popped), which is dispatched next -- the same
order the heap produces, since those entries carry newer seqs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import log2
from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Event

__all__ = ["HeapQueue", "CalendarQueue"]

#: Sentinel priority meaning "no active cohort, nothing can preempt".
_IDLE_PRIO = 1 << 30

#: Timestamps at or beyond this never enter the bucket array (the slot
#: index would overflow); they live in the overflow heap instead.
_FAR_T = 1e300

#: Pops between resize-policy evaluations (CalendarQueue).
_RESIZE_CHECK = 64

#: Initial bucket count (power of two) and slot width.
_N0 = 64
_W0 = 1.0


class HeapQueue:
    """Binary-heap event queue with cohort pop (reference discipline)."""

    __slots__ = (
        "_heap",
        "_seq",
        "_active_t",
        "_active_prio",
        "_active_events",
        "_active_seqs",
        "now",
    )

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        #: Clock mirror kept by the C accelerator's queues; unused here
        #: but present so drivers can assign it uniformly.
        self.now = 0.0
        self._active_t = -1.0
        self._active_prio = _IDLE_PRIO
        self._active_events: Optional[list[Any]] = None
        self._active_seqs: list[int] = []

    def push(self, t: float, prio: int, ev: "Event") -> None:
        if prio < self._active_prio and t == self._active_t:
            self._preempt()
        self._seq += 1
        heappush(self._heap, (t, prio, self._seq, ev))

    def _preempt(self) -> None:
        """Reclaim the undispatched remainder of the active cohort."""
        events = self._active_events
        band_t = self._active_t
        band_prio = self._active_prio
        self._active_prio = _IDLE_PRIO
        self._active_events = None
        if events is None:
            return
        for idx, ev in enumerate(events):
            if ev is not None:
                heappush(self._heap, (band_t, band_prio, self._active_seqs[idx], ev))
        del events[:]  # stops the driver's loop over this list

    def pop_cohort(self) -> Optional[tuple[float, int, list[Any]]]:
        heap = self._heap
        if not heap:
            self._active_prio = _IDLE_PRIO
            self._active_events = None
            return None
        t, prio, seq, ev = heappop(heap)
        events = [ev]
        seqs = [seq]
        while heap and heap[0][0] == t and heap[0][1] == prio:
            _t, _p, s, e = heappop(heap)
            events.append(e)
            seqs.append(s)
        self._active_t = t
        self._active_prio = prio
        self._active_events = events
        self._active_seqs = seqs
        return t, prio, events

    def requeue_front(self, t: float, prio: int, events: list[Any]) -> None:
        """Restore the non-``None`` remainder of a cohort list."""
        seqs = self._active_seqs
        for idx, ev in enumerate(events):
            if ev is not None:
                heappush(self._heap, (t, prio, seqs[idx], ev))
        self._active_prio = _IDLE_PRIO
        self._active_events = None

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def info(self) -> dict[str, Any]:
        return {"discipline": "heap", "count": len(self._heap)}

    def __len__(self) -> int:
        return len(self._heap)


class CalendarQueue:
    """Slotted calendar queue with grouped ``(t, priority)`` bands.

    Each bucket holds a dict mapping ``(t, priority)`` to the list of
    events pushed for that band, in push order.  Because pushes are
    globally ordered in time-of-arrival, list order *is* seq order and
    no per-entry sequence numbers (or sorts) are needed.

    Invariant: every bucket entry has slot index ``k = int(t / width)``
    in ``[cur_k, far_k)`` with ``far_k - cur_k >= n`` only transiently;
    entries at ``k >= far_k`` (or ``t >= 1e300``) wait in the overflow
    heap and are migrated when the cursor advances.  The first
    non-empty bucket scanning from ``cur_k`` therefore contains the
    global minimum band.  Erroneous pushes *behind* the cursor (time
    travel into the past -- possible only through raw ``_enqueue``
    misuse; the sanitizer exists to catch it) go to a small ``past``
    heap that is always drained first, preserving the heap's
    earliest-first behavior for such schedules.
    """

    __slots__ = (
        "_buckets",
        "_n",
        "_mask",
        "_width",
        "_inv_w",
        "_cur_k",
        "_far_k",
        "_count",
        "_overflow",
        "_past",
        "_oseq",
        "_front_seq",
        "_band_t",
        "_band_prio",
        "_band_list",
        "_active_t",
        "_active_prio",
        "_active_events",
        "_pops",
        "_gap_ewma",
        "_last_t",
        "stats_resizes",
        "now",
    )

    def __init__(self, n: int = _N0, width: float = _W0) -> None:
        if n & (n - 1):
            raise ValueError("bucket count must be a power of two")
        self._buckets: list[dict[tuple[float, int], list[Any]]] = [{} for _ in range(n)]
        self._n = n
        self._mask = n - 1
        self._width = width
        self._inv_w = 1.0 / width
        self._cur_k = 0
        self._far_k = n
        self._count = 0
        self._overflow: list[tuple[float, int, int, Any]] = []
        self._past: list[tuple[float, int, int, Any]] = []
        self._oseq = 0
        self._front_seq = 0
        # Push-side band cache: the band the last event went to, so a
        # burst of same-(t, prio) pushes is two compares and an append.
        self._band_t = -1.0
        self._band_prio = -1
        self._band_list: Optional[list[Any]] = None
        # Active cohort (the band currently being dispatched).
        self._active_t = -1.0
        self._active_prio = _IDLE_PRIO
        self._active_events: Optional[list[Any]] = None
        # Resize policy state.
        self._pops = 0
        self._gap_ewma = width
        self._last_t = 0.0
        self.stats_resizes = 0
        #: Clock mirror; see HeapQueue.now.
        self.now = 0.0

    # -- push ----------------------------------------------------------

    def push(self, t: float, prio: int, ev: "Event") -> None:
        if t == self._band_t and prio == self._band_prio:
            assert self._band_list is not None
            self._band_list.append(ev)
            self._count += 1
            return
        if prio < self._active_prio and t == self._active_t:
            self._preempt(t, prio, ev)
            return
        self._push_slow(t, prio, ev)

    def _push_slow(self, t: float, prio: int, ev: "Event") -> None:
        if t < _FAR_T:
            k = int(t * self._inv_w)
            if k < self._far_k:
                if k < self._cur_k:
                    # Behind the cursor: erroneous past-time push.
                    self._oseq += 1
                    heappush(self._past, (t, prio, self._oseq, ev))
                    return
                d = self._buckets[k & self._mask]
                key = (t, prio)
                lst = d.get(key)
                if lst is None:
                    d[key] = lst = [ev]
                else:
                    lst.append(ev)
                self._count += 1
                self._band_t = t
                self._band_prio = prio
                self._band_list = lst
                return
        self._oseq += 1
        heappush(self._overflow, (t, prio, self._oseq, ev))

    def _preempt(self, t: float, prio: int, ev: "Event") -> None:
        act = self._active_events
        act_t = self._active_t
        act_prio = self._active_prio
        self._active_prio = _IDLE_PRIO
        self._active_events = None
        if act is not None:
            remaining = [e for e in act if e is not None]
            del act[:]  # the driver's loop over this list terminates
            if remaining:
                self._requeue_band(act_t, act_prio, remaining)
        self._band_t = -1.0
        self._band_list = None
        self._push_slow(t, prio, ev)

    def _requeue_band(self, t: float, prio: int, events: list[Any]) -> None:
        """Prepend ``events`` to the (t, prio) band, ahead of newer pushes."""
        if t < _FAR_T:
            k = int(t * self._inv_w)
            if k < self._cur_k:
                self._requeue_heap(self._past, t, prio, events)
                return
            if k < self._far_k:
                d = self._buckets[k & self._mask]
                key = (t, prio)
                old = d.get(key)
                d[key] = events if old is None else events + old
                self._count += len(events)
                return
        self._requeue_heap(self._overflow, t, prio, events)

    def _requeue_heap(
        self, heap: list[tuple[float, int, int, Any]], t: float, prio: int, events: list[Any]
    ) -> None:
        # Front-sequence numbers (<= 0, counting down) sort requeued
        # entries ahead of everything already in the heap for this band
        # while preserving their relative order.
        base = self._front_seq - len(events)
        for i, e in enumerate(events):
            heappush(heap, (t, prio, base + i + 1, e))
        self._front_seq = base

    # -- pop -----------------------------------------------------------

    def pop_cohort(self) -> Optional[tuple[float, int, list[Any]]]:
        past = self._past
        if past:
            return self._pop_heap_band(past)
        if not self._count:
            if not self._overflow:
                self._active_prio = _IDLE_PRIO
                self._active_events = None
                return None
            self._jump()
            if not self._count:
                # Only far/infinite-time entries remain.
                return self._pop_heap_band(self._overflow)
        buckets = self._buckets
        mask = self._mask
        k = self._cur_k
        while True:
            d = buckets[k & mask]
            if d:
                break
            k += 1
        self._cur_k = k
        far_k = k + self._n
        if far_k > self._far_k:
            self._far_k = far_k
            if self._overflow:
                self._migrate()
        if len(d) == 1:
            key, events = d.popitem()
        else:
            key = min(d)
            events = d.pop(key)
        self._count -= len(events)
        t, prio = key
        self._activate(t, prio, events)
        self._pops += 1
        if t > self._last_t:
            self._gap_ewma += (t - self._last_t - self._gap_ewma) * 0.125
            self._last_t = t
        if self._pops >= _RESIZE_CHECK:
            self._pops = 0
            self._maybe_resize()
        return t, prio, events

    def _activate(self, t: float, prio: int, events: list[Any]) -> None:
        self._active_t = t
        self._active_prio = prio
        self._active_events = events
        self._band_t = -1.0
        self._band_list = None

    def _pop_heap_band(self, heap: list[tuple[float, int, int, Any]]) -> tuple[float, int, list[Any]]:
        t, prio, _s, ev = heappop(heap)
        events = [ev]
        while heap and heap[0][0] == t and heap[0][1] == prio:
            events.append(heappop(heap)[3])
        self._activate(t, prio, events)
        return t, prio, events

    def requeue_front(self, t: float, prio: int, events: list[Any]) -> None:
        remaining = [e for e in events if e is not None]
        if remaining:
            self._requeue_band(t, prio, remaining)
        self._active_prio = _IDLE_PRIO
        self._active_events = None
        self._band_t = -1.0
        self._band_list = None

    def _jump(self) -> None:
        """Move the cursor to the earliest overflow entry and migrate."""
        t0 = self._overflow[0][0]
        k = int(t0 * self._inv_w) if t0 < _FAR_T else self._far_k
        self._cur_k = k
        self._far_k = k + self._n
        self._migrate()

    def _migrate(self) -> None:
        ov = self._overflow
        far_k = self._far_k
        inv_w = self._inv_w
        buckets = self._buckets
        mask = self._mask
        while ov:
            t = ov[0][0]
            if t >= _FAR_T:
                break
            k = int(t * inv_w)
            if k >= far_k:
                break
            _t, prio, _s, ev = heappop(ov)
            d = buckets[k & mask]
            key = (t, prio)
            lst = d.get(key)
            if lst is None:
                d[key] = [ev]
            else:
                lst.append(ev)
            self._count += 1

    # -- sizing --------------------------------------------------------

    def _maybe_resize(self) -> None:
        """Lazy resize: adapt slot width to the observed inter-cohort gap
        and the bucket count to the population (both powers of two)."""
        n = self._n
        count = self._count
        new_n = n
        if count > 2 * n:
            new_n = n * 2
        elif count < n // 8 and n > _N0:
            new_n = n // 2
        gap = self._gap_ewma
        new_w = self._width
        # Sustained >4x drift between slot width and the typical gap
        # means cohorts either crowd one bucket (width too coarse) or
        # the scan strides many empty buckets (width too fine).
        if gap > 0.0 and (gap > self._width * 4.0 or gap < self._width * 0.25):
            new_w = 2.0 ** round(log2(gap))
            new_w = min(max(new_w, 1e-9), 1e9)
        if new_n != n or new_w != self._width:
            self._rebuild(new_n, new_w)

    def _rebuild(self, n: int, width: float) -> None:
        bands: list[tuple[float, int, list[Any]]] = []
        for d in self._buckets:
            for (t, prio), lst in d.items():
                bands.append((t, prio, lst))
        self._buckets = [{} for _ in range(n)]
        self._n = n
        self._mask = n - 1
        self._width = width
        self._inv_w = 1.0 / width
        self._count = 0
        self._band_t = -1.0
        self._band_list = None
        if bands:
            min_t = min(b[0] for b in bands)
        elif self._overflow and self._overflow[0][0] < _FAR_T:
            min_t = self._overflow[0][0]
        else:
            min_t = self._last_t
        k0 = int(min_t * self._inv_w)
        self._cur_k = k0
        self._far_k = k0 + n
        for t, prio, lst in bands:
            k = int(t * self._inv_w)
            if k < self._far_k:
                d = self._buckets[k & self._mask]
                key = (t, prio)
                old = d.get(key)
                # Rebuild keeps each band list whole, so order is intact.
                d[key] = lst if old is None else old + lst
                self._count += len(lst)
            else:
                for e in lst:
                    self._oseq += 1
                    heappush(self._overflow, (t, prio, self._oseq, e))
        if self._overflow:
            self._migrate()
        self.stats_resizes += 1

    # -- introspection -------------------------------------------------

    def peek(self) -> float:
        if self._past:
            return self._past[0][0]
        if self._count:
            buckets = self._buckets
            mask = self._mask
            k = self._cur_k
            while True:
                d = buckets[k & mask]
                if d:
                    return min(d)[0]
                k += 1
        if self._overflow:
            return self._overflow[0][0]
        return float("inf")

    def info(self) -> dict[str, Any]:
        return {
            "discipline": "calendar",
            "n": self._n,
            "width": self._width,
            "count": self._count,
            "overflow": len(self._overflow),
            "past": len(self._past),
            "resizes": self.stats_resizes,
        }

    def __len__(self) -> int:
        return self._count + len(self._overflow) + len(self._past)


#: Either queue discipline (or the C-accelerated calendar, which has
#: the same surface).
EventQueue = Union[HeapQueue, CalendarQueue, Any]
