"""Discrete-event simulation kernel.

This package is the foundation substrate for the DualPar reproduction: a
small, deterministic, coroutine-based discrete-event simulator in the style
of SimPy.  Simulated entities (MPI processes, disk drives, network links,
daemons) are Python generators that ``yield`` :class:`Event` objects; the
:class:`Simulator` advances virtual time and resumes them when the events
fire.

Public API
----------
- :class:`Simulator` -- the event loop and clock.
- :class:`Event` -- one-shot triggerable event.
- :class:`Process` -- a running coroutine; itself an event that fires on
  completion.
- :class:`Interrupt` -- exception thrown into an interrupted process.
- :class:`Resource`, :class:`PriorityResource` -- capacity-limited servers.
- :class:`Store`, :class:`FilterStore` -- producer/consumer buffers.
- :class:`Gate`, :class:`SimBarrier`, :class:`Semaphore` -- synchronisation.
- :func:`all_of`, :func:`any_of` -- condition events.
"""

from repro.sim.core import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    all_of,
    any_of,
)
from repro.sim.equeue import CalendarQueue, HeapQueue
from repro.sim.resources import (
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.sync import Gate, Semaphore, SimBarrier

__all__ = [
    "CalendarQueue",
    "Event",
    "FilterStore",
    "HeapQueue",
    "Gate",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "Semaphore",
    "SimBarrier",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "all_of",
    "any_of",
]
