"""Synchronisation primitives built on the event kernel.

- :class:`Gate` -- a reusable open/close latch.  ``wait()`` returns an event
  that fires immediately when the gate is open, or when it next opens.
  DualPar's PEC uses gates to suspend and resume whole MPI programs.
- :class:`SimBarrier` -- an ``n``-party reusable barrier (MPI_Barrier).
- :class:`Semaphore` -- counting semaphore.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["Gate", "SimBarrier", "Semaphore"]


class Gate:
    """A reusable latch that processes can wait on.

    Unlike a raw :class:`Event`, a gate can be closed and re-opened any
    number of times; each ``open()`` releases every current waiter.
    """

    def __init__(self, sim: Simulator, opened: bool = True) -> None:
        self.sim = sim
        self._open = opened
        self._waiters: deque[Event] = deque()  # simlint: ignore[SL006] one entry per waiting process

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        """Event firing when the gate is (or becomes) open."""
        ev = Event(self.sim)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self, value: Any = None) -> None:
        """Open the gate, releasing all waiters."""
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed(value)

    def close(self) -> None:
        """Close the gate; subsequent waiters block until open()."""
        self._open = False


class SimBarrier:
    """Reusable n-party barrier.

    The ``i``-th generation completes when ``parties`` processes have
    arrived; all are then released and the barrier resets.
    """

    def __init__(self, sim: Simulator, parties: int) -> None:
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self._arrived = 0
        self._event = Event(sim)
        self.generation = 0

    @property
    def n_waiting(self) -> int:
        return self._arrived

    def arrive(self) -> Event:
        """Arrive at the barrier; returned event fires when all have."""
        self._arrived += 1
        ev = self._event
        if self._arrived >= self.parties:
            self._arrived = 0
            self.generation += 1
            self._event = Event(self.sim)
            ev.succeed(self.generation)
        return ev


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, value: int = 1) -> None:
        if value < 0:
            raise SimulationError("semaphore value must be >= 0")
        self.sim = sim
        self._value = value
        self._waiters: deque[Event] = deque()  # simlint: ignore[SL006] one entry per waiting process

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1
