"""Build, run, and measure one experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster import ClusterSpec, build_cluster
from repro.core.config import DualParConfig
from repro.core.system import DualParSystem
from repro.mpi.runtime import MpiJob, MpiRuntime
from repro.runner.strategies import resolve_strategy
from repro.trace.timeline import ThroughputTimeline
from repro.workloads.base import Workload

__all__ = ["ExperimentResult", "JobResult", "JobSpec", "run_experiment"]


@dataclass
class JobSpec:
    name: str
    nprocs: int
    workload: Workload
    strategy: str = "vanilla"
    #: Launch this many simulated seconds after the experiment starts.
    delay_s: float = 0.0
    engine_kwargs: dict = field(default_factory=dict)


@dataclass
class JobResult:
    name: str
    strategy: str
    nprocs: int
    start_s: float
    end_s: float
    io_time_s: float
    compute_time_s: float
    bytes_read: int
    bytes_written: int

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def throughput_mb_s(self) -> float:
        return self.total_bytes / 1e6 / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def io_ratio(self) -> float:
        total = self.io_time_s + self.compute_time_s
        return self.io_time_s / total if total > 0 else 0.0


@dataclass
class ExperimentResult:
    jobs: list[JobResult]
    makespan_s: float
    cluster: Any
    runtime: MpiRuntime
    dualpar: Optional[DualParSystem]
    timeline: Optional[ThroughputTimeline]
    mpi_jobs: list[MpiJob]
    #: The observability layer the run used (None for plain runs) and its
    #: end-of-run registry snapshot stamped with final sim time.
    observe: Any = None
    metrics: Optional[dict] = None
    #: The fault injector driving the run (None for nominal runs).
    faults: Any = None
    #: The safety governor guarding the run (None for unguarded runs).
    guard: Any = None

    @property
    def system_throughput_mb_s(self) -> float:
        total = sum(j.total_bytes for j in self.jobs)
        return total / 1e6 / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def total_io_time_s(self) -> float:
        return sum(j.io_time_s for j in self.jobs)

    def job(self, name: str) -> JobResult:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(name)


def _create_files(cluster, specs: list[JobSpec]) -> None:
    sizes: dict[str, int] = {}
    for spec in specs:
        for fspec in spec.workload.files():
            prev = sizes.get(fspec.name)
            if prev is not None:
                if prev != fspec.size:
                    raise ValueError(
                        f"file {fspec.name!r} requested with sizes {prev} and {fspec.size}"
                    )
                continue
            sizes[fspec.name] = fspec.size
            cluster.fs.create(fspec.name, fspec.size)


def run_experiment(
    specs: list[JobSpec],
    cluster_spec: Optional[ClusterSpec] = None,
    dualpar_config: Optional[DualParConfig] = None,
    timeline_window_s: Optional[float] = None,
    limit_s: float = 1e6,
    observe=None,
    fault_plan=None,
    guard=None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run ``specs`` on one fresh cluster; return all measurements.

    Jobs with ``delay_s > 0`` start late (the Fig-7 varying-workload
    scenario).  A DualPar system (EMC + recorders) is instantiated iff any
    job uses a dualpar strategy.  ``timeline_window_s`` enables a windowed
    system-throughput series (Fig 7(a)).  ``observe`` is an optional
    :class:`repro.obs.Observability` layer; every component of the run
    publishes its instruments there, and the final registry snapshot is
    returned as ``result.metrics``.  ``fault_plan`` is an optional
    :class:`repro.faults.FaultPlan`; when given, a deterministic
    :class:`repro.faults.FaultInjector` replays it against the cluster.
    ``guard`` is an optional :class:`repro.guard.GuardConfig` (or True
    for defaults); when enabled, a :class:`repro.guard.SafetyGovernor`
    is attached across the stack (budgets, benefit governor, breaker,
    watchdog) and returned as ``result.guard``.  ``workers`` asks for a
    sharded simulation (see :func:`repro.cluster.build_cluster` -- the
    full model currently falls back to the serial run, bit-identically).
    """
    if not specs:
        raise ValueError("need at least one job spec")
    cluster = build_cluster(cluster_spec, observe=observe, workers=workers)
    runtime = MpiRuntime(cluster)
    _create_files(cluster, specs)

    dualpar: Optional[DualParSystem] = None
    if any(s.strategy.startswith("dualpar") for s in specs):
        dualpar = DualParSystem(runtime, dualpar_config)

    governor = None
    if guard is not None:
        from repro.guard import GuardConfig, SafetyGovernor

        guard_config = guard if isinstance(guard, GuardConfig) else GuardConfig()
        if guard_config.enabled:
            governor = SafetyGovernor(runtime.sim, guard_config)
            governor.attach(dualpar=dualpar, runtime=runtime, cluster=cluster)

    faults = None
    if fault_plan is not None:
        from repro.faults import FaultInjector

        faults = FaultInjector(cluster, fault_plan, runtime=runtime, dualpar=dualpar)
        faults.install()

    jobs: list[MpiJob] = []
    for spec in specs:
        spec.workload.validate(spec.nprocs)
        factory = resolve_strategy(spec.strategy, dualpar, **spec.engine_kwargs)
        job = runtime.launch(
            spec.name, spec.nprocs, spec.workload, factory, start=spec.delay_s == 0
        )
        jobs.append(job)
        if spec.delay_s > 0:

            def starter(job=job, delay=spec.delay_s):
                yield runtime.sim.timeout(delay)
                job.start()

            runtime.sim.process(starter(), name=f"start-{spec.name}")

    timeline: Optional[ThroughputTimeline] = None
    if timeline_window_s is not None:
        from repro.obs.sampling import PeriodicSampler

        registry = runtime.sim.obs.registry if runtime.sim.obs.enabled else None
        timeline = ThroughputTimeline("system", registry=registry)
        state = {"last": 0}

        def probe(now: float) -> None:
            total = sum(j.total_io_bytes() for j in jobs)
            timeline.record(now, total - state["last"])
            state["last"] = total

        PeriodicSampler(runtime.sim, timeline_window_s, probe, name="timeline")

    for job in jobs:
        runtime.sim.run_until_event(job.done, limit=limit_s)
    makespan = max(j.end_time for j in jobs) - min(j.start_time for j in jobs)

    results = [
        JobResult(
            name=j.name,
            strategy=s.strategy,
            nprocs=j.nprocs,
            start_s=j.start_time,
            end_s=j.end_time,
            io_time_s=sum(p.metrics.io_time_s for p in j.procs),
            compute_time_s=sum(p.metrics.compute_time_s for p in j.procs),
            bytes_read=sum(p.metrics.bytes_read for p in j.procs),
            bytes_written=sum(p.metrics.bytes_written for p in j.procs),
        )
        for j, s in zip(jobs, specs)
    ]
    return ExperimentResult(
        jobs=results,
        makespan_s=makespan,
        cluster=cluster,
        runtime=runtime,
        dualpar=dualpar,
        timeline=timeline,
        mpi_jobs=jobs,
        observe=observe,
        metrics=(
            observe.snapshot(runtime.sim.now)
            if observe is not None and observe.enabled
            else None
        ),
        faults=faults,
        guard=governor,
    )
