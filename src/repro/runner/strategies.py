"""Named I/O strategies.

Maps the paper's scheme names onto engine factories:

- ``vanilla``        -- vanilla MPI-IO (Strategy 1, the baseline);
- ``collective``     -- ROMIO two-phase collective I/O;
- ``prefetch``       -- Strategy 2: pre-execution prefetching with
  immediate issue, computation sliced away;
- ``dualpar``        -- full DualPar under EMC control (opportunistic);
- ``dualpar-forced`` -- DualPar pinned in data-driven mode (how SV-B
  runs single-application comparisons: "programs stay in the
  data-driven mode").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.mpiio.collective import CollectiveEngine
from repro.mpiio.engine import IndependentEngine
from repro.mpiio.prefetch import PreexecPrefetchEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import DualParSystem

__all__ = ["STRATEGY_NAMES", "resolve_strategy"]

STRATEGY_NAMES = ("vanilla", "collective", "prefetch", "dualpar", "dualpar-forced")


def resolve_strategy(
    name: str,
    dualpar_system: Optional["DualParSystem"] = None,
    **engine_kwargs,
) -> Callable:
    """Return an engine factory for ``MpiRuntime.launch``."""
    if name == "vanilla":
        return lambda rt, job: IndependentEngine(rt, job, **engine_kwargs)
    if name == "collective":
        return lambda rt, job: CollectiveEngine(rt, job, **engine_kwargs)
    if name == "prefetch":
        return lambda rt, job: PreexecPrefetchEngine(rt, job, **engine_kwargs)
    if name in ("dualpar", "dualpar-forced"):
        if dualpar_system is None:
            raise ValueError(f"strategy {name!r} needs a DualParSystem")
        overrides = dict(engine_kwargs)
        if name == "dualpar-forced":
            overrides.setdefault("force_mode", "datadriven")
        return dualpar_system.engine_factory(**overrides)
    raise ValueError(f"unknown strategy {name!r}; choose from {STRATEGY_NAMES}")
