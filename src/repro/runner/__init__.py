"""Experiment harness: launch jobs under a strategy, measure, tabulate.

- :mod:`repro.runner.strategies` -- named I/O strategies ('vanilla',
  'collective', 'prefetch', 'dualpar', 'dualpar-forced') mapped to engine
  factories.
- :mod:`repro.runner.experiment` -- :func:`run_experiment` builds a
  cluster, pre-creates files, launches jobs (optionally staggered), runs
  the simulation, and returns per-job and system-level measurements.
- :mod:`repro.runner.results` -- plain-text table rendering for bench
  output.
- :mod:`repro.runner.calibrate` -- compute-time calibration to hit a
  target I/O ratio, as the paper does for the demo program.
"""

from repro.runner.experiment import ExperimentResult, JobResult, JobSpec, run_experiment
from repro.runner.parallel import (
    ExperimentSpec,
    SlimExperimentResult,
    WorkerCellError,
    run_experiments,
)
from repro.runner.results import format_table
from repro.runner.strategies import STRATEGY_NAMES, resolve_strategy
from repro.runner.calibrate import calibrate_compute_for_ratio

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "JobResult",
    "JobSpec",
    "STRATEGY_NAMES",
    "SlimExperimentResult",
    "WorkerCellError",
    "calibrate_compute_for_ratio",
    "format_table",
    "resolve_strategy",
    "run_experiment",
    "run_experiments",
]
