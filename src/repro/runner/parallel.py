"""Parallel experiment fan-out with deterministic on-disk result caching.

The benchmark grids run dozens of *independent* ``run_experiment`` cells:
each cell builds its own :class:`~repro.sim.core.Simulator`, so no state
crosses cells and running them in separate processes cannot change any
result.  This module provides:

- :class:`ExperimentSpec` -- a picklable description of one cell (the
  exact arguments of :func:`repro.runner.experiment.run_experiment`);
- :class:`SlimExperimentResult` -- the picklable subset of
  :class:`~repro.runner.experiment.ExperimentResult` the benches consume
  (per-job measurements plus a few cluster/DualPar summaries);
- :func:`run_experiments` -- evaluate many cells, fanning out over a
  process pool and memoising each cell on disk under ``.bench_cache/``
  keyed by a fingerprint of (workloads, cluster spec, strategy, config,
  code version).  Re-running a sweep only recomputes changed cells.

Environment knobs::

    REPRO_BENCH_CACHE     cache directory (default ``.bench_cache``)
    REPRO_NO_BENCH_CACHE  set to disable the cache entirely
    REPRO_JOBS            default worker count (default: cpu count)
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.cluster import ClusterSpec
from repro.core.config import DualParConfig
from repro.faults import FaultPlan
from repro.runner.experiment import (
    ExperimentResult,
    JobResult,
    JobSpec,
    run_experiment,
)

__all__ = [
    "CacheStats",
    "ExperimentSpec",
    "SlimExperimentResult",
    "WorkerCellError",
    "clear_cache",
    "default_cache_dir",
    "experiment_fingerprint",
    "run_experiments",
]


class WorkerCellError(RuntimeError):
    """An experiment cell raised inside a pool worker.

    A bare exception re-raised across the process boundary loses its
    child traceback (pickling keeps the instance, not the stack), which
    used to surface a failed cell as an opaque one-liner with only
    parent-side frames.  This wrapper captures ``traceback.format_exc()``
    in the worker and carries the text home, so the parent-side error
    names the failing cell and shows exactly where in the child it died.
    """

    def __init__(self, label: str, traceback_text: str) -> None:
        self.label = label
        self.traceback_text = traceback_text
        super().__init__(
            f"experiment cell {label or '<unlabelled>'!r} failed in worker:\n"
            f"{traceback_text}"
        )

    def __reduce__(self):
        # Multi-arg exceptions need an explicit recipe to cross the
        # pickle boundary intact (BaseException.__reduce__ replays
        # ``args``, which here is the formatted message, not our pair).
        return (WorkerCellError, (self.label, self.traceback_text))


@dataclass(frozen=True)
class ExperimentSpec:
    """One independent experiment cell (the arguments of run_experiment)."""

    specs: tuple[JobSpec, ...]
    cluster_spec: Optional[ClusterSpec] = None
    dualpar_config: Optional[DualParConfig] = None
    timeline_window_s: Optional[float] = None
    limit_s: float = 1e6
    #: Attach an observability layer to the cell's simulator and carry the
    #: end-of-run metrics snapshot back in the slim result.
    observe: bool = False
    #: Deterministic fault schedule replayed against the cell (or None).
    fault_plan: Optional[FaultPlan] = None
    #: Safety-governor config (repro.guard.GuardConfig) or None to run
    #: unguarded; part of the cache fingerprint.
    guard: Optional[Any] = None
    #: Sharded-simulation worker count passed to run_experiment; part of
    #: the cache fingerprint only when != 1 (a one-worker request runs
    #: the same serial kernel as the default).
    workers: int = 1
    #: Free-form display label; not part of the cache fingerprint.
    label: str = ""

    def __post_init__(self) -> None:
        # Accept lists for convenience; store a tuple so the spec hashes.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))


@dataclass
class SlimExperimentResult:
    """The picklable (and therefore cacheable) view of one cell's result.

    Mirrors the measurement surface of :class:`ExperimentResult`; the live
    simulator, cluster, and MPI job objects are deliberately absent.
    """

    jobs: list[JobResult]
    makespan_s: float
    #: Bytes the data servers moved (requested + hole-filled + readahead).
    total_bytes_served: int = 0
    #: DualPar EMC (time, job name, new mode) transitions, if any.
    dualpar_transitions: list[tuple[float, str, str]] = field(default_factory=list)
    #: Windowed throughput timeline, when timeline_window_s was given.
    timeline: Optional[Any] = None
    #: End-of-run metrics snapshot, when the cell ran with observe=True.
    metrics: Optional[dict] = None
    #: (time, kind, phase, target) fault events, when a plan was injected.
    fault_log: list = field(default_factory=list)
    #: Guard (time, job, state, reason) transitions, when a guard ran.
    guard_transitions: list = field(default_factory=list)
    #: Picklable SafetyGovernor.summary() dict, when a guard ran.
    guard_summary: Optional[dict] = None

    @property
    def system_throughput_mb_s(self) -> float:
        total = sum(j.total_bytes for j in self.jobs)
        return total / 1e6 / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def total_io_time_s(self) -> float:
        return sum(j.io_time_s for j in self.jobs)

    def job(self, name: str) -> JobResult:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(name)

    @classmethod
    def from_full(cls, res: ExperimentResult) -> "SlimExperimentResult":
        return cls(
            jobs=list(res.jobs),
            makespan_s=res.makespan_s,
            total_bytes_served=res.cluster.total_bytes_served(),
            dualpar_transitions=list(res.dualpar.transitions) if res.dualpar else [],
            timeline=res.timeline,
            metrics=res.metrics,
            fault_log=list(res.faults.log) if res.faults is not None else [],
            guard_transitions=list(res.guard.transitions) if res.guard else [],
            guard_summary=res.guard.summary() if res.guard else None,
        )


@dataclass
class CacheStats:
    """Hit/miss accounting for the most recent :func:`run_experiments`."""

    hits: int = 0
    misses: int = 0
    errors: int = 0


#: Stats of the most recent run_experiments() call (for tests/reporting).
LAST_RUN_STATS = CacheStats()


# -- fingerprinting -----------------------------------------------------

_CODE_FINGERPRINT: Optional[str] = None


def _code_fingerprint() -> str:
    """Hash of every .py file in the repro package: a new code version
    invalidates all cached results."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        pkg_root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(path.read_bytes())
        _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


def _canonical(obj: Any) -> Any:
    """Reduce obj to a deterministic, repr-stable structure."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__qualname__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, dict):
        return ("dict", tuple((k, _canonical(v)) for k, v in sorted(obj.items())))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in obj))
    if hasattr(obj, "__dict__"):
        # Workloads and other plain config objects: class + attributes.
        return (
            type(obj).__qualname__,
            tuple((k, _canonical(v)) for k, v in sorted(vars(obj).items())),
        )
    return repr(obj)


def experiment_fingerprint(spec: ExperimentSpec) -> str:
    """Deterministic key for one cell: parameters + code version."""
    # A disabled guard config runs bit-identically to no guard at all
    # (run_experiment never builds the governor), so both share a key.
    guard = spec.guard
    if guard is not None and not getattr(guard, "enabled", True):
        guard = None
    # Same normalization for workers: one worker is the plain serial
    # kernel, so it shares a key with specs predating the field.
    workers = spec.workers if spec.workers != 1 else None
    payload = _canonical(
        (
            tuple(spec.specs),
            spec.cluster_spec,
            spec.dualpar_config,
            spec.timeline_window_s,
            spec.limit_s,
            # Observed cells carry a metrics snapshot a plain cached cell
            # would lack, so the flag must key the cache.
            spec.observe,
            spec.fault_plan,
            # Guarded cells behave differently (budgets, governor); the
            # config must key the cache.
            guard,
        )
        + ((("workers", workers),) if workers is not None else ())
    )
    h = hashlib.sha256()
    h.update(_code_fingerprint().encode())
    h.update(repr(payload).encode())
    return h.hexdigest()


# -- cache --------------------------------------------------------------


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_BENCH_CACHE", ".bench_cache"))


def clear_cache(cache_dir: Optional[Path] = None) -> int:
    """Delete all cached results; returns the number of entries removed."""
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    n = 0
    if cache_dir.is_dir():
        for f in cache_dir.glob("*.pkl"):
            try:
                f.unlink()
                n += 1
            except OSError:
                pass
    return n


def _cache_load(path: Path) -> Optional[SlimExperimentResult]:
    """Read one entry; any corruption (truncation, bad pickle, wrong type)
    is treated as a miss, never an error."""
    try:
        with path.open("rb") as f:
            obj = pickle.load(f)
    except Exception:
        return None
    return obj if isinstance(obj, SlimExperimentResult) else None


def _cache_store(path: Path, result: SlimExperimentResult) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(result, f)
                # Make the temp file durable before it becomes visible:
                # os.replace is atomic in the namespace, but a crash before
                # the data hits disk could still publish a torn entry.
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        pass  # caching is best-effort; never fail the experiment


# -- execution ----------------------------------------------------------


def _run_spec(spec: ExperimentSpec) -> SlimExperimentResult:
    """Worker entry point: evaluate one cell from scratch."""
    observe = None
    if spec.observe:
        from repro.obs import Observability

        observe = Observability()
    res = run_experiment(
        list(spec.specs),
        cluster_spec=spec.cluster_spec,
        dualpar_config=spec.dualpar_config,
        timeline_window_s=spec.timeline_window_s,
        limit_s=spec.limit_s,
        observe=observe,
        fault_plan=spec.fault_plan,
        guard=spec.guard,
        workers=spec.workers,
    )
    return SlimExperimentResult.from_full(res)


def _run_spec_in_worker(spec: ExperimentSpec) -> SlimExperimentResult:
    """Pool entry point: like :func:`_run_spec`, but any failure crosses
    back to the parent as a :class:`WorkerCellError` with the child's
    full traceback text attached."""
    try:
        return _run_spec(spec)
    except Exception as exc:
        raise WorkerCellError(spec.label, traceback.format_exc()) from exc


def _default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return os.cpu_count() or 1


def run_experiments(
    specs: list[ExperimentSpec],
    jobs: Optional[int] = None,
    cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> list[SlimExperimentResult]:
    """Evaluate independent experiment cells, in parallel and memoised.

    Results come back in input order.  Cached cells are served from
    ``cache_dir`` without simulating; the remaining cells fan out over a
    process pool of ``jobs`` workers (``jobs=1`` runs inline, which is
    also the fallback on single-CPU hosts).
    """
    global LAST_RUN_STATS
    stats = CacheStats()
    LAST_RUN_STATS = stats
    if jobs is None:
        jobs = _default_jobs()
    use_cache = cache and not os.environ.get("REPRO_NO_BENCH_CACHE")
    cdir = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    results: list[Optional[SlimExperimentResult]] = [None] * len(specs)
    misses: list[int] = []
    paths: list[Optional[Path]] = [None] * len(specs)
    for i, spec in enumerate(specs):
        if use_cache:
            paths[i] = cdir / f"{experiment_fingerprint(spec)}.pkl"
            hit = _cache_load(paths[i])
            if hit is not None:
                results[i] = hit
                stats.hits += 1
                continue
        misses.append(i)
    stats.misses = len(misses)

    if len(misses) <= 1 or jobs <= 1:
        for i in misses:
            results[i] = _run_spec(specs[i])
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(misses))) as pool:
            for i, res in zip(
                misses, pool.map(_run_spec_in_worker, (specs[i] for i in misses))
            ):
                results[i] = res

    if use_cache:
        for i in misses:
            if paths[i] is not None and results[i] is not None:
                _cache_store(paths[i], results[i])
    return results  # type: ignore[return-value]
