"""Plain-text result tables for bench output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render an aligned monospace table (paper-style result listing)."""

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
