"""Compute-time calibration for target I/O ratios.

The paper defines a workload's I/O ratio as "the ratio between a
program's I/O time and its total execution time in the vanilla system"
and tunes the demo program's inter-call compute time to sweep it.  This
helper reproduces that procedure: run the workload once under vanilla
MPI-IO with zero compute, measure the per-call I/O time, and solve for
the compute time giving the requested ratio.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster import ClusterSpec
from repro.runner.experiment import JobSpec, run_experiment
from repro.workloads.base import Workload

__all__ = ["calibrate_compute_for_ratio"]


def calibrate_compute_for_ratio(
    workload_builder: Callable[[float], Workload],
    target_ratio: float,
    nprocs: int,
    cluster_spec: Optional[ClusterSpec] = None,
) -> float:
    """Compute seconds per call such that vanilla runs at ``target_ratio``.

    ``workload_builder(compute_per_call)`` must return a fresh workload
    with the given inter-call computation.
    """
    if not 0 < target_ratio <= 1:
        raise ValueError("target ratio must be in (0, 1]")
    probe = workload_builder(0.0)
    res = run_experiment(
        [JobSpec("calibrate", nprocs, probe, strategy="vanilla")],
        cluster_spec=cluster_spec,
    )
    job = res.jobs[0]
    n_calls = sum(p.metrics.n_io_calls for p in res.mpi_jobs[0].procs)
    if n_calls == 0:
        raise ValueError("workload performed no I/O calls")
    io_per_call = job.io_time_s / n_calls
    # ratio = io / (io + compute)  =>  compute = io * (1 - r) / r
    return io_per_call * (1 - target_ratio) / target_ratio
