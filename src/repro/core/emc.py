"""Execution Mode Control: the decision daemon on the metadata server.

Every ``emc_interval_s`` the daemon computes:

- ``aveSeekDist`` -- mean recent per-request head seek distance reported
  by the locality daemons on the data servers;
- ``aveReqDist`` -- mean sorted-adjacent request distance recorded at the
  compute nodes (the best locality a data-driven execution could create);
- each registered program's recent I/O ratio.

A program enters data-driven mode when its I/O ratio exceeds
``io_ratio_enter`` (80 %) *and* the potential improvement
``aveSeekDist / aveReqDist`` exceeds ``T_improvement`` (3).  It reverts
when its I/O ratio falls below ``io_ratio_exit``, or immediately -- and
permanently, with the default lockout -- when its mis-prefetch ratio
exceeds 20 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.config import DualParConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import DualParEngine
    from repro.core.system import DualParSystem

__all__ = ["EmcDaemon", "EmcSample"]


@dataclass(frozen=True)
class EmcSample:
    """One evaluation tick's view of the system (kept for analysis)."""

    time: float
    ave_seek_dist: Optional[float]
    ave_req_dist: Optional[float]
    improvement: Optional[float]
    io_ratios: dict  # job name -> ratio


class EmcDaemon:
    """Execution Mode Control: periodically evaluates every registered
    program's I/O ratio against the cluster's seek/request distance ratio
    and flips execution modes."""

    def __init__(self, system: "DualParSystem", config: DualParConfig):
        self.system = system
        self.config = config
        self.sim = system.runtime.sim
        self.samples: list[EmcSample] = []
        if self.sim.obs.enabled:
            reg = self.sim.obs.registry
            self._ts_improvement = reg.timeseries("emc.improvement")
            self._ts_seek_dist = reg.timeseries("emc.ave_seek_dist")
            self._ts_req_dist = reg.timeseries("emc.ave_req_dist")
            self._n_ticks = reg.counter("emc.ticks")
        else:
            self._ts_improvement = None
            self._ts_seek_dist = None
            self._ts_req_dist = None
            self._n_ticks = None
        self._proc = self.sim.process(self._run(), name="emc", daemon=True)

    # ------------------------------------------------------------------

    def live_servers(self) -> Optional[frozenset[int]]:
        """Data servers the metadata service reports up, or None when no
        health tracking is installed (nominal run: everything is live).

        CRM consults this when building batch plans so dead servers are
        dropped rather than timed out against.
        """
        health = self.system.health
        if health is None:
            return None
        return frozenset(health.live_servers())

    def ave_seek_dist(self) -> Optional[float]:
        vals = [
            d.recent_seek_dist()  # simown: shared[locality stat poll; server->meta report msg]
            for d in self.system.runtime.cluster.locality_daemons
        ]
        vals = [v for v in vals if v is not None]
        if not vals:
            return None
        return sum(vals) / len(vals)

    def ave_req_dist(self) -> Optional[float]:
        now = self.sim.now
        vals = [r.recent_req_dist(now) for r in self.system.recorders.values()]
        vals = [v for v in vals if v is not None]
        if not vals:
            return None
        return sum(vals) / len(vals)

    def improvement(self) -> Optional[float]:
        seek = self.ave_seek_dist()
        req = self.ave_req_dist()
        if seek is None or req is None:
            return None
        # A perfectly sorted stream has ReqDist ~0; floor it at one stripe
        # unit worth of sectors to keep the ratio finite.
        floor_sectors = self.system.runtime.cluster.spec.stripe_unit / 512.0
        return seek / max(req, floor_sectors)

    # ------------------------------------------------------------------

    def _run(self):
        cfg = self.config
        sim = self.sim
        while True:
            yield sim.timeout(cfg.emc_interval_s)
            imp = self.improvement()
            guard = self.system.guard
            ratios = {}
            for engine in list(self.system.engines.values()):
                job = engine.job
                if job.finished:
                    continue
                ratio = engine_sampler = self.system.sampler_of(engine).sample()
                if ratio is not None:
                    ratios[job.name] = ratio
                if guard is not None:
                    # The safety governor's hysteresis state machine takes
                    # over the whole decision -- including for engines with
                    # force_mode, which the guard may temporarily overrule.
                    guard.governor_for(engine).evaluate(ratio, imp)
                    continue
                if engine.config.force_mode is not None:
                    continue
                if engine.locked_out:  # simown: shared[EMC mode control; meta->client ctrl msg]
                    continue
                if job.mode == "normal":
                    if (
                        ratio is not None
                        and ratio > cfg.io_ratio_enter
                        and imp is not None
                        and imp > cfg.t_improvement
                    ):
                        # simown: shared[EMC mode control; meta->client ctrl msg]
                        engine.set_mode("datadriven")
                else:
                    if ratio is not None and ratio < cfg.io_ratio_exit:
                        # simown: shared[EMC mode control; meta->client ctrl msg]
                        engine.set_mode("normal")
            sample = EmcSample(
                time=sim.now,
                ave_seek_dist=self.ave_seek_dist(),
                ave_req_dist=self.ave_req_dist(),
                improvement=imp,
                io_ratios=ratios,
            )
            self.samples.append(sample)
            if self._n_ticks is not None:
                self._n_ticks.inc()
                if sample.improvement is not None:
                    self._ts_improvement.record(sim.now, sample.improvement)
                if sample.ave_seek_dist is not None:
                    self._ts_seek_dist.record(sim.now, sample.ave_seek_dist)
                if sample.ave_req_dist is not None:
                    self._ts_req_dist.record(sim.now, sample.ave_req_dist)

    # ------------------------------------------------------------------

    def report_misprefetch(self, engine: "DualParEngine", ratio: float) -> None:
        """Called by PEC with each cycle's mis-prefetch ratio."""
        guard = self.system.guard
        if guard is not None:
            # Escalating-cooldown degrade instead of the permanent lockout.
            guard.governor_for(engine).report_misprefetch(ratio)
            return
        if ratio > self.config.misprefetch_threshold:
            if self.config.misprefetch_lockout:
                engine.locked_out = True  # simown: shared[EMC mode control; meta->client ctrl msg]
            if engine.job.mode == "datadriven" and engine.config.force_mode is None:
                engine.set_mode("normal")  # simown: shared[EMC mode control; meta->client ctrl msg]
