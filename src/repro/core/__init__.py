"""DualPar: opportunistic data-driven execution (the paper's contribution).

Three modules mirror the paper's architecture (Fig 2):

- :class:`EmcDaemon` (:mod:`repro.core.emc`) -- Execution Mode Control on
  the metadata server: watches each registered program's I/O ratio and the
  cluster's ``aveSeekDist/aveReqDist`` potential-improvement metric, and
  flips programs between computation-driven and data-driven modes.
- :class:`Pec` (:mod:`repro.core.pec`) -- Process Execution Control in the
  MPI-IO library: blocks processes on read misses, forks ghost
  (pre-execution) processes that run ahead recording future requests
  (computation retained) until each process's cache quota is planned full
  or the expected-fill-time deadline expires.
- :class:`Crm` (:mod:`repro.core.crm`) -- Cache and Request Management on
  each compute node: collects recorded requests, sorts and merges them,
  fills small holes, and issues batched prefetch/writeback via list I/O.

:class:`DualParSystem` wires the daemons to a cluster;
:class:`DualParEngine` is the per-job ADIO interception layer.
"""

from repro.core.config import DualParConfig
from repro.core.emc import EmcDaemon
from repro.core.engine import DualParEngine
from repro.core.metrics import JobIoSampler, RequestRecorder
from repro.core.pec import Cycle, Pec
from repro.core.crm import Crm
from repro.core.system import DualParSystem

__all__ = [
    "Crm",
    "Cycle",
    "DualParConfig",
    "DualParEngine",
    "DualParSystem",
    "EmcDaemon",
    "JobIoSampler",
    "Pec",
    "RequestRecorder",
]
