"""EMC's inputs: windowed I/O ratios and compute-node request distances.

``JobIoSampler`` differences each rank's cumulative ADIO counters between
EMC ticks, yielding the program's recent I/O ratio; ``RequestRecorder``
implements the paper's ReqDist: "we record requests observed at each of
the compute nodes ... in constant time slots, sort requests for data from
the same file according to their file offsets, and calculate the average
distance between adjacent requests.  ReqDist represents the highest I/O
efficiency that a data-driven execution can possibly achieve."
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MpiJob

__all__ = ["JobIoSampler", "RequestRecorder"]


class JobIoSampler:
    """Windowed I/O-ratio sampler for one job."""

    def __init__(self, job: "MpiJob"):
        self.job = job
        self._last_io = 0.0
        self._last_compute = 0.0

    def sample(self) -> Optional[float]:
        """I/O ratio since the previous sample; None if the job was idle."""
        io = sum(p.metrics.io_time_s for p in self.job.procs)
        comp = sum(p.metrics.compute_time_s for p in self.job.procs)
        d_io = io - self._last_io
        d_comp = comp - self._last_compute
        self._last_io = io
        self._last_compute = comp
        total = d_io + d_comp
        if total <= 0:
            return None
        return d_io / total


class RequestRecorder:
    """Per-compute-node log of file requests for ReqDist computation."""

    def __init__(self, node_id: int, window_s: float = 2.0, max_records: int = 50_000):
        self.node_id = node_id
        self.window_s = window_s
        self._records: deque[tuple[float, str, int, int]] = deque(maxlen=max_records)

    def record(self, time: float, file_name: str, offset: int, length: int) -> None:
        self._records.append((time, file_name, offset, length))

    def recent_req_dist(self, now: float) -> Optional[float]:
        """Mean sorted-adjacent gap (in 512-byte sectors) over the window.

        Returns None when fewer than two requests fall in the window.
        """
        t0 = now - self.window_s
        by_file: dict[str, list[tuple[int, int]]] = {}
        for t, fname, off, length in self._records:
            if t >= t0:
                by_file.setdefault(fname, []).append((off, length))
        gaps: list[int] = []
        for ranges in by_file.values():
            if len(ranges) < 2:
                continue
            ranges.sort()
            for (a_off, a_len), (b_off, _b_len) in zip(ranges, ranges[1:]):
                gaps.append(max(b_off - (a_off + a_len), 0))
        if not gaps:
            return None
        return sum(gaps) / len(gaps) / 512.0
